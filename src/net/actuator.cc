#include "net/actuator.h"

#include "net/codec.h"
#include "util/logging.h"
#include "util/strings.h"

namespace datacell::net {

Actuator::~Actuator() {
  listener_.Close();
  if (thread_.joinable()) thread_.join();
}

Status Actuator::Start(uint16_t port) {
  ASSIGN_OR_RETURN(listener_, TcpListener::Bind(port));
  port_ = listener_.port();
  thread_ = std::thread([this] { ReadLoop(); });
  return Status::OK();
}

void Actuator::WaitFinished() {
  if (thread_.joinable()) thread_.join();
}

Actuator::Stats Actuator::stats() const {
  const obs::HistogramSnapshot h = latency_.Snapshot();
  MutexLock lock(&mu_);
  Stats s = stats_;
  s.latency_sum = h.sum > static_cast<uint64_t>(INT64_MAX)
                      ? INT64_MAX
                      : static_cast<Micros>(h.sum);
  s.latency_max = h.max;
  s.mean_latency = h.Mean();
  return s;
}

void Actuator::ReadLoop() {
  Result<TcpStream> conn = listener_.Accept();
  if (!conn.ok()) {
    finished_.store(true);
    return;
  }
  TcpStream stream = std::move(conn).value();

  // Schema header: locate the creation-timestamp column ("tag").
  Result<std::string> header = stream.ReadLine();
  if (!header.ok()) {
    finished_.store(true);
    return;
  }
  size_t tag_index = 0;
  if (Result<Schema> schema = Codec::DecodeSchemaHeader(*header); schema.ok()) {
    int idx = schema->FindField("tag");
    if (idx >= 0) tag_index = static_cast<size_t>(idx);
  }

  while (true) {
    Result<std::string> line = stream.ReadLine();
    if (!line.ok()) break;
    const Micros received = clock_->Now();
    // Fast field extraction: we only need the tag column.
    std::vector<std::string> fields = SplitString(*line, '|');
    if (fields.size() <= tag_index) continue;
    Result<int64_t> created = ParseInt64(fields[tag_index]);
    if (!created.ok()) continue;
    // The distribution is recorded lock-free; the mutex only covers the
    // first/last bookkeeping.
    latency_.Record(received - *created);
    MutexLock lock(&mu_);
    if (stats_.tuples == 0) {
      stats_.first_receive = received;
      stats_.first_created = *created;
    }
    stats_.tuples++;
    stats_.last_receive = received;
  }
  finished_.store(true);
}

}  // namespace datacell::net
