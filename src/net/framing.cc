#include "net/framing.h"

#include <utility>

#include "net/codec.h"

namespace datacell::net {

void LineFramer::Append(std::string_view data) {
  buffer_.append(data.data(), data.size());
}

std::optional<std::string> LineFramer::NextLine() {
  const size_t pos = buffer_.find('\n', head_);
  if (pos == std::string::npos) {
    // No complete line: compact now so a half-received tuple after a large
    // drained burst does not pin the whole burst buffer.
    if (head_ > 0) {
      buffer_.erase(0, head_);
      head_ = 0;
    }
    return std::nullopt;
  }
  std::string line = buffer_.substr(head_, pos - head_);
  head_ = pos + 1;
  // Amortized compaction: drop the consumed prefix once it is both big and
  // the majority of the buffer.
  if (head_ >= 4096 && head_ * 2 >= buffer_.size()) {
    buffer_.erase(0, head_);
    head_ = 0;
  }
  return line;
}

std::string LineFramer::TakeRemainder() {
  std::string out = buffer_.substr(head_);
  buffer_.clear();
  head_ = 0;
  return out;
}

Result<Hello> ParseHello(const std::string& line) {
  Hello hello;
  if (line == "STATS") {
    hello.kind = HelloKind::kStats;
    return hello;
  }
  if (line == "SEQ") {
    hello.kind = HelloKind::kSeq;
    return hello;
  }
  ASSIGN_OR_RETURN(hello.schema, Codec::DecodeSchemaHeader(line));
  hello.kind = HelloKind::kSchema;
  return hello;
}

}  // namespace datacell::net
