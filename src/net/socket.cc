#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace datacell::net {

namespace {

// strerror_r comes in two flavours; overload resolution picks the right
// unpacking. GNU returns the message pointer (not always `buf`), XSI
// fills `buf` and returns 0 on success.
std::string ErrnoMessage(const char* ret, const char* /*buf*/) { return ret; }
std::string ErrnoMessage(int ret, const char* buf) {
  return ret == 0 ? buf : "unknown error";
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + ErrnoString(errno));
}

// How long WriteAll waits for a full send buffer to drain before giving
// up on the peer. Bounded so a dead-but-not-RST peer cannot wedge a
// reactor thread forever; generous enough that a merely slow reader (the
// backpressure case) always gets its bytes.
constexpr int kWriteStallTimeoutMs = 10'000;

}  // namespace

std::string ErrnoString(int err) {
  char buf[128] = "unknown error";
  return ErrnoMessage(strerror_r(err, buf, sizeof(buf)), buf);
}

TcpStream::~TcpStream() { Close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(other.fd_), framer_(std::move(other.framer_)) {
  other.fd_ = -1;
}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    framer_ = std::move(other.framer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpStream> TcpStream::Connect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip = (host == "localhost") ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("connect");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

Status TcpStream::WriteAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking socket with a full send buffer (the gateway puts
        // every accepted connection in non-blocking mode): wait for the
        // peer to drain and resume instead of failing the write.
        pollfd p{fd_, POLLOUT, 0};
        int rc = ::poll(&p, 1, kWriteStallTimeoutMs);
        if (rc < 0) {
          if (errno == EINTR) continue;
          return Errno("poll(POLLOUT)");
        }
        if (rc == 0) {
          return Status::IOError("send stalled: peer not draining");
        }
        continue;
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> TcpStream::ReadLine() {
  while (true) {
    if (std::optional<std::string> line = framer_.NextLine()) {
      return std::move(*line);
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      std::string tail = framer_.TakeRemainder();
      if (!tail.empty()) return tail;
      return Status::NotFound("eof");
    }
    framer_.Append({chunk, static_cast<size_t>(n)});
  }
}

Result<std::optional<std::string>> TcpStream::TryReadLine() {
  while (true) {
    if (std::optional<std::string> line = framer_.NextLine()) {
      return std::optional<std::string>(std::move(*line));
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return std::optional<std::string>();
      }
      return Errno("recv");
    }
    if (n == 0) {
      std::string tail = framer_.TakeRemainder();
      if (!tail.empty()) {
        return std::optional<std::string>(std::move(tail));
      }
      return Status::NotFound("eof");
    }
    framer_.Append({chunk, static_cast<size_t>(n)});
  }
}

Status TcpStream::SetNonBlocking(bool enabled) {
  if (fd_ < 0) return Status::InvalidArgument("stream not open");
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Result<size_t> TcpStream::FillFromSocket() {
  char chunk[16384];
  while (true) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
      return Errno("recv");
    }
    if (n == 0) return Status::NotFound("eof");
    framer_.Append({chunk, static_cast<size_t>(n)});
    return static_cast<size_t>(n);
  }
}

std::optional<std::string> TcpStream::PopBufferedLine() {
  return framer_.NextLine();
}

std::string TcpStream::TakeBufferedRemainder() {
  return framer_.TakeRemainder();
}

Status TcpStream::ShutdownWrite() {
  if (fd_ >= 0 && ::shutdown(fd_, SHUT_WR) != 0) return Errno("shutdown");
  return Status::OK();
}

void TcpStream::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Errno("bind");
  }
  // Deep backlog: the sharded gateway multiplexes tens of thousands of
  // sensors on one port, and a fleet connecting at once must not see SYN
  // drops (the kernel clamps to net.core.somaxconn).
  if (::listen(fd, 4096) != 0) {
    ::close(fd);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Errno("getsockname");
  }
  TcpListener out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

Result<TcpStream> TcpListener::Accept() {
  while (true) {
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream(cfd);
  }
}

Status TcpListener::SetNonBlocking(bool enabled) {
  if (fd_ < 0) return Status::InvalidArgument("listener not open");
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Result<std::optional<TcpStream>> TcpListener::TryAccept() {
  while (true) {
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return std::optional<TcpStream>();
      }
      return Errno("accept");
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::optional<TcpStream>(TcpStream(cfd));
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace datacell::net
