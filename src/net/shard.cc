#include "net/shard.h"

#include <poll.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <unordered_map>

#include "net/framing.h"
#include "storage/ingest_log.h"
#include "util/logging.h"

namespace datacell::net {

namespace {

// Reactor timeouts, mirroring the legacy poll(2) ingress: the wake pipes
// carry every wakeup that matters, the timeouts only bound recovery from
// lost races.
constexpr int kEpollIdleMs = 500;
constexpr int kEpollPausedMs = 20;
constexpr int kMaxEvents = 256;

}  // namespace

/// One reactor shard: an epoll set over this shard's partition of
/// connections, a wake pipe, and an inbox the acceptor routes new
/// connections through. All connection state is owned by the shard's
/// reactor thread; the inbox is the only cross-thread handoff.
class ShardedIngress::Shard {
 public:
  Shard(ShardedIngress* parent, size_t index, core::ReceptorPtr receptor)
      : parent_(parent), index_(index), receptor_(std::move(receptor)) {}

  ~Shard() { Shutdown(); }

  Status Start() {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      return Status::IOError("epoll_create1: " + ErrnoString(errno));
    }
    RETURN_NOT_OK(wake_.Open());
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_.read_fd();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_.read_fd(), &ev) != 0) {
      return Status::IOError("epoll_ctl(wake): " + ErrnoString(errno));
    }
    if (!receptor_->outputs().empty()) {
      log_stream_ = receptor_->outputs().front()->name();
    }
    // Backpressure release signal, per shard: draining this shard's basket
    // past the low watermark pokes only this shard's wake pipe.
    for (const core::BasketPtr& b : receptor_->outputs()) {
      size_t id = b->AddListener([this] {
        if (paused_.load(std::memory_order_relaxed)) wake_.Notify();
      });
      subscriptions_.emplace_back(b, id);
    }
    thread_ = std::thread([this] { Loop(); });
    return Status::OK();
  }

  void Notify() { wake_.Notify(); }

  /// Joins the reactor (caller must have set parent stop + Notify first)
  /// and releases the shard's kernel resources. Idempotent.
  void Shutdown() {
    if (thread_.joinable()) thread_.join();
    for (const auto& [basket, id] : subscriptions_) {
      basket->RemoveListener(id);
    }
    subscriptions_.clear();
    wake_.Close();
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
  }

  /// Acceptor thread: hands a freshly accepted connection to this shard.
  void Route(TcpStream stream) {
    active_.fetch_add(1);
    routed_.fetch_add(1);
    {
      MutexLock lock(&mu_);
      inbox_.push_back(std::move(stream));
    }
    wake_.Notify();
  }

  // Parent/aggregation accessors (the class is file-local, so these stay
  // public rather than friending the enclosing class).
  const std::string& log_stream() const { return log_stream_; }
  const core::ReceptorPtr& receptor() const { return receptor_; }
  uint64_t routed() const { return routed_.load(); }
  uint64_t active() const { return active_.load(); }
  uint64_t tuples() const { return tuples_.load(); }
  uint64_t dropped() const { return dropped_.load(); }
  uint64_t bp_engagements() const { return bp_engaged_.load(); }
  bool paused() const { return paused_.load(); }

 private:
  struct Conn {
    TcpStream stream;
    bool handshaken = false;
    bool eof = false;    // peer half-closed; buffered tail still drains
    bool armed = false;  // EPOLLIN currently requested
  };
  enum class Drain { kIdle, kPaused, kClose };

  void Loop() {
    epoll_event events[kMaxEvents];
    while (!parent_->stop_.load()) {
      // Re-open the valve once this shard's bounded outputs drained to
      // their low watermark; connections may hold buffered lines.
      if (paused_.load() && receptor_->BackpressureReleased()) {
        paused_.store(false);
        RearmAll();
        PumpAll();
        if (paused_.load()) continue;  // valve closed again mid-resume
      }

      const bool paused = paused_.load();
      int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                           paused ? kEpollPausedMs : kEpollIdleMs);
      if (n < 0 && errno != EINTR) {
        DC_LOG(Error) << "shard " << index_
                      << " epoll_wait: " << ErrnoString(errno);
        break;
      }
      if (parent_->stop_.load()) break;

      bool woken = false;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_.read_fd()) {
          wake_.Drain();
          woken = true;
          continue;
        }
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        if (!PumpConn(it->second.get())) CloseConn(fd);
      }
      if (woken) AdoptInbox();
      // Level-triggered epoll would spin on unread paused sockets; take
      // them out of the interest set until the valve re-opens.
      if (paused_.load()) DisarmHandshaken();
    }

    // Shut down every owned stream so peers see EOF promptly, including
    // connections still parked in the inbox.
    AdoptInbox();
    for (auto& [fd, conn] : conns_) {
      conn->stream.Close();
      active_.fetch_sub(1);
    }
    conns_.clear();
  }

  /// Moves routed connections from the inbox into the epoll set.
  void AdoptInbox() {
    std::vector<TcpStream> pending;
    {
      MutexLock lock(&mu_);
      pending.swap(inbox_);
    }
    for (TcpStream& s : pending) {
      const int fd = s.fd();
      auto conn = std::make_unique<Conn>();
      conn->stream = std::move(s);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        DC_LOG(Warn) << "shard epoll add: " << ErrnoString(errno);
        active_.fetch_sub(1);
        continue;  // conn destructor closes the socket
      }
      conn->armed = true;
      Conn* raw = conn.get();
      conns_.emplace(fd, std::move(conn));
      // Pump immediately: the client's header may already be buffered.
      if (!PumpConn(raw)) CloseConn(fd);
    }
  }

  void PumpAll() {
    std::vector<int> closed;
    for (auto& [fd, conn] : conns_) {
      if (!PumpConn(conn.get())) closed.push_back(fd);
    }
    for (int fd : closed) CloseConn(fd);
  }

  /// Reads/parses/delivers for one connection. False → remove it.
  bool PumpConn(Conn* conn) {
    while (!parent_->stop_.load()) {
      Drain state = DrainBuffered(conn);
      if (state == Drain::kClose) return false;
      if (state == Drain::kPaused) return true;  // buffered bytes keep
      if (conn->eof) return false;               // fully drained
      Result<size_t> n = conn->stream.FillFromSocket();
      if (!n.ok()) {
        if (n.status().code() == StatusCode::kNotFound) {
          conn->eof = true;  // clean half-close: drain the buffered tail
          continue;
        }
        // Mid-stream disconnect (RST etc.): keep what was delivered, drop
        // the rest of this connection; sibling shards never notice.
        DC_LOG(Warn) << "shard " << index_
                     << " connection error: " << n.status().ToString();
        return false;
      }
      if (*n == 0) return true;  // would block; epoll will call back
    }
    return true;
  }

  Drain DrainBuffered(Conn* conn) {
    while (true) {
      if (!conn->handshaken) {
        std::optional<std::string> line = NextLine(conn);
        if (!line.has_value()) {
          if (conn->eof) {
            DC_LOG(Warn) << "shard: connection closed before schema header";
            return Drain::kClose;
          }
          return Drain::kIdle;
        }
        if (!Handshake(conn, *line)) return Drain::kClose;
        continue;
      }

      size_t credit = receptor_->CreditRemaining();
      if (credit == 0) {
        if (EngagePause()) return Drain::kPaused;
        credit = receptor_->CreditRemaining();
      }
      const size_t allowed = std::min(parent_->opts_.max_batch_rows, credit);
      Table batch(parent_->codec_.schema());
      while (batch.num_rows() < allowed) {
        std::optional<std::string> line = NextLine(conn);
        if (!line.has_value()) break;
        DecodeCount(*line, &batch);
      }
      if (batch.num_rows() == 0) return Drain::kIdle;
      if (parent_->ingest_log_ != nullptr) {
        // Write-ahead under this shard's stream, same contract as the
        // unsharded gateway: in the log before the engine can observe it.
        Result<std::pair<uint64_t, uint64_t>> seqs =
            parent_->ingest_log_->AppendBatch(log_stream_, batch);
        if (!seqs.ok()) {
          DC_LOG(Error) << "shard log append failed: "
                        << seqs.status().ToString();
          return Drain::kClose;
        }
      }
      Result<size_t> delivered =
          receptor_->Deliver(batch, parent_->clock_->Now());
      if (!delivered.ok()) {
        DC_LOG(Error) << "shard deliver failed: "
                      << delivered.status().ToString();
        return Drain::kClose;
      }
    }
  }

  std::optional<std::string> NextLine(Conn* conn) {
    if (std::optional<std::string> line = conn->stream.PopBufferedLine()) {
      return line;
    }
    if (conn->eof) {
      std::string tail = conn->stream.TakeBufferedRemainder();
      if (!tail.empty()) return tail;
    }
    return std::nullopt;
  }

  bool Handshake(Conn* conn, const std::string& line) {
    Result<Hello> hello = ParseHello(line);
    if (!hello.ok()) {
      DC_LOG(Warn) << "shard: bad handshake line '" << line
                   << "': " << hello.status().ToString();
      return false;
    }
    switch (hello->kind) {
      case HelloKind::kStats: {
        parent_->scrapes_.fetch_add(1);
        Status st = conn->stream.WriteAll(parent_->StatsLine());
        if (!st.ok()) DC_LOG(Debug) << "shard STATS reply: " << st.ToString();
        return false;
      }
      case HelloKind::kSeq: {
        // The reply is the logical stream's across-shard total: a
        // reconnecting sensor's fd almost always rehashes to a different
        // shard, so any single shard's stream seq would under-report.
        parent_->scrapes_.fetch_add(1);
        const uint64_t seq = parent_->TotalLoggedSeq();
        Status st =
            conn->stream.WriteAll("SEQ " + std::to_string(seq) + "\n");
        if (!st.ok()) DC_LOG(Debug) << "shard SEQ reply: " << st.ToString();
        return false;
      }
      case HelloKind::kSchema:
        break;
    }
    if (!(hello->schema == parent_->codec_.schema())) {
      DC_LOG(Warn) << "shard: schema mismatch, got '" << line << "'";
      return false;
    }
    conn->handshaken = true;
    return true;
  }

  void DecodeCount(const std::string& line, Table* batch) {
    Status st = parent_->codec_.DecodeInto(line, batch);
    if (st.ok()) {
      tuples_.fetch_add(1);
      parent_->m_tuples_->Increment();
    } else {
      dropped_.fetch_add(1);
      parent_->m_dropped_->Increment();
      DC_LOG(Debug) << "shard dropping malformed tuple: " << st.ToString();
    }
  }

  /// Closes this shard's credit valve; returns false if credit reappeared
  /// (raced with a consumer) and reading may continue. Same flag-then-
  /// recheck dance as the unsharded gateway, per shard.
  bool EngagePause() {
    const bool was_paused = paused_.exchange(true);
    if (receptor_->BackpressureReleased()) {
      paused_.store(false);
      return false;
    }
    if (!was_paused) {
      bp_engaged_.fetch_add(1);
      parent_->m_bp_engaged_->Increment();
      receptor_->NoteCreditStall();
    }
    return true;
  }

  void Arm(Conn* conn, bool on) {
    if (conn->armed == on) return;
    epoll_event ev{};
    ev.events = on ? EPOLLIN : 0;
    ev.data.fd = conn->stream.fd();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->stream.fd(), &ev) == 0) {
      conn->armed = on;
    }
  }

  void DisarmHandshaken() {
    for (auto& [fd, conn] : conns_) {
      if (conn->handshaken) Arm(conn.get(), false);
    }
  }

  void RearmAll() {
    for (auto& [fd, conn] : conns_) Arm(conn.get(), true);
  }

  void CloseConn(int fd) {
    conns_.erase(fd);  // stream destructor closes; kernel drops epoll entry
    active_.fetch_sub(1);
  }

  // Wiring set at construction/Start before the reactor thread spawns and
  // immutable afterwards.
  ShardedIngress* parent_ DC_UNGUARDED;
  size_t index_ DC_UNGUARDED;
  core::ReceptorPtr receptor_ DC_UNGUARDED;
  std::string log_stream_ DC_UNGUARDED;
  // Internally synchronized / reactor-thread-only kernel handles.
  int epoll_fd_ DC_UNGUARDED = -1;
  WakePipe wake_ DC_UNGUARDED;
  std::thread thread_ DC_UNGUARDED;
  // Listener registrations on this shard's baskets; Start/Shutdown only.
  std::vector<std::pair<core::BasketPtr, size_t>> subscriptions_
      DC_UNGUARDED;

  // Acceptor → reactor handoff.
  Mutex mu_{LockRank::kActuator};
  std::vector<TcpStream> inbox_ DC_GUARDED_BY(mu_);

  // Connection table: reactor thread only.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_ DC_UNGUARDED;

  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> routed_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> tuples_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> bp_engaged_{0};
};

ShardedIngress::ShardedIngress(std::vector<core::ReceptorPtr> shard_receptors,
                               Codec codec, Clock* clock,
                               ShardedIngressOptions opts)
    : codec_(std::move(codec)), clock_(clock), opts_(opts) {
  if (opts_.max_batch_rows == 0) opts_.max_batch_rows = 1;
  if (opts_.max_connections == 0) opts_.max_connections = 1;
  opts_.num_shards = shard_receptors.size();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  m_tuples_ = reg.GetCounter("gateway.tuples_received");
  m_dropped_ = reg.GetCounter("gateway.tuples_dropped");
  m_connections_ = reg.GetCounter("gateway.connections");
  m_bp_engaged_ = reg.GetCounter("gateway.backpressure_engagements");
  for (size_t i = 0; i < shard_receptors.size(); ++i) {
    shards_.push_back(
        std::make_unique<Shard>(this, i, std::move(shard_receptors[i])));
  }
}

ShardedIngress::~ShardedIngress() { Stop(); }

void ShardedIngress::EnableIngestLog(storage::IngestLog* log) {
  ingest_log_ = log;
}

Status ShardedIngress::Start(uint16_t port) {
  if (shards_.empty()) {
    return Status::InvalidArgument("sharded ingress needs >= 1 receptor");
  }
  ASSIGN_OR_RETURN(listener_, TcpListener::Bind(port));
  port_ = listener_.port();
  RETURN_NOT_OK(listener_.SetNonBlocking(true));
  if (Status st = accept_wake_.Open(); !st.ok()) {
    listener_.Close();
    return st;
  }
  stop_.store(false);
  for (auto& shard : shards_) {
    if (Status st = shard->Start(); !st.ok()) {
      stop_.store(true);
      for (auto& s : shards_) {
        s->Notify();
        s->Shutdown();
      }
      listener_.Close();
      accept_wake_.Close();
      return st;
    }
  }
  started_.store(true);
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  ShardRegistry::Global().Register(this);
  return Status::OK();
}

void ShardedIngress::Stop() {
  if (!started_.exchange(false)) return;
  ShardRegistry::Global().Unregister(this);
  stop_.store(true);
  accept_wake_.Notify();
  for (auto& shard : shards_) shard->Notify();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& shard : shards_) shard->Shutdown();
  listener_.Close();
  accept_wake_.Close();
}

void ShardedIngress::AcceptorLoop() {
  pollfd pfds[2];
  while (!stop_.load()) {
    const bool accepting = active_connections() < opts_.max_connections;
    pfds[0] = {accept_wake_.read_fd(), POLLIN, 0};
    nfds_t nfds = 1;
    if (accepting) {
      pfds[1] = {listener_.fd(), POLLIN, 0};
      nfds = 2;
    }
    int rc = ::poll(pfds, nfds, accepting ? kEpollIdleMs : kEpollPausedMs);
    if (rc < 0 && errno != EINTR) {
      DC_LOG(Error) << "acceptor poll: " << ErrnoString(errno);
      break;
    }
    if (stop_.load()) break;
    if (pfds[0].revents & POLLIN) accept_wake_.Drain();
    if (!accepting || (pfds[1].revents & (POLLIN | POLLERR)) == 0) continue;
    // Drain the accept queue completely: a 10k-connection storm must not
    // pay one poll round per connection.
    while (active_connections() < opts_.max_connections) {
      Result<std::optional<TcpStream>> next = listener_.TryAccept();
      if (!next.ok()) {
        DC_LOG(Warn) << "acceptor accept failed: " << next.status().ToString();
        break;
      }
      if (!next->has_value()) break;
      TcpStream stream = std::move(**next);
      if (Status st = stream.SetNonBlocking(true); !st.ok()) {
        DC_LOG(Warn) << "acceptor: " << st.ToString();
        continue;
      }
      // fd-hash routing: cheap, deterministic for a given fd, and spreads
      // a storm evenly because the kernel hands out ascending fds.
      const size_t shard = static_cast<size_t>(stream.fd()) % shards_.size();
      accepted_.fetch_add(1);
      m_connections_->Increment();
      shards_[shard]->Route(std::move(stream));
    }
  }
}

bool ShardedIngress::finished() const {
  if (!started_.load()) return stop_.load();  // post-Stop, like TcpIngress
  const uint64_t accepted = accepted_.load();
  const uint64_t scrapes = scrapes_.load();
  if (accepted <= scrapes) return false;
  return active_connections() == 0;
}

uint64_t ShardedIngress::tuples_received() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->tuples();
  return total;
}

uint64_t ShardedIngress::tuples_dropped() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->dropped();
  return total;
}

size_t ShardedIngress::active_connections() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->active();
  return static_cast<size_t>(total);
}

uint64_t ShardedIngress::backpressure_engagements() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->bp_engagements();
  return total;
}

bool ShardedIngress::backpressured() const {
  for (const auto& s : shards_) {
    if (s->paused()) return true;
  }
  return false;
}

ShardedIngress::ShardStats ShardedIngress::shard_stats(size_t shard) const {
  ShardStats out;
  if (shard >= shards_.size()) return out;
  const Shard& s = *shards_[shard];
  out.connections = s.routed();
  out.active = s.active();
  out.tuples = s.tuples();
  out.dropped = s.dropped();
  out.backpressure_engagements = s.bp_engagements();
  out.backpressured = s.paused();
  for (const core::BasketPtr& b : s.receptor()->outputs()) {
    out.credit_stalls += b->stats().credit_stalls;
  }
  return out;
}

uint64_t ShardedIngress::TotalLoggedSeq() const {
  if (ingest_log_ == nullptr) return 0;
  uint64_t total = 0;
  for (const auto& s : shards_) {
    if (!s->log_stream().empty()) {
      total += ingest_log_->last_seq(s->log_stream());
    }
  }
  return total;
}

std::string ShardedIngress::StatsLine() const {
  std::string out = "STATS";
  const auto field = [&out](const std::string& key, uint64_t v) {
    out += " " + key + "=" + std::to_string(v);
  };
  field("tuples_received", tuples_received());
  field("tuples_dropped", tuples_dropped());
  field("connections_accepted", accepted_.load());
  field("active_connections", active_connections());
  field("backpressure_engagements", backpressure_engagements());
  field("backpressured", backpressured() ? 1 : 0);
  field("shards", shards_.size());
  if (ingest_log_ != nullptr) {
    const storage::IngestLog::Stats ls = ingest_log_->stats();
    field("log_records", ls.records);
    field("log_bytes", ls.bytes);
    field("log_last_seq", TotalLoggedSeq());
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "shard." + std::to_string(i) + ".";
    field(prefix + "connections", shards_[i]->routed());
    field(prefix + "active", shards_[i]->active());
    field(prefix + "tuples", shards_[i]->tuples());
    field(prefix + "backpressured", shards_[i]->paused() ? 1 : 0);
  }
  out += "\n";
  return out;
}

ShardRegistry& ShardRegistry::Global() {
  static ShardRegistry* instance = new ShardRegistry();
  return *instance;
}

void ShardRegistry::Register(ShardedIngress* ingress) {
  MutexLock lock(&mu_);
  list_.push_back(ingress);
}

void ShardRegistry::Unregister(ShardedIngress* ingress) {
  MutexLock lock(&mu_);
  list_.erase(std::remove(list_.begin(), list_.end(), ingress), list_.end());
}

std::vector<ShardedIngress*> ShardRegistry::Ingresses() const {
  MutexLock lock(&mu_);
  return list_;
}

}  // namespace datacell::net
