#ifndef DATACELL_NET_SOCKET_H_
#define DATACELL_NET_SOCKET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/framing.h"
#include "util/status.h"

namespace datacell::net {

/// Thread-safe spelling of strerror(err): strerror's static buffer makes
/// it unusable from concurrent gateway/actuator threads.
std::string ErrnoString(int err);

/// A connected TCP byte stream with line-oriented helpers. Move-only; the
/// destructor closes the descriptor.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (IPv4 dotted or "localhost").
  static Result<TcpStream> Connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }

  /// Writes the whole buffer (loops over partial writes).
  Status WriteAll(const std::string& data);

  /// Reads up to the next '\n' (stripped). Returns NotFound on clean EOF
  /// with no pending data; IOError otherwise.
  Result<std::string> ReadLine();

  /// Returns an already-buffered/immediately-available line, or nullopt if
  /// reading would block. Never blocks; NotFound on clean EOF. Used to
  /// drain bursts into one batch after a blocking ReadLine.
  Result<std::optional<std::string>> TryReadLine();

  /// --- Reactor-mode primitives (gateway event loop) -----------------------
  /// Raw descriptor for poll(); -1 when invalid.
  int fd() const { return fd_; }

  /// Sets O_NONBLOCK on the descriptor.
  Status SetNonBlocking(bool enabled);

  /// One non-blocking recv() appended to the read-ahead buffer. Returns the
  /// number of bytes read, 0 when the read would block, NotFound on clean
  /// EOF, IOError otherwise. Never loops: the caller's poll() decides when
  /// to try again.
  Result<size_t> FillFromSocket();

  /// Extracts the next complete ('\n'-terminated) line from the read-ahead
  /// buffer without touching the socket; nullopt when none is buffered.
  std::optional<std::string> PopBufferedLine();

  /// Drains whatever trails the last newline — the torn partial line a peer
  /// leaves behind when it disconnects mid-tuple.
  std::string TakeBufferedRemainder();

  /// Half-closes the write side, signalling EOF to the peer.
  Status ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
  LineFramer framer_;  // read-ahead line framing (shared with the fuzzers)
};

/// A listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds to 127.0.0.1:port (0 picks an ephemeral port) and listens.
  static Result<TcpListener> Bind(uint16_t port);

  uint16_t port() const { return port_; }

  /// Blocks until a client connects.
  Result<TcpStream> Accept();

  /// Raw descriptor for poll(); -1 when closed.
  int fd() const { return fd_; }

  /// Sets O_NONBLOCK so Accept-style calls never park the reactor.
  Status SetNonBlocking(bool enabled);

  /// Accepts a pending connection, or nullopt when none is queued. Never
  /// blocks (pair with poll() on fd()).
  Result<std::optional<TcpStream>> TryAccept();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace datacell::net

#endif  // DATACELL_NET_SOCKET_H_
