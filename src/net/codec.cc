#include "net/codec.h"

#include "util/strings.h"

namespace datacell::net {

namespace {

// Wire marker for SQL NULL. A *string* whose value is literally "NULL"
// encodes as the bare four characters, so the two are unambiguous on
// decode: only the marker (backslash-N, which EscapeInto can never emit
// for a value — it escapes every backslash) means null. The bare word
// "NULL" is still accepted as null for non-string fields, where no legal
// value collides with it, keeping old encoders readable.
constexpr const char kNullField[] = "\\N";

void EscapeInto(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '|':
        out->append("\\p");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 'p':
        out.push_back('|');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

// Splits on unescaped '|'.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      cur.push_back(line[i]);
      cur.push_back(line[i + 1]);
      ++i;
      continue;
    }
    if (line[i] == '|') {
      fields.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur.push_back(line[i]);
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

std::string Codec::EncodeSchemaHeader() const {
  std::string out;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) out.push_back('|');
    EscapeInto(schema_.field(i).name, &out);
    out.push_back(':');
    out += DataTypeName(schema_.field(i).type);
  }
  return out;
}

Result<Schema> Codec::DecodeSchemaHeader(const std::string& line) {
  Schema schema;
  // Field names travel escaped exactly like string values, so the header
  // must split on *unescaped* pipes — a name containing "\p" must not
  // desync the handshake.
  for (const std::string& part : SplitFields(line)) {
    size_t colon = part.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("bad schema header field: " + part);
    }
    ASSIGN_OR_RETURN(DataType type, DataTypeFromName(part.substr(colon + 1)));
    std::string name = Unescape(part.substr(0, colon));
    if (name.empty()) {
      return Status::ParseError("empty field name in schema header: " + line);
    }
    RETURN_NOT_OK(schema.AddField({std::move(name), type}));
  }
  return schema;
}

Result<std::string> Codec::EncodeRow(const Table& table, size_t i) const {
  if (table.num_columns() != schema_.num_fields()) {
    return Status::TypeMismatch("codec schema arity mismatch");
  }
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back('|');
    const Column& col = table.column(c);
    if (!col.IsValid(i)) {
      out.append(kNullField);
      continue;
    }
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        out.append(std::to_string(col.ints()[i]));
        break;
      case DataType::kDouble:
        out.append(StringPrintf("%.17g", col.doubles()[i]));
        break;
      case DataType::kBool:
        out.append(col.bools()[i] ? "true" : "false");
        break;
      case DataType::kString:
        EscapeInto(col.strings()[i], &out);
        break;
    }
  }
  return out;
}

Result<std::string> Codec::EncodeTable(const Table& table) const {
  std::string out;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    ASSIGN_OR_RETURN(std::string line, EncodeRow(table, i));
    out += line;
    out.push_back('\n');
  }
  return out;
}

Result<Row> Codec::DecodeRow(const std::string& line) const {
  std::vector<std::string> fields = SplitFields(line);
  if (fields.size() != schema_.num_fields()) {
    return Status::ParseError("tuple arity " + std::to_string(fields.size()) +
                              " does not match schema " + schema_.ToString());
  }
  Row row;
  row.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    if (f == kNullField ||
        (f == "NULL" && schema_.field(i).type != DataType::kString)) {
      row.push_back(Value::Null());
      continue;
    }
    switch (schema_.field(i).type) {
      case DataType::kInt64:
      case DataType::kTimestamp: {
        ASSIGN_OR_RETURN(int64_t v, ParseInt64(f));
        row.push_back(Value(v));
        break;
      }
      case DataType::kDouble: {
        ASSIGN_OR_RETURN(double v, ParseDouble(f));
        row.push_back(Value(v));
        break;
      }
      case DataType::kBool:
        if (f == "true") {
          row.push_back(Value(true));
        } else if (f == "false") {
          row.push_back(Value(false));
        } else {
          return Status::ParseError("bad bool field: " + f);
        }
        break;
      case DataType::kString:
        row.push_back(Value(Unescape(f)));
        break;
    }
  }
  return row;
}

Status Codec::DecodeInto(const std::string& line, Table* out) const {
  ASSIGN_OR_RETURN(Row row, DecodeRow(line));
  return out->AppendRow(row);
}

}  // namespace datacell::net
