#include "net/sensor.h"

#include "net/socket.h"
#include "util/random.h"

namespace datacell::net {

Schema Sensor::StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Status Sensor::Run(const std::string& host, uint16_t port,
                   const Options& options, Clock* clock) {
  ASSIGN_OR_RETURN(TcpStream stream, TcpStream::Connect(host, port));
  Codec codec(StreamSchema());
  RETURN_NOT_OK(stream.WriteAll(codec.EncodeSchemaHeader() + "\n"));

  Random rng(options.seed);
  uint64_t sent = 0;
  std::string buffer;
  while (sent < options.num_tuples) {
    buffer.clear();
    const size_t n = std::min<uint64_t>(options.tuples_per_write,
                                        options.num_tuples - sent);
    for (size_t i = 0; i < n; ++i) {
      const Micros created = clock->Now();
      const int64_t payload =
          static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
              options.payload_range > 0 ? options.payload_range : 1)));
      buffer += std::to_string(created);
      buffer.push_back('|');
      buffer += std::to_string(payload);
      buffer.push_back('\n');
    }
    RETURN_NOT_OK(stream.WriteAll(buffer));
    sent += n;
    if (options.write_interval > 0) clock->SleepFor(options.write_interval);
  }
  RETURN_NOT_OK(stream.ShutdownWrite());
  // Drain until the peer closes so the kernel finishes reading before our
  // destructor resets the connection.
  while (true) {
    Result<std::string> line = stream.ReadLine();
    if (!line.ok()) break;
  }
  return Status::OK();
}

}  // namespace datacell::net
