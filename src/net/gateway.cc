#include "net/gateway.h"

#include "util/logging.h"

namespace datacell::net {

TcpIngress::~TcpIngress() { Stop(); }

Status TcpIngress::Start(uint16_t port) {
  ASSIGN_OR_RETURN(listener_, TcpListener::Bind(port));
  port_ = listener_.port();
  thread_ = std::thread([this] { ReadLoop(); });
  return Status::OK();
}

void TcpIngress::Stop() {
  listener_.Close();
  if (thread_.joinable()) thread_.join();
}

void TcpIngress::ReadLoop() {
  Result<TcpStream> conn = listener_.Accept();
  if (!conn.ok()) {
    DC_LOG(Warn) << "ingress accept failed: " << conn.status().ToString();
    finished_.store(true);
    return;
  }
  TcpStream stream = std::move(conn).value();

  // Handshake: schema header.
  Result<std::string> header = stream.ReadLine();
  if (!header.ok()) {
    DC_LOG(Warn) << "ingress: no schema header: " << header.status().ToString();
    finished_.store(true);
    return;
  }
  Result<Schema> peer_schema = Codec::DecodeSchemaHeader(*header);
  if (!peer_schema.ok() || !(*peer_schema == codec_.schema())) {
    DC_LOG(Warn) << "ingress: schema mismatch, got '" << *header << "'";
    finished_.store(true);
    return;
  }

  Table batch(codec_.schema());
  auto flush = [&]() -> Status {
    if (batch.num_rows() == 0) return Status::OK();
    ASSIGN_OR_RETURN(size_t n, receptor_->Deliver(batch, clock_->Now()));
    (void)n;
    batch.Clear();
    return Status::OK();
  };

  while (true) {
    // Block for the first line of a burst...
    Result<std::string> line = stream.ReadLine();
    if (!line.ok()) break;  // EOF or error
    Status st = codec_.DecodeInto(*line, &batch);
    if (!st.ok()) {
      // Structural validation failure: silently drop the event (baskets'
      // silent-filter semantics start at the adapter boundary).
      DC_LOG(Debug) << "ingress dropping malformed tuple: " << st.ToString();
    } else {
      tuples_.fetch_add(1);
    }
    // ...then drain whatever else already arrived, up to the batch bound.
    while (batch.num_rows() < max_batch_rows_) {
      Result<std::optional<std::string>> more = stream.TryReadLine();
      if (!more.ok() || !more->has_value()) break;
      st = codec_.DecodeInto(**more, &batch);
      if (st.ok()) tuples_.fetch_add(1);
    }
    st = flush();
    if (!st.ok()) {
      DC_LOG(Error) << "ingress deliver failed: " << st.ToString();
      break;
    }
  }
  Status st = flush();
  if (!st.ok()) DC_LOG(Error) << "ingress final flush: " << st.ToString();
  finished_.store(true);
}

Result<std::unique_ptr<TcpEgress>> TcpEgress::Connect(const std::string& host,
                                                      uint16_t port) {
  ASSIGN_OR_RETURN(TcpStream stream, TcpStream::Connect(host, port));
  return std::unique_ptr<TcpEgress>(new TcpEgress(std::move(stream)));
}

core::Emitter::Sink TcpEgress::MakeSink() {
  return [this](const Table& batch) -> Status {
    if (!header_sent_) {
      Codec codec(batch.schema());
      RETURN_NOT_OK(stream_.WriteAll(codec.EncodeSchemaHeader() + "\n"));
      header_sent_ = true;
    }
    Codec codec(batch.schema());
    ASSIGN_OR_RETURN(std::string payload, codec.EncodeTable(batch));
    return stream_.WriteAll(payload);
  };
}

Status TcpEgress::Finish() { return stream_.ShutdownWrite(); }

}  // namespace datacell::net
