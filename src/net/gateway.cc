#include "net/gateway.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/framing.h"
#include "storage/ingest_log.h"
#include "util/logging.h"

namespace datacell::net {

namespace {

// Reactor poll timeouts. The self-pipe carries every wakeup that matters
// (Stop, basket drained past the low watermark); the timeouts only bound
// recovery from lost races, so they can be long.
constexpr int kPollIdleMs = 500;
constexpr int kPollPausedMs = 20;

}  // namespace

TcpIngress::~TcpIngress() { Stop(); }

void TcpIngress::EnableIngestLog(storage::IngestLog* log, std::string stream) {
  ingest_log_ = log;
  log_stream_ = std::move(stream);
  if (log_stream_.empty() && !receptor_->outputs().empty()) {
    log_stream_ = receptor_->outputs().front()->name();
  }
}

Status TcpIngress::Start(uint16_t port) {
  ASSIGN_OR_RETURN(listener_, TcpListener::Bind(port));
  port_ = listener_.port();
  RETURN_NOT_OK(listener_.SetNonBlocking(true));
  if (Status st = wake_.Open(); !st.ok()) {
    listener_.Close();
    return st;
  }
  // Backpressure release signal: any mutation on a capacity-bounded output
  // may be the drain that re-opens the valve. The listener runs under the
  // basket lock, so it only flips an atomic and pokes the self-pipe.
  for (const core::BasketPtr& b : receptor_->outputs()) {
    size_t id = b->AddListener([this] {
      if (paused_.load(std::memory_order_relaxed)) wake_.Notify();
    });
    subscriptions_.emplace_back(b, id);
  }
  stop_.store(false);
  started_.store(true);
  thread_ = std::thread([this] { ReactorLoop(); });
  return Status::OK();
}

void TcpIngress::Stop() {
  if (!started_.exchange(false)) return;
  stop_.store(true);
  wake_.Notify();
  if (thread_.joinable()) thread_.join();
  for (const auto& [basket, id] : subscriptions_) basket->RemoveListener(id);
  subscriptions_.clear();
  listener_.Close();
  wake_.Close();
}

void TcpIngress::ReactorLoop() {
  std::vector<pollfd> pfds;
  std::vector<Conn*> pumped;  // conns indexed alongside pfds
  while (!stop_.load()) {
    // Re-open the valve once every bounded output drained to its low
    // watermark; connections may hold buffered lines to finish parsing.
    bool resume_pump = false;
    if (paused_.load() && receptor_->BackpressureReleased()) {
      paused_.store(false);
      resume_pump = true;
    }

    if (resume_pump) {
      for (size_t i = 0; i < conns_.size();) {
        if (!PumpConn(conns_[i].get())) {
          conns_.erase(conns_.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
      active_.store(conns_.size());
      if (accepted_.load() > scrapes_.load() && conns_.empty()) {
        finished_.store(true);
      }
      if (paused_.load()) continue;  // valve closed again mid-resume
    }

    pfds.clear();
    pumped.clear();
    pfds.push_back({wake_.read_fd(), POLLIN, 0});
    const bool accepting = conns_.size() < max_connections_;
    if (accepting) pfds.push_back({listener_.fd(), POLLIN, 0});
    const bool paused = paused_.load();
    for (const auto& conn : conns_) {
      // While paused we stop reading tuple sockets (TCP push-back), but
      // handshakes stay responsive — a header line is not stream volume.
      if (paused && conn->handshaken) continue;
      pfds.push_back({conn->stream.fd(), POLLIN, 0});
      pumped.push_back(conn.get());
    }

    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                    paused ? kPollPausedMs : kPollIdleMs);
    if (rc < 0 && errno != EINTR) {
      DC_LOG(Error) << "ingress poll: " << ErrnoString(errno);
      break;
    }
    if (stop_.load()) break;

    if (pfds[0].revents & POLLIN) wake_.Drain();

    size_t base = 1;
    if (accepting) {
      if (pfds[1].revents & (POLLIN | POLLERR)) AcceptPending();
      base = 2;
    }
    bool removed = false;
    for (size_t i = 0; i < pumped.size(); ++i) {
      if ((pfds[base + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      if (!PumpConn(pumped[i])) {
        for (size_t j = 0; j < conns_.size(); ++j) {
          if (conns_[j].get() == pumped[i]) {
            conns_.erase(conns_.begin() + static_cast<long>(j));
            break;
          }
        }
        removed = true;
      }
    }
    if (removed || !conns_.empty() || accepted_.load() > 0) {
      active_.store(conns_.size());
      finished_.store(accepted_.load() > scrapes_.load() && conns_.empty());
    }
  }

  // Shut down every accepted stream so peers see EOF promptly.
  for (auto& conn : conns_) conn->stream.Close();
  conns_.clear();
  active_.store(0);
  finished_.store(true);
}

void TcpIngress::AcceptPending() {
  while (conns_.size() < max_connections_) {
    Result<std::optional<TcpStream>> next = listener_.TryAccept();
    if (!next.ok()) {
      DC_LOG(Warn) << "ingress accept failed: " << next.status().ToString();
      return;
    }
    if (!next->has_value()) return;
    auto conn = std::make_unique<Conn>();
    conn->stream = std::move(**next);
    if (Status st = conn->stream.SetNonBlocking(true); !st.ok()) {
      DC_LOG(Warn) << "ingress: " << st.ToString();
      continue;
    }
    conns_.push_back(std::move(conn));
    accepted_.fetch_add(1);
    m_connections_->Increment();
    active_.store(conns_.size());
    finished_.store(false);
  }
}

bool TcpIngress::PumpConn(Conn* conn) {
  while (!stop_.load()) {
    Drain state = DrainBuffered(conn);
    if (state == Drain::kClose) return false;
    if (state == Drain::kPaused) return true;  // buffered bytes keep
    if (conn->eof) return false;               // fully drained
    Result<size_t> n = conn->stream.FillFromSocket();
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kNotFound) {
        conn->eof = true;  // clean half-close: drain the buffered tail
        continue;
      }
      // Mid-stream disconnect (RST etc.): keep what was already delivered,
      // drop the rest of this connection.
      DC_LOG(Warn) << "ingress connection error: " << n.status().ToString();
      return false;
    }
    if (*n == 0) return true;  // would block; poll() will call back
  }
  return true;
}

TcpIngress::Drain TcpIngress::DrainBuffered(Conn* conn) {
  while (true) {
    if (!conn->handshaken) {
      std::optional<std::string> line = NextLine(conn);
      if (!line.has_value()) {
        if (conn->eof) {
          DC_LOG(Warn) << "ingress: connection closed before schema header";
          return Drain::kClose;
        }
        return Drain::kIdle;
      }
      if (!Handshake(conn, *line)) return Drain::kClose;
      continue;
    }

    size_t credit = receptor_->CreditRemaining();
    if (credit == 0) {
      if (EngagePause()) return Drain::kPaused;
      credit = receptor_->CreditRemaining();
    }
    const size_t allowed = std::min(max_batch_rows_, credit);
    Table batch(codec_.schema());
    while (batch.num_rows() < allowed) {
      std::optional<std::string> line = NextLine(conn);
      if (!line.has_value()) break;
      DecodeCount(*line, &batch);
    }
    if (batch.num_rows() == 0) return Drain::kIdle;
    if (ingest_log_ != nullptr) {
      // Write-ahead: the batch must be in the log before the engine can
      // observe it, or a crash between the two would lose tuples the
      // sensor believes were accepted. A log failure drops the connection
      // rather than silently degrading to non-durable ingest.
      Result<std::pair<uint64_t, uint64_t>> seqs =
          ingest_log_->AppendBatch(log_stream_, batch);
      if (!seqs.ok()) {
        DC_LOG(Error) << "ingress log append failed: "
                      << seqs.status().ToString();
        return Drain::kClose;
      }
    }
    Result<size_t> delivered = receptor_->Deliver(batch, clock_->Now());
    if (!delivered.ok()) {
      DC_LOG(Error) << "ingress deliver failed: "
                    << delivered.status().ToString();
      return Drain::kClose;
    }
  }
}

std::optional<std::string> TcpIngress::NextLine(Conn* conn) {
  if (std::optional<std::string> line = conn->stream.PopBufferedLine()) {
    return line;
  }
  if (conn->eof) {
    // Torn partial line at EOF: decode what arrived; the codec decides
    // whether it happens to be a whole tuple or counts as dropped.
    std::string tail = conn->stream.TakeBufferedRemainder();
    if (!tail.empty()) return tail;
  }
  return std::nullopt;
}

bool TcpIngress::Handshake(Conn* conn, const std::string& line) {
  Result<Hello> hello = ParseHello(line);
  if (!hello.ok()) {
    DC_LOG(Warn) << "ingress: bad handshake line '" << line
                 << "': " << hello.status().ToString();
    return false;
  }
  switch (hello->kind) {
    case HelloKind::kStats: {
      // Scrape request: answer with one line and close. WriteAll rides out
      // a full send buffer (polls for POLLOUT and resumes), so the scraper
      // always sees the complete line even through a tiny receive window.
      scrapes_.fetch_add(1);
      Status st = conn->stream.WriteAll(StatsLine());
      if (!st.ok()) DC_LOG(Debug) << "ingress STATS reply: " << st.ToString();
      return false;
    }
    case HelloKind::kSeq: {
      // Resume handshake: tell the sensor the highest sequence number the
      // ingest log has durably accepted for this stream (0 when logging is
      // off or nothing arrived yet), then close. Counted like a scrape so
      // a probe never reads as a completed sensor session.
      scrapes_.fetch_add(1);
      const uint64_t seq =
          ingest_log_ == nullptr ? 0 : ingest_log_->last_seq(log_stream_);
      Status st = conn->stream.WriteAll("SEQ " + std::to_string(seq) + "\n");
      if (!st.ok()) DC_LOG(Debug) << "ingress SEQ reply: " << st.ToString();
      return false;
    }
    case HelloKind::kSchema:
      break;
  }
  if (!(hello->schema == codec_.schema())) {
    DC_LOG(Warn) << "ingress: schema mismatch, got '" << line << "'";
    return false;
  }
  conn->handshaken = true;
  return true;
}

std::string TcpIngress::StatsLine() const {
  std::string out = "STATS";
  const auto field = [&out](const std::string& key, uint64_t v) {
    out += " " + key + "=" + std::to_string(v);
  };
  field("tuples_received", tuples_.load());
  field("tuples_dropped", dropped_.load());
  field("connections_accepted", accepted_.load());
  field("active_connections", active_.load());
  field("backpressure_engagements", bp_engaged_.load());
  field("backpressured", paused_.load() ? 1 : 0);
  if (ingest_log_ != nullptr) {
    const storage::IngestLog::Stats ls = ingest_log_->stats();
    field("log_records", ls.records);
    field("log_bytes", ls.bytes);
    field("log_last_seq", ingest_log_->last_seq(log_stream_));
  }
  for (const core::BasketPtr& b : receptor_->outputs()) {
    const core::Basket::Stats s = b->stats();
    const std::string prefix = "basket." + b->name() + ".";
    field(prefix + "rows", b->size());
    field(prefix + "appended", s.appended);
    field(prefix + "dropped", s.dropped);
    field(prefix + "credit_stalls", s.credit_stalls);
  }
  out += "\n";
  return out;
}

void TcpIngress::DecodeCount(const std::string& line, Table* batch) {
  Status st = codec_.DecodeInto(line, batch);
  if (st.ok()) {
    tuples_.fetch_add(1);
    m_tuples_->Increment();
  } else {
    // Structural validation failure: the tuple acts as if never sent (the
    // baskets' silent-filter semantics start at the adapter boundary), but
    // the operator can see it happened.
    dropped_.fetch_add(1);
    m_dropped_->Increment();
    DC_LOG(Debug) << "ingress dropping malformed tuple: " << st.ToString();
  }
}

bool TcpIngress::EngagePause() {
  // Set the flag first, then re-check: a consumer draining concurrently
  // either restores credit before the re-check (we unpause here) or fires
  // the basket listener after it saw paused_ == true (the self-pipe wakes
  // the poll loop). Either way no release is lost.
  const bool was_paused = paused_.exchange(true);
  if (receptor_->BackpressureReleased()) {
    paused_.store(false);
    return false;
  }
  if (!was_paused) {
    bp_engaged_.fetch_add(1);
    m_bp_engaged_->Increment();
    // Attribute the stall to the basket(s) that ran out of credit.
    receptor_->NoteCreditStall();
  }
  return true;
}

Result<std::unique_ptr<TcpEgress>> TcpEgress::Connect(const std::string& host,
                                                      uint16_t port) {
  ASSIGN_OR_RETURN(TcpStream stream, TcpStream::Connect(host, port));
  return std::unique_ptr<TcpEgress>(new TcpEgress(std::move(stream)));
}

core::Emitter::Sink TcpEgress::MakeSink() {
  return [this](const Table& batch) -> Status {
    if (!header_sent_) {
      Codec codec(batch.schema());
      RETURN_NOT_OK(stream_.WriteAll(codec.EncodeSchemaHeader() + "\n"));
      header_sent_ = true;
    }
    Codec codec(batch.schema());
    ASSIGN_OR_RETURN(std::string payload, codec.EncodeTable(batch));
    return stream_.WriteAll(payload);
  };
}

Status TcpEgress::Finish() { return stream_.ShutdownWrite(); }

}  // namespace datacell::net
