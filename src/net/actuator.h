#ifndef DATACELL_NET_ACTUATOR_H_
#define DATACELL_NET_ACTUATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/socket.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace datacell::net {

/// The actuator tool of §6.1: simulates a client terminal that subscribed
/// to a continuous query and waits for answers.
///
/// It listens on a TCP port, accepts one producer (the DataCell emitter, or
/// a sensor directly in the "without kernel" runs), reads tuples until EOF,
/// and measures per-tuple latency L(t) = D(t) - C(t), where C(t) is the
/// creation timestamp carried in the tuple's `tag` column and D(t) the
/// local receive time.
class Actuator {
 public:
  /// Latency lives in a full obs::Histogram (the per-instance
  /// latency_histogram() below); these fields are shims derived from its
  /// snapshot, kept so existing callers compile unchanged. The histogram's
  /// uint64 sum replaces the old raw `Micros latency_sum` accumulator,
  /// which could overflow on long runs; the shim saturates instead.
  struct Stats {
    uint64_t tuples = 0;
    Micros latency_sum = 0;  // saturated at INT64_MAX
    Micros latency_max = 0;
    /// D(t_first) and D(t_last): receive times of first and last tuple.
    Micros first_receive = 0;
    Micros last_receive = 0;
    /// C(t_1): creation time of the first tuple (for elapsed time E(b)).
    Micros first_created = 0;

    double MeanLatency() const { return mean_latency; }
    /// E(b) = D(t_k) - C(t_1), the paper's per-batch elapsed time.
    Micros Elapsed() const { return last_receive - first_created; }

    double mean_latency = 0;  // exact histogram mean (sum/count)
  };

  explicit Actuator(Clock* clock) : clock_(clock) {}
  ~Actuator();

  Actuator(const Actuator&) = delete;
  Actuator& operator=(const Actuator&) = delete;

  /// Binds (0 = ephemeral) and spawns the accept+read thread.
  Status Start(uint16_t port = 0);
  uint16_t port() const { return port_; }

  /// Blocks until the producer closes the connection.
  void WaitFinished();
  bool finished() const { return finished_.load(); }

  Stats stats() const;

  /// Full per-tuple L(t) = D(t) - C(t) distribution (p50/p95/p99/max).
  /// Per-instance — concurrent or sequential actuators do not share it —
  /// and lock-free to read while the read loop is still recording.
  obs::HistogramSnapshot latency_histogram() const {
    return latency_.Snapshot();
  }

 private:
  void ReadLoop();

  // clock_/listener_/port_/thread_ follow the lifecycle protocol: written
  // by Start() before the read thread exists, then read-only until the
  // destructor joins. latency_ is internally synchronized (lock-free
  // histogram). Only stats_ is shared mutable state, and it has mu_.
  Clock* clock_ DC_UNGUARDED;
  TcpListener listener_ DC_UNGUARDED;
  uint16_t port_ DC_UNGUARDED = 0;
  std::thread thread_ DC_UNGUARDED;
  std::atomic<bool> finished_{false};
  obs::Histogram latency_ DC_UNGUARDED;

  mutable Mutex mu_{LockRank::kActuator};
  Stats stats_ DC_GUARDED_BY(mu_);
};

}  // namespace datacell::net

#endif  // DATACELL_NET_ACTUATOR_H_
