#ifndef DATACELL_NET_WAKEUP_H_
#define DATACELL_NET_WAKEUP_H_

#include <atomic>
#include <functional>

#include "util/status.h"

namespace datacell::net {

/// Self-pipe wakeup channel shared by every reactor (the legacy poll(2)
/// ingress and each epoll shard): producers call Notify() to make the
/// reactor's next poll/epoll_wait return, the reactor calls Drain() when
/// the pipe's read end polls readable.
///
/// A `pending` flag dedups notifies so a storm of basket listeners writes
/// at most one byte per reactor round. The ordering contract is the subtle
/// part, and getting it wrong loses wakeups: the reactor must clear
/// `pending` *before* reading the pipe. Drain() clears the flag before
/// every read pass and keeps reading until a pass finds the pipe empty, so
/// any Notify() that was suppressed by `pending == true` happened before a
/// clear-then-read pass observed its byte — whereas the reverse order
/// (drain the pipe, then clear the flag) has a window where a concurrent
/// Notify() sees `pending == true`, skips the write, and the wakeup is
/// lost until the reactor's idle timeout. WakePipeLostWakeupRegression in
/// tests/net_test.cc provokes exactly that window through the drain hook.
class WakePipe {
 public:
  WakePipe() = default;
  ~WakePipe() { Close(); }

  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  /// Creates the pipe, both ends non-blocking: Drain() uses a read loop,
  /// and Notify() must never park a basket consumer on a full pipe.
  Status Open();
  void Close();
  bool valid() const { return read_fd_ >= 0; }

  /// The fd the reactor registers for POLLIN/EPOLLIN.
  int read_fd() const { return read_fd_; }

  /// Wakes the reactor. Returns true when this call made the wakeup
  /// observable (wrote a byte, or the pipe is full so a byte is already
  /// there); false when it was deduped against an earlier still-pending
  /// notify. Safe from any thread, including under a basket lock.
  bool Notify();

  /// Empties the pipe, clearing `pending` before each read pass (see class
  /// comment for why that order is load-bearing). Reactor thread only.
  void Drain();

  /// Test hook: invoked after every read(2) inside Drain(), i.e. inside
  /// the exact window where the historical drain-then-clear ordering lost
  /// concurrent notifies. Not thread-safe; install before Start()/Drain().
  void set_drain_hook_for_test(std::function<void()> hook) {
    drain_hook_ = std::move(hook);
  }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
  std::atomic<bool> pending_{false};
  std::function<void()> drain_hook_;
};

}  // namespace datacell::net

#endif  // DATACELL_NET_WAKEUP_H_
