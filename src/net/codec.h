#ifndef DATACELL_NET_CODEC_H_
#define DATACELL_NET_CODEC_H_

#include <string>

#include "column/table.h"
#include "util/status.h"

namespace datacell::net {

/// The DataCell interchange format (§3.1): a purposely simple textual
/// protocol for flat relational tuples. One tuple per line, fields
/// separated by '|'; SQL NULL spelled "\N" (a string whose value is the
/// word NULL encodes unescaped and stays a string); '\', '|' and newline
/// escaped in strings and field names. Doubles round-trip via %.17g.
class Codec {
 public:
  explicit Codec(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// "name:type|name:type" — sent once as a handshake header.
  std::string EncodeSchemaHeader() const;
  static Result<Schema> DecodeSchemaHeader(const std::string& line);

  /// Encodes row `i` of `table` (schemas must agree) without trailing
  /// newline.
  Result<std::string> EncodeRow(const Table& table, size_t i) const;
  /// Encodes all rows, one per line, each newline-terminated.
  Result<std::string> EncodeTable(const Table& table) const;

  /// Parses one tuple line into a Row matching the schema.
  Result<Row> DecodeRow(const std::string& line) const;
  /// Parses one tuple line and appends it to `out` (schema must match).
  Status DecodeInto(const std::string& line, Table* out) const;

 private:
  Schema schema_;
};

}  // namespace datacell::net

#endif  // DATACELL_NET_CODEC_H_
