#include "net/wakeup.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include "net/socket.h"

namespace datacell::net {

Status WakePipe::Open() {
  Close();
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    return Status::IOError("pipe: " + ErrnoString(errno));
  }
  read_fd_ = pipefd[0];
  write_fd_ = pipefd[1];
  ::fcntl(read_fd_, F_SETFL, ::fcntl(read_fd_, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(write_fd_, F_SETFL, ::fcntl(write_fd_, F_GETFL, 0) | O_NONBLOCK);
  pending_.store(false);
  return Status::OK();
}

void WakePipe::Close() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
  read_fd_ = write_fd_ = -1;
}

bool WakePipe::Notify() {
  if (pending_.exchange(true)) return false;
  const char byte = 0;
  ssize_t n = ::write(write_fd_, &byte, 1);
  // A full pipe (n < 0, EAGAIN) still means a byte is in flight, so the
  // wakeup is observable either way.
  (void)n;
  return true;
}

void WakePipe::Drain() {
  char buf[256];
  ssize_t n;
  do {
    // Clear-before-read: a Notify() suppressed by `pending == true` must
    // have written its byte before this pass's clear (Notify only skips
    // the write after winning the exchange), so the read below — or the
    // next pass, if the byte lands between read and loop exit — sees it.
    pending_.store(false);
    n = ::read(read_fd_, buf, sizeof(buf));
    if (drain_hook_) drain_hook_();
  } while (n > 0);
}

}  // namespace datacell::net
