#ifndef DATACELL_NET_GATEWAY_H_
#define DATACELL_NET_GATEWAY_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/basket.h"
#include "core/receptor.h"
#include "net/codec.h"
#include "net/socket.h"
#include "net/wakeup.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::storage {
class IngestLog;
}  // namespace datacell::storage

namespace datacell::net {

/// Kernel-side ingress: a single poll-based event loop that accepts and
/// multiplexes many concurrent sensor connections on one TCP port and
/// forwards their tuples into a core::Receptor. This is the network half of
/// the paper's receptor thread — it validates each event's structure (via
/// the codec) and pushes batches into the baskets.
///
/// Per connection, the first line must be the schema header and must match
/// the receptor's stream schema (connections failing the handshake are
/// dropped individually; the others keep streaming). Incoming bursts are
/// drained into Deliver() batches bounded by `max_batch_rows`.
///
/// Flow control: when any output basket declares a capacity bound
/// (Basket::SetCapacity), the reactor delivers at most the remaining credit
/// and stops reading from its sockets when credit reaches zero — TCP
/// push-back to the sensors instead of dropping — resuming once the baskets
/// drain to their low watermark (signalled through the basket listener
/// hooks). Basket::Disable() keeps its paper semantics: a disabled basket
/// still *drops*.
///
/// Scraping: a connection whose first line is `STATS` (instead of a schema
/// header) receives one key=value line of ingress and basket state and is
/// closed — `echo STATS | nc host port` monitors a live server without
/// touching the stream path.
///
/// Durability: with EnableIngestLog(), every delivered batch is first
/// appended (sequence-numbered) to the ingest log, so a crash after the
/// gateway accepted tuples can replay them on restart. A connection whose
/// first line is `SEQ` receives `SEQ <last_seq>\n` — the highest sequence
/// number the log has accepted for this stream — and is closed; a sensor
/// reconnecting after a server crash uses it to resume from the right
/// offset instead of re-sending (or skipping) tuples blindly.
class TcpIngress {
 public:
  TcpIngress(core::ReceptorPtr receptor, Codec codec, Clock* clock,
             size_t max_batch_rows = 1024, size_t max_connections = 256)
      : receptor_(std::move(receptor)),
        codec_(std::move(codec)),
        clock_(clock),
        max_batch_rows_(max_batch_rows == 0 ? 1 : max_batch_rows),
        max_connections_(max_connections == 0 ? 1 : max_connections) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    m_tuples_ = reg.GetCounter("gateway.tuples_received");
    m_dropped_ = reg.GetCounter("gateway.tuples_dropped");
    m_connections_ = reg.GetCounter("gateway.connections");
    m_bp_engaged_ = reg.GetCounter("gateway.backpressure_engagements");
  }
  ~TcpIngress();

  TcpIngress(const TcpIngress&) = delete;
  TcpIngress& operator=(const TcpIngress&) = delete;

  /// Installs the ingest log: every batch is appended to `log` under
  /// `stream` (empty = the first output basket's name) *before* it is
  /// delivered to the baskets — write-ahead, so nothing the engine saw is
  /// missing from the log. Call before Start(); the log must outlive the
  /// ingress.
  void EnableIngestLog(storage::IngestLog* log, std::string stream = "");

  /// Binds (port 0 = ephemeral) and spawns the reactor thread.
  Status Start(uint16_t port = 0);
  uint16_t port() const { return port_; }

  /// True once at least one sensor connected, every accepted connection has
  /// closed, and every decoded tuple has been delivered to the baskets
  /// (also set unconditionally when the reactor exits after Stop()).
  /// STATS scrape connections are excluded: a monitoring probe against an
  /// otherwise idle gateway never reads as a completed sensor session.
  bool finished() const { return finished_.load(); }

  uint64_t tuples_received() const { return tuples_.load(); }
  /// Malformed tuples rejected at the boundary (both the first-line and the
  /// burst-drain paths count here).
  uint64_t tuples_dropped() const { return dropped_.load(); }
  uint64_t connections_accepted() const { return accepted_.load(); }
  size_t active_connections() const { return active_.load(); }
  /// Times the credit valve closed (reads paused on all connections).
  uint64_t backpressure_engagements() const { return bp_engaged_.load(); }
  /// True while reads are paused waiting for the baskets to drain.
  bool backpressured() const { return paused_.load(); }

  /// Stops the reactor and joins it. Completes in bounded time even with
  /// connected-but-idle sensors: the loop is woken through a self-pipe, and
  /// every accepted stream is shut down on exit.
  void Stop();

 private:
  struct Conn {
    TcpStream stream;
    bool handshaken = false;
    bool eof = false;  // peer half-closed; buffered tail still drains
  };
  enum class Drain { kIdle, kPaused, kClose };

  void ReactorLoop();
  /// Accepts pending connections up to max_connections_.
  void AcceptPending();
  /// Reads/parses/delivers for one connection. False → remove it.
  bool PumpConn(Conn* conn);
  /// Parses buffered lines into credit-bounded batches and delivers them.
  Drain DrainBuffered(Conn* conn);
  /// Next complete line, including the torn EOF tail once the peer closed.
  std::optional<std::string> NextLine(Conn* conn);
  /// Validates the schema-header line; false → drop the connection. A
  /// `STATS` first line is answered with StatsLine() and also closes.
  bool Handshake(Conn* conn, const std::string& line);
  /// One-line key=value snapshot of ingress counters and per-basket depth.
  std::string StatsLine() const;
  /// Decodes one tuple line into `batch`, counting received vs dropped.
  void DecodeCount(const std::string& line, Table* batch);
  /// Closes the credit valve; returns false if credit reappeared (raced
  /// with a consumer) and reading may continue.
  bool EngagePause();

  core::ReceptorPtr receptor_;
  Codec codec_;
  Clock* clock_;
  size_t max_batch_rows_;
  size_t max_connections_;
  // Optional write-ahead ingest log (null = logging off). Only the reactor
  // thread appends, so no extra synchronization beyond the log's own.
  storage::IngestLog* ingest_log_ = nullptr;
  std::string log_stream_;

  TcpListener listener_;
  uint16_t port_ = 0;
  // Self-pipe: basket listeners / Stop() -> poll loop. Owns the
  // lost-wakeup-free notify/drain ordering (see net/wakeup.h).
  WakePipe wake_;
  std::thread thread_;
  std::vector<std::unique_ptr<Conn>> conns_;
  // Listener registrations on the receptor's output baskets, undone in
  // Stop() (they capture `this`).
  std::vector<std::pair<core::BasketPtr, size_t>> subscriptions_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> tuples_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> accepted_{0};
  // STATS scrape connections answered; accepted_ - scrapes_ is the data
  // session count the finished() logic watches.
  std::atomic<uint64_t> scrapes_{0};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> bp_engaged_{0};
  // Registry mirrors (gateway.*), resolved in the constructor.
  obs::Counter* m_tuples_;
  obs::Counter* m_dropped_;
  obs::Counter* m_connections_;
  obs::Counter* m_bp_engaged_;
};

/// Kernel-side egress: connects to an actuator and provides an
/// Emitter::Sink that serializes result batches onto the socket. The
/// schema header is written on the first batch.
class TcpEgress {
 public:
  static Result<std::unique_ptr<TcpEgress>> Connect(const std::string& host,
                                                    uint16_t port);

  /// The sink to install into a core::Emitter. Not thread-safe across
  /// emitters; use one egress per emitter.
  core::Emitter::Sink MakeSink();

  /// Signals EOF to the actuator.
  Status Finish();

 private:
  explicit TcpEgress(TcpStream stream) : stream_(std::move(stream)) {}

  TcpStream stream_;
  bool header_sent_ = false;
};

}  // namespace datacell::net

#endif  // DATACELL_NET_GATEWAY_H_
