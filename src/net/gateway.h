#ifndef DATACELL_NET_GATEWAY_H_
#define DATACELL_NET_GATEWAY_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "core/receptor.h"
#include "net/codec.h"
#include "net/socket.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::net {

/// Kernel-side ingress: accepts one sensor connection on a TCP port and
/// forwards its tuples into a core::Receptor. This is the network half of
/// the paper's receptor thread — it validates each event's structure (via
/// the codec) and pushes batches into the baskets.
///
/// The first line from the sensor must be the schema header and must match
/// the receptor's stream schema. Incoming bursts are drained into a single
/// Deliver() batch, bounded by `max_batch_rows`.
class TcpIngress {
 public:
  TcpIngress(core::ReceptorPtr receptor, Codec codec, Clock* clock,
             size_t max_batch_rows = 1024)
      : receptor_(std::move(receptor)),
        codec_(std::move(codec)),
        clock_(clock),
        max_batch_rows_(max_batch_rows) {}
  ~TcpIngress();

  TcpIngress(const TcpIngress&) = delete;
  TcpIngress& operator=(const TcpIngress&) = delete;

  /// Binds (port 0 = ephemeral) and spawns the accept+read thread.
  Status Start(uint16_t port = 0);
  uint16_t port() const { return port_; }

  /// True once the sensor closed its connection and every tuple has been
  /// delivered to the baskets.
  bool finished() const { return finished_.load(); }
  uint64_t tuples_received() const { return tuples_.load(); }

  /// Joins the reader thread (closes the listener if still waiting).
  void Stop();

 private:
  void ReadLoop();

  core::ReceptorPtr receptor_;
  Codec codec_;
  Clock* clock_;
  size_t max_batch_rows_;

  TcpListener listener_;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> finished_{false};
  std::atomic<uint64_t> tuples_{0};
};

/// Kernel-side egress: connects to an actuator and provides an
/// Emitter::Sink that serializes result batches onto the socket. The
/// schema header is written on the first batch.
class TcpEgress {
 public:
  static Result<std::unique_ptr<TcpEgress>> Connect(const std::string& host,
                                                    uint16_t port);

  /// The sink to install into a core::Emitter. Not thread-safe across
  /// emitters; use one egress per emitter.
  core::Emitter::Sink MakeSink();

  /// Signals EOF to the actuator.
  Status Finish();

 private:
  explicit TcpEgress(TcpStream stream) : stream_(std::move(stream)) {}

  TcpStream stream_;
  bool header_sent_ = false;
};

}  // namespace datacell::net

#endif  // DATACELL_NET_GATEWAY_H_
