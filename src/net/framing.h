#ifndef DATACELL_NET_FRAMING_H_
#define DATACELL_NET_FRAMING_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "column/table.h"
#include "util/status.h"

namespace datacell::net {

/// Byte-stream framing for the line protocol (§3.1): accumulates arbitrary
/// received chunks and yields complete '\n'-terminated lines (newline
/// stripped). This is the single implementation behind TcpStream's
/// buffered-line helpers and the gateway reactor, and it is fuzzed directly
/// (tests/fuzz/fuzz_gateway_framing) — keep it free of socket concerns.
///
/// Consumption uses a logical head offset with amortized compaction, so
/// popping N lines out of a large burst is O(bytes), not O(lines * bytes).
class LineFramer {
 public:
  /// Appends received bytes to the buffer.
  void Append(std::string_view data);

  /// Extracts the next complete line, or nullopt when none is buffered.
  std::optional<std::string> NextLine();

  /// Drains whatever trails the last newline — the torn partial line a
  /// peer leaves behind when it disconnects mid-tuple. Empties the buffer.
  std::string TakeRemainder();

  /// Bytes buffered but not yet returned.
  size_t buffered() const { return buffer_.size() - head_; }

 private:
  std::string buffer_;
  size_t head_ = 0;  // consumed prefix, compacted once it dominates
};

/// What the first line of an ingress connection asked for.
enum class HelloKind {
  kStats,   // "STATS": answer with one stats line, close
  kSeq,     // "SEQ": answer with the stream's last logged seq, close
  kSchema,  // a schema header: validate and start streaming tuples
};

struct Hello {
  HelloKind kind = HelloKind::kSchema;
  Schema schema;  // decoded header; meaningful only for kSchema
};

/// Classifies and decodes the handshake line of the gateway protocol. A
/// line that is neither a control word nor a well-formed schema header is a
/// ParseError (the gateway drops such connections individually).
Result<Hello> ParseHello(const std::string& line);

}  // namespace datacell::net

#endif  // DATACELL_NET_FRAMING_H_
