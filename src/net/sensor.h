#ifndef DATACELL_NET_SENSOR_H_
#define DATACELL_NET_SENSOR_H_

#include <cstdint>
#include <string>

#include "column/table.h"
#include "net/codec.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::net {

/// The sensor tool of §6.1: a client that continuously creates new tuples
/// and ships them to the DataCell (or directly to an actuator) over TCP.
///
/// Each tuple is (tag timestamp, payload int): `tag` is the creation time
/// C(t) stamped by the sensor, `payload` a random integer — exactly the
/// two-column stream of the micro-benchmarks.
class Sensor {
 public:
  struct Options {
    uint64_t num_tuples = 100'000;
    /// Payload values are uniform in [0, payload_range).
    int64_t payload_range = 10'000;
    uint64_t seed = 42;
    /// Tuples per socket write (1 = a write per event, the worst case).
    size_t tuples_per_write = 64;
    /// Optional pacing: sleep this long between writes (0 = full speed).
    Micros write_interval = 0;
  };

  /// The stream schema the sensor emits.
  static Schema StreamSchema();

  /// Connects to host:port and streams Options::num_tuples tuples, sending
  /// the schema header first and half-closing the socket when done. C(t)
  /// timestamps come from `clock` (use SystemClock for real latency
  /// measurements). Blocks until everything is written.
  static Status Run(const std::string& host, uint16_t port,
                    const Options& options, Clock* clock);
};

}  // namespace datacell::net

#endif  // DATACELL_NET_SENSOR_H_
