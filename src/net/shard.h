#ifndef DATACELL_NET_SHARD_H_
#define DATACELL_NET_SHARD_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/basket.h"
#include "core/receptor.h"
#include "net/codec.h"
#include "net/socket.h"
#include "net/wakeup.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace datacell::storage {
class IngestLog;
}  // namespace datacell::storage

namespace datacell::net {

/// Options for the sharded gateway. `max_connections` bounds the whole
/// ingress (all shards together); the acceptor stops polling the listener
/// while at the bound and resumes as connections close.
struct ShardedIngressOptions {
  size_t num_shards = 1;
  size_t max_batch_rows = 1024;
  size_t max_connections = 100'000;
};

/// Sharded kernel-side ingress: the million-client replacement for the
/// single poll(2) TcpIngress. One dedicated acceptor thread accepts on the
/// listening port and routes each new connection to a shard by fd hash
/// (fd % num_shards); every shard runs its own epoll(7) reactor thread
/// owning exactly its partition of connections, delivering into its own
/// receptor (and thus its own per-shard bounded basket) with independent
/// credit/watermark backpressure. Handoff is a per-shard inbox plus a
/// per-shard wake pipe (net/wakeup.h — the lost-wakeup-free ordering).
///
/// Why epoll: poll(2) rescans every registered fd per round, so with 10k
/// mostly-idle sensors each round pays O(connections) before any tuple is
/// parsed. epoll_wait returns only the ready fds, making a round
/// O(ready) — that is the structural win the sharded bench measures.
///
/// Backpressure is per shard: when a shard's receptor runs out of credit,
/// only that shard disarms its handshaken connections (EPOLL_CTL_MOD to an
/// empty event mask — level-triggered epoll would otherwise spin on the
/// unread sockets); sibling shards keep streaming. The shard's basket
/// listeners poke its wake pipe when the drain reaches the low watermark.
///
/// Protocol is identical to TcpIngress (schema handshake, STATS, SEQ), so
/// sensors cannot tell the two apart. STATS answers with gateway-wide
/// aggregates plus per-shard fields; SEQ answers with the *sum* of the
/// per-shard ingest-log stream sequence numbers — a reconnecting sensor's
/// fd almost always rehashes to a different shard, and the logical
/// stream's accepted count is the across-shard total, not whichever
/// shard's stream the probe happened to land on.
///
/// Cross-partition queries re-join the per-shard baskets through the
/// explicit merge transition (core/merge.h), which consumes partitions in
/// fixed shard order to preserve the byte-identity determinism contract.
class ShardedIngress {
 public:
  /// One receptor per shard, in shard order; `shard_receptors.size()`
  /// overrides opts.num_shards. Each receptor normally feeds that shard's
  /// dedicated bounded basket.
  ShardedIngress(std::vector<core::ReceptorPtr> shard_receptors, Codec codec,
                 Clock* clock, ShardedIngressOptions opts = {});
  ~ShardedIngress();

  ShardedIngress(const ShardedIngress&) = delete;
  ShardedIngress& operator=(const ShardedIngress&) = delete;

  /// Write-ahead ingest logging, one stream per shard named after the
  /// shard receptor's first output basket (so restart replay re-feeds the
  /// per-shard baskets directly). Call before Start(); the log is
  /// internally synchronized, so all shards share it safely.
  void EnableIngestLog(storage::IngestLog* log);

  /// Binds (port 0 = ephemeral), spawns the acceptor and one reactor
  /// thread per shard, and registers with ShardRegistry (dc_shards).
  Status Start(uint16_t port = 0);
  uint16_t port() const { return port_; }

  /// Stops acceptor and shards, joins them, closes every connection.
  void Stop();

  /// Same contract as TcpIngress::finished(): at least one data (non-probe)
  /// session was accepted, every accepted connection has closed, and every
  /// decoded tuple reached the baskets.
  bool finished() const;

  size_t num_shards() const { return shards_.size(); }
  uint64_t tuples_received() const;
  uint64_t tuples_dropped() const;
  uint64_t connections_accepted() const { return accepted_.load(); }
  size_t active_connections() const;
  uint64_t backpressure_engagements() const;
  /// True while any shard's credit valve is closed.
  bool backpressured() const;

  /// Per-shard snapshot for dc_shards and the fault-injection tests.
  struct ShardStats {
    uint64_t connections = 0;  // routed to this shard, lifetime
    uint64_t active = 0;
    uint64_t tuples = 0;
    uint64_t dropped = 0;
    uint64_t credit_stalls = 0;  // summed over the shard's output baskets
    uint64_t backpressure_engagements = 0;
    bool backpressured = false;
  };
  ShardStats shard_stats(size_t shard) const;

 private:
  class Shard;

  void AcceptorLoop();
  /// Aggregate STATS reply (gateway totals + shards=N + per-shard tuples).
  std::string StatsLine() const;
  /// Sum of per-shard ingest-log stream sequence numbers (the SEQ reply).
  uint64_t TotalLoggedSeq() const;

  Codec codec_;
  Clock* clock_;
  ShardedIngressOptions opts_;
  storage::IngestLog* ingest_log_ = nullptr;

  TcpListener listener_;
  uint16_t port_ = 0;
  WakePipe accept_wake_;  // Stop() -> acceptor poll loop
  std::thread acceptor_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> scrapes_{0};
  // Registry mirrors (gateway.*), shared with TcpIngress's metric names so
  // dashboards see one ingress surface.
  obs::Counter* m_tuples_;
  obs::Counter* m_dropped_;
  obs::Counter* m_connections_;
  obs::Counter* m_bp_engaged_;
};

/// Process-global list of live sharded ingresses — the dc_shards virtual
/// table walks it (same shape as storage::StorageRegistry for dc_storage).
/// Start() registers, Stop() unregisters.
class ShardRegistry {
 public:
  static ShardRegistry& Global();

  void Register(ShardedIngress* ingress);
  void Unregister(ShardedIngress* ingress);
  std::vector<ShardedIngress*> Ingresses() const;

 private:
  mutable Mutex mu_{LockRank::kActuator};
  std::vector<ShardedIngress*> list_ DC_GUARDED_BY(mu_);
};

}  // namespace datacell::net

#endif  // DATACELL_NET_SHARD_H_
