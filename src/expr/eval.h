#ifndef DATACELL_EXPR_EVAL_H_
#define DATACELL_EXPR_EVAL_H_

#include <map>
#include <string>

#include "column/table.h"
#include "expr/expr.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell {

/// Ambient state for expression evaluation.
struct EvalContext {
  /// Value of now() — injected so queries are deterministic under the
  /// simulated clock.
  Micros now = 0;
  /// Session variables (SQL `declare`/`set`); consulted when a column name
  /// does not resolve against the input schema. May be null.
  const std::map<std::string, Value>* variables = nullptr;
};

/// Evaluates an expression with no column references (literals, variables,
/// now(), arithmetic over them) to a single Value.
Result<Value> EvalConst(const Expr& expr, const EvalContext& ctx);

/// Evaluates a scalar expression over every row of `table`, producing a
/// column of `table.num_rows()` results.
Result<Column> EvalScalar(const Table& table, const Expr& expr,
                          const EvalContext& ctx);

/// Evaluates a boolean predicate and returns the ascending row positions
/// where it is true (nulls are not matched). Fast paths exist for
/// column-vs-constant comparisons and conjunctions of them, mirroring a
/// column kernel's select/refine pattern.
Result<SelVector> EvalPredicate(const Table& table, const Expr& expr,
                                const EvalContext& ctx);

/// As EvalPredicate, but only considers the rows in `candidates`
/// (ascending); returns the qualifying subset, still ascending.
Result<SelVector> EvalPredicateOn(const Table& table, const Expr& expr,
                                  const SelVector& candidates,
                                  const EvalContext& ctx);

}  // namespace datacell

#endif  // DATACELL_EXPR_EVAL_H_
