#include "expr/eval.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "ops/kernels.h"
#include "util/logging.h"
#include "util/simd.h"

namespace datacell {

namespace {

// ---------------------------------------------------------------------------
// Constant evaluation
// ---------------------------------------------------------------------------

Result<Value> ConstBinary(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (l.is_int() && r.is_int()) {
        int64_t a = l.int_value(), b = r.int_value();
        switch (op) {
          case BinaryOp::kAdd:
            return Value(a + b);
          case BinaryOp::kSub:
            return Value(a - b);
          case BinaryOp::kMul:
            return Value(a * b);
          case BinaryOp::kDiv:
            if (b == 0) return Value::Null();
            return Value(a / b);
          case BinaryOp::kMod:
            if (b == 0) return Value::Null();
            return Value(a % b);
          default:
            break;
        }
      }
      ASSIGN_OR_RETURN(double a, l.AsDouble());
      ASSIGN_OR_RETURN(double b, r.AsDouble());
      switch (op) {
        case BinaryOp::kAdd:
          return Value(a + b);
        case BinaryOp::kSub:
          return Value(a - b);
        case BinaryOp::kMul:
          return Value(a * b);
        case BinaryOp::kDiv:
          if (b == 0) return Value::Null();
          return Value(a / b);
        case BinaryOp::kMod:
          if (b == 0) return Value::Null();
          return Value(std::fmod(a, b));
        default:
          break;
      }
      return Status::Internal("unreachable");
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      int cmp = 0;
      if (l.is_string() && r.is_string()) {
        cmp = l.string_value().compare(r.string_value());
      } else if (l.is_bool() && r.is_bool()) {
        cmp = static_cast<int>(l.bool_value()) - static_cast<int>(r.bool_value());
      } else {
        ASSIGN_OR_RETURN(double a, l.AsDouble());
        ASSIGN_OR_RETURN(double b, r.AsDouble());
        cmp = (a < b) ? -1 : (a > b ? 1 : 0);
      }
      switch (op) {
        case BinaryOp::kEq:
          return Value(cmp == 0);
        case BinaryOp::kNe:
          return Value(cmp != 0);
        case BinaryOp::kLt:
          return Value(cmp < 0);
        case BinaryOp::kLe:
          return Value(cmp <= 0);
        case BinaryOp::kGt:
          return Value(cmp > 0);
        case BinaryOp::kGe:
          return Value(cmp >= 0);
        default:
          break;
      }
      return Status::Internal("unreachable");
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      if (!l.is_bool() || !r.is_bool()) {
        return Status::TypeMismatch("logical op on non-bool constants");
      }
      return Value(op == BinaryOp::kAnd ? (l.bool_value() && r.bool_value())
                                        : (l.bool_value() || r.bool_value()));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<Value> EvalConst(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (ctx.variables != nullptr) {
        auto it = ctx.variables->find(expr.column);
        if (it != ctx.variables->end()) return it->second;
      }
      return Status::BindError("'" + expr.column +
                               "' is not a constant or session variable");
    }
    case ExprKind::kBinary: {
      ASSIGN_OR_RETURN(Value l, EvalConst(*expr.children[0], ctx));
      ASSIGN_OR_RETURN(Value r, EvalConst(*expr.children[1], ctx));
      return ConstBinary(expr.bop, l, r);
    }
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(Value v, EvalConst(*expr.children[0], ctx));
      if (v.is_null()) return Value::Null();
      if (expr.uop == UnaryOp::kNot) {
        if (!v.is_bool()) return Status::TypeMismatch("NOT on non-bool");
        return Value(!v.bool_value());
      }
      if (v.is_int()) return Value(-v.int_value());
      if (v.is_double()) return Value(-v.double_value());
      return Status::TypeMismatch("unary minus on non-numeric");
    }
    case ExprKind::kCall: {
      if (expr.func == "now") return Value(ctx.now);
      std::vector<Value> args;
      for (const ExprPtr& c : expr.children) {
        ASSIGN_OR_RETURN(Value v, EvalConst(*c, ctx));
        args.push_back(std::move(v));
      }
      if (expr.func == "abs" && args.size() == 1) {
        if (args[0].is_null()) return Value::Null();
        if (args[0].is_int()) {
          return Value(static_cast<int64_t>(std::llabs(args[0].int_value())));
        }
        if (args[0].is_double()) return Value(std::fabs(args[0].double_value()));
        return Status::TypeMismatch("abs on non-numeric");
      }
      if (expr.func == "length" && args.size() == 1) {
        if (args[0].is_null()) return Value::Null();
        if (!args[0].is_string()) return Status::TypeMismatch("length on non-string");
        return Value(static_cast<int64_t>(args[0].string_value().size()));
      }
      if ((expr.func == "least" || expr.func == "greatest") && args.size() == 2) {
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        ASSIGN_OR_RETURN(Value cmp, ConstBinary(BinaryOp::kLt, args[0], args[1]));
        bool first = cmp.bool_value() == (expr.func == "least");
        return first ? args[0] : args[1];
      }
      if (expr.func == "cast_int" && args.size() == 1) {
        return args[0].CastTo(DataType::kInt64);
      }
      if (expr.func == "cast_double" && args.size() == 1) {
        return args[0].CastTo(DataType::kDouble);
      }
      return Status::BindError("unknown function '" + expr.func + "'");
    }
    case ExprKind::kIsNull: {
      ASSIGN_OR_RETURN(Value v, EvalConst(*expr.children[0], ctx));
      return Value(expr.negated ? !v.is_null() : v.is_null());
    }
  }
  return Status::Internal("unreachable");
}

namespace {

// ---------------------------------------------------------------------------
// Vectorized evaluation
// ---------------------------------------------------------------------------

// Either borrows a column from the input table (column refs) or owns a
// freshly computed one. Avoids copying table columns during recursion.
class Handle {
 public:
  explicit Handle(const Column* borrowed) : borrowed_(borrowed) {}
  explicit Handle(Column owned)
      : borrowed_(nullptr), owned_(std::move(owned)) {}

  const Column& get() const { return borrowed_ ? *borrowed_ : *owned_; }

  Column ToOwned() && {
    if (borrowed_) return *borrowed_;  // copy
    return std::move(*owned_);
  }

 private:
  const Column* borrowed_;
  std::optional<Column> owned_;
};

Result<Handle> EvalRec(const Table& table, const Expr& expr,
                       const EvalContext& ctx);

// Broadcasts a constant to an n-row column. Type is derived from the value;
// integer constants become kInt64.
Result<Column> Broadcast(const Value& v, size_t n) {
  DataType t = DataType::kInt64;
  if (v.is_double()) t = DataType::kDouble;
  if (v.is_bool()) t = DataType::kBool;
  if (v.is_string()) t = DataType::kString;
  Column c(t);
  for (size_t i = 0; i < n; ++i) {
    RETURN_NOT_OK(c.AppendValue(v));
  }
  return c;
}

// Numeric view: reads row i of a column as double; caller checked type.
inline double NumAt(const Column& c, size_t i) {
  if (c.type() == DataType::kDouble) return c.doubles()[i];
  return static_cast<double>(c.ints()[i]);
}

bool BothInt(const Column& a, const Column& b) {
  return a.type() != DataType::kDouble && b.type() != DataType::kDouble &&
         a.type() != DataType::kString && b.type() != DataType::kString &&
         a.type() != DataType::kBool && b.type() != DataType::kBool;
}

Result<Column> EvalArith(BinaryOp op, const Column& l, const Column& r) {
  const size_t n = l.size();
  if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
    return Status::TypeMismatch("arithmetic on non-numeric columns");
  }
  const bool any_null = l.has_nulls() || r.has_nulls();
  if (BothInt(l, r)) {
    DataType out_t = (l.type() == DataType::kTimestamp ||
                      r.type() == DataType::kTimestamp)
                         ? DataType::kTimestamp
                         : DataType::kInt64;
    Column out(out_t);
    out.ints().reserve(n);
    const auto& a = l.ints();
    const auto& b = r.ints();
    for (size_t i = 0; i < n; ++i) {
      if (any_null && (!l.IsValid(i) || !r.IsValid(i))) {
        out.AppendNull();
        continue;
      }
      int64_t v = 0;
      switch (op) {
        case BinaryOp::kAdd:
          v = a[i] + b[i];
          break;
        case BinaryOp::kSub:
          v = a[i] - b[i];
          break;
        case BinaryOp::kMul:
          v = a[i] * b[i];
          break;
        case BinaryOp::kDiv:
          if (b[i] == 0) {
            out.AppendNull();
            continue;
          }
          v = a[i] / b[i];
          break;
        case BinaryOp::kMod:
          if (b[i] == 0) {
            out.AppendNull();
            continue;
          }
          v = a[i] % b[i];
          break;
        default:
          return Status::Internal("not an arithmetic op");
      }
      out.AppendInt(v);
    }
    return out;
  }
  Column out(DataType::kDouble);
  out.doubles().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (any_null && (!l.IsValid(i) || !r.IsValid(i))) {
      out.AppendNull();
      continue;
    }
    double a = NumAt(l, i), b = NumAt(r, i);
    double v = 0;
    switch (op) {
      case BinaryOp::kAdd:
        v = a + b;
        break;
      case BinaryOp::kSub:
        v = a - b;
        break;
      case BinaryOp::kMul:
        v = a * b;
        break;
      case BinaryOp::kDiv:
        if (b == 0) {
          out.AppendNull();
          continue;
        }
        v = a / b;
        break;
      case BinaryOp::kMod:
        if (b == 0) {
          out.AppendNull();
          continue;
        }
        v = std::fmod(a, b);
        break;
      default:
        return Status::Internal("not an arithmetic op");
    }
    out.AppendDouble(v);
  }
  return out;
}

// -1 / 0 / +1 three-way compare of row i across two columns of compatible
// types. Caller must ensure both rows are valid.
Result<int> CompareRow(const Column& l, size_t i, const Column& r, size_t j) {
  if (l.type() == DataType::kString || r.type() == DataType::kString) {
    if (l.type() != DataType::kString || r.type() != DataType::kString) {
      return Status::TypeMismatch("comparing string with non-string");
    }
    return l.strings()[i].compare(r.strings()[j]);
  }
  if (l.type() == DataType::kBool || r.type() == DataType::kBool) {
    if (l.type() != DataType::kBool || r.type() != DataType::kBool) {
      return Status::TypeMismatch("comparing bool with non-bool");
    }
    return static_cast<int>(l.bools()[i]) - static_cast<int>(r.bools()[j]);
  }
  double a = NumAt(l, i), b = NumAt(r, j);
  return a < b ? -1 : (a > b ? 1 : 0);
}

bool CmpMatches(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    case BinaryOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

Result<Column> EvalCompare(BinaryOp op, const Column& l, const Column& r) {
  const size_t n = l.size();
  Column out(DataType::kBool);
  out.bools().reserve(n);
  const bool any_null = l.has_nulls() || r.has_nulls();
  for (size_t i = 0; i < n; ++i) {
    if (any_null && (!l.IsValid(i) || !r.IsValid(i))) {
      // SQL: comparison with NULL is unknown; we fold unknown to false.
      out.AppendBool(false);
      continue;
    }
    ASSIGN_OR_RETURN(int cmp, CompareRow(l, i, r, i));
    out.AppendBool(CmpMatches(op, cmp));
  }
  return out;
}

Result<Column> EvalLogical(BinaryOp op, const Column& l, const Column& r) {
  if (l.type() != DataType::kBool || r.type() != DataType::kBool) {
    return Status::TypeMismatch("logical op on non-bool columns");
  }
  const size_t n = l.size();
  Column out(DataType::kBool);
  out.bools().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Null booleans participate as false.
    bool a = l.IsValid(i) && l.bools()[i] != 0;
    bool b = r.IsValid(i) && r.bools()[i] != 0;
    out.AppendBool(op == BinaryOp::kAnd ? (a && b) : (a || b));
  }
  return out;
}

Result<Column> EvalCall(const Table& table, const Expr& expr,
                        const EvalContext& ctx) {
  const size_t n = table.num_rows();
  if (expr.func == "now") {
    Column out(DataType::kTimestamp);
    out.ints().assign(n, ctx.now);
    return out;
  }
  std::vector<Column> args;
  for (const ExprPtr& c : expr.children) {
    ASSIGN_OR_RETURN(Handle h, EvalRec(table, *c, ctx));
    args.push_back(std::move(h).ToOwned());
  }
  if (expr.func == "abs" && args.size() == 1) {
    Column& a = args[0];
    if (a.type() == DataType::kDouble) {
      Column out(DataType::kDouble);
      for (size_t i = 0; i < n; ++i) {
        if (!a.IsValid(i)) {
          out.AppendNull();
        } else {
          out.AppendDouble(std::fabs(a.doubles()[i]));
        }
      }
      return out;
    }
    if (IsIntegerPhysical(a.type())) {
      Column out(a.type());
      for (size_t i = 0; i < n; ++i) {
        if (!a.IsValid(i)) {
          out.AppendNull();
        } else {
          out.AppendInt(std::llabs(a.ints()[i]));
        }
      }
      return out;
    }
    return Status::TypeMismatch("abs on non-numeric column");
  }
  if (expr.func == "length" && args.size() == 1) {
    if (args[0].type() != DataType::kString) {
      return Status::TypeMismatch("length on non-string column");
    }
    Column out(DataType::kInt64);
    for (size_t i = 0; i < n; ++i) {
      if (!args[0].IsValid(i)) {
        out.AppendNull();
      } else {
        out.AppendInt(static_cast<int64_t>(args[0].strings()[i].size()));
      }
    }
    return out;
  }
  if ((expr.func == "least" || expr.func == "greatest") && args.size() == 2) {
    const Column& a = args[0];
    const Column& b = args[1];
    const bool want_less = expr.func == "least";
    Column out(a.type() == DataType::kDouble || b.type() == DataType::kDouble
                   ? DataType::kDouble
                   : a.type());
    for (size_t i = 0; i < n; ++i) {
      if (!a.IsValid(i) || !b.IsValid(i)) {
        out.AppendNull();
        continue;
      }
      ASSIGN_OR_RETURN(int cmp, CompareRow(a, i, b, i));
      const Column& pick = (cmp < 0) == want_less ? a : b;
      RETURN_NOT_OK(out.AppendValue(pick.GetValue(i)));
    }
    return out;
  }
  if (expr.func == "cast_int" && args.size() == 1) {
    Column out(DataType::kInt64);
    for (size_t i = 0; i < n; ++i) {
      if (!args[0].IsValid(i)) {
        out.AppendNull();
        continue;
      }
      ASSIGN_OR_RETURN(Value v, args[0].GetValue(i).CastTo(DataType::kInt64));
      RETURN_NOT_OK(out.AppendValue(v));
    }
    return out;
  }
  if (expr.func == "cast_double" && args.size() == 1) {
    Column out(DataType::kDouble);
    for (size_t i = 0; i < n; ++i) {
      if (!args[0].IsValid(i)) {
        out.AppendNull();
        continue;
      }
      ASSIGN_OR_RETURN(Value v, args[0].GetValue(i).CastTo(DataType::kDouble));
      RETURN_NOT_OK(out.AppendValue(v));
    }
    return out;
  }
  return Status::BindError("unknown function '" + expr.func + "'");
}

Result<Handle> EvalRec(const Table& table, const Expr& expr,
                       const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      ASSIGN_OR_RETURN(Column c, Broadcast(expr.literal, table.num_rows()));
      return Handle(std::move(c));
    }
    case ExprKind::kColumnRef: {
      int idx = table.schema().FindField(expr.column);
      if (idx >= 0) return Handle(&table.column(static_cast<size_t>(idx)));
      if (ctx.variables != nullptr) {
        auto it = ctx.variables->find(expr.column);
        if (it != ctx.variables->end()) {
          ASSIGN_OR_RETURN(Column c, Broadcast(it->second, table.num_rows()));
          return Handle(std::move(c));
        }
      }
      return Status::BindError("unknown column '" + expr.column + "'");
    }
    case ExprKind::kBinary: {
      ASSIGN_OR_RETURN(Handle l, EvalRec(table, *expr.children[0], ctx));
      ASSIGN_OR_RETURN(Handle r, EvalRec(table, *expr.children[1], ctx));
      switch (expr.bop) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          ASSIGN_OR_RETURN(Column c, EvalArith(expr.bop, l.get(), r.get()));
          return Handle(std::move(c));
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          ASSIGN_OR_RETURN(Column c, EvalCompare(expr.bop, l.get(), r.get()));
          return Handle(std::move(c));
        }
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          ASSIGN_OR_RETURN(Column c, EvalLogical(expr.bop, l.get(), r.get()));
          return Handle(std::move(c));
        }
      }
      return Status::Internal("unreachable");
    }
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(Handle v, EvalRec(table, *expr.children[0], ctx));
      const Column& c = v.get();
      const size_t n = c.size();
      if (expr.uop == UnaryOp::kNot) {
        if (c.type() != DataType::kBool) {
          return Status::TypeMismatch("NOT on non-bool column");
        }
        Column out(DataType::kBool);
        for (size_t i = 0; i < n; ++i) {
          if (!c.IsValid(i)) {
            out.AppendNull();
          } else {
            out.AppendBool(c.bools()[i] == 0);
          }
        }
        return Handle(std::move(out));
      }
      if (c.type() == DataType::kDouble) {
        Column out(DataType::kDouble);
        for (size_t i = 0; i < n; ++i) {
          if (!c.IsValid(i)) {
            out.AppendNull();
          } else {
            out.AppendDouble(-c.doubles()[i]);
          }
        }
        return Handle(std::move(out));
      }
      if (IsIntegerPhysical(c.type())) {
        Column out(c.type());
        for (size_t i = 0; i < n; ++i) {
          if (!c.IsValid(i)) {
            out.AppendNull();
          } else {
            out.AppendInt(-c.ints()[i]);
          }
        }
        return Handle(std::move(out));
      }
      return Status::TypeMismatch("unary minus on non-numeric column");
    }
    case ExprKind::kCall: {
      ASSIGN_OR_RETURN(Column c, EvalCall(table, expr, ctx));
      return Handle(std::move(c));
    }
    case ExprKind::kIsNull: {
      ASSIGN_OR_RETURN(Handle v, EvalRec(table, *expr.children[0], ctx));
      const Column& c = v.get();
      Column out(DataType::kBool);
      for (size_t i = 0; i < c.size(); ++i) {
        bool isnull = !c.IsValid(i);
        out.AppendBool(expr.negated ? !isnull : isnull);
      }
      return Handle(std::move(out));
    }
  }
  return Status::Internal("unreachable");
}

// ---------------------------------------------------------------------------
// Predicate fast paths
// ---------------------------------------------------------------------------

// Is this a comparison of a bare column against a constant expression?
// Returns the comparison with the column always on the left.
struct ColConstCmp {
  const Column* column;
  BinaryOp op;
  Value constant;
};

BinaryOp FlipCmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

bool IsConstExpr(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef:
      return ctx.variables != nullptr && ctx.variables->count(e.column) > 0;
    case ExprKind::kCall:
      if (e.func != "now" && e.func != "abs" && e.func != "least" &&
          e.func != "greatest" && e.func != "cast_int" &&
          e.func != "cast_double") {
        return false;
      }
      [[fallthrough]];
    case ExprKind::kBinary:
    case ExprKind::kUnary:
    case ExprKind::kIsNull:
      for (const ExprPtr& c : e.children) {
        if (!IsConstExpr(*c, ctx)) return false;
      }
      return true;
  }
  return false;
}

// Tries to recognize `col <cmp> const` (either side).
Result<std::optional<ColConstCmp>> MatchColConstCmp(const Table& table,
                                                    const Expr& e,
                                                    const EvalContext& ctx) {
  if (e.kind != ExprKind::kBinary) return std::optional<ColConstCmp>{};
  switch (e.bop) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return std::optional<ColConstCmp>{};
  }
  const Expr& l = *e.children[0];
  const Expr& r = *e.children[1];
  auto col_of = [&](const Expr& side) -> const Column* {
    if (side.kind != ExprKind::kColumnRef) return nullptr;
    int idx = table.schema().FindField(side.column);
    if (idx < 0) return nullptr;
    return &table.column(static_cast<size_t>(idx));
  };
  if (const Column* c = col_of(l); c != nullptr && IsConstExpr(r, ctx)) {
    ASSIGN_OR_RETURN(Value v, EvalConst(r, ctx));
    return std::optional<ColConstCmp>(ColConstCmp{c, e.bop, std::move(v)});
  }
  if (const Column* c = col_of(r); c != nullptr && IsConstExpr(l, ctx)) {
    ASSIGN_OR_RETURN(Value v, EvalConst(l, ctx));
    return std::optional<ColConstCmp>(
        ColConstCmp{c, FlipCmp(e.bop), std::move(v)});
  }
  return std::optional<ColConstCmp>{};
}

// Applies a column-vs-constant comparison over the candidate rows.
Result<SelVector> SelectColConst(const ColConstCmp& cc,
                                 const SelVector& candidates) {
  const Column& c = *cc.column;
  SelVector out;
  if (cc.constant.is_null()) return out;  // NULL never matches
  out.reserve(candidates.size());
  if (IsIntegerPhysical(c.type()) && cc.constant.is_int()) {
    const int64_t k = cc.constant.int_value();
    const auto& v = c.ints();
    const bool nulls = c.has_nulls();
    switch (cc.op) {
      case BinaryOp::kEq:
        for (uint32_t r : candidates) {
          if ((!nulls || c.IsValid(r)) && v[r] == k) out.push_back(r);
        }
        break;
      case BinaryOp::kNe:
        for (uint32_t r : candidates) {
          if ((!nulls || c.IsValid(r)) && v[r] != k) out.push_back(r);
        }
        break;
      case BinaryOp::kLt:
        for (uint32_t r : candidates) {
          if ((!nulls || c.IsValid(r)) && v[r] < k) out.push_back(r);
        }
        break;
      case BinaryOp::kLe:
        for (uint32_t r : candidates) {
          if ((!nulls || c.IsValid(r)) && v[r] <= k) out.push_back(r);
        }
        break;
      case BinaryOp::kGt:
        for (uint32_t r : candidates) {
          if ((!nulls || c.IsValid(r)) && v[r] > k) out.push_back(r);
        }
        break;
      case BinaryOp::kGe:
        for (uint32_t r : candidates) {
          if ((!nulls || c.IsValid(r)) && v[r] >= k) out.push_back(r);
        }
        break;
      default:
        return Status::Internal("not a comparison");
    }
    return out;
  }
  if (c.type() == DataType::kDouble &&
      (cc.constant.is_double() || cc.constant.is_int())) {
    ASSIGN_OR_RETURN(double k, cc.constant.AsDouble());
    // IEEE predicates, matching the dense SIMD kernel (NaN only matches
    // !=) — see DESIGN.md §12.
    simd::Cmp op;
    if (!ops::kern::CmpFromBinaryOp(cc.op, &op)) {
      return Status::Internal("not a comparison");
    }
    const auto& v = c.doubles();
    const bool nulls = c.has_nulls();
    for (uint32_t r : candidates) {
      if (nulls && !c.IsValid(r)) continue;
      if (simd::CmpMatchesF64(op, v[r], k)) out.push_back(r);
    }
    return out;
  }
  if (c.type() == DataType::kString && cc.constant.is_string()) {
    const auto& v = c.strings();
    const std::string& k = cc.constant.string_value();
    const bool nulls = c.has_nulls();
    for (uint32_t r : candidates) {
      if (nulls && !c.IsValid(r)) continue;
      int cmp = v[r].compare(k);
      if (CmpMatches(cc.op, cmp)) out.push_back(r);
    }
    return out;
  }
  if (c.type() == DataType::kBool && cc.constant.is_bool()) {
    const auto& v = c.bools();
    const bool k = cc.constant.bool_value();
    const bool nulls = c.has_nulls();
    for (uint32_t r : candidates) {
      if (nulls && !c.IsValid(r)) continue;
      int cmp = static_cast<int>(v[r] != 0) - static_cast<int>(k);
      if (CmpMatches(cc.op, cmp)) out.push_back(r);
    }
    return out;
  }
  // Mixed numeric (int column vs double constant etc.): generic numeric.
  if (IsNumeric(c.type()) && (cc.constant.is_int() || cc.constant.is_double())) {
    ASSIGN_OR_RETURN(double k, cc.constant.AsDouble());
    const bool nulls = c.has_nulls();
    for (uint32_t r : candidates) {
      if (nulls && !c.IsValid(r)) continue;
      double x = NumAt(c, r);
      int cmp = x < k ? -1 : (x > k ? 1 : 0);
      if (CmpMatches(cc.op, cmp)) out.push_back(r);
    }
    return out;
  }
  return Status::TypeMismatch("predicate compares incompatible types");
}

SelVector UnionSorted(const SelVector& a, const SelVector& b) {
  SelVector out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Result<SelVector> SelectWhere(const Table& table, const Expr& expr,
                              const SelVector& candidates,
                              const EvalContext& ctx) {
  // AND: refine left-to-right (candidate-list pattern).
  if (expr.kind == ExprKind::kBinary && expr.bop == BinaryOp::kAnd) {
    ASSIGN_OR_RETURN(SelVector lhs,
                     SelectWhere(table, *expr.children[0], candidates, ctx));
    return SelectWhere(table, *expr.children[1], lhs, ctx);
  }
  // OR: union of both sides over the same candidates.
  if (expr.kind == ExprKind::kBinary && expr.bop == BinaryOp::kOr) {
    ASSIGN_OR_RETURN(SelVector lhs,
                     SelectWhere(table, *expr.children[0], candidates, ctx));
    ASSIGN_OR_RETURN(SelVector rhs,
                     SelectWhere(table, *expr.children[1], candidates, ctx));
    return UnionSorted(lhs, rhs);
  }
  // Column-vs-constant comparison fast path.
  ASSIGN_OR_RETURN(auto cc, MatchColConstCmp(table, expr, ctx));
  if (cc.has_value()) return SelectColConst(*cc, candidates);
  // Generic fallback: evaluate a boolean column, then filter candidates.
  ASSIGN_OR_RETURN(Handle h, EvalRec(table, expr, ctx));
  const Column& b = h.get();
  if (b.type() != DataType::kBool) {
    return Status::TypeMismatch("predicate is not boolean: " + expr.ToString());
  }
  SelVector out;
  out.reserve(candidates.size());
  for (uint32_t r : candidates) {
    if (b.IsValid(r) && b.bools()[r] != 0) out.push_back(r);
  }
  return out;
}

SelVector AllRows(size_t n) {
  SelVector all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
  return all;
}

// Dense fast path: runs a column-vs-constant comparison over *all* rows
// through the vectorized compare kernel (compare-mask + compressed-store,
// morsel-gridded) instead of walking a materialized AllRows candidate
// list row by row. Returns nullopt when the type pairing has no kernel
// (string/bool/mixed numeric) and the caller must fall back.
std::optional<SelVector> TryDenseColConst(const ColConstCmp& cc) {
  simd::Cmp op;
  if (!ops::kern::CmpFromBinaryOp(cc.op, &op)) return std::nullopt;
  const Column& c = *cc.column;
  if (cc.constant.is_null()) return SelVector{};  // NULL never matches
  if (IsIntegerPhysical(c.type()) && cc.constant.is_int()) {
    return ops::kern::SelectCmpI64Col(c, op, cc.constant.int_value());
  }
  if (c.type() == DataType::kDouble &&
      (cc.constant.is_double() || cc.constant.is_int())) {
    Result<double> k = cc.constant.AsDouble();
    if (!k.ok()) return std::nullopt;
    return ops::kern::SelectCmpF64Col(c, op, k.value());
  }
  return std::nullopt;
}

// Applies every conjunct of an AND-chain except the leftmost leaf (which
// the dense kernel already turned into `cands`), preserving SelectWhere's
// left-to-right refinement order.
Result<SelVector> RefineRestConjuncts(const Table& table, const Expr& e,
                                      SelVector cands,
                                      const EvalContext& ctx) {
  if (e.kind == ExprKind::kBinary && e.bop == BinaryOp::kAnd) {
    ASSIGN_OR_RETURN(SelVector lhs, RefineRestConjuncts(
                                        table, *e.children[0],
                                        std::move(cands), ctx));
    return SelectWhere(table, *e.children[1], lhs, ctx);
  }
  return cands;
}

}  // namespace

Result<Column> EvalScalar(const Table& table, const Expr& expr,
                          const EvalContext& ctx) {
  ASSIGN_OR_RETURN(Handle h, EvalRec(table, expr, ctx));
  return std::move(h).ToOwned();
}

Result<SelVector> EvalPredicate(const Table& table, const Expr& expr,
                                const EvalContext& ctx) {
  // Classify the leftmost conjunct: a simple `col <cmp> literal` there
  // goes through the SIMD compare kernel to produce the initial candidate
  // list, and only residual conjuncts fall back to expression eval.
  const Expr* leftmost = &expr;
  while (leftmost->kind == ExprKind::kBinary &&
         leftmost->bop == BinaryOp::kAnd) {
    leftmost = leftmost->children[0].get();
  }
  ASSIGN_OR_RETURN(auto cc, MatchColConstCmp(table, *leftmost, ctx));
  if (cc.has_value()) {
    if (std::optional<SelVector> dense = TryDenseColConst(*cc)) {
      if (leftmost == &expr) return std::move(*dense);
      return RefineRestConjuncts(table, expr, std::move(*dense), ctx);
    }
  }
  return SelectWhere(table, expr, AllRows(table.num_rows()), ctx);
}

Result<SelVector> EvalPredicateOn(const Table& table, const Expr& expr,
                                  const SelVector& candidates,
                                  const EvalContext& ctx) {
  return SelectWhere(table, expr, candidates, ctx);
}

}  // namespace datacell
