#ifndef DATACELL_EXPR_EXPR_H_
#define DATACELL_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "column/type.h"
#include "column/value.h"
#include "util/status.h"

namespace datacell {

enum class ExprKind : uint8_t {
  kLiteral,    // constant Value
  kColumnRef,  // named column (or session variable, resolved at eval time)
  kBinary,     // arithmetic / comparison / logical
  kUnary,      // NOT, unary minus
  kCall,       // scalar function call
  kIsNull,     // IS [NOT] NULL
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp : uint8_t { kNot, kNeg };

const char* BinaryOpName(BinaryOp op);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// A scalar expression tree shared by the operator layer and the SQL
/// frontend. Immutable after construction; shared_ptr nodes so plans can
/// share sub-expressions.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;
  // kColumnRef: column name, optionally "alias.column".
  std::string column;
  // kBinary / kUnary
  BinaryOp bop = BinaryOp::kAdd;
  UnaryOp uop = UnaryOp::kNot;
  // kCall: lower-cased function name.
  std::string func;
  // kIsNull: negated == IS NOT NULL
  bool negated = false;

  std::vector<ExprPtr> children;

  /// Factory helpers — the only supported way to build nodes.
  static ExprPtr Lit(Value v);
  static ExprPtr Col(std::string name);
  static ExprPtr Bin(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Un(UnaryOp op, ExprPtr operand);
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args);
  static ExprPtr IsNull(ExprPtr operand, bool negated);

  /// Convenience: lhs AND rhs, where either side may be null (returns the
  /// other side).
  static ExprPtr AndMaybe(ExprPtr lhs, ExprPtr rhs);

  /// Parenthesized infix rendering for diagnostics.
  std::string ToString() const;
};

/// Static result-type inference against a schema. Unknown column names are
/// a kBindError (the caller may then try session variables).
Result<DataType> InferExprType(const Schema& schema, const Expr& expr);

}  // namespace datacell

#endif  // DATACELL_EXPR_EXPR_H_
