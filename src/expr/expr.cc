#include "expr/expr.h"

#include "util/logging.h"

namespace datacell {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

ExprPtr Expr::Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Bin(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  DC_DCHECK(lhs != nullptr && rhs != nullptr);
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Un(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->func = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::IsNull(ExprPtr operand, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->negated = negated;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr Expr::AndMaybe(ExprPtr lhs, ExprPtr rhs) {
  if (lhs == nullptr) return rhs;
  if (rhs == nullptr) return lhs;
  return Bin(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(bop) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kUnary:
      return std::string(uop == UnaryOp::kNot ? "(not " : "(-") +
             children[0]->ToString() + ")";
    case ExprKind::kCall: {
      std::string out = func + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return "(" + children[0]->ToString() +
             (negated ? " is not null)" : " is null)");
  }
  return "?";
}

namespace {

Result<DataType> InferBinary(const Schema& schema, const Expr& expr) {
  ASSIGN_OR_RETURN(DataType lhs, InferExprType(schema, *expr.children[0]));
  ASSIGN_OR_RETURN(DataType rhs, InferExprType(schema, *expr.children[1]));
  switch (expr.bop) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      if (!IsNumeric(lhs) || !IsNumeric(rhs)) {
        return Status::TypeMismatch("arithmetic on non-numeric operands in " +
                                    expr.ToString());
      }
      if (lhs == DataType::kDouble || rhs == DataType::kDouble) {
        return DataType::kDouble;
      }
      // timestamp +/- int stays a timestamp; everything else int.
      if (lhs == DataType::kTimestamp || rhs == DataType::kTimestamp) {
        return DataType::kTimestamp;
      }
      return DataType::kInt64;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      const bool comparable =
          (IsNumeric(lhs) && IsNumeric(rhs)) ||
          (lhs == DataType::kString && rhs == DataType::kString) ||
          (lhs == DataType::kBool && rhs == DataType::kBool);
      if (!comparable) {
        return Status::TypeMismatch("incomparable operands in " +
                                    expr.ToString());
      }
      return DataType::kBool;
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      if (lhs != DataType::kBool || rhs != DataType::kBool) {
        return Status::TypeMismatch("logical operator on non-bool in " +
                                    expr.ToString());
      }
      return DataType::kBool;
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<DataType> InferExprType(const Schema& schema, const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      if (expr.literal.is_null()) return DataType::kInt64;  // null: any type
      if (expr.literal.is_int()) return DataType::kInt64;
      if (expr.literal.is_double()) return DataType::kDouble;
      if (expr.literal.is_bool()) return DataType::kBool;
      return DataType::kString;
    case ExprKind::kColumnRef: {
      int idx = schema.FindField(expr.column);
      if (idx < 0) {
        return Status::BindError("unknown column '" + expr.column + "'");
      }
      return schema.field(static_cast<size_t>(idx)).type;
    }
    case ExprKind::kBinary:
      return InferBinary(schema, expr);
    case ExprKind::kUnary: {
      ASSIGN_OR_RETURN(DataType t, InferExprType(schema, *expr.children[0]));
      if (expr.uop == UnaryOp::kNot) {
        if (t != DataType::kBool) {
          return Status::TypeMismatch("NOT on non-bool in " + expr.ToString());
        }
        return DataType::kBool;
      }
      if (!IsNumeric(t)) {
        return Status::TypeMismatch("unary minus on non-numeric in " +
                                    expr.ToString());
      }
      return t;
    }
    case ExprKind::kCall: {
      if (expr.func == "abs" || expr.func == "least" ||
          expr.func == "greatest") {
        ASSIGN_OR_RETURN(DataType t, InferExprType(schema, *expr.children[0]));
        return t;
      }
      if (expr.func == "length") return DataType::kInt64;
      if (expr.func == "now") return DataType::kTimestamp;
      if (expr.func == "cast_int") return DataType::kInt64;
      if (expr.func == "cast_double") return DataType::kDouble;
      return Status::BindError("unknown function '" + expr.func + "'");
    }
    case ExprKind::kIsNull:
      return DataType::kBool;
  }
  return Status::Internal("unreachable");
}

}  // namespace datacell
