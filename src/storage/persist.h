#ifndef DATACELL_STORAGE_PERSIST_H_
#define DATACELL_STORAGE_PERSIST_H_

#include <string>

#include "column/catalog.h"
#include "column/table.h"
#include "util/status.h"

namespace datacell::storage {

/// Text persistence for the DBMS side of the DataCell (persistent tables).
///
/// Baskets are deliberately *not* persisted — the paper's Basket ACID rule
/// is that stream contents do not survive a crash or session boundary;
/// only catalog tables do. The format is the network codec's: first line
/// the schema header ("name:type|..."), then one tuple per line, so files
/// are diffable and can even be replayed through a TcpIngress.

/// Writes `table` to `path`, replacing any existing file.
Status SaveTable(const Table& table, const std::string& path);

/// Reads a table previously written by SaveTable.
Result<Table> LoadTable(const std::string& path);

/// Saves every catalog table as `<dir>/<name>.dct` (creates `dir` if
/// needed; stale .dct files from dropped tables are removed).
Status SaveCatalog(const Catalog& catalog, const std::string& dir);

/// Loads every `<dir>/*.dct` into the catalog (tables must not already
/// exist).
Status LoadCatalog(Catalog* catalog, const std::string& dir);

}  // namespace datacell::storage

#endif  // DATACELL_STORAGE_PERSIST_H_
