#include "storage/ingest_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "net/codec.h"
#include "obs/metrics.h"
#include "storage/pager.h"

namespace datacell::storage {

namespace {

Status ValidateStreamName(const std::string& stream) {
  if (stream.empty() ||
      stream.find('|') != std::string::npos ||
      stream.find('\n') != std::string::npos) {
    return Status::InvalidArgument("bad ingest-log stream name '" + stream +
                                   "' (must be non-empty, no '|'/newline)");
  }
  return Status::OK();
}

/// One parsed log line. `rest` points into the line (tuple text / schema
/// header), untouched by record framing.
struct Record {
  char kind = 0;  // 'S', 'T' or 'K'
  std::string stream;
  uint64_t seq = 0;
  std::string rest;
};

Result<Record> ParseRecord(const std::string& line, uint64_t offset) {
  const auto bad = [&](const char* why) {
    return Status::ParseError("ingest log corrupt at byte " +
                              std::to_string(offset) + ": " + why);
  };
  if (line.size() < 2 || line[1] != '|') return bad("bad record framing");
  Record r;
  r.kind = line[0];
  if (r.kind != 'S' && r.kind != 'T' && r.kind != 'K') {
    return bad("unknown record kind");
  }
  const size_t stream_end = line.find('|', 2);
  if (stream_end == std::string::npos) return bad("missing stream field");
  r.stream = line.substr(2, stream_end - 2);
  if (r.kind == 'S') {
    r.rest = line.substr(stream_end + 1);
    return r;
  }
  size_t seq_end = line.find('|', stream_end + 1);
  if (r.kind == 'K') seq_end = line.size();
  if (r.kind == 'T' && seq_end == std::string::npos) {
    return bad("missing tuple field");
  }
  const std::string seq_str =
      line.substr(stream_end + 1, seq_end - stream_end - 1);
  char* end = nullptr;
  errno = 0;
  r.seq = std::strtoull(seq_str.c_str(), &end, 10);
  if (errno != 0 || end == seq_str.c_str() || *end != '\0' || r.seq == 0) {
    return bad("bad sequence number");
  }
  if (r.kind == 'T') r.rest = line.substr(seq_end + 1);
  return r;
}

/// Line-by-line scan of a log file. The visitor sees every complete,
/// well-formed record with its starting byte offset. A final line without
/// a terminating newline is a crash artifact: it is not visited, and its
/// offset is reported so Open can truncate it. Mid-file corruption is a
/// hard error.
struct ScanResult {
  bool torn_tail = false;
  uint64_t torn_offset = 0;
  uint64_t end_offset = 0;  // offset just past the last complete record
};

Result<ScanResult> ScanLog(
    const std::string& path,
    const std::function<Status(const Record&, uint64_t offset)>& visit) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open ingest log '" + path + "'");
  }
  ScanResult out;
  std::string line;
  uint64_t offset = 0;
  while (std::getline(in, line)) {
    const uint64_t line_start = offset;
    offset += line.size() + 1;
    if (in.eof()) {
      // getline hit EOF without a '\n': torn tail from a crash mid-write.
      out.torn_tail = true;
      out.torn_offset = line_start;
      break;
    }
    ASSIGN_OR_RETURN(Record r, ParseRecord(line, line_start));
    if (visit) RETURN_NOT_OK(visit(r, line_start));
    out.end_offset = offset;
  }
  return out;
}

}  // namespace

IngestLog::IngestLog(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {
  StorageRegistry::Global().Register(this);
}

IngestLog::~IngestLog() {
  StorageRegistry::Global().Unregister(this);
  MutexLock lock(&mu_);
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<IngestLog>> IngestLog::Open(const std::string& path,
                                                   FsyncPolicy policy,
                                                   size_t batch_records) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open ingest log '" + path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<IngestLog> log(new IngestLog(path, fd));
  // Recovery must accept exactly the logs replay accepts. Open used to
  // skip tuple decoding, so a log with a record replay rejects (wrong
  // arity, unregistered stream) would still open — and every record
  // appended through the recovered handle was unreachable after the next
  // crash. Running the replay validation (no-op handler) first keeps the
  // two paths agreeing by construction.
  RETURN_NOT_OK(ReplayIngestLog(path, [](const std::string&, const Schema&,
                                         uint64_t, const Row&) {
                  return Status::OK();
                }).status());
  std::map<std::string, StreamState> streams;
  Result<ScanResult> scan =
      ScanLog(path, [&streams](const Record& r, uint64_t offset) -> Status {
        switch (r.kind) {
          case 'S': {
            ASSIGN_OR_RETURN(Schema schema,
                             net::Codec::DecodeSchemaHeader(r.rest));
            auto [it, inserted] = streams.emplace(r.stream, StreamState{});
            if (inserted) {
              it->second.schema = std::move(schema);
            } else if (!(it->second.schema == schema)) {
              return Status::ParseError(
                  "ingest log: stream '" + r.stream +
                  "' re-registered with a different schema at byte " +
                  std::to_string(offset));
            }
            break;
          }
          case 'T':
            streams[r.stream].last_seq =
                std::max(streams[r.stream].last_seq, r.seq);
            break;
          case 'K':
            streams[r.stream].acked = std::max(streams[r.stream].acked, r.seq);
            break;
        }
        return Status::OK();
      });
  RETURN_NOT_OK(scan.status());
  if (scan->torn_tail) {
    // Drop the crash-torn tail so this handle appends whole records only.
    if (::ftruncate(fd, static_cast<off_t>(scan->torn_offset)) != 0) {
      return Status::IOError("cannot truncate torn ingest log tail: " +
                             std::string(std::strerror(errno)));
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    return Status::IOError("lseek: " + std::string(std::strerror(errno)));
  }
  MutexLock lock(&log->mu_);
  log->policy_ = policy;
  log->batch_records_ = batch_records == 0 ? 1 : batch_records;
  log->streams_ = std::move(streams);
  log->stats_.streams = log->streams_.size();
  return log;
}

Status IngestLog::WriteRecord(const std::string& record, bool force_sync) {
  size_t done = 0;
  while (done < record.size()) {
    ssize_t n = ::write(fd_, record.data() + done, record.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("ingest log write: " +
                             std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  stats_.bytes += record.size();
  const bool batch_due = policy_ == FsyncPolicy::kBatch &&
                         unsynced_records_ >= batch_records_;
  if (force_sync || policy_ == FsyncPolicy::kAlways || batch_due) {
    if (::fsync(fd_) != 0) {
      return Status::IOError("ingest log fsync: " +
                             std::string(std::strerror(errno)));
    }
    ++stats_.fsyncs;
    unsynced_records_ = 0;
  }
  return Status::OK();
}

Status IngestLog::RegisterStream(const std::string& stream,
                                 const Schema& schema) {
  RETURN_NOT_OK(ValidateStreamName(stream));
  MutexLock lock(&mu_);
  auto it = streams_.find(stream);
  if (it != streams_.end()) {
    if (!(it->second.schema == schema)) {
      return Status::AlreadyExists("ingest-log stream '" + stream +
                                   "' already registered with a different "
                                   "schema");
    }
    return Status::OK();
  }
  net::Codec codec(schema);
  RETURN_NOT_OK(WriteRecord("S|" + stream + "|" + codec.EncodeSchemaHeader() +
                                "\n",
                            /*force_sync=*/false));
  StreamState st;
  st.schema = schema;
  streams_.emplace(stream, std::move(st));
  ++stats_.streams;
  return Status::OK();
}

Result<std::pair<uint64_t, uint64_t>> IngestLog::AppendBatch(
    const std::string& stream, const Table& batch) {
  if (batch.num_rows() == 0) return std::make_pair(uint64_t{1}, uint64_t{0});
  RETURN_NOT_OK(RegisterStream(stream, batch.schema()));
  MutexLock lock(&mu_);
  StreamState& st = streams_[stream];
  net::Codec codec(st.schema);
  std::string buf;
  const uint64_t first = st.last_seq + 1;
  const std::string prefix = "T|" + stream + "|";
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    ASSIGN_OR_RETURN(std::string line, codec.EncodeRow(batch, i));
    buf += prefix;
    buf += std::to_string(st.last_seq + 1 + i);
    buf.push_back('|');
    buf += line;
    buf.push_back('\n');
  }
  unsynced_records_ += batch.num_rows();
  stats_.records += batch.num_rows();
  RETURN_NOT_OK(WriteRecord(buf, /*force_sync=*/false));
  st.last_seq += batch.num_rows();
  if (obs::MetricsRegistry::enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("storage.log_records")
        ->Increment(batch.num_rows());
  }
  return std::make_pair(first, st.last_seq);
}

Status IngestLog::Ack(const std::string& stream, uint64_t seq) {
  RETURN_NOT_OK(ValidateStreamName(stream));
  MutexLock lock(&mu_);
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound("ingest-log stream '" + stream + "' unknown");
  }
  if (seq <= it->second.acked) return Status::OK();  // monotonic
  ++unsynced_records_;
  ++stats_.records;
  RETURN_NOT_OK(WriteRecord("K|" + stream + "|" + std::to_string(seq) + "\n",
                            /*force_sync=*/false));
  it->second.acked = seq;
  return Status::OK();
}

Status IngestLog::Sync() {
  MutexLock lock(&mu_);
  if (::fsync(fd_) != 0) {
    return Status::IOError("ingest log fsync: " +
                           std::string(std::strerror(errno)));
  }
  ++stats_.fsyncs;
  unsynced_records_ = 0;
  return Status::OK();
}

void IngestLog::set_policy(FsyncPolicy p) {
  MutexLock lock(&mu_);
  policy_ = p;
}

FsyncPolicy IngestLog::policy() const {
  MutexLock lock(&mu_);
  return policy_;
}

uint64_t IngestLog::last_seq(const std::string& stream) const {
  MutexLock lock(&mu_);
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.last_seq;
}

uint64_t IngestLog::acked(const std::string& stream) const {
  MutexLock lock(&mu_);
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.acked;
}

std::vector<IngestLog::StreamInfo> IngestLog::Streams() const {
  MutexLock lock(&mu_);
  std::vector<StreamInfo> out;
  out.reserve(streams_.size());
  for (const auto& [name, st] : streams_) {
    out.push_back({name, st.schema, st.last_seq, st.acked});
  }
  return out;
}

IngestLog::Stats IngestLog::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

Result<ReplayReport> ReplayIngestLog(const std::string& path,
                                     const ReplayHandler& handler) {
  ReplayReport report;
  {
    std::ifstream probe(path);
    if (!probe.is_open()) return report;  // no log, nothing to replay
  }
  // Pass 1: collect schemas and the final ack point per stream (acks land
  // after the appends they cover, so filtering needs the whole file).
  struct StreamScan {
    Schema schema;
    std::unique_ptr<net::Codec> codec;
    uint64_t acked = 0;
    uint64_t delivered = 0;  // pass 2 dedup cursor
  };
  std::map<std::string, StreamScan> streams;
  Result<ScanResult> pass1 =
      ScanLog(path, [&streams](const Record& r, uint64_t offset) -> Status {
        if (r.kind == 'S') {
          ASSIGN_OR_RETURN(Schema schema,
                           net::Codec::DecodeSchemaHeader(r.rest));
          auto [it, inserted] = streams.emplace(r.stream, StreamScan{});
          if (inserted) {
            it->second.codec = std::make_unique<net::Codec>(schema);
            it->second.schema = std::move(schema);
          }
          (void)offset;
        } else if (r.kind == 'K') {
          streams[r.stream].acked = std::max(streams[r.stream].acked, r.seq);
        }
        return Status::OK();
      });
  RETURN_NOT_OK(pass1.status());
  report.torn_tail = pass1->torn_tail;
  report.torn_offset = pass1->torn_offset;

  // Pass 2: deliver unacked tuples in file order, exactly once per seq.
  Result<ScanResult> pass2 = ScanLog(
      path,
      [&streams, &report, &handler](const Record& r,
                                    uint64_t offset) -> Status {
        if (r.kind != 'T') return Status::OK();
        auto it = streams.find(r.stream);
        if (it == streams.end() || it->second.codec == nullptr) {
          return Status::ParseError(
              "ingest log: tuple for unregistered stream '" + r.stream +
              "' at byte " + std::to_string(offset));
        }
        StreamScan& st = it->second;
        if (r.seq <= st.acked) {
          ++report.skipped_acked;
          return Status::OK();
        }
        if (r.seq <= st.delivered) {
          ++report.skipped_dup;
          return Status::OK();
        }
        ASSIGN_OR_RETURN(Row row, st.codec->DecodeRow(r.rest));
        RETURN_NOT_OK(handler(r.stream, st.schema, r.seq, row));
        st.delivered = r.seq;
        ++report.replayed;
        return Status::OK();
      });
  RETURN_NOT_OK(pass2.status());
  if (report.replayed > 0 && obs::MetricsRegistry::enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("storage.replayed_tuples")
        ->Increment(report.replayed);
  }
  return report;
}

StorageRegistry& StorageRegistry::Global() {
  static StorageRegistry* instance = new StorageRegistry();
  return *instance;
}

void StorageRegistry::Register(IngestLog* log) {
  MutexLock lock(&mu_);
  logs_.push_back(log);
}

void StorageRegistry::Unregister(IngestLog* log) {
  MutexLock lock(&mu_);
  logs_.erase(std::remove(logs_.begin(), logs_.end(), log), logs_.end());
}

void StorageRegistry::Register(BufferPool* pool) {
  MutexLock lock(&mu_);
  pools_.push_back(pool);
}

void StorageRegistry::Unregister(BufferPool* pool) {
  MutexLock lock(&mu_);
  pools_.erase(std::remove(pools_.begin(), pools_.end(), pool), pools_.end());
}

std::vector<IngestLog*> StorageRegistry::Logs() const {
  MutexLock lock(&mu_);
  return logs_;
}

std::vector<BufferPool*> StorageRegistry::Pools() const {
  MutexLock lock(&mu_);
  return pools_;
}

}  // namespace datacell::storage
