#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/ingest_log.h"

namespace datacell::storage {

namespace {
std::atomic<bool> g_spill_enabled{true};
}  // namespace

void SetSpillEnabled(bool on) {
  g_spill_enabled.store(on, std::memory_order_relaxed);
}
bool SpillEnabled() {
  return g_spill_enabled.load(std::memory_order_relaxed);
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  // O_TRUNC: the spill file is cache, not state — a leftover from a dead
  // process is garbage by definition.
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open spill file '" + path +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<Pager>(new Pager(path, fd));
}

Pager::~Pager() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

uint64_t Pager::Allocate() {
  MutexLock lock(&mu_);
  if (!free_list_.empty()) {
    uint64_t id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  return next_page_++;
}

void Pager::Free(uint64_t id) {
  MutexLock lock(&mu_);
  free_list_.push_back(id);
}

Status Pager::Write(uint64_t id, const char* page) {
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pwrite(fd_, page + done, kPageSize - done,
                         static_cast<off_t>(id * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("spill pwrite: " + std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Pager::Read(uint64_t id, char* out) const {
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, out + done, kPageSize - done,
                        static_cast<off_t>(id * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("spill pread: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("spill pread: short read of page " +
                             std::to_string(id));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

size_t Pager::pages_in_use() const {
  MutexLock lock(&mu_);
  return static_cast<size_t>(next_page_) - free_list_.size();
}

uint64_t Pager::bytes_on_disk() const {
  MutexLock lock(&mu_);
  return next_page_ * kPageSize;
}

BufferPool::BufferPool(std::unique_ptr<Pager> pager, size_t num_frames)
    : pager_(std::move(pager)) {
  // No lock: nothing can reach this pool until the constructor returns
  // (and taking mu_ here would nest kStorage inside the registry's
  // kStorage when we register below).
  frames_.resize(num_frames == 0 ? 1 : num_frames);
  for (Frame& f : frames_) f.data = std::make_unique<char[]>(kPageSize);
  StorageRegistry::Global().Register(this);
}

BufferPool::~BufferPool() { StorageRegistry::Global().Unregister(this); }

Result<size_t> BufferPool::GetVictim() {
  size_t victim = frames_.size();
  uint64_t oldest = ~uint64_t{0};
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.page == kInvalidPageId) return i;  // free frame
    if (f.pins == 0 && f.last_use < oldest) {
      oldest = f.last_use;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    RETURN_NOT_OK(pager_->Write(f.page, f.data.get()));
    ++stats_.writebacks;
  }
  page_to_frame_.erase(f.page);
  f.page = kInvalidPageId;
  f.dirty = false;
  ++stats_.evictions;
  return victim;
}

Result<size_t> BufferPool::PinFrame(uint64_t id, bool fault_in) {
  ++stats_.fetches;
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    ++frames_[it->second].pins;
    return it->second;
  }
  ++stats_.misses;
  ASSIGN_OR_RETURN(size_t idx, GetVictim());
  Frame& f = frames_[idx];
  if (fault_in) RETURN_NOT_OK(pager_->Read(id, f.data.get()));
  f.page = id;
  f.pins = 1;
  f.dirty = false;
  page_to_frame_[id] = idx;
  return idx;
}

Result<char*> BufferPool::NewPage(uint64_t* id) {
  MutexLock lock(&mu_);
  *id = pager_->Allocate();
  Result<size_t> idx = PinFrame(*id, /*fault_in=*/false);
  if (!idx.ok()) {
    pager_->Free(*id);
    return idx.status();
  }
  frames_[*idx].dirty = true;
  return frames_[*idx].data.get();
}

Result<char*> BufferPool::FetchPage(uint64_t id) {
  MutexLock lock(&mu_);
  ASSIGN_OR_RETURN(size_t idx, PinFrame(id, /*fault_in=*/true));
  return frames_[idx].data.get();
}

void BufferPool::Unpin(uint64_t id, bool dirty) {
  MutexLock lock(&mu_);
  auto it = page_to_frame_.find(id);
  if (it == page_to_frame_.end()) return;
  Frame& f = frames_[it->second];
  if (f.pins > 0) --f.pins;
  if (dirty) f.dirty = true;
  if (f.pins == 0) f.last_use = ++lru_clock_;
}

Status BufferPool::DeletePage(uint64_t id) {
  MutexLock lock(&mu_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    if (f.pins > 0) {
      return Status::Internal("DeletePage of pinned page " + std::to_string(id));
    }
    f.page = kInvalidPageId;
    f.dirty = false;
    page_to_frame_.erase(it);
  }
  pager_->Free(id);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  MutexLock lock(&mu_);
  for (Frame& f : frames_) {
    if (f.page != kInvalidPageId && f.dirty) {
      RETURN_NOT_OK(pager_->Write(f.page, f.data.get()));
      f.dirty = false;
      ++stats_.writebacks;
    }
  }
  return Status::OK();
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace datacell::storage
