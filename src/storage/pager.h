#ifndef DATACELL_STORAGE_PAGER_H_
#define DATACELL_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace datacell::storage {

/// Fixed page size of the spill tier. Spilled basket chunks are written as
/// runs of whole pages; 64 KiB keeps the page table small while still
/// amortizing the syscall per ~2k spilled rows.
inline constexpr size_t kPageSize = 64 * 1024;
inline constexpr uint64_t kInvalidPageId = ~uint64_t{0};

/// Process-wide gate for basket spilling (`SET dc_spill = 0/1`). A basket
/// spills only when a BufferPool is attached *and* this gate is open, so
/// flipping it quiesces the spill path without touching basket wiring.
void SetSpillEnabled(bool on);
bool SpillEnabled();

/// Disk manager: fixed-size pages in one spill file, with free-list reuse.
/// Read/Write go straight to pread/pwrite (no lock; the buffer pool
/// serializes access per frame); only the allocation state is guarded.
/// The file is transient cache state — it is truncated on Open and never
/// fsync'd (spilled pages do not outlive the process; durability lives in
/// the catalog and the ingest log).
class Pager {
 public:
  static Result<std::unique_ptr<Pager>> Open(const std::string& path);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Grabs a free page id (reusing freed ones before extending the file).
  uint64_t Allocate();
  void Free(uint64_t id);

  /// Writes/reads exactly kPageSize bytes at the page's offset.
  Status Write(uint64_t id, const char* page);
  Status Read(uint64_t id, char* out) const;

  const std::string& path() const { return path_; }
  /// Pages currently allocated (live, not on the free list).
  size_t pages_in_use() const;
  /// High-water file extent in bytes (freed pages still occupy it).
  uint64_t bytes_on_disk() const;

 private:
  Pager(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  const std::string path_;
  const int fd_;

  mutable Mutex mu_{LockRank::kStoragePager};
  std::vector<uint64_t> free_list_ DC_GUARDED_BY(mu_);
  uint64_t next_page_ DC_GUARDED_BY(mu_) = 0;
};

/// Buffer pool over a Pager: a fixed set of page-sized frames with
/// pin/unpin reference counting and least-recently-unpinned eviction —
/// the BusTub buffer-pool shape, sized down to what the spill path needs.
///
/// Contract: FetchPage/NewPage pin the frame (it cannot be evicted) and
/// return its data pointer, stable until the matching Unpin. A dirty unpin
/// marks the frame for write-back on eviction. The caller (the basket
/// spill path) serializes operations on any one page id; distinct pages
/// may be touched concurrently from different baskets.
class BufferPool {
 public:
  struct Stats {
    uint64_t fetches = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
  };

  BufferPool(std::unique_ptr<Pager> pager, size_t num_frames);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a fresh page and pins it; the frame starts dirty (it only
  /// exists in memory until eviction or FlushAll writes it back).
  Result<char*> NewPage(uint64_t* id);
  /// Pins the page, faulting it in from disk on a miss.
  Result<char*> FetchPage(uint64_t id);
  /// Releases one pin. `dirty` marks the in-frame copy newer than disk.
  void Unpin(uint64_t id, bool dirty);
  /// Drops the page (must be unpinned) and returns it to the free list.
  Status DeletePage(uint64_t id);
  /// Writes every dirty frame back (tests; the spill path never needs it).
  Status FlushAll();

  Pager& pager() { return *pager_; }
  const Pager& pager() const { return *pager_; }
  size_t num_frames() const { return frames_.size(); }
  Stats stats() const;

 private:
  struct Frame {
    uint64_t page = kInvalidPageId;
    int pins = 0;
    bool dirty = false;
    uint64_t last_use = 0;  // LRU stamp, bumped on unpin to zero pins
    std::unique_ptr<char[]> data;
  };

  /// Frame holding `id`, faulting/evicting as needed; pins it.
  Result<size_t> PinFrame(uint64_t id, bool fault_in) DC_REQUIRES(mu_);
  /// Free frame, or the least-recently-used unpinned one (written back if
  /// dirty). Errors when every frame is pinned.
  Result<size_t> GetVictim() DC_REQUIRES(mu_);

  const std::unique_ptr<Pager> pager_;

  mutable Mutex mu_{LockRank::kStorage};
  std::vector<Frame> frames_ DC_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, size_t> page_to_frame_ DC_GUARDED_BY(mu_);
  uint64_t lru_clock_ DC_GUARDED_BY(mu_) = 0;
  Stats stats_ DC_GUARDED_BY(mu_);
};

}  // namespace datacell::storage

#endif  // DATACELL_STORAGE_PAGER_H_
