#include "storage/chunk.h"

#include <cstring>

namespace datacell::storage {

namespace {

constexpr uint32_t kMagic = 0x44434b31;  // "DCK1"

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

// Bounded little-endian reads over the raw page payload.
class Reader {
 public:
  Reader(const char* data, size_t len) : data_(data), len_(len) {}

  Result<uint32_t> U32() {
    uint32_t v;
    RETURN_NOT_OK(Raw(&v, 4));
    return v;
  }
  Result<uint8_t> U8() {
    uint8_t v;
    RETURN_NOT_OK(Raw(&v, 1));
    return v;
  }
  Status Raw(void* out, size_t n) {
    if (n == 0) return Status::OK();  // memcpy's pointers must be nonnull
    if (pos_ + n > len_) {
      return Status::ParseError("spill chunk truncated at byte " +
                                std::to_string(pos_));
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Result<const char*> Span(size_t n) {
    if (pos_ + n > len_) {
      return Status::ParseError("spill chunk truncated at byte " +
                                std::to_string(pos_));
    }
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

 private:
  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

template <typename T>
void AppendFixed(const ColumnView<T>& view, std::string* out) {
  out->append(reinterpret_cast<const char*>(view.data()),
              view.size() * sizeof(T));
}

}  // namespace

Status SerializeChunk(const Table& rows, std::string* out) {
  const size_t n = rows.num_rows();
  PutU32(kMagic, out);
  PutU32(static_cast<uint32_t>(n), out);
  PutU32(static_cast<uint32_t>(rows.num_columns()), out);
  for (size_t c = 0; c < rows.num_columns(); ++c) {
    const Column& col = rows.column(c);
    out->push_back(static_cast<char>(col.type()));
    const uint8_t* valid = col.raw_validity();
    out->push_back(valid == nullptr ? 0 : 1);
    if (valid != nullptr) {
      out->append(reinterpret_cast<const char*>(valid), n);
    }
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        AppendFixed(col.ints(), out);
        break;
      case DataType::kDouble:
        AppendFixed(col.doubles(), out);
        break;
      case DataType::kBool:
        AppendFixed(col.bools(), out);
        break;
      case DataType::kString:
        for (const std::string& s : col.strings()) {
          PutU32(static_cast<uint32_t>(s.size()), out);
          out->append(s);
        }
        break;
    }
  }
  return Status::OK();
}

Result<Table> DeserializeChunk(const Schema& schema, const char* data,
                               size_t len) {
  Reader in(data, len);
  ASSIGN_OR_RETURN(uint32_t magic, in.U32());
  if (magic != kMagic) return Status::ParseError("bad spill chunk magic");
  ASSIGN_OR_RETURN(uint32_t rows, in.U32());
  ASSIGN_OR_RETURN(uint32_t cols, in.U32());
  if (cols != schema.num_fields()) {
    return Status::ParseError("spill chunk arity mismatch");
  }
  // Every row costs at least one payload byte in every column, so a row
  // count larger than the page itself is corrupt. Reject it before any
  // buffer is sized from it — a 12-byte page claiming 4G rows must fail
  // here, not in a 4 GB validity allocation.
  if (cols > 0 && rows > len) {
    return Status::ParseError("spill chunk row count " + std::to_string(rows) +
                              " exceeds page size " + std::to_string(len));
  }
  Table table(schema);
  std::vector<uint8_t> validity;
  for (uint32_t c = 0; c < cols; ++c) {
    ASSIGN_OR_RETURN(uint8_t tag, in.U8());
    if (tag != static_cast<uint8_t>(schema.field(c).type)) {
      return Status::ParseError("spill chunk type mismatch in column " +
                                std::to_string(c));
    }
    ASSIGN_OR_RETURN(uint8_t has_validity, in.U8());
    validity.clear();
    if (has_validity != 0) {
      validity.resize(rows);
      RETURN_NOT_OK(in.Raw(validity.data(), rows));
    }
    Column& col = table.column(c);
    switch (schema.field(c).type) {
      case DataType::kInt64:
      case DataType::kTimestamp: {
        ASSIGN_OR_RETURN(const char* p, in.Span(rows * sizeof(int64_t)));
        if (validity.empty()) {
          std::vector<int64_t>& v = col.ints();
          v.resize(rows);
          // rows == 0 leaves v.data() null, and memcpy's arguments are
          // declared nonnull even for a zero count (UBSan enforces this).
          if (rows != 0) std::memcpy(v.data(), p, rows * sizeof(int64_t));
        } else {
          for (uint32_t i = 0; i < rows; ++i) {
            if (validity[i] == 0) {
              col.AppendNull();
            } else {
              int64_t x;
              std::memcpy(&x, p + i * sizeof(int64_t), sizeof(int64_t));
              col.AppendInt(x);
            }
          }
        }
        break;
      }
      case DataType::kDouble: {
        ASSIGN_OR_RETURN(const char* p, in.Span(rows * sizeof(double)));
        if (validity.empty()) {
          std::vector<double>& v = col.doubles();
          v.resize(rows);
          if (rows != 0) std::memcpy(v.data(), p, rows * sizeof(double));
        } else {
          for (uint32_t i = 0; i < rows; ++i) {
            if (validity[i] == 0) {
              col.AppendNull();
            } else {
              double x;
              std::memcpy(&x, p + i * sizeof(double), sizeof(double));
              col.AppendDouble(x);
            }
          }
        }
        break;
      }
      case DataType::kBool: {
        ASSIGN_OR_RETURN(const char* p, in.Span(rows));
        for (uint32_t i = 0; i < rows; ++i) {
          if (!validity.empty() && validity[i] == 0) {
            col.AppendNull();
          } else {
            col.AppendBool(p[i] != 0);
          }
        }
        break;
      }
      case DataType::kString: {
        for (uint32_t i = 0; i < rows; ++i) {
          ASSIGN_OR_RETURN(uint32_t slen, in.U32());
          ASSIGN_OR_RETURN(const char* p, in.Span(slen));
          if (!validity.empty() && validity[i] == 0) {
            col.AppendNull();
          } else {
            col.AppendString(std::string(p, slen));
          }
        }
        break;
      }
    }
  }
  return table;
}

}  // namespace datacell::storage
