#ifndef DATACELL_STORAGE_INGEST_LOG_H_
#define DATACELL_STORAGE_INGEST_LOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "column/table.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace datacell::storage {

class BufferPool;
class IngestLog;

/// When the log file reaches the OS, per AsterixDB's fault-tolerant feed
/// model: the knob trades ingest latency against the at-most-that-many
/// tuples a crash can lose.
///   kNone   — never fsync; the OS flushes when it pleases.
///   kBatch  — fsync every `batch_records` appended records (default 256).
///   kAlways — fsync after every append/ack; nothing acknowledged is lost.
enum class FsyncPolicy { kNone, kBatch, kAlways };

/// Append-only, sequence-numbered ingest log (text, one record per line):
///
///   S|<stream>|<schema header>     stream registration (codec header)
///   T|<stream>|<seq>|<tuple line>  one appended tuple (codec row encoding)
///   K|<stream>|<seq>               ack: everything <= seq is durable
///                                  downstream; replay skips it
///
/// Sequence numbers are per-stream, contiguous, 1-based, assigned by the
/// writer. Stream names must not contain '|' or newline. A torn final
/// line (crash mid-write) is truncated away on Open and tolerated by
/// replay; any mid-file corruption is a hard ParseError naming the byte
/// offset — after the crash-atomic save discipline the only legal torn
/// point is the tail.
class IngestLog {
 public:
  struct Stats {
    uint64_t records = 0;  // T + K records written by this handle
    uint64_t bytes = 0;    // bytes written by this handle
    uint64_t fsyncs = 0;
    uint64_t streams = 0;  // registered streams (including recovered ones)
  };
  struct StreamInfo {
    std::string name;
    Schema schema;
    uint64_t last_seq = 0;  // highest appended sequence number
    uint64_t acked = 0;     // highest acknowledged sequence number
  };

  /// Opens (creating if needed) the log, recovering per-stream sequence
  /// state from the existing records and truncating a torn tail.
  static Result<std::unique_ptr<IngestLog>> Open(
      const std::string& path, FsyncPolicy policy = FsyncPolicy::kBatch,
      size_t batch_records = 256);
  ~IngestLog();

  IngestLog(const IngestLog&) = delete;
  IngestLog& operator=(const IngestLog&) = delete;

  /// Declares `stream` with its tuple schema (writes an S record the first
  /// time). Re-registration with the same schema is a no-op; a different
  /// schema is an error.
  Status RegisterStream(const std::string& stream, const Schema& schema);

  /// Appends every row of `batch` as a T record, auto-registering the
  /// stream with the batch schema if needed. Returns the [first, last]
  /// sequence numbers assigned (first > last means the batch was empty).
  Result<std::pair<uint64_t, uint64_t>> AppendBatch(const std::string& stream,
                                                    const Table& batch);

  /// Records that everything up to and including `seq` is durable
  /// downstream; replay will skip it. Monotonic per stream.
  Status Ack(const std::string& stream, uint64_t seq);

  /// Forces an fsync regardless of policy.
  Status Sync();

  void set_policy(FsyncPolicy p);
  FsyncPolicy policy() const;

  /// Highest assigned / acknowledged sequence number (0 when none).
  uint64_t last_seq(const std::string& stream) const;
  uint64_t acked(const std::string& stream) const;

  std::vector<StreamInfo> Streams() const;
  Stats stats() const;
  const std::string& path() const { return path_; }

 private:
  IngestLog(std::string path, int fd);

  Status WriteRecord(const std::string& record, bool force_sync)
      DC_REQUIRES(mu_);

  const std::string path_;

  mutable Mutex mu_{LockRank::kStorage};
  int fd_ DC_GUARDED_BY(mu_);
  FsyncPolicy policy_ DC_GUARDED_BY(mu_) = FsyncPolicy::kBatch;
  size_t batch_records_ DC_GUARDED_BY(mu_) = 256;
  size_t unsynced_records_ DC_GUARDED_BY(mu_) = 0;
  struct StreamState {
    Schema schema;
    uint64_t last_seq = 0;
    uint64_t acked = 0;
  };
  std::map<std::string, StreamState> streams_ DC_GUARDED_BY(mu_);
  Stats stats_ DC_GUARDED_BY(mu_);
};

/// One replayed tuple. The row matches the stream's registered schema.
using ReplayHandler = std::function<Status(
    const std::string& stream, const Schema& schema, uint64_t seq,
    const Row& row)>;

struct ReplayReport {
  uint64_t replayed = 0;      // tuples handed to the handler
  uint64_t skipped_acked = 0; // seq <= the stream's highest ack
  uint64_t skipped_dup = 0;   // duplicate/out-of-order seq (delivered once)
  bool torn_tail = false;     // crash-torn final line was ignored
  uint64_t torn_offset = 0;   // byte offset of the torn tail
};

/// Replays `path`: for every stream, tuples with seq greater than the
/// stream's highest ack are delivered to `handler` exactly once, in
/// sequence order. Two passes (acks may follow the appends they cover), so
/// the handler only ever sees tuples that genuinely need redelivery.
/// A missing file is an empty replay, not an error.
Result<ReplayReport> ReplayIngestLog(const std::string& path,
                                     const ReplayHandler& handler);

/// Process-global directory of live storage-tier instances, feeding the
/// dc_storage virtual table and the SET dc_fsync knob. Instances register
/// in their constructors. List() copies the pointer set out under the
/// registry lock; callers then query instances lock-free of the registry
/// (admin paths only — instances must outlive the query, which the
/// engine's single-threaded setup/teardown guarantees).
class StorageRegistry {
 public:
  static StorageRegistry& Global();

  void Register(IngestLog* log);
  void Unregister(IngestLog* log);
  void Register(BufferPool* pool);
  void Unregister(BufferPool* pool);

  std::vector<IngestLog*> Logs() const;
  std::vector<BufferPool*> Pools() const;

 private:
  StorageRegistry() = default;

  mutable Mutex mu_{LockRank::kStorage};
  std::vector<IngestLog*> logs_ DC_GUARDED_BY(mu_);
  std::vector<BufferPool*> pools_ DC_GUARDED_BY(mu_);
};

}  // namespace datacell::storage

#endif  // DATACELL_STORAGE_INGEST_LOG_H_
