#ifndef DATACELL_STORAGE_CHUNK_H_
#define DATACELL_STORAGE_CHUNK_H_

#include <string>

#include "column/table.h"
#include "util/status.h"

namespace datacell::storage {

/// Binary column-chunk serialization for the spill path.
///
/// The catalog persists as diffable text (persist.h) and the ingest log as
/// replayable codec lines (ingest_log.h), but spilled basket pages are a
/// cache of in-memory state that never outlives the process, so they use a
/// raw little-endian column layout instead: numeric columns round-trip as
/// one memcpy each, which is what lets the spill path sustain a meaningful
/// fraction of in-memory ingest throughput (bench_spill_backpressure).
///
/// Layout: u32 magic, u32 rows, u32 cols; then per column a u8 type tag,
/// a u8 has-validity flag, the validity bytes (when present), and the
/// payload — fixed-width arrays for int64/timestamp/double/bool, u32
/// length-prefixed bytes per row for strings. Null slots carry their
/// zero/empty placeholder so the arrays stay rectangular.

/// Appends the serialized form of `rows` to `out`.
Status SerializeChunk(const Table& rows, std::string* out);

/// Reconstructs a chunk serialized by SerializeChunk. `schema` must be the
/// schema the chunk was written with (the basket keeps it; pages carry only
/// type tags, which are verified against it).
Result<Table> DeserializeChunk(const Schema& schema, const char* data,
                               size_t len);

}  // namespace datacell::storage

#endif  // DATACELL_STORAGE_CHUNK_H_
