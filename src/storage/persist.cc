#include "storage/persist.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "net/codec.h"

namespace datacell::storage {

namespace fs = std::filesystem;

namespace {
constexpr const char* kExtension = ".dct";
}  // namespace

Status SaveTable(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  net::Codec codec(table.schema());
  out << codec.EncodeSchemaHeader() << "\n";
  ASSIGN_OR_RETURN(std::string rows, codec.EncodeTable(table));
  out << rows;
  out.flush();
  if (!out.good()) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<Table> LoadTable(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::IOError("missing schema header in '" + path + "'");
  }
  ASSIGN_OR_RETURN(Schema schema, net::Codec::DecodeSchemaHeader(header));
  net::Codec codec(schema);
  Table table(schema);
  std::string line;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Status st = codec.DecodeInto(line, &table);
    if (!st.ok()) {
      return Status::ParseError("'" + path + "' line " +
                                std::to_string(line_no) + ": " + st.message());
    }
  }
  return table;
}

Status SaveCatalog(const Catalog& catalog, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  // Remove stale table files so a load round-trips the catalog exactly.
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == kExtension) {
      fs::remove(entry.path(), ec);
    }
  }
  for (const std::string& name : catalog.ListTables()) {
    ASSIGN_OR_RETURN(auto table, catalog.GetTable(name));
    RETURN_NOT_OK(
        SaveTable(*table, (fs::path(dir) / (name + kExtension)).string()));
  }
  return Status::OK();
}

Status LoadCatalog(Catalog* catalog, const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("no such directory: '" + dir + "'");
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == kExtension) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    ASSIGN_OR_RETURN(Table table, LoadTable(file.string()));
    const std::string name = file.stem().string();
    ASSIGN_OR_RETURN(auto created, catalog->CreateTable(name, table.schema()));
    RETURN_NOT_OK(created->AppendTable(table));
  }
  return Status::OK();
}

}  // namespace datacell::storage
