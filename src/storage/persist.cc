#include "storage/persist.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "net/codec.h"

namespace datacell::storage {

namespace fs = std::filesystem;

namespace {
constexpr const char* kExtension = ".dct";
constexpr const char* kTmpSuffix = ".tmp";

Status IOErrno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Makes a rename in `dir` durable: without the directory fsync the new
// name itself can be lost in a crash even though the file data survived.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IOErrno("cannot open directory '" + dir + "'");
  Status st = Status::OK();
  if (::fsync(fd) != 0) st = IOErrno("fsync directory '" + dir + "'");
  ::close(fd);
  return st;
}

}  // namespace

Status SaveTable(const Table& table, const std::string& path) {
  // Crash-atomic: write <path>.tmp, fsync it, then rename over <path>.
  // A crash at any point leaves either the complete old file or the
  // complete new one — never a torn or missing table.
  const std::string tmp = path + kTmpSuffix;
  net::Codec codec(table.schema());
  std::string payload = codec.EncodeSchemaHeader();
  payload.push_back('\n');
  ASSIGN_OR_RETURN(std::string rows, codec.EncodeTable(table));
  payload += rows;

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IOErrno("cannot open '" + tmp + "' for writing");
  size_t done = 0;
  while (done < payload.size()) {
    ssize_t n = ::write(fd, payload.data() + done, payload.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = IOErrno("write failed for '" + tmp + "'");
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = IOErrno("fsync failed for '" + tmp + "'");
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = IOErrno("cannot rename '" + tmp + "' to '" + path + "'");
    ::unlink(tmp.c_str());
    return st;
  }
  const std::string dir = fs::path(path).parent_path().string();
  return SyncDir(dir.empty() ? "." : dir);
}

Result<Table> LoadTable(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  if (content.empty()) {
    return Status::IOError("missing schema header in '" + path + "'");
  }
  const size_t header_end = content.find('\n');
  if (header_end == std::string::npos) {
    return Status::ParseError("'" + path +
                              "' truncated mid-header at byte 0 "
                              "(crash-torn file)");
  }
  ASSIGN_OR_RETURN(Schema schema, net::Codec::DecodeSchemaHeader(
                                      content.substr(0, header_end)));
  net::Codec codec(schema);
  Table table(schema);
  size_t pos = header_end + 1;
  size_t line_no = 1;
  while (pos < content.size()) {
    ++line_no;
    const size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) {
      // A tuple line with no terminating newline can only come from a
      // crash mid-write (SaveTable always ends files with '\n'). Torn
      // data is an error, not a silently shorter table.
      return Status::ParseError(
          "'" + path + "' truncated mid-tuple at byte " + std::to_string(pos) +
          " (crash-torn file)");
    }
    // Note: empty lines are decoded like any other — for most schemas the
    // arity check rejects them (catching torn/blank junk), while a
    // single-string-column table legitimately encodes an empty value as an
    // empty line and must round-trip.
    Status st = codec.DecodeInto(content.substr(pos, eol - pos), &table);
    if (!st.ok()) {
      return Status::ParseError("'" + path + "' line " +
                                std::to_string(line_no) + ": " + st.message());
    }
    pos = eol + 1;
  }
  return table;
}

Status SaveCatalog(const Catalog& catalog, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  // Save first, remove stale files last: until every new table is durable
  // on disk, nothing previously durable is deleted. A crash mid-save
  // leaves a loadable mixture of old and new tables, never a hole.
  std::set<std::string> current;
  for (const std::string& name : catalog.ListTables()) {
    ASSIGN_OR_RETURN(auto table, catalog.GetTable(name));
    RETURN_NOT_OK(
        SaveTable(*table, (fs::path(dir) / (name + kExtension)).string()));
    current.insert(name + kExtension);
  }
  // Now drop genuinely-stale files: .dct files for tables no longer in the
  // catalog, plus any .tmp leftovers from an interrupted earlier save.
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const fs::path& p = entry.path();
    if (p.extension() == kTmpSuffix) {
      fs::remove(p, ec);
      continue;
    }
    if (p.extension() == kExtension && current.count(p.filename()) == 0) {
      fs::remove(p, ec);
    }
  }
  return SyncDir(dir);
}

Status LoadCatalog(Catalog* catalog, const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("no such directory: '" + dir + "'");
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == kExtension) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    ASSIGN_OR_RETURN(Table table, LoadTable(file.string()));
    const std::string name = file.stem().string();
    ASSIGN_OR_RETURN(auto created, catalog->CreateTable(name, table.schema()));
    RETURN_NOT_OK(created->AppendTable(table));
  }
  return Status::OK();
}

}  // namespace datacell::storage
