#ifndef DATACELL_SQL_PARSER_H_
#define DATACELL_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/token.h"
#include "util/status.h"

namespace datacell::sql {

/// Parses a script (one or more ';'-separated statements) into ASTs.
///
/// Dialect summary (documented subset of SQL'03 + the DataCell extensions
/// of §3.4/§5):
///
///   CREATE TABLE|BASKET name (col type, ...);
///   DROP TABLE|BASKET name;
///   DECLARE name type;
///   SET name = expr;                      -- expr may hold (SELECT ...) scalar
///   INSERT INTO t [(cols)] VALUES (...), ...;
///   INSERT INTO t SELECT ...;
///   INSERT INTO t [SELECT ...];           -- basket-expression source
///   SELECT [TOP n] items FROM sources [WHERE e] [GROUP BY e,..] [HAVING e]
///          [ORDER BY e [ASC|DESC],..] [LIMIT n];
///   WITH name AS [SELECT ...] BEGIN stmt; ...; END;
///
/// FROM sources: relation names, or `[SELECT ...] AS alias` basket
/// expressions (side-effecting predicate windows). `SELECT ALL FROM ...`
/// and `SELECT TOP n FROM ...` imply `*` as in the paper's examples.
/// `INTERVAL n SECOND|MINUTE|HOUR` yields microseconds.
Result<std::vector<StatementPtr>> Parse(const std::string& input);

/// Parses exactly one statement.
Result<StatementPtr> ParseOne(const std::string& input);

}  // namespace datacell::sql

#endif  // DATACELL_SQL_PARSER_H_
