#ifndef DATACELL_SQL_BINDER_H_
#define DATACELL_SQL_BINDER_H_

#include <string>
#include <utility>
#include <vector>

#include "column/type.h"
#include "expr/expr.h"
#include "ops/aggregate.h"
#include "util/status.h"

namespace datacell::sql {

/// Name resolution for a FROM scope: maps the qualified ("alias.col") and
/// unqualified ("col") names visible in SQL text to the actual column names
/// of the materialized input table the expressions run against.
class NameScope {
 public:
  /// Registers a source. `visible` lists (source column name, actual column
  /// name in the combined table) in schema order.
  void AddSource(const std::string& alias,
                 std::vector<std::pair<std::string, std::string>> visible);

  /// Resolves "x" or "a.x". Unqualified names must be unambiguous across
  /// sources.
  Result<std::string> Resolve(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// True when the unqualified name matches distinct columns in more than
  /// one source. Ambiguity is never maskable by allow_unresolved: a name
  /// that exists in several sources cannot be a session variable.
  bool IsAmbiguous(const std::string& name) const;

  /// Columns for `*` (qualifier empty) or `alias.*` expansion, in order:
  /// (output name, actual name). Internal arrival-timestamp columns are
  /// skipped.
  Result<std::vector<std::pair<std::string, std::string>>> StarColumns(
      const std::string& qualifier) const;

 private:
  struct Source {
    std::string alias;
    std::vector<std::pair<std::string, std::string>> visible;
  };
  std::vector<Source> sources_;
};

/// Rewrites every column reference through the scope. Names that do not
/// resolve are left untouched when `allow_unresolved` (they may be session
/// variables, resolved at evaluation time) and are an error otherwise.
Result<ExprPtr> ResolveColumns(const ExprPtr& expr, const NameScope& scope,
                               bool allow_unresolved);

/// True if `name` is one of the aggregate function names.
bool IsAggregateFunction(const std::string& name);

/// Whether the expression contains an aggregate call anywhere.
bool ContainsAggregate(const Expr& expr);

/// Pulls aggregate calls out of an expression: each aggregate sub-tree is
/// appended to `aggs` (named "_agg<i>") and replaced by a column reference
/// to that name, so the remaining expression can be evaluated over the
/// aggregation output. Nested aggregates are an error.
Result<ExprPtr> ExtractAggregates(const ExprPtr& expr,
                                  std::vector<ops::AggItem>* aggs);

/// Replaces every subtree textually equal to one of `group_exprs` with a
/// reference to the corresponding group output column "_g<i>". Applied
/// before ExtractAggregates so group keys survive inside select items.
ExprPtr SubstituteGroupExprs(const ExprPtr& expr,
                             const std::vector<ExprPtr>& group_exprs);

}  // namespace datacell::sql

#endif  // DATACELL_SQL_BINDER_H_
