#ifndef DATACELL_SQL_TOKEN_H_
#define DATACELL_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace datacell::sql {

enum class TokenKind : uint8_t {
  kIdentifier,  // foo, foo.bar handled as two identifiers + dot
  kKeyword,     // normalized lower-case SQL keyword
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // 'text' with '' escaping
  // punctuation / operators
  kLParen,
  kRParen,
  kLBracket,  // [  — opens a basket expression
  kRBracket,
  kComma,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,  // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,  // end of input
};

/// One lexical token with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier/keyword text (lower-cased for keywords, original case kept
  /// for identifiers), or literal text.
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;  // byte offset in the input
  size_t line = 1;

  bool IsKeyword(const char* kw) const;
  std::string ToString() const;
};

/// True if `word` (lower-case) is a reserved SQL keyword in our dialect.
bool IsReservedKeyword(const std::string& word);

}  // namespace datacell::sql

#endif  // DATACELL_SQL_TOKEN_H_
