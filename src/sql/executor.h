#ifndef DATACELL_SQL_EXECUTOR_H_
#define DATACELL_SQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sql/ast.h"
#include "util/status.h"

namespace datacell::sql {

/// Interprets bound SQL statements against a core::Engine.
///
/// The executor is the runtime body of both one-time queries and continuous
/// queries: a continuous query's factory simply re-executes its statement
/// on every firing, and the basket expressions inside it perform the
/// consumption side effects. Statement execution is not thread-safe;
/// factories serialize through the basket locks they hold.
class Executor {
 public:
  explicit Executor(core::Engine* engine) : engine_(engine) {}

  /// Executes one statement. SELECT returns its result table; other
  /// statements return an empty zero-column table.
  Result<Table> Execute(const Statement& stmt);

  /// Temporary table bindings (WITH blocks use these internally; exposed
  /// for tests and embedding).
  void BindTemp(const std::string& name, Table table);
  void UnbindTemp(const std::string& name);

 private:
  using Subqueries = std::vector<std::unique_ptr<SelectStmt>>;

  struct Source {
    Table table;
    std::string alias;
  };

  Result<Table> ExecStatement(const Statement& stmt, const Subqueries* subs);
  Result<Table> ExecSelect(const SelectStmt& stmt, const Subqueries* subs);
  Result<Table> ExecInsert(const InsertStmt& stmt, const Subqueries* subs);
  Result<Table> ExecCreate(const CreateStmt& stmt);
  Result<Table> ExecDrop(const DropStmt& stmt);
  Result<Table> ExecSet(const SetStmt& stmt, const Subqueries* subs);
  Result<Table> ExecWithBlock(const WithBlockStmt& stmt, const Subqueries* subs);

  /// Materializes a FROM item (relation lookup or basket-expression
  /// evaluation with side effects).
  Result<Source> EvalFromItem(const FromItem& item, const Subqueries* subs);
  /// Evaluates a bracketed basket expression (§3.4).
  Result<Table> EvalBasketExpr(const SelectStmt& stmt, const Subqueries* subs);

  /// Replaces Call("__subquery", i) nodes with their scalar results.
  Result<ExprPtr> InlineSubqueries(const ExprPtr& expr, const Subqueries* subs);

  /// Refreshes vars_snapshot_ and returns an EvalContext pointing at it.
  EvalContext MakeEvalContext();

  core::Engine* engine_;
  std::map<std::string, Table> temps_;
  std::map<std::string, Value> vars_snapshot_;
};

}  // namespace datacell::sql

#endif  // DATACELL_SQL_EXECUTOR_H_
