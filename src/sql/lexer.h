#ifndef DATACELL_SQL_LEXER_H_
#define DATACELL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace datacell::sql {

/// Tokenizes a SQL script. Comments: `-- line` and `/* block */`.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace datacell::sql

#endif  // DATACELL_SQL_LEXER_H_
