#include "sql/planner.h"

namespace datacell::sql {

namespace {

void FlattenConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bop == BinaryOp::kAnd) {
    FlattenConjuncts(e->children[0], out);
    FlattenConjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

}  // namespace

Result<EquiJoinPlan> ExtractEquiJoin(
    const ExprPtr& where_combined, const Schema& left_schema,
    const std::map<std::string, std::string>& combined_to_right) {
  EquiJoinPlan plan;
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(where_combined, &conjuncts);

  auto side = [&](const std::string& combined_name) -> int {
    // 0 = left, 1 = right, -1 = unknown.
    if (combined_to_right.count(combined_name) > 0) return 1;
    if (left_schema.FindField(combined_name) >= 0) return 0;
    return -1;
  };

  for (const ExprPtr& c : conjuncts) {
    bool is_key = false;
    if (c->kind == ExprKind::kBinary && c->bop == BinaryOp::kEq &&
        c->children[0]->kind == ExprKind::kColumnRef &&
        c->children[1]->kind == ExprKind::kColumnRef) {
      const std::string& a = c->children[0]->column;
      const std::string& b = c->children[1]->column;
      const int sa = side(a);
      const int sb = side(b);
      if (sa == 0 && sb == 1) {
        plan.keys.push_back({a, combined_to_right.at(b)});
        is_key = true;
      } else if (sa == 1 && sb == 0) {
        plan.keys.push_back({b, combined_to_right.at(a)});
        is_key = true;
      }
    }
    if (!is_key) {
      plan.residual = Expr::AndMaybe(plan.residual, c);
    }
  }
  return plan;
}

}  // namespace datacell::sql
