#ifndef DATACELL_SQL_AST_H_
#define DATACELL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "util/status.h"

namespace datacell::sql {

/// Scalar expressions reuse datacell::Expr. Two SQL-only conventions:
///  * A column reference may be qualified ("alias.column"); the binder
///    resolves it against the FROM scope.
///  * A scalar subquery is encoded as Call("__subquery", {Lit(index)}),
///    where index points into Statement::subqueries; the executor replaces
///    it with the subquery's single value before evaluation.

struct SelectStmt;

/// One item of a SELECT list.
struct SelectItem {
  bool star = false;           // `*` or `alias.*` or the paper's `all`
  std::string star_qualifier;  // alias for `alias.*`, empty for plain `*`
  ExprPtr expr;                // when !star
  std::string alias;           // output name (may be empty -> derived)
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// A FROM source: a named relation (persistent table, or basket read as a
/// temporary table without consumption), or a bracketed basket expression
/// (consuming sub-query).
struct FromItem {
  enum class Kind { kRelation, kBasketExpr };
  Kind kind = Kind::kRelation;
  std::string relation;                      // kRelation
  std::unique_ptr<SelectStmt> basket_query;  // kBasketExpr
  std::string alias;                         // binding name (may be empty)
};

/// SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ... ORDER BY ... TOP n.
/// Also used (with restrictions checked by the binder) as the body of a
/// basket expression, where FROM items must name baskets.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<FromItem> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  /// TOP n / LIMIT n. Inside a basket expression TOP is exact (the window
  /// must fill); in an outer query it is a plain limit.
  std::optional<size_t> top_n;
};

struct InsertStmt {
  std::string target;
  /// Explicit column list (optional).
  std::vector<std::string> columns;
  /// Either VALUES rows ...
  std::vector<std::vector<ExprPtr>> values;
  /// ... or a SELECT (possibly with basket expressions in FROM).
  std::unique_ptr<SelectStmt> select;
};

struct CreateStmt {
  bool is_basket = false;
  std::string name;
  std::vector<std::pair<std::string, std::string>> columns;  // name, type
  /// CHECK constraints (baskets only): tuples violating any are silently
  /// dropped on arrival (§3.2 basket integrity).
  std::vector<ExprPtr> checks;
};

struct DropStmt {
  bool is_basket = false;
  std::string name;
};

struct DeclareStmt {
  std::string name;
  std::string type;
};

struct SetStmt {
  std::string name;
  ExprPtr value;
};

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

/// WITH name AS [basket_query] BEGIN stmt; ... END — the paper's §5 stream
/// split construct: the basket expression is evaluated once (consuming),
/// its result bound as a temporary table visible to every body statement.
struct WithBlockStmt {
  std::string binding;
  std::unique_ptr<SelectStmt> basket_query;
  std::vector<StatementPtr> body;
};

struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kCreate,
    kDrop,
    kDeclare,
    kSet,
    kWithBlock,
    kExplain,
  };
  Kind kind;

  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<CreateStmt> create;
  std::unique_ptr<DropStmt> drop;
  std::unique_ptr<DeclareStmt> declare;
  std::unique_ptr<SetStmt> set;
  std::unique_ptr<WithBlockStmt> with_block;
  /// EXPLAIN <statement>: the wrapped statement is planned, never executed.
  StatementPtr explain_target;

  /// Scalar subqueries referenced from expressions via
  /// Call("__subquery", {Lit(i)}).
  std::vector<std::unique_ptr<SelectStmt>> subqueries;
};

/// Collects the names of every basket-expression FROM source anywhere in
/// the statement (used to derive a continuous query's Petri-net inputs).
void CollectBasketSources(const SelectStmt& stmt,
                          std::vector<std::string>* out);
void CollectBasketSources(const Statement& stmt,
                          std::vector<std::string>* out);

/// The statement contains at least one basket expression — which is what
/// distinguishes a continuous query from a one-time query (§3.4).
bool IsContinuous(const Statement& stmt);

/// Deep copies of the statement tree. Scalar expressions (ExprPtr) are
/// shared, not copied — Expr nodes are immutable after parse, and every
/// rewrite pass builds new nodes rather than mutating in place. The
/// optimizer clones a registered query's statement so the leaf executor
/// can run a rewritten form (shared conjuncts stripped, FROM redirected to
/// the shared leaf basket) without touching the registered original.
std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& stmt);
StatementPtr CloneStatement(const Statement& stmt);

}  // namespace datacell::sql

#endif  // DATACELL_SQL_AST_H_
