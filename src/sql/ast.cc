#include "sql/ast.h"

namespace datacell::sql {

namespace {

void CollectFromSelect(const SelectStmt& stmt, std::vector<std::string>* out,
                       bool inside_basket_expr) {
  for (const FromItem& f : stmt.from) {
    if (f.kind == FromItem::Kind::kBasketExpr && f.basket_query != nullptr) {
      CollectFromSelect(*f.basket_query, out, /*inside_basket_expr=*/true);
    } else if (inside_basket_expr && f.kind == FromItem::Kind::kRelation) {
      out->push_back(f.relation);
    }
  }
}

}  // namespace

void CollectBasketSources(const SelectStmt& stmt,
                          std::vector<std::string>* out) {
  CollectFromSelect(stmt, out, /*inside_basket_expr=*/false);
}

void CollectBasketSources(const Statement& stmt,
                          std::vector<std::string>* out) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      CollectBasketSources(*stmt.select, out);
      break;
    case Statement::Kind::kInsert:
      if (stmt.insert->select != nullptr) {
        CollectBasketSources(*stmt.insert->select, out);
      }
      break;
    case Statement::Kind::kWithBlock:
      if (stmt.with_block->basket_query != nullptr) {
        CollectFromSelect(*stmt.with_block->basket_query, out, true);
      }
      for (const StatementPtr& s : stmt.with_block->body) {
        CollectBasketSources(*s, out);
      }
      break;
    default:
      break;
  }
  for (const auto& sub : stmt.subqueries) {
    if (sub != nullptr) CollectBasketSources(*sub, out);
  }
}

bool IsContinuous(const Statement& stmt) {
  std::vector<std::string> sources;
  CollectBasketSources(stmt, &sources);
  return !sources.empty();
}

}  // namespace datacell::sql
