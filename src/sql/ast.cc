#include "sql/ast.h"

namespace datacell::sql {

namespace {

void CollectFromSelect(const SelectStmt& stmt, std::vector<std::string>* out,
                       bool inside_basket_expr) {
  for (const FromItem& f : stmt.from) {
    if (f.kind == FromItem::Kind::kBasketExpr && f.basket_query != nullptr) {
      CollectFromSelect(*f.basket_query, out, /*inside_basket_expr=*/true);
    } else if (inside_basket_expr && f.kind == FromItem::Kind::kRelation) {
      out->push_back(f.relation);
    }
  }
}

}  // namespace

void CollectBasketSources(const SelectStmt& stmt,
                          std::vector<std::string>* out) {
  CollectFromSelect(stmt, out, /*inside_basket_expr=*/false);
}

void CollectBasketSources(const Statement& stmt,
                          std::vector<std::string>* out) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      CollectBasketSources(*stmt.select, out);
      break;
    case Statement::Kind::kInsert:
      if (stmt.insert->select != nullptr) {
        CollectBasketSources(*stmt.insert->select, out);
      }
      break;
    case Statement::Kind::kWithBlock:
      if (stmt.with_block->basket_query != nullptr) {
        CollectFromSelect(*stmt.with_block->basket_query, out, true);
      }
      for (const StatementPtr& s : stmt.with_block->body) {
        CollectBasketSources(*s, out);
      }
      break;
    case Statement::Kind::kExplain:
      // EXPLAIN never registers anything; basket sources of the wrapped
      // statement are the planner's concern, not the registration path's.
      break;
    default:
      break;
  }
  for (const auto& sub : stmt.subqueries) {
    if (sub != nullptr) CollectBasketSources(*sub, out);
  }
}

bool IsContinuous(const Statement& stmt) {
  std::vector<std::string> sources;
  CollectBasketSources(stmt, &sources);
  return !sources.empty();
}

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& stmt) {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = stmt.distinct;
  out->items = stmt.items;  // SelectItem holds shared ExprPtrs
  out->from.reserve(stmt.from.size());
  for (const FromItem& f : stmt.from) {
    FromItem copy;
    copy.kind = f.kind;
    copy.relation = f.relation;
    copy.alias = f.alias;
    if (f.basket_query != nullptr) copy.basket_query = CloneSelect(*f.basket_query);
    out->from.push_back(std::move(copy));
  }
  out->where = stmt.where;
  out->group_by = stmt.group_by;
  out->having = stmt.having;
  out->order_by = stmt.order_by;
  out->top_n = stmt.top_n;
  return out;
}

StatementPtr CloneStatement(const Statement& stmt) {
  auto out = std::make_unique<Statement>();
  out->kind = stmt.kind;
  if (stmt.select != nullptr) out->select = CloneSelect(*stmt.select);
  if (stmt.insert != nullptr) {
    out->insert = std::make_unique<InsertStmt>();
    out->insert->target = stmt.insert->target;
    out->insert->columns = stmt.insert->columns;
    out->insert->values = stmt.insert->values;
    if (stmt.insert->select != nullptr) {
      out->insert->select = CloneSelect(*stmt.insert->select);
    }
  }
  if (stmt.create != nullptr) {
    out->create = std::make_unique<CreateStmt>(*stmt.create);
  }
  if (stmt.drop != nullptr) out->drop = std::make_unique<DropStmt>(*stmt.drop);
  if (stmt.declare != nullptr) {
    out->declare = std::make_unique<DeclareStmt>(*stmt.declare);
  }
  if (stmt.set != nullptr) out->set = std::make_unique<SetStmt>(*stmt.set);
  if (stmt.with_block != nullptr) {
    out->with_block = std::make_unique<WithBlockStmt>();
    out->with_block->binding = stmt.with_block->binding;
    if (stmt.with_block->basket_query != nullptr) {
      out->with_block->basket_query =
          CloneSelect(*stmt.with_block->basket_query);
    }
    for (const StatementPtr& s : stmt.with_block->body) {
      out->with_block->body.push_back(CloneStatement(*s));
    }
  }
  if (stmt.explain_target != nullptr) {
    out->explain_target = CloneStatement(*stmt.explain_target);
  }
  out->subqueries.reserve(stmt.subqueries.size());
  for (const auto& sub : stmt.subqueries) {
    out->subqueries.push_back(sub == nullptr ? nullptr : CloneSelect(*sub));
  }
  return out;
}

}  // namespace datacell::sql
