#ifndef DATACELL_SQL_SESSION_H_
#define DATACELL_SQL_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "sql/plan/optimizer.h"
#include "util/status.h"

namespace datacell::sql {

/// The SQL entry point of the DataCell: parses scripts, executes one-time
/// statements immediately, and registers statements containing basket
/// expressions as continuous queries. Registration goes through the
/// multi-query optimizer (sql/plan/optimizer.h): with sharing disabled
/// (the default) every query gets the legacy one-factory wiring; with
/// set_sharing_enabled(true) queries inside the plannable subset compile
/// into shared filter-stage subnets.
class Session {
 public:
  explicit Session(core::Engine* engine)
      : engine_(engine),
        executor_(engine),
        optimizer_(engine,
                   [this](const std::string& name,
                          std::shared_ptr<Statement> stmt,
                          core::Emitter::Sink sink) {
                     return BuildFactory(name, std::move(stmt),
                                         std::move(sink));
                   }) {}

  core::Engine* engine() const { return engine_; }

  /// Parses and executes a script of ';'-separated statements one-time.
  /// Returns the result of the last SELECT (empty table if none).
  Result<Table> Execute(const std::string& sql);

  /// Registers a continuous query: the statement must contain at least one
  /// basket expression. Its basket-expression sources become the factory's
  /// Petri-net inputs (a single-source `top n` window raises that input's
  /// firing threshold to n); INSERT targets that are baskets become its
  /// outputs. The factory re-executes the statement on each firing; it is
  /// registered with the engine's scheduler before being returned.
  Result<core::FactoryPtr> RegisterContinuousQuery(const std::string& name,
                                                   const std::string& sql);

  /// Continuous SELECT variant: each firing's non-empty result is handed to
  /// `sink` (e.g. a net::TcpEgress sink, or an output basket appender).
  Result<core::FactoryPtr> RegisterContinuousSelect(const std::string& name,
                                                    const std::string& sql,
                                                    core::Emitter::Sink sink);

  /// Renders a human-readable description of how a statement would run:
  /// kind, one-time vs continuous, basket-expression sources with their
  /// Petri-net firing thresholds, FROM shape, filters, aggregation and
  /// ordering. Purely static — nothing is executed.
  Result<std::string> Explain(const std::string& sql) const;

  /// Drops a standing continuous query by registration name: its
  /// transitions are unregistered (in-flight firings complete first) and,
  /// when it was part of a shared subnet, the net is rebuilt for the
  /// remaining queries without disturbing their result streams.
  Status UnregisterContinuousQuery(const std::string& name) {
    return optimizer_.RemoveQuery(name);
  }

  /// Opt-in multi-query sharing for subsequently registered queries (see
  /// the class comment; default off preserves the legacy wiring exactly).
  void set_sharing_enabled(bool on) { optimizer_.set_sharing_enabled(on); }
  bool sharing_enabled() const { return optimizer_.sharing_enabled(); }

  /// Feeds observed selectivities into the cost model and rebuilds any
  /// shared subnet whose as-built estimates drifted. Returns the number of
  /// subnets rebuilt.
  Result<size_t> Reoptimize() { return optimizer_.Reoptimize(); }

  /// Direct access for embedding scenarios and tests.
  Executor& executor() { return executor_; }
  plan::QuerySetOptimizer& optimizer() { return optimizer_; }

 private:
  /// Builds (without registering) the legacy factory that re-executes the
  /// whole statement each firing — the optimizer's direct path and the
  /// leaf of a shared subnet.
  Result<core::FactoryPtr> BuildFactory(const std::string& name,
                                        std::shared_ptr<Statement> stmt,
                                        core::Emitter::Sink sink);

  /// Renders EXPLAIN output for a parsed target statement: the optimized
  /// logical plan plus the sharing decisions against the standing-query
  /// set, one line per row in a single-column table.
  Result<Table> ExplainPlan(const Statement& target);

  core::Engine* engine_;
  Executor executor_;
  plan::QuerySetOptimizer optimizer_;
};

}  // namespace datacell::sql

#endif  // DATACELL_SQL_SESSION_H_
