#ifndef DATACELL_SQL_SESSION_H_
#define DATACELL_SQL_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "sql/ast.h"
#include "sql/executor.h"
#include "util/status.h"

namespace datacell::sql {

/// The SQL entry point of the DataCell: parses scripts, executes one-time
/// statements immediately, and registers statements containing basket
/// expressions as continuous queries (factories wired into the engine's
/// Petri-net scheduler).
class Session {
 public:
  explicit Session(core::Engine* engine)
      : engine_(engine), executor_(engine) {}

  core::Engine* engine() const { return engine_; }

  /// Parses and executes a script of ';'-separated statements one-time.
  /// Returns the result of the last SELECT (empty table if none).
  Result<Table> Execute(const std::string& sql);

  /// Registers a continuous query: the statement must contain at least one
  /// basket expression. Its basket-expression sources become the factory's
  /// Petri-net inputs (a single-source `top n` window raises that input's
  /// firing threshold to n); INSERT targets that are baskets become its
  /// outputs. The factory re-executes the statement on each firing; it is
  /// registered with the engine's scheduler before being returned.
  Result<core::FactoryPtr> RegisterContinuousQuery(const std::string& name,
                                                   const std::string& sql);

  /// Continuous SELECT variant: each firing's non-empty result is handed to
  /// `sink` (e.g. a net::TcpEgress sink, or an output basket appender).
  Result<core::FactoryPtr> RegisterContinuousSelect(const std::string& name,
                                                    const std::string& sql,
                                                    core::Emitter::Sink sink);

  /// Renders a human-readable description of how a statement would run:
  /// kind, one-time vs continuous, basket-expression sources with their
  /// Petri-net firing thresholds, FROM shape, filters, aggregation and
  /// ordering. Purely static — nothing is executed.
  Result<std::string> Explain(const std::string& sql) const;

  /// Direct access for embedding scenarios and tests.
  Executor& executor() { return executor_; }

 private:
  Result<core::FactoryPtr> MakeFactory(const std::string& name,
                                       std::shared_ptr<Statement> stmt,
                                       core::Emitter::Sink sink);

  core::Engine* engine_;
  Executor executor_;
};

}  // namespace datacell::sql

#endif  // DATACELL_SQL_SESSION_H_
