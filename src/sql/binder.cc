#include "sql/binder.h"

#include "core/basket.h"

namespace datacell::sql {

void NameScope::AddSource(
    const std::string& alias,
    std::vector<std::pair<std::string, std::string>> visible) {
  sources_.push_back({alias, std::move(visible)});
}

Result<std::string> NameScope::Resolve(const std::string& name) const {
  const size_t dot = name.find('.');
  if (dot != std::string::npos) {
    const std::string qualifier = name.substr(0, dot);
    const std::string column = name.substr(dot + 1);
    for (const Source& s : sources_) {
      if (s.alias != qualifier) continue;
      for (const auto& [vis, actual] : s.visible) {
        if (vis == column) return actual;
      }
      return Status::BindError("no column '" + column + "' in source '" +
                               qualifier + "'");
    }
    return Status::BindError("unknown source alias '" + qualifier + "'");
  }
  const std::string* found = nullptr;
  for (const Source& s : sources_) {
    for (const auto& [vis, actual] : s.visible) {
      if (vis != name) continue;
      if (found != nullptr && *found != actual) {
        return Status::BindError("ambiguous column '" + name + "'");
      }
      found = &actual;
    }
  }
  if (found == nullptr) {
    return Status::BindError("unknown column '" + name + "'");
  }
  return *found;
}

bool NameScope::Contains(const std::string& name) const {
  return Resolve(name).ok();
}

bool NameScope::IsAmbiguous(const std::string& name) const {
  if (name.find('.') != std::string::npos) return false;
  const std::string* found = nullptr;
  for (const Source& s : sources_) {
    for (const auto& [vis, actual] : s.visible) {
      if (vis != name) continue;
      if (found != nullptr && *found != actual) return true;
      found = &actual;
    }
  }
  return false;
}

Result<std::vector<std::pair<std::string, std::string>>>
NameScope::StarColumns(const std::string& qualifier) const {
  std::vector<std::pair<std::string, std::string>> out;
  bool matched = false;
  for (const Source& s : sources_) {
    if (!qualifier.empty() && s.alias != qualifier) continue;
    matched = true;
    for (const auto& [vis, actual] : s.visible) {
      if (vis == core::kArrivalColumn) continue;  // internal column
      out.emplace_back(vis, actual);
    }
  }
  if (!qualifier.empty() && !matched) {
    return Status::BindError("unknown source alias '" + qualifier + "'");
  }
  return out;
}

Result<ExprPtr> ResolveColumns(const ExprPtr& expr, const NameScope& scope,
                               bool allow_unresolved) {
  if (expr == nullptr) return ExprPtr(nullptr);
  if (expr->kind == ExprKind::kColumnRef) {
    if (expr->column == "*") return expr;  // count(*) argument marker
    Result<std::string> actual = scope.Resolve(expr->column);
    if (actual.ok()) return Expr::Col(*actual);
    if (allow_unresolved && expr->column.find('.') == std::string::npos &&
        !scope.IsAmbiguous(expr->column)) {
      return expr;  // may be a session variable
    }
    return actual.status();
  }
  if (expr->children.empty()) return expr;
  auto clone = std::make_shared<Expr>(*expr);
  for (ExprPtr& child : clone->children) {
    ASSIGN_OR_RETURN(child, ResolveColumns(child, scope, allow_unresolved));
  }
  return ExprPtr(std::move(clone));
}

bool IsAggregateFunction(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kCall && IsAggregateFunction(expr.func)) {
    return true;
  }
  for (const ExprPtr& c : expr.children) {
    if (c != nullptr && ContainsAggregate(*c)) return true;
  }
  return false;
}

Result<ExprPtr> ExtractAggregates(const ExprPtr& expr,
                                  std::vector<ops::AggItem>* aggs) {
  if (expr == nullptr) return ExprPtr(nullptr);
  if (expr->kind == ExprKind::kCall && IsAggregateFunction(expr->func)) {
    if (expr->children.size() != 1) {
      return Status::BindError("aggregate '" + expr->func +
                               "' takes exactly one argument");
    }
    const ExprPtr& arg = expr->children[0];
    if (arg != nullptr && ContainsAggregate(*arg)) {
      return Status::BindError("nested aggregates are not allowed");
    }
    const bool star =
        arg != nullptr && arg->kind == ExprKind::kColumnRef && arg->column == "*";
    ASSIGN_OR_RETURN(ops::AggFunc func, ops::AggFuncFromName(expr->func, star));
    const std::string name = "_agg" + std::to_string(aggs->size());
    aggs->push_back({func, star ? nullptr : arg, name});
    return Expr::Col(name);
  }
  if (expr->children.empty()) return expr;
  auto clone = std::make_shared<Expr>(*expr);
  for (ExprPtr& child : clone->children) {
    ASSIGN_OR_RETURN(child, ExtractAggregates(child, aggs));
  }
  return ExprPtr(std::move(clone));
}

ExprPtr SubstituteGroupExprs(const ExprPtr& expr,
                             const std::vector<ExprPtr>& group_exprs) {
  if (expr == nullptr) return nullptr;
  const std::string text = expr->ToString();
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    if (group_exprs[i]->ToString() == text) {
      return Expr::Col("_g" + std::to_string(i));
    }
  }
  if (expr->children.empty()) return expr;
  auto clone = std::make_shared<Expr>(*expr);
  for (ExprPtr& child : clone->children) {
    child = SubstituteGroupExprs(child, group_exprs);
  }
  return clone;
}

}  // namespace datacell::sql
