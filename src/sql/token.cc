#include "sql/token.h"

#include <array>

namespace datacell::sql {

namespace {

// Our dialect's reserved words. Type names (int, varchar, ...) and the
// INTERVAL units (second, minute, hour) are NOT reserved; they are looked
// up contextually so columns may be named "minute", "day", etc.
constexpr std::array<const char*, 39> kKeywords = {
    "select", "from",     "where",    "group",    "by",      "order",
    "having", "top",      "limit",    "asc",      "desc",    "and",
    "or",     "not",      "is",       "null",     "true",    "false",
    "insert", "into",     "values",   "create",   "table",   "basket",
    "drop",   "declare",  "set",      "with",     "as",      "begin",
    "end",    "interval", "all",      "distinct", "between", "consume",
    "union",  "call",     "explain",
};

}  // namespace

bool IsReservedKeyword(const std::string& word) {
  for (const char* kw : kKeywords) {
    if (word == kw) return true;
  }
  return false;
}

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kKeyword && text == kw;
}

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kKeyword:
      return "keyword '" + text + "'";
    case TokenKind::kIntLiteral:
    case TokenKind::kDoubleLiteral:
      return "literal " + text;
    case TokenKind::kStringLiteral:
      return "string '" + text + "'";
    case TokenKind::kEnd:
      return "end of input";
    default:
      return "'" + text + "'";
  }
}

}  // namespace datacell::sql
