#ifndef DATACELL_SQL_PLAN_BUILDER_H_
#define DATACELL_SQL_PLAN_BUILDER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sql/ast.h"
#include "sql/plan/cost.h"
#include "sql/plan/plan.h"
#include "util/status.h"

/// Compiles a parsed continuous statement into the plan layer's view of
/// it: the source basket, the normalized conjunct set with shareability
/// classification, the window threshold, and the logical plan tree. The
/// compiler is deliberately strict — any shape it cannot prove safe to
/// share (multi-source merges, WITH blocks, scalar subqueries, inner
/// projections, missing INSERT targets) returns kUnsupported and the
/// session falls back to the legacy one-factory-per-query path, which
/// handles everything.
namespace datacell::sql::plan {

struct CompiledQuery {
  std::string name;
  std::string source_basket;
  /// The original statement, untouched (the leaf rewrite clones it).
  std::shared_ptr<Statement> stmt;
  /// Shareable conjuncts (inner WHERE always; outer WHERE only when the
  /// window is trivial). Unordered — the optimizer orders them per rebuild
  /// by (sharing count, estimated selectivity).
  std::vector<Conjunct> shared;
  /// Petri-net firing threshold of the source/leaf basket (top_n or 1).
  size_t min_tuples = 1;
  /// Inner window has no ORDER BY / TOP — outer conjuncts may push past it.
  bool window_trivial = true;
  /// Logical plan tree (EXPLAIN / dc_plans rendering).
  PlanPtr plan;
};

/// Compiles `stmt` for multi-query optimization. Returns kUnsupported for
/// any statement shape outside the shareable subset (callers fall back to
/// the legacy factory path — never an error surfaced to users).
Result<CompiledQuery> CompileContinuous(core::Engine* engine,
                                        const std::string& name,
                                        std::shared_ptr<Statement> stmt,
                                        const CostModel& cost);

/// Builds the statement the leaf factory of a shared subnet executes: a
/// clone of the original with the inner FROM redirected to `leaf_basket`
/// (binding name preserved, so every column reference still resolves) and
/// every conjunct whose fingerprint is in `strip_fps` removed from the
/// inner and outer WHERE — those are evaluated upstream by shared stages.
Result<std::shared_ptr<Statement>> MakeLeafStatement(
    core::Engine* engine, const CompiledQuery& q,
    const std::string& leaf_basket, const std::set<std::string>& strip_fps);

/// Structural logical plan for EXPLAIN of statements outside the
/// CompileContinuous subset (one-time queries, two-basket merges). Only
/// SELECT / INSERT..SELECT bodies are plannable; everything else is
/// kUnsupported.
Result<PlanPtr> BuildLogicalPlan(core::Engine* engine, const Statement& stmt,
                                 const CostModel& cost);

}  // namespace datacell::sql::plan

#endif  // DATACELL_SQL_PLAN_BUILDER_H_
