#include "sql/plan/optimizer.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <utility>

#include "expr/eval.h"
#include "obs/plans.h"
#include "sql/plan/rewrite.h"
#include "util/logging.h"

namespace datacell::sql::plan {

namespace {

std::string LeafBasketName(const std::string& query) {
  return "mqo.q." + query;
}

// Teardown paths unregister factories that this optimizer registered, so a
// failure (NotFound = already unregistered) is an invariant break worth a
// log line — but never worth abandoning a rebuild halfway through, which
// would strand the surviving queries without a net.
void UnregisterOrWarn(core::Scheduler& scheduler,
                      const core::FactoryPtr& factory, const char* where) {
  if (Status st = scheduler.Unregister(factory); !st.ok()) {
    DC_LOG(Warn) << "optimizer " << where
                 << ": unregister failed: " << st.ToString();
  }
}

std::string ConjunctsText(const std::vector<Conjunct>& cs) {
  if (cs.empty()) return "replicate";
  std::string out;
  for (size_t i = 0; i < cs.size(); ++i) {
    if (i > 0) out += " and ";
    out += cs[i].expr->ToString();
  }
  return out;
}

std::string ConjunctsFps(const std::vector<Conjunct>& cs) {
  std::string out;
  for (size_t i = 0; i < cs.size(); ++i) {
    if (i > 0) out += ",";
    out += cs[i].fp;
  }
  return out;
}

}  // namespace

QuerySetOptimizer::QuerySetOptimizer(core::Engine* engine,
                                     FactoryBuilder builder)
    : engine_(engine), build_factory_(std::move(builder)) {}

QuerySetOptimizer::ConjunctCounters* QuerySetOptimizer::CountersFor(
    const std::string& fp) {
  std::unique_ptr<ConjunctCounters>& slot = counters_[fp];
  if (slot == nullptr) slot = std::make_unique<ConjunctCounters>();
  return slot.get();
}

Result<core::FactoryPtr> QuerySetOptimizer::AddQuery(
    const std::string& name, std::shared_ptr<Statement> stmt,
    core::Emitter::Sink sink) {
  if (queries_.count(name) > 0) {
    return Status::AlreadyExists("continuous query already registered: " +
                                 name);
  }
  QueryInfo info;
  info.stmt = stmt;
  info.sink = std::move(sink);
  if (sharing_enabled_) {
    Result<CompiledQuery> compiled =
        CompileContinuous(engine_, name, stmt, cost_);
    if (compiled.ok()) {
      info.cq = std::move(*compiled);
      info.direct = false;
      RETURN_NOT_OK(AddShared(name, std::move(info)));
      return queries_[name].factory;
    }
  }
  RETURN_NOT_OK(AddDirect(name, std::move(info)));
  return queries_[name].factory;
}

Status QuerySetOptimizer::AddDirect(const std::string& name, QueryInfo info) {
  ASSIGN_OR_RETURN(info.factory, build_factory_(name, info.stmt, info.sink));
  engine_->scheduler().Register(info.factory);
  queries_[name] = std::move(info);
  obs::PlansRegistry::Global().Publish(
      name, {obs::PlanRow{name, name, "direct", "one factory per query", "",
                          1, 0}});
  return Status::OK();
}

Status QuerySetOptimizer::AddShared(const std::string& name, QueryInfo info) {
  const std::string basket = info.cq.source_basket;  // survives the move below
  ASSIGN_OR_RETURN(core::BasketPtr source, engine_->GetBasket(basket));
  ASSIGN_OR_RETURN(
      info.leaf,
      engine_->CreateBasket(LeafBasketName(name), source->schema(),
                            /*add_arrival_ts=*/false));
  queries_[name] = std::move(info);
  ever_shared_.insert(basket);
  Status rebuilt = RebuildSubnet(basket);
  if (!rebuilt.ok()) {
    queries_.erase(name);
    if (Status st = engine_->DropBasket(LeafBasketName(name)); !st.ok()) {
      DC_LOG(Warn) << "optimizer AddQuery rollback: drop leaf basket failed: "
                   << st.ToString();
    }
    return rebuilt;
  }
  return Status::OK();
}

Status QuerySetOptimizer::RemoveQuery(const std::string& name) {
  auto it = queries_.find(name);
  if (it == queries_.end()) {
    return Status::NotFound("no such continuous query: " + name);
  }
  QueryInfo info = std::move(it->second);
  queries_.erase(it);
  obs::PlansRegistry::Global().Retract(name);
  if (info.direct) {
    UnregisterOrWarn(engine_->scheduler(), info.factory, "RemoveQuery");
    return Status::OK();
  }
  // Shared subnet: stop this query's leaf factory, then rebuild the trie
  // for the remaining members. The rebuild's drain delivers in-flight
  // tuples to the survivors' leaves, so their output streams are
  // unaffected by the departure.
  UnregisterOrWarn(engine_->scheduler(), info.factory, "RemoveQuery");
  RETURN_NOT_OK(RebuildSubnet(info.cq.source_basket));
  peak_retired_ = std::max(peak_retired_, info.leaf->stats().peak_rows);
  return engine_->DropBasket(LeafBasketName(name));
}

Status QuerySetOptimizer::DrainSubnet(const std::string& basket,
                                      Subnet* old) {
  // Deepest stages first: tuples resident deeper in the net arrived (and
  // were admitted) earlier, so draining bottom-up appends older tuples to
  // each leaf before younger ones — arrival order is preserved. The source
  // basket itself (root input) is left alone; the new net consumes it.
  EvalContext ectx;
  ectx.now = engine_->Now();
  for (size_t i = old->stages.size(); i-- > 0;) {
    Stage& s = old->stages[i];
    if (s.in->name() == basket) continue;
    peak_retired_ = std::max(peak_retired_, s.in->stats().peak_rows);
    Table residual = s.in->TakeAll();
    if (residual.num_rows() == 0) continue;
    for (const std::string& qname : s.descendants) {
      auto qit = queries_.find(qname);
      if (qit == queries_.end()) continue;  // being removed
      const QueryInfo& q = qit->second;
      // Apply the conjuncts this tuple batch had not yet passed.
      SelVector sel(residual.num_rows());
      std::iota(sel.begin(), sel.end(), 0);
      for (const Conjunct& c : q.cq.shared) {
        if (s.cum_before.count(c.fp) > 0) continue;
        if (sel.empty()) break;
        ASSIGN_OR_RETURN(sel,
                         EvalPredicateOn(residual, *c.expr, sel, ectx));
      }
      if (sel.empty()) continue;
      Table matched = residual.Take(sel);
      ASSIGN_OR_RETURN(size_t appended,
                       q.leaf->AppendAligned(matched, ectx.now));
      (void)appended;
    }
  }
  return Status::OK();
}

Status QuerySetOptimizer::BuildStages(const std::string& basket,
                                      const std::vector<std::string>& members,
                                      Subnet* out) {
  ASSIGN_OR_RETURN(core::BasketPtr source, engine_->GetBasket(basket));

  // How many members share each conjunct: widely shared conjuncts order
  // first so common prefixes factor into one chain; estimated selectivity
  // (live observations override heuristics) breaks ties, fingerprints make
  // the order deterministic.
  std::map<std::string, size_t> share_count;
  for (const std::string& qname : members) {
    for (const Conjunct& c : queries_[qname].cq.shared) {
      share_count[c.fp] += 1;
    }
  }

  struct TrieNode {
    std::map<std::string, TrieNode> kids;  // edge fingerprint -> child
    Conjunct edge;                         // conjunct on the edge into this
    std::vector<std::string> attached;
  };
  TrieNode root;
  for (const std::string& qname : members) {
    std::vector<Conjunct> ordered;
    if (factoring_enabled_) {
      ordered = queries_[qname].cq.shared;
      for (Conjunct& c : ordered) {
        c.est_sel = cost_.EstimateSelectivity(*c.expr, c.fp);
      }
      std::sort(ordered.begin(), ordered.end(),
                [&](const Conjunct& a, const Conjunct& b) {
                  const size_t ca = share_count[a.fp];
                  const size_t cb = share_count[b.fp];
                  if (ca != cb) return ca > cb;
                  if (a.est_sel != b.est_sel) return a.est_sel < b.est_sel;
                  return a.fp < b.fp;
                });
    }
    TrieNode* cur = &root;
    for (const Conjunct& c : ordered) {
      cur = &cur->kids[c.fp];
      cur->edge = c;
    }
    cur->attached.push_back(qname);
  }

  // Trie -> stages with path compression: runs of unattached single-child
  // nodes collapse into one stage evaluating the whole conjunct run.
  std::function<size_t(TrieNode*, std::vector<Conjunct>,
                       std::set<std::string>)>
      build = [&](TrieNode* n, std::vector<Conjunct> lead,
                  std::set<std::string> cum_before) -> size_t {
    while (n->attached.empty() && n->kids.size() == 1) {
      TrieNode& kid = n->kids.begin()->second;
      lead.push_back(kid.edge);
      n = &kid;
    }
    const size_t idx = out->stages.size();
    out->stages.emplace_back();
    std::set<std::string> cum_after = cum_before;
    for (const Conjunct& c : lead) cum_after.insert(c.fp);
    {
      Stage& s = out->stages[idx];
      s.conjuncts = std::move(lead);
      s.cum_before = std::move(cum_before);
      s.attached = n->attached;
      s.descendants = n->attached;
      if (idx == 0) {
        s.name = "mqo." + basket + ".root";
        s.in = source;
      } else {
        std::string path;
        for (const std::string& fp : cum_after) path += fp;
        s.name = "mqo." + basket + ".s" + FingerprintHex(path).substr(0, 8);
        s.in = std::make_shared<core::Basket>(s.name, source->schema(),
                                              /*add_arrival_ts=*/false);
      }
    }
    for (auto& [fp, kid] : n->kids) {
      const size_t cidx = build(&kid, {kid.edge}, cum_after);
      Stage& s = out->stages[idx];
      s.children.push_back(cidx);
      const Stage& child = out->stages[cidx];
      s.descendants.insert(s.descendants.end(), child.descendants.begin(),
                           child.descendants.end());
    }
    return idx;
  };
  build(&root, {}, {});
  return Status::OK();
}

core::Factory::Body QuerySetOptimizer::StageBody(
    const Stage& stage, std::vector<core::BasketPtr> outs) {
  std::vector<Conjunct> conjuncts = stage.conjuncts;
  std::vector<ConjunctCounters*> counters;
  counters.reserve(conjuncts.size());
  for (const Conjunct& c : conjuncts) counters.push_back(CountersFor(c.fp));
  return [conjuncts, counters,
          outs = std::move(outs)](core::FactoryContext& ctx) -> Status {
    Table batch = ctx.input(0).TakeAll();
    const size_t n = batch.num_rows();
    if (n == 0) return Status::OK();
    SelVector sel(n);
    std::iota(sel.begin(), sel.end(), 0);
    const EvalContext ectx = ctx.eval();
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      counters[i]->rows_in.fetch_add(sel.size(), std::memory_order_relaxed);
      ASSIGN_OR_RETURN(
          sel, EvalPredicateOn(batch, *conjuncts[i].expr, sel, ectx));
      counters[i]->rows_out.fetch_add(sel.size(), std::memory_order_relaxed);
    }
    if (sel.empty()) return Status::OK();
    const Table matched = sel.size() == n ? std::move(batch) : batch.Take(sel);
    for (const core::BasketPtr& b : outs) {
      ASSIGN_OR_RETURN(size_t appended, b->AppendAligned(matched, ctx.now()));
      (void)appended;
    }
    return Status::OK();
  };
}

Status QuerySetOptimizer::RebuildSubnet(const std::string& basket) {
  std::vector<std::string> members;
  for (const auto& [qname, q] : queries_) {
    if (!q.direct && q.cq.source_basket == basket) members.push_back(qname);
  }

  // Tear down the old net first: unregister every transition (the
  // scheduler waits out in-flight firings), then drain the old stage
  // baskets into the leaves so no in-flight tuple is lost.
  auto old = subnets_.find(basket);
  if (old != subnets_.end()) {
    for (Stage& s : old->second.stages) {
      UnregisterOrWarn(engine_->scheduler(), s.factory, "RebuildSubnet");
    }
    for (const std::string& qname : members) {
      if (queries_[qname].factory != nullptr) {
        UnregisterOrWarn(engine_->scheduler(), queries_[qname].factory,
                         "RebuildSubnet");
      }
    }
    RETURN_NOT_OK(DrainSubnet(basket, &old->second));
    subnets_.erase(old);
  }
  if (members.empty()) return Status::OK();

  Subnet net;
  RETURN_NOT_OK(BuildStages(basket, members, &net));

  // Leaf factories: the original statement with the upstream-evaluated
  // conjuncts stripped and its FROM redirected to the leaf basket.
  for (const std::string& qname : members) {
    QueryInfo& q = queries_[qname];
    std::set<std::string> strip;
    for (const Stage& s : net.stages) {
      if (std::find(s.attached.begin(), s.attached.end(), qname) ==
          s.attached.end()) {
        continue;
      }
      strip = s.cum_before;
      for (const Conjunct& c : s.conjuncts) strip.insert(c.fp);
      break;
    }
    ASSIGN_OR_RETURN(std::shared_ptr<Statement> leaf_stmt,
                     MakeLeafStatement(engine_, q.cq, LeafBasketName(qname),
                                       strip));
    ASSIGN_OR_RETURN(q.factory, build_factory_(qname, leaf_stmt, q.sink));
  }

  // Stage factories, wired to child stage baskets + attached leaves.
  for (size_t i = 0; i < net.stages.size(); ++i) {
    Stage& s = net.stages[i];
    std::vector<core::BasketPtr> outs;
    for (const size_t c : s.children) outs.push_back(net.stages[c].in);
    for (const std::string& qname : s.attached) {
      outs.push_back(queries_[qname].leaf);
    }
    auto factory = std::make_shared<core::Factory>(s.name, StageBody(s, outs));
    factory->AddInput(s.in, 1);
    for (const core::BasketPtr& b : outs) factory->AddOutput(b);
    s.factory = std::move(factory);
  }

  // Register leaves before stages so a stage's very first firing signals
  // an already-listening consumer (Register itself re-checks eligibility,
  // so drained-in rows also wake the leaves immediately).
  for (const std::string& qname : members) {
    engine_->scheduler().Register(queries_[qname].factory);
  }
  for (Stage& s : net.stages) engine_->scheduler().Register(s.factory);

  PublishPlans(basket, net);
  subnets_[basket] = std::move(net);
  return Status::OK();
}

void QuerySetOptimizer::PublishPlans(const std::string& basket,
                                     const Subnet& net) {
  if (net.stages.empty()) return;
  double base = static_cast<double>(net.stages[0].in->size());
  if (base <= 0) base = 1000;
  for (const std::string& qname : net.stages[0].descendants) {
    std::vector<obs::PlanRow> rows;
    double est = base;
    for (const Stage& s : net.stages) {
      if (std::find(s.descendants.begin(), s.descendants.end(), qname) ==
          s.descendants.end()) {
        continue;
      }
      for (const Conjunct& c : s.conjuncts) est *= c.est_sel;
      est = std::max(est, 1.0);
      rows.push_back(obs::PlanRow{
          qname, s.name, "stage", ConjunctsText(s.conjuncts),
          ConjunctsFps(s.conjuncts),
          static_cast<int64_t>(s.descendants.size()), est});
    }
    rows.push_back(obs::PlanRow{qname, qname, "leaf",
                                "execute rewritten statement on mqo.q." +
                                    qname,
                                "", 1, est});
    obs::PlansRegistry::Global().Publish(qname, std::move(rows));
  }
  (void)basket;
}

size_t QuerySetOptimizer::SharedCount(const std::string& basket,
                                      const std::string& fp) const {
  size_t n = 0;
  for (const auto& [qname, q] : queries_) {
    if (q.direct || q.cq.source_basket != basket) continue;
    for (const Conjunct& c : q.cq.shared) {
      if (c.fp == fp) {
        ++n;
        break;
      }
    }
  }
  return n;
}

uint64_t QuerySetOptimizer::PeakResidentRows() const {
  uint64_t peak = peak_retired_;
  for (const auto& [basket, net] : subnets_) {
    for (const Stage& s : net.stages) {
      if (s.in->name() == basket) continue;  // source basket is not ours
      peak = std::max(peak, s.in->stats().peak_rows);
    }
  }
  for (const auto& [qname, q] : queries_) {
    if (q.leaf != nullptr) peak = std::max(peak, q.leaf->stats().peak_rows);
  }
  return peak;
}

Result<size_t> QuerySetOptimizer::Reoptimize() {
  for (const auto& [fp, counters] : counters_) {
    cost_.RecordObserved(fp,
                         counters->rows_in.load(std::memory_order_relaxed),
                         counters->rows_out.load(std::memory_order_relaxed));
  }
  std::vector<std::string> drifted;
  for (const auto& [basket, net] : subnets_) {
    bool dirty = false;
    for (const Stage& s : net.stages) {
      for (const Conjunct& c : s.conjuncts) {
        if (cost_.Drifted(c.est_sel, c.fp)) {
          dirty = true;
          break;
        }
      }
      if (dirty) break;
    }
    if (dirty) drifted.push_back(basket);
  }
  for (const std::string& basket : drifted) {
    RETURN_NOT_OK(RebuildSubnet(basket));
  }
  return drifted.size();
}

}  // namespace datacell::sql::plan
