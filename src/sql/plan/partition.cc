#include "sql/plan/partition.h"

#include <algorithm>
#include <utility>

namespace datacell::sql::plan {

size_t ResolvePartitions(core::Engine* engine) {
  Result<Value> v = engine->GetVariable("dc_shards");
  if (!v.ok() || !v->is_int()) return 1;
  const int64_t n = v->int_value();
  return n < 1 ? 1 : static_cast<size_t>(n);
}

Result<PartitionedChain> BuildPartitionedChain(core::Engine* engine,
                                               const PartitionSpec& spec,
                                               const Schema& schema,
                                               const StageBuilder& stage) {
  if (spec.partitions == 0) {
    return Status::InvalidArgument("partitions must be >= 1");
  }
  PartitionedChain chain;
  // Split the aggregate resident bound across partitions so the sharded
  // configuration holds the same total as the unsharded one.
  const size_t per_partition_cap =
      spec.capacity == 0
          ? 0
          : std::max<size_t>(1, spec.capacity / spec.partitions);
  for (size_t k = 0; k < spec.partitions; ++k) {
    const std::string name = spec.base + ".s" + std::to_string(k);
    core::BasketPtr in;
    if (per_partition_cap > 0) {
      ASSIGN_OR_RETURN(in,
                       engine->CreateBoundedBasket(name, schema,
                                                   per_partition_cap));
    } else {
      ASSIGN_OR_RETURN(in, engine->CreateBasket(name, schema));
    }
    chain.inputs.push_back(in);
    if (stage) {
      ASSIGN_OR_RETURN(core::BasketPtr out, stage(k, in));
      chain.outputs.push_back(std::move(out));
    } else {
      chain.outputs.push_back(in);
    }
  }
  // The merged basket carries the stage outputs' full schema (arrival
  // stamps included) so the merge appends aligned, preserving each
  // tuple's original arrival time across the re-join.
  ASSIGN_OR_RETURN(chain.merged,
                   engine->CreateBasket(spec.base + ".merged",
                                        chain.outputs.front()->schema(),
                                        /*add_arrival_ts=*/false));
  chain.merge = engine->Register(core::MakeMergeTransition(
      spec.base + ".merge", chain.outputs, chain.merged));
  return chain;
}

}  // namespace datacell::sql::plan
