#ifndef DATACELL_SQL_PLAN_PARTITION_H_
#define DATACELL_SQL_PLAN_PARTITION_H_

#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/merge.h"
#include "util/status.h"

/// Partition-aware factory instantiation for the sharded ingress path
/// (DESIGN.md §15): the sharded gateway delivers each shard's tuples into
/// its own bounded basket `<base>.s<k>`; this builder clones the stage
/// pipeline once per partition (the same shared stage factories the
/// multi-query optimizer emits, instantiated per shard) and re-joins the
/// partition outputs through the explicit core::MergeTransition so
/// cross-partition aggregates/joins run over one merged place.
///
/// Determinism: the merge consumes partitions in shard order 0..N-1 every
/// firing, so the merged basket's contents are byte-identical to running
/// the same per-partition arrival sequences unsharded (verified by
/// tests/partition_test.cc).
namespace datacell::sql::plan {

/// Reads the `dc_shards` session variable (`SET dc_shards = N` /
/// datacell_server's DATACELL_SHARDS): the number of ingress partitions
/// plans should be instantiated for. Unset, non-integer or < 1 → 1.
size_t ResolvePartitions(core::Engine* engine);

/// Clones one partition's stage pipeline: called once per partition with
/// the partition index and that partition's ingress basket; creates (and
/// registers with the engine's scheduler) whatever stage transitions the
/// plan needs, returning the partition's final output basket. A null
/// builder means no per-partition stages — the merge reads the ingress
/// baskets directly.
using StageBuilder = std::function<Result<core::BasketPtr>(
    size_t partition, const core::BasketPtr& in)>;

struct PartitionSpec {
  std::string base;          // basket name prefix, e.g. "b0"
  size_t partitions = 1;     // normally ResolvePartitions(engine)
  /// Total ingress capacity across partitions (0 = unbounded); each
  /// partition basket is bounded at capacity/partitions (>= 1) so the
  /// aggregate resident bound matches the unsharded configuration.
  size_t capacity = 0;
};

struct PartitionedChain {
  /// Per-shard ingress baskets `<base>.s<k>`, shard order — one per
  /// ShardedIngress shard receptor.
  std::vector<core::BasketPtr> inputs;
  /// Per-partition stage outputs (== inputs when no StageBuilder).
  std::vector<core::BasketPtr> outputs;
  /// `<base>.merged`: the single place downstream consumers read.
  core::BasketPtr merged;
  /// The fixed-shard-order merge transition (already registered).
  core::TransitionPtr merge;
};

/// Builds the partitioned ingress topology: `spec.partitions` bounded
/// baskets `<base>.s<k>` over `schema`, a cloned stage pipeline per
/// partition, and a fixed-order merge into `<base>.merged`. All baskets
/// are created through the engine (visible to SQL and ingest replay); the
/// merge transition is registered with the engine's scheduler. With
/// `spec.partitions == 1` the topology still works and is simply a
/// pass-through chain — callers need no special case.
Result<PartitionedChain> BuildPartitionedChain(core::Engine* engine,
                                               const PartitionSpec& spec,
                                               const Schema& schema,
                                               const StageBuilder& stage);

}  // namespace datacell::sql::plan

#endif  // DATACELL_SQL_PLAN_PARTITION_H_
