#include "sql/plan/rewrite.h"

#include <algorithm>
#include <utility>

namespace datacell::sql::plan {

namespace {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp MirrorComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // =, <> are symmetric
  }
}

bool IsCommutative(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
    case BinaryOp::kAdd:
    case BinaryOp::kMul:
      return true;
    default:
      return false;
  }
}

}  // namespace

ExprPtr NormalizePredicate(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  // Normalize children first, then this node against the normalized forms.
  std::vector<ExprPtr> kids;
  kids.reserve(expr->children.size());
  bool changed = false;
  for (const ExprPtr& c : expr->children) {
    ExprPtr n = NormalizePredicate(c);
    changed = changed || (n != c);
    kids.push_back(std::move(n));
  }

  if (expr->kind == ExprKind::kBinary && kids.size() == 2) {
    if (IsComparison(expr->bop) && kids[0]->kind == ExprKind::kLiteral &&
        kids[1]->kind != ExprKind::kLiteral) {
      return Expr::Bin(MirrorComparison(expr->bop), kids[1], kids[0]);
    }
    if (IsCommutative(expr->bop) && kids[1]->ToString() < kids[0]->ToString()) {
      return Expr::Bin(expr->bop, kids[1], kids[0]);
    }
  }
  if (!changed) return expr;
  auto clone = std::make_shared<Expr>(*expr);
  clone->children = std::move(kids);
  return clone;
}

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->bop == BinaryOp::kAnd) {
    SplitConjuncts(expr->children[0], out);
    SplitConjuncts(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr combined;
  for (const ExprPtr& c : conjuncts) {
    combined = Expr::AndMaybe(std::move(combined), c);
  }
  return combined;
}

bool IsStreamStatic(const Expr& expr) {
  if (expr.kind == ExprKind::kCall && expr.func == "now") return false;
  for (const ExprPtr& c : expr.children) {
    if (c != nullptr && !IsStreamStatic(*c)) return false;
  }
  return true;
}

void OrderBySelectivity(std::vector<Conjunct>* conjuncts) {
  std::stable_sort(conjuncts->begin(), conjuncts->end(),
                   [](const Conjunct& a, const Conjunct& b) {
                     if (a.est_sel != b.est_sel) return a.est_sel < b.est_sel;
                     return a.fp < b.fp;
                   });
}

}  // namespace datacell::sql::plan
