#include "sql/plan/builder.h"

#include <algorithm>
#include <utility>

#include "column/table.h"
#include "core/basket.h"
#include "obs/tables.h"
#include "sql/binder.h"
#include "sql/plan/rewrite.h"

namespace datacell::sql::plan {

namespace {

constexpr double kDefaultRows = 1000;

// The statement's SELECT body, or null for statements with no relational
// plan (CREATE, SET, ...). INSERT .. VALUES has no body either.
const SelectStmt* BodySelect(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return stmt.select.get();
    case Statement::Kind::kInsert:
      return stmt.insert ? stmt.insert->select.get() : nullptr;
    default:
      return nullptr;
  }
}

SelectStmt* MutableBodySelect(Statement& stmt) {
  return const_cast<SelectStmt*>(BodySelect(stmt));
}

std::vector<std::pair<std::string, std::string>> VisibleSelf(
    const Schema& schema) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) out.emplace_back(f.name, f.name);
  return out;
}

// The name column references bind to: the explicit alias, else the
// relation name (matches the executor's scoping).
std::string BindingName(const FromItem& item) {
  return item.alias.empty() ? item.relation : item.alias;
}

struct ClassifiedConjunct {
  ExprPtr original;    // as parsed (the leaf rewrite keeps these)
  ExprPtr normalized;  // resolved + canonically normalized
  std::string fp;
  bool shareable = false;
};

// Splits, resolves, normalizes and fingerprints a WHERE clause against a
// single-source scope. With a null schema the conjuncts are normalized but
// not resolved and never shareable (EXPLAIN of shapes outside the shared
// subset still renders stable fingerprints).
Result<std::vector<ClassifiedConjunct>> ClassifyConjuncts(
    const ExprPtr& where, const std::string& binding, const Schema* schema) {
  std::vector<ClassifiedConjunct> out;
  std::vector<ExprPtr> split;
  SplitConjuncts(where, &split);
  NameScope scope;
  if (schema != nullptr) scope.AddSource(binding, VisibleSelf(*schema));
  for (const ExprPtr& c : split) {
    ClassifiedConjunct cc;
    cc.original = c;
    ExprPtr resolved = c;
    if (schema != nullptr) {
      ASSIGN_OR_RETURN(resolved,
                       ResolveColumns(c, scope, /*allow_unresolved=*/true));
    }
    cc.normalized = NormalizePredicate(resolved);
    cc.fp = FingerprintHex(cc.normalized->ToString());
    if (schema != nullptr && IsStreamStatic(*cc.normalized)) {
      // Shareable only when the stage can evaluate it standalone: every
      // name resolves against the source schema and the result is boolean.
      Result<DataType> t = InferExprType(*schema, *cc.normalized);
      cc.shareable = t.ok() && *t == DataType::kBool;
    }
    out.push_back(std::move(cc));
  }
  return out;
}

std::vector<Conjunct> ToConjuncts(const std::vector<ClassifiedConjunct>& ccs,
                                  const CostModel& cost) {
  std::vector<Conjunct> out;
  out.reserve(ccs.size());
  for (const ClassifiedConjunct& cc : ccs) {
    Conjunct c;
    c.expr = cc.normalized;
    c.fp = cc.fp;
    c.est_sel = cost.EstimateSelectivity(*cc.normalized, cc.fp);
    c.shareable = cc.shareable;
    out.push_back(std::move(c));
  }
  return out;
}

double ApplySelectivity(double rows, const std::vector<Conjunct>& conjuncts) {
  for (const Conjunct& c : conjuncts) rows *= c.est_sel;
  return std::max(rows, 1.0);
}

std::string WindowDetail(const SelectStmt& inner) {
  std::string d;
  if (!inner.order_by.empty()) {
    d += "order by ";
    for (size_t i = 0; i < inner.order_by.size(); ++i) {
      if (i > 0) d += ", ";
      d += inner.order_by[i].expr->ToString();
      if (!inner.order_by[i].ascending) d += " desc";
    }
  }
  if (inner.top_n.has_value()) {
    if (!d.empty()) d += " ";
    d += "top " + std::to_string(*inner.top_n);
  }
  if (d.empty()) d = "pass-through";
  return d;
}

std::string ItemsDetail(const SelectStmt& stmt) {
  std::string d;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (i > 0) d += ", ";
    if (item.star) {
      d += item.star_qualifier.empty() ? "*" : item.star_qualifier + ".*";
    } else {
      d += item.expr->ToString();
      if (!item.alias.empty()) d += " as " + item.alias;
    }
  }
  return d;
}

std::string AggregateDetail(const SelectStmt& stmt) {
  if (stmt.group_by.empty()) return "scalar";
  std::string d = "group by ";
  for (size_t i = 0; i < stmt.group_by.size(); ++i) {
    if (i > 0) d += ", ";
    d += stmt.group_by[i]->ToString();
  }
  return d;
}

bool HasAggregation(const SelectStmt& stmt) {
  if (!stmt.group_by.empty() || stmt.having != nullptr) return true;
  for (const SelectItem& item : stmt.items) {
    if (!item.star && item.expr != nullptr && ContainsAggregate(*item.expr)) {
      return true;
    }
  }
  return false;
}

double SourceEstimate(core::Engine* engine, const std::string& relation) {
  if (engine->HasBasket(relation)) {
    Result<core::BasketPtr> b = engine->GetBasket(relation);
    if (b.ok() && (*b)->size() > 0) return static_cast<double>((*b)->size());
    return kDefaultRows;
  }
  if (engine->catalog().HasTable(relation)) {
    Result<std::shared_ptr<Table>> t = engine->catalog().GetTable(relation);
    if (t.ok() && (*t)->num_rows() > 0) {
      return static_cast<double>((*t)->num_rows());
    }
  }
  return kDefaultRows;
}

// Finishes a plan over the materialized window: post-window filter,
// aggregation, projection (with outer order/limit folded into the detail).
PlanPtr FinishBody(const SelectStmt& body, PlanPtr p, double rows,
                   std::vector<Conjunct> post_filter) {
  if (!post_filter.empty()) {
    OrderBySelectivity(&post_filter);
    rows = ApplySelectivity(rows, post_filter);
    p = MakeFilter(std::move(p), std::move(post_filter), rows);
  }
  if (HasAggregation(body)) {
    rows = body.group_by.empty() ? 1.0 : std::max(1.0, rows * 0.1);
    p = MakeUnary(PlanNodeKind::kAggregate, std::move(p),
                  AggregateDetail(body), rows);
  }
  std::string detail = ItemsDetail(body);
  if (!body.order_by.empty() || body.top_n.has_value()) {
    if (body.top_n.has_value()) {
      rows = std::min(rows, static_cast<double>(*body.top_n));
    }
    detail += " (" + WindowDetail(body) + ")";
  }
  return MakeUnary(PlanNodeKind::kProject, std::move(p), detail, rows);
}

}  // namespace

Result<CompiledQuery> CompileContinuous(core::Engine* engine,
                                        const std::string& name,
                                        std::shared_ptr<Statement> stmt,
                                        const CostModel& cost) {
  const SelectStmt* body = BodySelect(*stmt);
  if (body == nullptr) {
    return Status::Unsupported("not a SELECT / INSERT .. SELECT statement");
  }
  if (!stmt->subqueries.empty()) {
    return Status::Unsupported("scalar subqueries are not plannable");
  }
  if (stmt->kind == Statement::Kind::kInsert) {
    const std::string& target = stmt->insert->target;
    // The legacy path auto-creates missing targets on first firing; the
    // shared path needs the schema up front, so defer to legacy.
    if (!engine->HasBasket(target) && !engine->catalog().HasTable(target)) {
      return Status::Unsupported("insert target does not exist yet: " +
                                 target);
    }
  }
  if (body->from.size() != 1 ||
      body->from[0].kind != FromItem::Kind::kBasketExpr ||
      body->from[0].basket_query == nullptr) {
    return Status::Unsupported(
        "plannable queries read exactly one basket expression");
  }
  const SelectStmt& inner = *body->from[0].basket_query;
  if (inner.from.size() != 1 ||
      inner.from[0].kind != FromItem::Kind::kRelation) {
    return Status::Unsupported("basket expression must name one basket");
  }
  const std::string& source = inner.from[0].relation;
  if (!engine->HasBasket(source)) {
    return Status::Unsupported("source is not a basket: " + source);
  }
  const bool plain_star = inner.items.size() == 1 && inner.items[0].star &&
                          inner.items[0].star_qualifier.empty();
  if (!plain_star || inner.distinct || !inner.group_by.empty() ||
      inner.having != nullptr) {
    return Status::Unsupported("basket expression must be a plain select *");
  }
  ASSIGN_OR_RETURN(core::BasketPtr basket, engine->GetBasket(source));
  const Schema& schema = basket->schema();

  CompiledQuery q;
  q.name = name;
  q.source_basket = source;
  q.stmt = std::move(stmt);
  q.window_trivial = !inner.top_n.has_value() && inner.order_by.empty();
  q.min_tuples = inner.top_n.value_or(1);

  ASSIGN_OR_RETURN(
      std::vector<ClassifiedConjunct> inner_cc,
      ClassifyConjuncts(inner.where, BindingName(inner.from[0]), &schema));
  // The outer scope sees the window under the basket expression's alias; a
  // plain-star window exposes the full source schema.
  ASSIGN_OR_RETURN(
      std::vector<ClassifiedConjunct> outer_cc,
      ClassifyConjuncts(body->where, body->from[0].alias, &schema));

  std::vector<Conjunct> pushed;
  std::vector<Conjunct> inner_residual;
  for (Conjunct& c : ToConjuncts(inner_cc, cost)) {
    (c.shareable ? pushed : inner_residual).push_back(std::move(c));
  }
  std::vector<Conjunct> outer_residual;
  for (Conjunct& c : ToConjuncts(outer_cc, cost)) {
    // Outer conjuncts may only cross a non-trivial window if it cannot
    // change their input set — i.e. never. With a trivial (pass-through)
    // window pushing them down is safe.
    if (q.window_trivial && c.shareable) {
      pushed.push_back(std::move(c));
    } else {
      outer_residual.push_back(std::move(c));
    }
  }
  q.shared = pushed;

  // Logical tree: scan -> filter(pushed + inner residual) -> window ->
  // filter(outer residual) -> [aggregate] -> project.
  double rows = SourceEstimate(engine, source);
  PlanPtr p = MakeScan(source, /*is_basket=*/true, rows);
  std::vector<Conjunct> pre = pushed;
  pre.insert(pre.end(), inner_residual.begin(), inner_residual.end());
  if (!pre.empty()) {
    OrderBySelectivity(&pre);
    rows = ApplySelectivity(rows, pre);
    p = MakeFilter(std::move(p), std::move(pre), rows);
  }
  if (!q.window_trivial) {
    if (inner.top_n.has_value()) {
      rows = std::min(rows, static_cast<double>(*inner.top_n));
    }
    p = MakeUnary(PlanNodeKind::kWindow, std::move(p), WindowDetail(inner),
                  rows);
  }
  q.plan = FinishBody(*body, std::move(p), rows, std::move(outer_residual));
  return q;
}

Result<std::shared_ptr<Statement>> MakeLeafStatement(
    core::Engine* engine, const CompiledQuery& q,
    const std::string& leaf_basket, const std::set<std::string>& strip_fps) {
  std::shared_ptr<Statement> clone = CloneStatement(*q.stmt);
  SelectStmt* body = MutableBodySelect(*clone);
  if (body == nullptr || body->from.size() != 1 ||
      body->from[0].basket_query == nullptr) {
    return Status::Internal("leaf rewrite on a non-plannable statement");
  }
  SelectStmt& inner = *body->from[0].basket_query;
  const std::string binding = BindingName(inner.from[0]);
  ASSIGN_OR_RETURN(core::BasketPtr basket, engine->GetBasket(q.source_basket));
  const Schema& schema = basket->schema();

  // Drop every conjunct an upstream shared stage already evaluated.
  // Fingerprints are recomputed through the same resolve+normalize path
  // CompileContinuous used, so they match exactly.
  auto strip = [&](const ExprPtr& where,
                   const std::string& scope_binding) -> Result<ExprPtr> {
    ASSIGN_OR_RETURN(std::vector<ClassifiedConjunct> ccs,
                     ClassifyConjuncts(where, scope_binding, &schema));
    std::vector<ExprPtr> keep;
    for (const ClassifiedConjunct& cc : ccs) {
      if (strip_fps.count(cc.fp) == 0) keep.push_back(cc.original);
    }
    return AndAll(keep);
  };
  ASSIGN_OR_RETURN(inner.where, strip(inner.where, binding));
  ASSIGN_OR_RETURN(body->where, strip(body->where, body->from[0].alias));

  // Redirect the consume to the shared leaf basket; keeping the original
  // binding name means every remaining column reference still resolves.
  inner.from[0].relation = leaf_basket;
  inner.from[0].alias = binding;
  return clone;
}

Result<PlanPtr> BuildLogicalPlan(core::Engine* engine, const Statement& stmt,
                                 const CostModel& cost) {
  const SelectStmt* body = BodySelect(stmt);
  if (body == nullptr) {
    return Status::Unsupported(
        "EXPLAIN supports SELECT and INSERT .. SELECT statements");
  }
  if (body->from.empty()) {
    return MakeUnary(PlanNodeKind::kProject, MakeScan("dual", false, 1),
                     ItemsDetail(*body), 1);
  }
  if (body->from.size() > 2) {
    return Status::Unsupported("more than two FROM sources");
  }

  // One plan per source. Predicates here are normalized + fingerprinted
  // but not resolved or pushed — this path only renders structure.
  auto source_plan = [&](const FromItem& item) -> Result<PlanPtr> {
    if (item.kind == FromItem::Kind::kRelation) {
      const bool basket = engine->HasBasket(item.relation);
      return MakeScan(item.relation, basket,
                      obs::IsVirtualTable(item.relation)
                          ? 100
                          : SourceEstimate(engine, item.relation));
    }
    const SelectStmt& inner = *item.basket_query;
    if (inner.from.size() != 1 ||
        inner.from[0].kind != FromItem::Kind::kRelation) {
      return Status::Unsupported("nested basket expression shape");
    }
    double rows = SourceEstimate(engine, inner.from[0].relation);
    PlanPtr p = MakeScan(inner.from[0].relation, /*is_basket=*/true, rows);
    ASSIGN_OR_RETURN(
        std::vector<ClassifiedConjunct> ccs,
        ClassifyConjuncts(inner.where, BindingName(inner.from[0]), nullptr));
    if (!ccs.empty()) {
      std::vector<Conjunct> conjuncts = ToConjuncts(ccs, cost);
      OrderBySelectivity(&conjuncts);
      rows = ApplySelectivity(rows, conjuncts);
      p = MakeFilter(std::move(p), std::move(conjuncts), rows);
    }
    if (inner.top_n.has_value() || !inner.order_by.empty()) {
      if (inner.top_n.has_value()) {
        rows = std::min(rows, static_cast<double>(*inner.top_n));
      }
      p = MakeUnary(PlanNodeKind::kWindow, std::move(p), WindowDetail(inner),
                    rows);
    }
    return p;
  };

  ASSIGN_OR_RETURN(PlanPtr left, source_plan(body->from[0]));
  double rows = left->est_rows;
  PlanPtr p = left;
  std::vector<Conjunct> post;
  if (body->from.size() == 2) {
    ASSIGN_OR_RETURN(PlanPtr right, source_plan(body->from[1]));
    rows = std::max(1.0, rows * right->est_rows * 0.01);
    const std::string detail =
        body->where != nullptr ? body->where->ToString() : "cross";
    p = MakeJoin(std::move(p), std::move(right), detail, rows);
  } else if (body->where != nullptr) {
    ASSIGN_OR_RETURN(std::vector<ClassifiedConjunct> ccs,
                     ClassifyConjuncts(body->where, body->from[0].alias,
                                       nullptr));
    post = ToConjuncts(ccs, cost);
  }
  return FinishBody(*body, std::move(p), rows, std::move(post));
}

}  // namespace datacell::sql::plan
