#ifndef DATACELL_SQL_PLAN_OPTIMIZER_H_
#define DATACELL_SQL_PLAN_OPTIMIZER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "sql/ast.h"
#include "sql/plan/builder.h"
#include "sql/plan/cost.h"
#include "util/status.h"

/// The multi-query optimizer: owns the standing-query set and compiles it
/// into a shared Petri net. Queries whose shape the plan compiler accepts
/// are decomposed into
///
///   source basket -> shared filter stages (a trie of normalized conjunct
///   fingerprints, common prefixes factored into one factory chain) ->
///   per-query leaf basket -> leaf factory (the original statement with the
///   shared conjuncts stripped and FROM redirected to the leaf).
///
/// Everything else — and everything while sharing is disabled, the default
/// — runs "direct": the exact legacy one-factory-per-query wiring, built by
/// the injected factory builder. Direct mode is byte-for-byte the seed
/// behavior (including competing consumption when several queries read one
/// basket); shared mode replicates qualifying tuples so every query sees
/// the full stream, which is the semantics the sharing ablation measures.
///
/// Thread-model: registration, removal and re-optimization happen on one
/// driver thread (the same discipline as sql::Session); the built net is
/// what scheduler workers execute. Rebuilds unregister the subnet's
/// transitions (the scheduler waits out in-flight firings), drain in-flight
/// tuples deepest-stage-first into the leaf baskets — applying each
/// query's not-yet-evaluated conjuncts — and only then wire the new net,
/// so no tuple is lost, duplicated or reordered across a rebuild.
namespace datacell::sql::plan {

class QuerySetOptimizer {
 public:
  /// Builds (without registering) a factory that executes a statement each
  /// firing — injected by the session so this layer needs no executor
  /// dependency.
  using FactoryBuilder = std::function<Result<core::FactoryPtr>(
      const std::string& name, std::shared_ptr<Statement> stmt,
      core::Emitter::Sink sink)>;

  QuerySetOptimizer(core::Engine* engine, FactoryBuilder builder);

  /// Sharing is opt-in per session: off (default) keeps every query on the
  /// legacy direct path.
  void set_sharing_enabled(bool on) { sharing_enabled_ = on; }
  bool sharing_enabled() const { return sharing_enabled_; }

  /// With factoring off (but sharing on) the shared net still replicates
  /// the stream to per-query leaf baskets but factors nothing — every leaf
  /// evaluates its full predicate. The sharing ablation's baseline: same
  /// delivery semantics, none of the shared work.
  void set_factoring_enabled(bool on) { factoring_enabled_ = on; }
  bool factoring_enabled() const { return factoring_enabled_; }

  /// Registers a continuous query. Returns the transition that carries the
  /// query's name: the direct factory, or the leaf factory of its shared
  /// subnet. kAlreadyExists if the name is taken.
  Result<core::FactoryPtr> AddQuery(const std::string& name,
                                    std::shared_ptr<Statement> stmt,
                                    core::Emitter::Sink sink);

  /// Unregisters one query. In a shared subnet the remaining queries'
  /// stage trie is rebuilt (with the in-flight drain protocol), so their
  /// result streams are unaffected.
  Status RemoveQuery(const std::string& name);

  bool HasQuery(const std::string& name) const {
    return queries_.count(name) > 0;
  }
  size_t num_queries() const { return queries_.size(); }

  /// Feeds observed per-conjunct selectivities into the cost model and
  /// rebuilds every subnet whose as-built estimates have drifted past
  /// CostModel::kDriftRatio. Returns the number of subnets rebuilt.
  Result<size_t> Reoptimize();

  /// Standing queries on `basket` sharing conjunct `fp` (EXPLAIN's
  /// shared_by annotation).
  size_t SharedCount(const std::string& basket, const std::string& fp) const;

  /// High-water mark of rows resident in optimizer-owned baskets (stage +
  /// leaf): the sharing ablation's memory metric.
  uint64_t PeakResidentRows() const;

  const CostModel& cost() const { return cost_; }

 private:
  struct ConjunctCounters {
    std::atomic<uint64_t> rows_in{0};
    std::atomic<uint64_t> rows_out{0};
  };

  struct QueryInfo {
    CompiledQuery cq;  // meaningful only when !direct
    std::shared_ptr<Statement> stmt;
    core::Emitter::Sink sink;
    bool direct = true;
    core::FactoryPtr factory;  // direct factory or current leaf factory
    core::BasketPtr leaf;      // shared mode: engine basket "mqo.q.<name>"
  };

  /// One shared filter stage: a factory that drains `in`, evaluates
  /// `conjuncts` in order and replicates survivors to the child stages'
  /// baskets and the attached queries' leaf baskets.
  struct Stage {
    std::string name;
    core::BasketPtr in;  // source basket for the root, own basket otherwise
    std::vector<Conjunct> conjuncts;
    /// Conjunct fps evaluated upstream of `in` (excludes this stage's own).
    std::set<std::string> cum_before;
    std::vector<std::string> attached;     // queries fed from this stage
    std::vector<std::string> descendants;  // queries fed from here or below
    std::vector<size_t> children;          // child stage indices
    core::FactoryPtr factory;
  };

  struct Subnet {
    std::vector<Stage> stages;  // index 0 = root; parents precede children
  };

  Status AddDirect(const std::string& name, QueryInfo info);
  Status AddShared(const std::string& name, QueryInfo info);

  /// Tears down `basket`'s current subnet (unregister + drain), rebuilds
  /// the stage trie from the standing shared queries and registers the new
  /// transitions. The only mutation path for subnets_.
  Status RebuildSubnet(const std::string& basket);
  Status DrainSubnet(const std::string& basket, Subnet* old);
  Status BuildStages(const std::string& basket,
                     const std::vector<std::string>& members, Subnet* out);
  core::Factory::Body StageBody(const Stage& stage,
                                std::vector<core::BasketPtr> outs);
  void PublishPlans(const std::string& basket, const Subnet& net);

  ConjunctCounters* CountersFor(const std::string& fp);

  core::Engine* engine_;
  FactoryBuilder build_factory_;
  bool sharing_enabled_ = false;
  bool factoring_enabled_ = true;
  CostModel cost_;

  std::map<std::string, QueryInfo> queries_;
  std::map<std::string, Subnet> subnets_;  // by source basket
  /// Once a basket's subnet has gone shared it never reverts to direct —
  /// reverting would change delivery semantics mid-stream.
  std::set<std::string> ever_shared_;
  /// Live per-conjunct selectivity feed (stable addresses; stage bodies
  /// keep raw pointers). Keyed by conjunct fingerprint.
  std::map<std::string, std::unique_ptr<ConjunctCounters>> counters_;
  /// All stage baskets ever created, for PeakResidentRows (peaks must
  /// survive rebuilds conceptually; retired baskets drop out once drained,
  /// their peak folded into peak_retired_).
  uint64_t peak_retired_ = 0;
};

}  // namespace datacell::sql::plan

#endif  // DATACELL_SQL_PLAN_OPTIMIZER_H_
