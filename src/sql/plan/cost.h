#ifndef DATACELL_SQL_PLAN_COST_H_
#define DATACELL_SQL_PLAN_COST_H_

#include <cstdint>
#include <map>
#include <string>

#include "expr/expr.h"

/// Cost model for the plan layer. Two inputs:
///  * static heuristics over the predicate shape (equality is selective,
///    inequality barely filters, ranges sit in between) — the cold-start
///    estimates;
///  * live observations fed from the scheduler's per-transition rows_in /
///    rows_out counters (TransitionStatsSnapshot / the per-conjunct
///    mqo.conjunct.* counters the shared stages maintain), which override
///    the heuristics once a conjunct has seen enough tuples.
///
/// Thread-model: owned by the QuerySetOptimizer and touched only on the
/// registration/re-optimization path (the same single-driver discipline as
/// Session registration). Nothing here takes a lock; the live feed reads
/// relaxed counters.
namespace datacell::sql::plan {

class CostModel {
 public:
  /// Observations below this many input rows keep the heuristic estimate
  /// (too noisy to trust).
  static constexpr uint64_t kMinSample = 256;
  /// Re-optimization triggers when observed and estimated selectivity
  /// disagree by more than this factor either way.
  static constexpr double kDriftRatio = 4.0;

  /// Estimated fraction of rows satisfying the (normalized) predicate:
  /// the recorded observation for `fp` when sampled enough, else the
  /// shape heuristic.
  double EstimateSelectivity(const Expr& expr, const std::string& fp) const;

  /// Pure shape heuristic (no observation lookup).
  static double HeuristicSelectivity(const Expr& expr);

  /// Feeds an observation for conjunct `fp`: `rows_in` tuples entered the
  /// stage evaluating it, `rows_out` survived. Cumulative counters —
  /// callers pass the latest totals, not deltas.
  void RecordObserved(const std::string& fp, uint64_t rows_in,
                      uint64_t rows_out);

  /// True when the sampled observation for `fp` contradicts `est_used` —
  /// the selectivity the current net was built with — by more than
  /// kDriftRatio. The re-optimization trigger: comparing against the
  /// as-built estimate (not the heuristic) makes the check self-clearing
  /// once a rebuild adopts the observed value.
  bool Drifted(double est_used, const std::string& fp) const;

  /// Observed selectivity for `fp` if sampled enough, else -1.
  double ObservedSelectivity(const std::string& fp) const;

 private:
  struct Observation {
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
  };
  std::map<std::string, Observation> observed_;
};

}  // namespace datacell::sql::plan

#endif  // DATACELL_SQL_PLAN_COST_H_
