#include "sql/plan/cost.h"

#include <algorithm>

namespace datacell::sql::plan {

namespace {
constexpr double kSelEq = 0.10;
constexpr double kSelNe = 0.90;
constexpr double kSelRange = 0.33;
constexpr double kSelOther = 0.75;
}  // namespace

double CostModel::HeuristicSelectivity(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kBinary:
      switch (expr.bop) {
        case BinaryOp::kEq:
          return kSelEq;
        case BinaryOp::kNe:
          return kSelNe;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return kSelRange;
        case BinaryOp::kAnd:
          return HeuristicSelectivity(*expr.children[0]) *
                 HeuristicSelectivity(*expr.children[1]);
        case BinaryOp::kOr:
          return std::min(1.0, HeuristicSelectivity(*expr.children[0]) +
                                   HeuristicSelectivity(*expr.children[1]));
        default:
          return kSelOther;
      }
    case ExprKind::kUnary:
      if (expr.uop == UnaryOp::kNot) {
        return 1.0 - HeuristicSelectivity(*expr.children[0]);
      }
      return kSelOther;
    case ExprKind::kIsNull:
      return expr.negated ? kSelNe : kSelEq;
    default:
      return kSelOther;
  }
}

double CostModel::EstimateSelectivity(const Expr& expr,
                                      const std::string& fp) const {
  const double observed = ObservedSelectivity(fp);
  if (observed >= 0) return observed;
  return HeuristicSelectivity(expr);
}

void CostModel::RecordObserved(const std::string& fp, uint64_t rows_in,
                               uint64_t rows_out) {
  Observation& obs = observed_[fp];
  // Counters are cumulative and monotonic; keep the larger totals so a
  // stale snapshot never rolls an observation back.
  obs.rows_in = std::max(obs.rows_in, rows_in);
  obs.rows_out = std::max(obs.rows_out, rows_out);
}

double CostModel::ObservedSelectivity(const std::string& fp) const {
  auto it = observed_.find(fp);
  if (it == observed_.end() || it->second.rows_in < kMinSample) return -1;
  const double sel = static_cast<double>(it->second.rows_out) /
                     static_cast<double>(it->second.rows_in);
  // Clamp away 0 and 1: a zero estimate would zero every downstream
  // cardinality and destabilize the ordering.
  return std::clamp(sel, 0.001, 1.0);
}

bool CostModel::Drifted(double est_used, const std::string& fp) const {
  const double observed = ObservedSelectivity(fp);
  if (observed < 0 || est_used <= 0) return false;
  return observed > est_used * kDriftRatio ||
         observed < est_used / kDriftRatio;
}

}  // namespace datacell::sql::plan
