#include "sql/plan/plan.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace datacell::sql::plan {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string FingerprintHex(const std::string& s) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, Fnv1a64(s));
  return buf;
}

const char* PlanNodeKindName(PlanNodeKind k) {
  switch (k) {
    case PlanNodeKind::kScan: return "scan";
    case PlanNodeKind::kFilter: return "filter";
    case PlanNodeKind::kWindow: return "window";
    case PlanNodeKind::kProject: return "project";
    case PlanNodeKind::kAggregate: return "aggregate";
    case PlanNodeKind::kJoin: return "join";
  }
  return "?";
}

namespace {

// Cardinalities render as integers: the estimates are coarse and goldens
// must not depend on floating-point formatting.
std::string Rows(double est) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", est);
  return buf;
}

std::string Sel(double sel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", sel);
  return buf;
}

}  // namespace

std::string PlanNode::CanonicalText() const {
  std::string out = PlanNodeKindName(kind);
  out.push_back('(');
  if (kind == PlanNodeKind::kScan) {
    out += relation;
  } else if (kind == PlanNodeKind::kFilter) {
    for (const Conjunct& c : conjuncts) {
      out += c.fp;
      out.push_back(',');
    }
  } else {
    out += detail;
  }
  for (const PlanPtr& child : children) {
    out.push_back(';');
    out += child->CanonicalText();
  }
  out.push_back(')');
  return out;
}

void PlanNode::Render(
    int indent, std::string* out,
    const std::vector<std::pair<std::string, size_t>>* shared_by) const {
  auto pad = [out](int n) { out->append(static_cast<size_t>(n), ' '); };
  if (kind == PlanNodeKind::kFilter) {
    // One line per conjunct so goldens show the selectivity ordering.
    for (const Conjunct& c : conjuncts) {
      pad(indent);
      out->append("filter " + c.expr->ToString() + " [fp " + c.fp +
                  "] sel " + Sel(c.est_sel));
      if (shared_by != nullptr) {
        for (const auto& [fp, n] : *shared_by) {
          if (fp == c.fp && n > 1) {
            out->append(" shared_by=" + std::to_string(n));
            break;
          }
        }
      }
      out->push_back('\n');
    }
  } else {
    pad(indent);
    out->append(PlanNodeKindName(kind));
    if (kind == PlanNodeKind::kScan) {
      out->append(" " + relation + (is_basket ? " (basket" : " (table"));
      out->append(", est " + Rows(est_rows) + " rows)");
    } else if (!detail.empty()) {
      out->append(" " + detail);
    }
    out->push_back('\n');
  }
  for (const PlanPtr& child : children) {
    child->Render(indent + 2, out, shared_by);
  }
}

PlanPtr MakeScan(std::string relation, bool is_basket, double est_rows) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kScan;
  n->relation = std::move(relation);
  n->is_basket = is_basket;
  n->est_rows = est_rows;
  return n;
}

PlanPtr MakeFilter(PlanPtr input, std::vector<Conjunct> conjuncts,
                   double est_rows) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kFilter;
  n->children.push_back(std::move(input));
  n->conjuncts = std::move(conjuncts);
  n->est_rows = est_rows;
  return n;
}

PlanPtr MakeUnary(PlanNodeKind kind, PlanPtr input, std::string detail,
                  double est_rows) {
  auto n = std::make_shared<PlanNode>();
  n->kind = kind;
  n->children.push_back(std::move(input));
  n->detail = std::move(detail);
  n->est_rows = est_rows;
  return n;
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right, std::string detail,
                 double est_rows) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNodeKind::kJoin;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  n->detail = std::move(detail);
  n->est_rows = est_rows;
  return n;
}

}  // namespace datacell::sql::plan
