#ifndef DATACELL_SQL_PLAN_PLAN_H_
#define DATACELL_SQL_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

/// The logical-plan IR the SQL frontend compiles continuous (and, for
/// EXPLAIN, one-time) queries into before any factory is wired. The nodes
/// mirror the relational shapes the dialect can express: a Scan of a
/// basket or table, a selectivity-ordered conjunctive Filter, the basket
/// expression's Window (order by / top n with consumption), Join for the
/// two-basket merge, Aggregate and Project. Plans are immutable trees of
/// shared_ptr<const PlanNode>; rewrites build new trees.
///
/// Subtree fingerprints (FNV-1a over a canonical rendering) are what the
/// multi-query optimizer matches across the standing-query set: two
/// queries whose scan+filter prefixes fingerprint equal can share one
/// factory chain (the paper's shared-basket strategy, §5, generalized).
namespace datacell::sql::plan {

/// FNV-1a 64-bit over `s`, rendered as 16 lowercase hex digits. Stable
/// across runs and platforms — fingerprints appear in stage/basket names
/// and EXPLAIN goldens.
uint64_t Fnv1a64(const std::string& s);
std::string FingerprintHex(const std::string& s);

/// One normalized conjunct of a WHERE clause. `expr` is resolved to the
/// source's actual column names and canonically normalized (literal on the
/// right, commutative operands ordered), so textually different but
/// equivalent predicates fingerprint equal.
struct Conjunct {
  ExprPtr expr;
  std::string fp;        // FingerprintHex(expr->ToString())
  double est_sel = 1.0;  // cost-model estimate, refreshed at rebuild
  /// Safe to evaluate in a shared upstream stage: fully resolved against
  /// the source basket schema, boolean-typed, and time-invariant (no
  /// now()), so a tuple's verdict never changes after arrival.
  bool shareable = false;
};

enum class PlanNodeKind : uint8_t {
  kScan,
  kFilter,
  kWindow,
  kProject,
  kAggregate,
  kJoin,
};

const char* PlanNodeKindName(PlanNodeKind k);

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

struct PlanNode {
  PlanNodeKind kind = PlanNodeKind::kScan;
  /// 0 children for kScan, 1 for the pipeline nodes, 2 for kJoin.
  std::vector<PlanPtr> children;

  // kScan
  std::string relation;
  bool is_basket = false;

  // kFilter: conjuncts in evaluation order (most selective first).
  std::vector<Conjunct> conjuncts;

  // kWindow / kProject / kAggregate / kJoin: rendered description
  // (order by / top n, projection list, group keys, join predicate).
  std::string detail;

  /// Cost-model estimated output cardinality.
  double est_rows = 0;

  /// Canonical text of this subtree (kind, key fields, children), the
  /// input to Fingerprint().
  std::string CanonicalText() const;
  std::string Fingerprint() const { return FingerprintHex(CanonicalText()); }

  /// Root-first indented tree rendering (EXPLAIN's plan section). When
  /// `shared_by` is supplied it maps conjunct fingerprints to the number
  /// of standing queries sharing that conjunct, annotated per filter line.
  void Render(int indent, std::string* out,
              const std::vector<std::pair<std::string, size_t>>* shared_by =
                  nullptr) const;
};

PlanPtr MakeScan(std::string relation, bool is_basket, double est_rows);
PlanPtr MakeFilter(PlanPtr input, std::vector<Conjunct> conjuncts,
                   double est_rows);
PlanPtr MakeUnary(PlanNodeKind kind, PlanPtr input, std::string detail,
                  double est_rows);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, std::string detail,
                 double est_rows);

}  // namespace datacell::sql::plan

#endif  // DATACELL_SQL_PLAN_PLAN_H_
