#ifndef DATACELL_SQL_PLAN_REWRITE_H_
#define DATACELL_SQL_PLAN_REWRITE_H_

#include <vector>

#include "expr/expr.h"
#include "sql/plan/plan.h"

/// Predicate rewrite passes. All passes are pure: they return new Expr
/// trees (Expr nodes are immutable after construction) and never mutate
/// their input. Normalization runs before fingerprinting so equivalent
/// predicates written differently ("10 > x" vs "x < 10", "b and a" vs
/// "a and b") factor into the same shared stage.
namespace datacell::sql::plan {

/// Canonical form:
///  * comparisons with the literal on the left are flipped
///    (10 > x  ->  x < 10);
///  * commutative operators (AND, OR, +, *) order their operands by
///    rendered text.
/// Recurses through the whole tree.
ExprPtr NormalizePredicate(const ExprPtr& expr);

/// Splits a predicate on top-level ANDs. A null predicate yields nothing.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Rebuilds a single predicate from conjuncts (null when empty).
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

/// True when the predicate's verdict for a tuple can never change after
/// arrival: it contains no now() call. Session variables are handled by
/// the shareability schema check (an unresolved column fails type
/// inference), not here.
bool IsStreamStatic(const Expr& expr);

/// Sorts most-selective-first, fingerprint as the deterministic tiebreak.
/// The multi-query optimizer refines this order with sharing counts (more
/// widely shared conjuncts float upstream); this is the single-query
/// ordering EXPLAIN shows.
void OrderBySelectivity(std::vector<Conjunct>* conjuncts);

}  // namespace datacell::sql::plan

#endif  // DATACELL_SQL_PLAN_REWRITE_H_
