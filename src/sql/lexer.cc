#include "sql/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace datacell::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t line = 1;
  const size_t n = input.size();

  auto push = [&](TokenKind kind, std::string text, size_t offset) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = offset;
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) {
        if (input[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment at line " +
                                  std::to_string(line));
      }
      i += 2;
      continue;
    }
    // String literal.
    if (c == '\'') {
      const size_t start = i++;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // '' escape
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        if (input[i] == '\n') ++line;
        text.push_back(input[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(line));
      }
      push(TokenKind::kStringLiteral, std::move(text), start);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      const size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      std::string text = input.substr(start, i - start);
      Token t;
      t.offset = start;
      t.line = line;
      t.text = text;
      if (is_double) {
        ASSIGN_OR_RETURN(t.double_value, ParseDouble(text));
        t.kind = TokenKind::kDoubleLiteral;
      } else {
        ASSIGN_OR_RETURN(t.int_value, ParseInt64(text));
        t.kind = TokenKind::kIntLiteral;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentCont(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      std::string lower = ToLower(word);
      if (IsReservedKeyword(lower)) {
        push(TokenKind::kKeyword, std::move(lower), start);
      } else {
        push(TokenKind::kIdentifier, std::move(lower), start);
      }
      continue;
    }
    // Operators and punctuation.
    const size_t start = i;
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('<', '>')) {
      push(TokenKind::kNe, "<>", start);
      i += 2;
      continue;
    }
    if (two('!', '=')) {
      push(TokenKind::kNe, "!=", start);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::kLe, "<=", start);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenKind::kGe, ">=", start);
      i += 2;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", start);
        break;
      case ')':
        push(TokenKind::kRParen, ")", start);
        break;
      case '[':
        push(TokenKind::kLBracket, "[", start);
        break;
      case ']':
        push(TokenKind::kRBracket, "]", start);
        break;
      case ',':
        push(TokenKind::kComma, ",", start);
        break;
      case ';':
        push(TokenKind::kSemicolon, ";", start);
        break;
      case '.':
        push(TokenKind::kDot, ".", start);
        break;
      case '*':
        push(TokenKind::kStar, "*", start);
        break;
      case '+':
        push(TokenKind::kPlus, "+", start);
        break;
      case '-':
        push(TokenKind::kMinus, "-", start);
        break;
      case '/':
        push(TokenKind::kSlash, "/", start);
        break;
      case '%':
        push(TokenKind::kPercent, "%", start);
        break;
      case '=':
        push(TokenKind::kEq, "=", start);
        break;
      case '<':
        push(TokenKind::kLt, "<", start);
        break;
      case '>':
        push(TokenKind::kGt, ">", start);
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
    ++i;
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  end.line = line;
  tokens.push_back(end);
  return tokens;
}

}  // namespace datacell::sql
