#include "sql/session.h"

#include <map>

#include "sql/binder.h"
#include "sql/parser.h"
#include "sql/plan/builder.h"
#include "util/logging.h"

namespace datacell::sql {

namespace {

// Walks the statement and computes, per basket-expression source basket,
// the firing threshold: a single-source `top n` window needs n tuples
// before it can produce output (§4.1 batch/window control).
void CollectThresholds(const SelectStmt& stmt,
                       std::map<std::string, size_t>* out,
                       bool inside_basket_expr) {
  for (const FromItem& f : stmt.from) {
    if (f.kind == FromItem::Kind::kBasketExpr && f.basket_query != nullptr) {
      const SelectStmt& inner = *f.basket_query;
      if (inner.from.size() == 1 &&
          inner.from[0].kind == FromItem::Kind::kRelation) {
        const size_t need = inner.top_n.value_or(1);
        size_t& cur = (*out)[inner.from[0].relation];
        cur = std::max(cur, need);
      } else {
        for (const FromItem& src : inner.from) {
          if (src.kind == FromItem::Kind::kRelation) {
            size_t& cur = (*out)[src.relation];
            cur = std::max<size_t>(cur, 1);
          }
        }
      }
      CollectThresholds(inner, out, /*inside_basket_expr=*/true);
    }
  }
  (void)inside_basket_expr;
}

void CollectThresholds(const Statement& stmt,
                       std::map<std::string, size_t>* out) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      CollectThresholds(*stmt.select, out, false);
      break;
    case Statement::Kind::kInsert:
      if (stmt.insert->select != nullptr) {
        CollectThresholds(*stmt.insert->select, out, false);
      }
      break;
    case Statement::Kind::kWithBlock: {
      const SelectStmt& inner = *stmt.with_block->basket_query;
      if (inner.from.size() == 1 &&
          inner.from[0].kind == FromItem::Kind::kRelation) {
        const size_t need = inner.top_n.value_or(1);
        size_t& cur = (*out)[inner.from[0].relation];
        cur = std::max(cur, need);
      } else {
        for (const FromItem& src : inner.from) {
          if (src.kind == FromItem::Kind::kRelation) {
            size_t& cur = (*out)[src.relation];
            cur = std::max<size_t>(cur, 1);
          }
        }
      }
      for (const StatementPtr& body : stmt.with_block->body) {
        CollectThresholds(*body, out);
      }
      break;
    }
    default:
      break;
  }
  for (const auto& sub : stmt.subqueries) {
    if (sub != nullptr) CollectThresholds(*sub, out, false);
  }
}

// Collects INSERT targets that are baskets (the factory's output places).
void CollectBasketTargets(const Statement& stmt, core::Engine* engine,
                          std::vector<std::string>* out) {
  switch (stmt.kind) {
    case Statement::Kind::kInsert:
      if (engine->HasBasket(stmt.insert->target)) {
        out->push_back(stmt.insert->target);
      }
      break;
    case Statement::Kind::kWithBlock:
      for (const StatementPtr& body : stmt.with_block->body) {
        CollectBasketTargets(*body, engine, out);
      }
      break;
    default:
      break;
  }
}

void ExplainSelect(const SelectStmt& stmt, int indent, std::string* out);

void Indent(int n, std::string* out) { out->append(static_cast<size_t>(n), ' '); }

void ExplainFrom(const FromItem& item, int indent, std::string* out) {
  Indent(indent, out);
  if (item.kind == FromItem::Kind::kRelation) {
    out->append("relation " + item.relation);
  } else {
    out->append("basket-expression (consuming predicate window)");
  }
  if (!item.alias.empty()) out->append(" as " + item.alias);
  out->push_back('\n');
  if (item.kind == FromItem::Kind::kBasketExpr && item.basket_query != nullptr) {
    ExplainSelect(*item.basket_query, indent + 2, out);
  }
}

void ExplainSelect(const SelectStmt& stmt, int indent, std::string* out) {
  for (const FromItem& f : stmt.from) ExplainFrom(f, indent, out);
  if (stmt.from.size() == 2) {
    Indent(indent, out);
    out->append("join: equality conjuncts become hash-join keys, the rest a "
                "residual filter (nested loop if none)\n");
  }
  if (stmt.where != nullptr) {
    Indent(indent, out);
    out->append("filter: " + stmt.where->ToString() + "\n");
  }
  bool aggregated = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.items) {
    if (!item.star && item.expr != nullptr && ContainsAggregate(*item.expr)) {
      aggregated = true;
    }
  }
  if (aggregated) {
    Indent(indent, out);
    out->append("aggregate:");
    for (const ExprPtr& g : stmt.group_by) {
      out->append(" group=" + g->ToString());
    }
    if (stmt.having != nullptr) {
      out->append(" having=" + stmt.having->ToString());
    }
    out->push_back('\n');
  }
  if (!stmt.order_by.empty()) {
    Indent(indent, out);
    out->append("order by:");
    for (const OrderItem& o : stmt.order_by) {
      out->append(" " + o.expr->ToString() + (o.ascending ? " asc" : " desc"));
    }
    out->push_back('\n');
  }
  if (stmt.top_n.has_value()) {
    Indent(indent, out);
    out->append("top " + std::to_string(*stmt.top_n) + "\n");
  }
}

}  // namespace

Result<std::string> Session::Explain(const std::string& sql) const {
  ASSIGN_OR_RETURN(StatementPtr stmt, ParseOne(sql));
  std::string out;
  switch (stmt->kind) {
    case Statement::Kind::kSelect:
      out += "SELECT";
      break;
    case Statement::Kind::kInsert:
      out += "INSERT into " + stmt->insert->target;
      break;
    case Statement::Kind::kCreate:
      out += std::string("CREATE ") +
             (stmt->create->is_basket ? "BASKET " : "TABLE ") +
             stmt->create->name;
      break;
    case Statement::Kind::kDrop:
      out += "DROP " + stmt->drop->name;
      break;
    case Statement::Kind::kDeclare:
      out += "DECLARE " + stmt->declare->name;
      break;
    case Statement::Kind::kSet:
      out += "SET " + stmt->set->name;
      break;
    case Statement::Kind::kWithBlock:
      out += "WITH-block binding '" + stmt->with_block->binding + "' (" +
             std::to_string(stmt->with_block->body.size()) +
             " body statements)";
      break;
    case Statement::Kind::kExplain:
      out += "EXPLAIN (use Execute for the plan rendering)";
      break;
  }
  out += IsContinuous(*stmt) ? "  [continuous query]\n" : "  [one-time]\n";

  std::map<std::string, size_t> thresholds;
  CollectThresholds(*stmt, &thresholds);
  for (const auto& [basket, min_tuples] : thresholds) {
    out += "  input basket '" + basket +
           "' (fires at >= " + std::to_string(min_tuples) + " tuple(s))\n";
  }
  const SelectStmt* body = nullptr;
  if (stmt->kind == Statement::Kind::kSelect) body = stmt->select.get();
  if (stmt->kind == Statement::Kind::kInsert && stmt->insert->select) {
    body = stmt->insert->select.get();
  }
  if (stmt->kind == Statement::Kind::kWithBlock) {
    body = stmt->with_block->basket_query.get();
  }
  if (body != nullptr) ExplainSelect(*body, 2, &out);
  if (!stmt->subqueries.empty()) {
    out += "  " + std::to_string(stmt->subqueries.size()) +
           " scalar subquery(ies)\n";
  }
  return out;
}

Result<Table> Session::Execute(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, Parse(sql));
  Table last;
  for (const StatementPtr& stmt : stmts) {
    if (stmt->kind == Statement::Kind::kExplain) {
      ASSIGN_OR_RETURN(last, ExplainPlan(*stmt->explain_target));
      continue;
    }
    ASSIGN_OR_RETURN(Table result, executor_.Execute(*stmt));
    if (stmt->kind == Statement::Kind::kSelect) last = std::move(result);
  }
  return last;
}

Result<Table> Session::ExplainPlan(const Statement& target) {
  std::string text;
  // Continuous queries in the plannable subset render the optimizer's
  // view: pushed-down, selectivity-ordered conjuncts annotated with how
  // many standing queries share them. Everything else renders the generic
  // structural plan.
  auto cloned = std::shared_ptr<Statement>(CloneStatement(target));
  Result<plan::CompiledQuery> cq = plan::CompileContinuous(
      engine_, "explain", cloned, optimizer_.cost());
  if (cq.ok()) {
    std::vector<std::pair<std::string, size_t>> shared_by;
    for (const plan::Conjunct& c : cq->shared) {
      shared_by.emplace_back(
          c.fp, optimizer_.SharedCount(cq->source_basket, c.fp));
    }
    text += "continuous plan (source basket '" + cq->source_basket +
            "', fires at >= " + std::to_string(cq->min_tuples) +
            " tuple(s))\n";
    cq->plan->Render(2, &text, &shared_by);
    text += std::string("sharing: ") +
            (optimizer_.sharing_enabled() ? "on" : "off") + "\n";
    for (const plan::Conjunct& c : cq->shared) {
      const size_t standing =
          optimizer_.SharedCount(cq->source_basket, c.fp);
      text += "  shareable " + c.expr->ToString() + " [fp " + c.fp +
              "] standing=" + std::to_string(standing) + "\n";
    }
  } else {
    ASSIGN_OR_RETURN(plan::PlanPtr p,
                     plan::BuildLogicalPlan(engine_, target,
                                            optimizer_.cost()));
    text += IsContinuous(target) ? "continuous plan (legacy execution)\n"
                                 : "one-time plan\n";
    p->Render(2, &text, nullptr);
  }

  Table out(Schema({{"plan", DataType::kString}}));
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    RETURN_NOT_OK(out.AppendRow({Value(text.substr(start, end - start))}));
    start = end + 1;
  }
  return out;
}

Result<core::FactoryPtr> Session::BuildFactory(const std::string& name,
                                               std::shared_ptr<Statement> stmt,
                                               core::Emitter::Sink sink) {
  if (!IsContinuous(*stmt)) {
    return Status::InvalidArgument(
        "statement contains no basket expression; it is a one-time query "
        "(wrap stream reads in [...])");
  }
  std::map<std::string, size_t> thresholds;
  CollectThresholds(*stmt, &thresholds);

  // Each continuous query gets a private executor so temp bindings from
  // WITH blocks cannot interfere across factories.
  auto exec = std::make_shared<Executor>(engine_);
  auto factory = std::make_shared<core::Factory>(
      name, [exec, stmt, sink](core::FactoryContext&) -> Status {
        ASSIGN_OR_RETURN(Table result, exec->Execute(*stmt));
        if (sink != nullptr && result.num_rows() > 0) {
          RETURN_NOT_OK(sink(result));
        }
        return Status::OK();
      });

  for (const auto& [basket_name, min_tuples] : thresholds) {
    ASSIGN_OR_RETURN(core::BasketPtr b, engine_->GetBasket(basket_name));
    factory->AddInput(b, min_tuples);
  }
  std::vector<std::string> targets;
  CollectBasketTargets(*stmt, engine_, &targets);
  for (const std::string& target : targets) {
    ASSIGN_OR_RETURN(core::BasketPtr b, engine_->GetBasket(target));
    factory->AddOutput(b);
  }
  return factory;
}

Result<core::FactoryPtr> Session::RegisterContinuousQuery(
    const std::string& name, const std::string& sql) {
  ASSIGN_OR_RETURN(StatementPtr stmt, ParseOne(sql));
  return optimizer_.AddQuery(
      name, std::shared_ptr<Statement>(std::move(stmt)), nullptr);
}

Result<core::FactoryPtr> Session::RegisterContinuousSelect(
    const std::string& name, const std::string& sql,
    core::Emitter::Sink sink) {
  ASSIGN_OR_RETURN(StatementPtr stmt, ParseOne(sql));
  if (stmt->kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument(
        "RegisterContinuousSelect requires a SELECT statement");
  }
  return optimizer_.AddQuery(
      name, std::shared_ptr<Statement>(std::move(stmt)), std::move(sink));
}

}  // namespace datacell::sql
