#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/clock.h"
#include "util/strings.h"

namespace datacell::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<StatementPtr>> ParseScript() {
    std::vector<StatementPtr> out;
    while (!AtEnd()) {
      if (Peek().kind == TokenKind::kSemicolon) {
        Advance();
        continue;
      }
      ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement());
      out.push_back(std::move(stmt));
      if (Peek().kind == TokenKind::kSemicolon) Advance();
    }
    return out;
  }

 private:
  // --- token plumbing ------------------------------------------------------
  bool AtEnd() const { return tokens_[pos_].kind == TokenKind::kEnd; }
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " (line " + std::to_string(Peek().line) +
                              ", got " + Peek().ToString() + ")");
  }
  Status Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) return Error(std::string("expected ") + what);
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Error(std::string("expected keyword '") + kw + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  // --- statements ----------------------------------------------------------
  Result<StatementPtr> ParseStatement() {
    auto stmt = std::make_unique<Statement>();
    current_ = stmt.get();
    const Token& t = Peek();
    if (t.IsKeyword("select")) {
      stmt->kind = Statement::Kind::kSelect;
      ASSIGN_OR_RETURN(stmt->select, ParseSelect());
      return stmt;
    }
    if (t.IsKeyword("insert")) {
      stmt->kind = Statement::Kind::kInsert;
      ASSIGN_OR_RETURN(stmt->insert, ParseInsert());
      return stmt;
    }
    if (t.IsKeyword("create")) {
      stmt->kind = Statement::Kind::kCreate;
      ASSIGN_OR_RETURN(stmt->create, ParseCreate());
      return stmt;
    }
    if (t.IsKeyword("drop")) {
      stmt->kind = Statement::Kind::kDrop;
      ASSIGN_OR_RETURN(stmt->drop, ParseDrop());
      return stmt;
    }
    if (t.IsKeyword("declare")) {
      stmt->kind = Statement::Kind::kDeclare;
      ASSIGN_OR_RETURN(stmt->declare, ParseDeclare());
      return stmt;
    }
    if (t.IsKeyword("set")) {
      stmt->kind = Statement::Kind::kSet;
      ASSIGN_OR_RETURN(stmt->set, ParseSet());
      return stmt;
    }
    if (t.IsKeyword("with")) {
      stmt->kind = Statement::Kind::kWithBlock;
      ASSIGN_OR_RETURN(stmt->with_block, ParseWithBlock());
      return stmt;
    }
    if (t.IsKeyword("explain")) {
      Advance();
      stmt->kind = Statement::Kind::kExplain;
      // The wrapped statement parses recursively; its subqueries attach to
      // itself (ParseStatement resets current_), which is where the
      // planner expects them.
      ASSIGN_OR_RETURN(stmt->explain_target, ParseStatement());
      return stmt;
    }
    return Error("expected a statement");
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    RETURN_NOT_OK(ExpectKeyword("insert"));
    RETURN_NOT_OK(ExpectKeyword("into"));
    auto ins = std::make_unique<InsertStmt>();
    ASSIGN_OR_RETURN(ins->target, ExpectIdentifier("target relation"));
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      while (true) {
        ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        ins->columns.push_back(std::move(col));
        if (Match(TokenKind::kComma)) continue;
        RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        break;
      }
    }
    if (MatchKeyword("values")) {
      while (true) {
        RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
        std::vector<ExprPtr> row;
        while (true) {
          ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
          if (Match(TokenKind::kComma)) continue;
          RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
          break;
        }
        ins->values.push_back(std::move(row));
        if (!Match(TokenKind::kComma)) break;
      }
      return ins;
    }
    if (Peek().IsKeyword("select")) {
      ASSIGN_OR_RETURN(ins->select, ParseSelect());
      return ins;
    }
    if (Peek().kind == TokenKind::kLBracket) {
      // INSERT INTO t [SELECT ...]  — wrap as SELECT * FROM [..] AS _src.
      ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
      auto outer = std::make_unique<SelectStmt>();
      SelectItem star;
      star.star = true;
      outer->items.push_back(std::move(star));
      outer->from.push_back(std::move(item));
      ins->select = std::move(outer);
      return ins;
    }
    return Error("expected VALUES, SELECT or a basket expression");
  }

  Result<std::unique_ptr<CreateStmt>> ParseCreate() {
    RETURN_NOT_OK(ExpectKeyword("create"));
    auto cs = std::make_unique<CreateStmt>();
    if (MatchKeyword("basket")) {
      cs->is_basket = true;
    } else {
      RETURN_NOT_OK(ExpectKeyword("table"));
    }
    ASSIGN_OR_RETURN(cs->name, ExpectIdentifier("relation name"));
    RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      ASSIGN_OR_RETURN(std::string type, ExpectIdentifier("type name"));
      cs->columns.emplace_back(std::move(col), std::move(type));
      if (Match(TokenKind::kComma)) continue;
      RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      break;
    }
    // Optional CHECK (...) constraints — baskets drop violators silently.
    while (Peek().kind == TokenKind::kIdentifier && Peek().text == "check") {
      Advance();
      RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      ASSIGN_OR_RETURN(ExprPtr check, ParseExpr());
      RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      if (!cs->is_basket) {
        return Error("CHECK constraints are supported on baskets only");
      }
      cs->checks.push_back(std::move(check));
    }
    return cs;
  }

  Result<std::unique_ptr<DropStmt>> ParseDrop() {
    RETURN_NOT_OK(ExpectKeyword("drop"));
    auto ds = std::make_unique<DropStmt>();
    if (MatchKeyword("basket")) {
      ds->is_basket = true;
    } else {
      RETURN_NOT_OK(ExpectKeyword("table"));
    }
    ASSIGN_OR_RETURN(ds->name, ExpectIdentifier("relation name"));
    return ds;
  }

  Result<std::unique_ptr<DeclareStmt>> ParseDeclare() {
    RETURN_NOT_OK(ExpectKeyword("declare"));
    auto ds = std::make_unique<DeclareStmt>();
    ASSIGN_OR_RETURN(ds->name, ExpectIdentifier("variable name"));
    ASSIGN_OR_RETURN(ds->type, ExpectIdentifier("type name"));
    return ds;
  }

  Result<std::unique_ptr<SetStmt>> ParseSet() {
    RETURN_NOT_OK(ExpectKeyword("set"));
    auto ss = std::make_unique<SetStmt>();
    ASSIGN_OR_RETURN(ss->name, ExpectIdentifier("variable name"));
    RETURN_NOT_OK(Expect(TokenKind::kEq, "'='"));
    ASSIGN_OR_RETURN(ss->value, ParseExpr());
    return ss;
  }

  Result<std::unique_ptr<WithBlockStmt>> ParseWithBlock() {
    RETURN_NOT_OK(ExpectKeyword("with"));
    auto wb = std::make_unique<WithBlockStmt>();
    ASSIGN_OR_RETURN(wb->binding, ExpectIdentifier("binding name"));
    RETURN_NOT_OK(ExpectKeyword("as"));
    RETURN_NOT_OK(Expect(TokenKind::kLBracket, "'['"));
    ASSIGN_OR_RETURN(wb->basket_query, ParseSelect());
    RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
    RETURN_NOT_OK(ExpectKeyword("begin"));
    while (!Peek().IsKeyword("end")) {
      if (AtEnd()) return Error("unterminated WITH block (missing END)");
      if (Match(TokenKind::kSemicolon)) continue;
      // Body statements share the enclosing statement's subquery table.
      ASSIGN_OR_RETURN(StatementPtr body_stmt, ParseBodyStatement());
      wb->body.push_back(std::move(body_stmt));
    }
    RETURN_NOT_OK(ExpectKeyword("end"));
    return wb;
  }

  // A statement inside a WITH block; keeps `current_` pointing at the
  // enclosing top-level statement so scalar subqueries land in one place.
  Result<StatementPtr> ParseBodyStatement() {
    Statement* saved = current_;
    auto stmt = std::make_unique<Statement>();
    // Subqueries from the body are registered on the *outer* statement, so
    // do not retarget current_.
    const Token& t = Peek();
    Status st = Status::OK();
    if (t.IsKeyword("insert")) {
      stmt->kind = Statement::Kind::kInsert;
      auto r = ParseInsert();
      if (!r.ok()) st = r.status();
      else stmt->insert = std::move(r).value();
    } else if (t.IsKeyword("set")) {
      stmt->kind = Statement::Kind::kSet;
      auto r = ParseSet();
      if (!r.ok()) st = r.status();
      else stmt->set = std::move(r).value();
    } else if (t.IsKeyword("select")) {
      stmt->kind = Statement::Kind::kSelect;
      auto r = ParseSelect();
      if (!r.ok()) st = r.status();
      else stmt->select = std::move(r).value();
    } else {
      st = Error("expected INSERT, SET or SELECT inside WITH block");
    }
    current_ = saved;
    if (!st.ok()) return st;
    return stmt;
  }

  // --- SELECT --------------------------------------------------------------
  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    RETURN_NOT_OK(ExpectKeyword("select"));
    auto sel = std::make_unique<SelectStmt>();
    if (MatchKeyword("distinct")) sel->distinct = true;

    // Paper syntax: `select top 20 from X` / `select all from X`.
    if (MatchKeyword("top")) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected integer after TOP");
      }
      sel->top_n = static_cast<size_t>(Advance().int_value);
    }
    if (Peek().IsKeyword("all")) {
      Advance();
      SelectItem star;
      star.star = true;
      sel->items.push_back(std::move(star));
    } else if (Peek().IsKeyword("from")) {
      // `select top n from ...` — implicit *.
      SelectItem star;
      star.star = true;
      sel->items.push_back(std::move(star));
    } else {
      while (true) {
        ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        sel->items.push_back(std::move(item));
        if (!Match(TokenKind::kComma)) break;
      }
    }

    if (MatchKeyword("from")) {
      while (true) {
        ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
        sel->from.push_back(std::move(item));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    if (MatchKeyword("where")) {
      ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (Peek().IsKeyword("group")) {
      Advance();
      RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        sel->group_by.push_back(std::move(e));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    if (MatchKeyword("having")) {
      ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (Peek().IsKeyword("union")) {
      return Error("UNION is not supported; use separate INSERTs");
    }
    if (Peek().IsKeyword("order")) {
      Advance();
      RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        OrderItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc")) {
          item.ascending = false;
        } else {
          MatchKeyword("asc");
        }
        sel->order_by.push_back(std::move(item));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    if (MatchKeyword("limit")) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected integer after LIMIT");
      }
      sel->top_n = static_cast<size_t>(Advance().int_value);
    }
    return sel;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().kind == TokenKind::kStar) {
      Advance();
      item.star = true;
      return item;
    }
    // alias.* form
    if (Peek().kind == TokenKind::kIdentifier &&
        Peek(1).kind == TokenKind::kDot && Peek(2).kind == TokenKind::kStar) {
      item.star = true;
      item.star_qualifier = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
      return item;
    }
    ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("as")) {
      ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("output alias"));
    } else if (Peek().kind == TokenKind::kIdentifier) {
      item.alias = Advance().text;
    }
    return item;
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    if (Match(TokenKind::kLBracket)) {
      item.kind = FromItem::Kind::kBasketExpr;
      ASSIGN_OR_RETURN(item.basket_query, ParseSelect());
      RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
    } else {
      item.kind = FromItem::Kind::kRelation;
      ASSIGN_OR_RETURN(item.relation, ExpectIdentifier("relation name"));
    }
    if (MatchKeyword("as")) {
      ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    } else if (Peek().kind == TokenKind::kIdentifier) {
      item.alias = Advance().text;
    }
    return item;
  }

  // --- expressions ---------------------------------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKeyword("or")) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Bin(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (MatchKeyword("and")) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Bin(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("not")) {
      ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Un(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    const Token& t = Peek();
    BinaryOp op;
    switch (t.kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default: {
        if (t.IsKeyword("between")) {
          Advance();
          ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
          RETURN_NOT_OK(ExpectKeyword("and"));
          ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
          ExprPtr lhs_copy = lhs;
          return Expr::Bin(
              BinaryOp::kAnd,
              Expr::Bin(BinaryOp::kGe, std::move(lhs_copy), std::move(lo)),
              Expr::Bin(BinaryOp::kLe, std::move(lhs), std::move(hi)));
        }
        if (t.IsKeyword("is")) {
          Advance();
          bool negated = MatchKeyword("not");
          RETURN_NOT_OK(ExpectKeyword("null"));
          return Expr::IsNull(std::move(lhs), negated);
        }
        return lhs;
      }
    }
    Advance();
    ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Bin(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (Match(TokenKind::kPlus)) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Bin(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Match(TokenKind::kMinus)) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Bin(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (Match(TokenKind::kStar)) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Bin(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Match(TokenKind::kSlash)) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Bin(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (Match(TokenKind::kPercent)) {
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Bin(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Un(UnaryOp::kNeg, std::move(operand));
    }
    if (Match(TokenKind::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return Expr::Lit(Value(t.int_value));
      case TokenKind::kDoubleLiteral:
        Advance();
        return Expr::Lit(Value(t.double_value));
      case TokenKind::kStringLiteral:
        Advance();
        return Expr::Lit(Value(t.text));
      case TokenKind::kLParen: {
        Advance();
        if (Peek().IsKeyword("select")) {
          // Scalar subquery.
          ASSIGN_OR_RETURN(auto sub, ParseSelect());
          RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
          const int64_t index =
              static_cast<int64_t>(current_->subqueries.size());
          current_->subqueries.push_back(std::move(sub));
          return Expr::Call("__subquery", {Expr::Lit(Value(index))});
        }
        ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kKeyword: {
        if (t.IsKeyword("null")) {
          Advance();
          return Expr::Lit(Value::Null());
        }
        if (t.IsKeyword("true")) {
          Advance();
          return Expr::Lit(Value(true));
        }
        if (t.IsKeyword("false")) {
          Advance();
          return Expr::Lit(Value(false));
        }
        if (t.IsKeyword("interval")) {
          Advance();
          return ParseInterval();
        }
        return Error("unexpected keyword in expression");
      }
      case TokenKind::kIdentifier: {
        std::string name = Advance().text;
        // Function call?
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          std::vector<ExprPtr> args;
          if (Peek().kind == TokenKind::kStar) {
            Advance();
            args.push_back(Expr::Col("*"));
          } else if (Peek().kind != TokenKind::kRParen) {
            while (true) {
              if (MatchKeyword("distinct")) {
                // count(distinct x): treated as count(x) — documented.
              }
              ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
              if (!Match(TokenKind::kComma)) break;
            }
          }
          RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
          return Expr::Call(std::move(name), std::move(args));
        }
        // Qualified column: a.b
        if (Match(TokenKind::kDot)) {
          if (Peek().kind != TokenKind::kIdentifier) {
            return Error("expected column name after '.'");
          }
          std::string col = Advance().text;
          return Expr::Col(name + "." + col);
        }
        return Expr::Col(std::move(name));
      }
      default:
        return Error("unexpected token in expression");
    }
  }

  // INTERVAL <n|'n'> SECOND|MINUTE|HOUR -> microsecond literal.
  Result<ExprPtr> ParseInterval() {
    int64_t amount = 0;
    if (Peek().kind == TokenKind::kIntLiteral) {
      amount = Advance().int_value;
    } else if (Peek().kind == TokenKind::kStringLiteral) {
      ASSIGN_OR_RETURN(amount, ParseInt64(Advance().text));
    } else {
      return Error("expected amount after INTERVAL");
    }
    // Units are contextual identifiers, not reserved words.
    const Token& unit = Peek();
    int64_t scale = 0;
    if (unit.kind == TokenKind::kIdentifier) {
      if (unit.text == "second" || unit.text == "seconds") {
        scale = kMicrosPerSecond;
      } else if (unit.text == "minute" || unit.text == "minutes") {
        scale = 60 * kMicrosPerSecond;
      } else if (unit.text == "hour" || unit.text == "hours") {
        scale = 3600 * kMicrosPerSecond;
      }
    }
    if (scale == 0) return Error("expected SECOND, MINUTE or HOUR");
    Advance();
    return Expr::Lit(Value(amount * scale));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Statement* current_ = nullptr;  // receives scalar subqueries
};

}  // namespace

Result<std::vector<StatementPtr>> Parse(const std::string& input) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

Result<StatementPtr> ParseOne(const std::string& input) {
  ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, Parse(input));
  if (stmts.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

}  // namespace datacell::sql
