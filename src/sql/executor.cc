#include "sql/executor.h"

#include <algorithm>

#include "core/basket.h"
#include "core/basket_expression.h"
#include "expr/eval.h"
#include "obs/metrics.h"
#include "obs/tables.h"
#include "obs/trace.h"
#include "ops/aggregate.h"
#include "ops/join.h"
#include "ops/project.h"
#include "ops/select.h"
#include "ops/sort.h"
#include "sql/binder.h"
#include "sql/planner.h"
#include "storage/ingest_log.h"
#include "storage/pager.h"
#include "util/logging.h"

namespace datacell::sql {

namespace {

// Output column name for a select item: explicit alias, else the base name
// of a plain column reference, else a positional name.
std::string ItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind == ExprKind::kColumnRef) {
    const std::string& c = item.expr->column;
    const size_t dot = c.find('.');
    return dot == std::string::npos ? c : c.substr(dot + 1);
  }
  return "col" + std::to_string(index);
}

// Converts `src` to exactly `target` (positional): identical types copy,
// int widens to double; anything else is a type error.
Result<Table> ConvertTableTo(const Schema& target, const Table& src) {
  if (src.num_columns() != target.num_fields()) {
    return Status::TypeMismatch(
        "source arity " + std::to_string(src.num_columns()) +
        " does not match target " + target.ToString());
  }
  Table out(target);
  for (size_t c = 0; c < target.num_fields(); ++c) {
    const Column& in = src.column(c);
    Column& dst = out.column(c);
    const DataType want = target.field(c).type;
    if (in.type() == want ||
        (IsIntegerPhysical(in.type()) && IsIntegerPhysical(want))) {
      if (in.type() == want) {
        RETURN_NOT_OK(dst.AppendColumn(in));
      } else {
        // int <-> timestamp: same physical representation.
        for (size_t i = 0; i < in.size(); ++i) {
          if (!in.IsValid(i)) {
            dst.AppendNull();
          } else {
            dst.AppendInt(in.ints()[i]);
          }
        }
      }
      continue;
    }
    if (want == DataType::kDouble && IsIntegerPhysical(in.type())) {
      for (size_t i = 0; i < in.size(); ++i) {
        if (!in.IsValid(i)) {
          dst.AppendNull();
        } else {
          dst.AppendDouble(static_cast<double>(in.ints()[i]));
        }
      }
      continue;
    }
    return Status::TypeMismatch("cannot insert " +
                                std::string(DataTypeName(in.type())) +
                                " into column '" + target.field(c).name +
                                "' of type " + DataTypeName(want));
  }
  return out;
}

// Makes projection output names unique: a second "id" becomes "id_2", etc.
// (self-joins and unaliased duplicate expressions).
void DedupeNames(std::vector<ops::ProjectionItem>* items) {
  std::map<std::string, int> seen;
  for (ops::ProjectionItem& item : *items) {
    int& n = seen[item.name];
    ++n;
    if (n > 1) item.name += "_" + std::to_string(n);
  }
}

// True if every column reference in `e` binds against `scope` (full name
// or unqualified base name). Names matching nothing are assumed to be
// session variables and do not veto.
bool BindsAgainst(const Expr& e, const NameScope& scope,
                  const NameScope& other) {
  if (e.kind == ExprKind::kColumnRef) {
    if (scope.Contains(e.column)) return true;
    const size_t dot = e.column.find('.');
    if (dot != std::string::npos &&
        scope.Contains(e.column.substr(dot + 1))) {
      return true;
    }
    // A name the other scope knows is a real column we cannot see; a name
    // neither scope knows is (at worst) a session variable.
    const bool other_knows =
        other.Contains(e.column) ||
        (dot != std::string::npos && other.Contains(e.column.substr(dot + 1)));
    return !other_knows;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && !BindsAgainst(*c, scope, other)) return false;
  }
  return true;
}

// Resolves column refs against a query's *output* schema (ORDER BY after
// projection): tries the full name, then the unqualified base name (the
// qualifier refers to a FROM alias that no longer exists post-projection),
// and finally leaves the name alone (session variables).
ExprPtr ResolveAgainstOutput(const ExprPtr& expr, const NameScope& out_scope) {
  if (expr == nullptr) return nullptr;
  if (expr->kind == ExprKind::kColumnRef) {
    if (out_scope.Contains(expr->column)) return expr;
    const size_t dot = expr->column.find('.');
    if (dot != std::string::npos) {
      std::string base = expr->column.substr(dot + 1);
      if (out_scope.Contains(base)) return Expr::Col(std::move(base));
    }
    return expr;
  }
  if (expr->children.empty()) return expr;
  auto clone = std::make_shared<Expr>(*expr);
  for (ExprPtr& child : clone->children) {
    child = ResolveAgainstOutput(child, out_scope);
  }
  return clone;
}

// Visible (source name, actual name) pairs for a plain table source.
std::vector<std::pair<std::string, std::string>> VisibleSelf(
    const Schema& schema) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) out.emplace_back(f.name, f.name);
  return out;
}

Schema SchemaFromColumns(
    const std::vector<std::pair<std::string, std::string>>& columns,
    Status* status) {
  Schema schema;
  for (const auto& [name, type_name] : columns) {
    Result<DataType> type = DataTypeFromName(type_name);
    if (!type.ok()) {
      *status = type.status();
      return schema;
    }
    Status st = schema.AddField({name, *type});
    if (!st.ok()) {
      *status = st;
      return schema;
    }
  }
  *status = Status::OK();
  return schema;
}

}  // namespace

void Executor::BindTemp(const std::string& name, Table table) {
  temps_[name] = std::move(table);
}

void Executor::UnbindTemp(const std::string& name) { temps_.erase(name); }

EvalContext Executor::MakeEvalContext() {
  vars_snapshot_ = engine_->VariablesSnapshot();
  EvalContext ctx;
  ctx.now = engine_->Now();
  ctx.variables = &vars_snapshot_;
  return ctx;
}

Result<Table> Executor::Execute(const Statement& stmt) {
  return ExecStatement(stmt, &stmt.subqueries);
}

Result<Table> Executor::ExecStatement(const Statement& stmt,
                                      const Subqueries* subs) {
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecSelect(*stmt.select, subs);
    case Statement::Kind::kInsert:
      return ExecInsert(*stmt.insert, subs);
    case Statement::Kind::kCreate:
      return ExecCreate(*stmt.create);
    case Statement::Kind::kDrop:
      return ExecDrop(*stmt.drop);
    case Statement::Kind::kDeclare:
      engine_->SetVariable(stmt.declare->name, Value::Null());
      return Table();
    case Statement::Kind::kSet:
      return ExecSet(*stmt.set, subs);
    case Statement::Kind::kWithBlock:
      return ExecWithBlock(*stmt.with_block, subs);
    case Statement::Kind::kExplain:
      // The plan surface lives in the session (it owns the multi-query
      // optimizer whose sharing decisions EXPLAIN reports); a bare
      // executor has no standing-query set to explain against.
      return Status::Unsupported(
          "EXPLAIN is only available through a Session");
  }
  return Status::Internal("unknown statement kind");
}

Result<ExprPtr> Executor::InlineSubqueries(const ExprPtr& expr,
                                           const Subqueries* subs) {
  if (expr == nullptr) return ExprPtr(nullptr);
  if (expr->kind == ExprKind::kCall && expr->func == "__subquery") {
    const int64_t index = expr->children[0]->literal.int_value();
    if (subs == nullptr || index < 0 ||
        static_cast<size_t>(index) >= subs->size()) {
      return Status::Internal("dangling scalar subquery reference");
    }
    ASSIGN_OR_RETURN(Table result, ExecSelect(*(*subs)[index], subs));
    if (result.num_columns() != 1) {
      return Status::BindError("scalar subquery must produce one column");
    }
    if (result.num_rows() > 1) {
      return Status::InvalidArgument("scalar subquery produced " +
                                     std::to_string(result.num_rows()) +
                                     " rows");
    }
    Value v = result.num_rows() == 0 ? Value::Null()
                                     : result.column(0).GetValue(0);
    return Expr::Lit(std::move(v));
  }
  if (expr->children.empty()) return expr;
  auto clone = std::make_shared<Expr>(*expr);
  for (ExprPtr& child : clone->children) {
    ASSIGN_OR_RETURN(child, InlineSubqueries(child, subs));
  }
  return ExprPtr(std::move(clone));
}

Result<Executor::Source> Executor::EvalFromItem(const FromItem& item,
                                                const Subqueries* subs) {
  if (item.kind == FromItem::Kind::kBasketExpr) {
    ASSIGN_OR_RETURN(Table t, EvalBasketExpr(*item.basket_query, subs));
    return Source{std::move(t), item.alias};
  }
  const std::string& name = item.relation;
  const std::string alias = item.alias.empty() ? name : item.alias;
  // Resolution order: WITH-block temp, basket (peek), catalog table,
  // dc_* observability virtual table (so a user relation shadows it).
  if (auto it = temps_.find(name); it != temps_.end()) {
    return Source{it->second, alias};
  }
  if (engine_->HasBasket(name)) {
    ASSIGN_OR_RETURN(core::BasketPtr b, engine_->GetBasket(name));
    // A basket inspected outside a basket expression behaves as a
    // temporary table: tuples are not removed (§3.4). Peek is a zero-copy
    // COW snapshot, so the rest of the query runs over a stable view
    // without copying the stream or holding the basket lock.
    return Source{b->Peek(), alias};
  }
  if (!engine_->catalog().HasTable(name) && obs::IsVirtualTable(name)) {
    // Each SELECT materializes a fresh snapshot of the engine's metrics /
    // trace state — the R-GMA pattern of monitoring-as-relations.
    ASSIGN_OR_RETURN(Table t, obs::VirtualTable(engine_, name));
    return Source{std::move(t), alias};
  }
  ASSIGN_OR_RETURN(auto table, engine_->catalog().GetTable(name));
  return Source{*table, alias};
}

Result<Table> Executor::EvalBasketExpr(const SelectStmt& stmt,
                                       const Subqueries* subs) {
  if (stmt.from.empty() || stmt.from.size() > 2) {
    return Status::BindError(
        "a basket expression must read one or two baskets");
  }
  for (const FromItem& f : stmt.from) {
    if (f.kind != FromItem::Kind::kRelation) {
      return Status::BindError("nested basket expressions are not supported");
    }
    if (!engine_->HasBasket(f.relation)) {
      return Status::BindError("'" + f.relation +
                               "' is not a basket (basket expressions read "
                               "streams only)");
    }
  }
  if (stmt.distinct || !stmt.group_by.empty() || stmt.having != nullptr) {
    return Status::BindError(
        "DISTINCT/GROUP BY/HAVING are not allowed inside a basket "
        "expression; aggregate in the enclosing query");
  }
  EvalContext ctx = MakeEvalContext();

  if (stmt.from.size() == 1) {
    ASSIGN_OR_RETURN(core::BasketPtr basket,
                     engine_->GetBasket(stmt.from[0].relation));
    const std::string alias = stmt.from[0].alias.empty()
                                  ? stmt.from[0].relation
                                  : stmt.from[0].alias;
    NameScope scope;
    scope.AddSource(alias, VisibleSelf(basket->schema()));

    core::BasketExpression be(basket);
    if (stmt.where != nullptr) {
      ASSIGN_OR_RETURN(ExprPtr w, InlineSubqueries(stmt.where, subs));
      ASSIGN_OR_RETURN(w, ResolveColumns(w, scope, /*allow_unresolved=*/true));
      be.Where(std::move(w));
    }
    if (!stmt.order_by.empty()) {
      std::vector<ops::SortKey> keys;
      for (const OrderItem& o : stmt.order_by) {
        ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(o.expr, subs));
        ASSIGN_OR_RETURN(e, ResolveColumns(e, scope, true));
        keys.push_back({std::move(e), o.ascending});
      }
      be.OrderBy(std::move(keys));
    }
    if (stmt.top_n.has_value()) be.Top(*stmt.top_n);
    ASSIGN_OR_RETURN(Table window, be.Evaluate(ctx));

    // Inner projection. A plain `select *` keeps the full window (including
    // the arrival column, so enclosing queries can window on it).
    const bool plain_star = stmt.items.size() == 1 && stmt.items[0].star &&
                            stmt.items[0].star_qualifier.empty();
    if (plain_star) return window;
    std::vector<ops::ProjectionItem> proj;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.star) {
        ASSIGN_OR_RETURN(auto cols, scope.StarColumns(item.star_qualifier));
        for (const auto& [vis, actual] : cols) {
          proj.push_back({Expr::Col(actual), vis});
        }
        continue;
      }
      ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(item.expr, subs));
      ASSIGN_OR_RETURN(e, ResolveColumns(e, scope, true));
      proj.push_back({std::move(e), ItemName(item, i)});
    }
    return ops::Project(window, proj, ctx);
  }

  // Two-basket merge (§5 split & merge): delete-on-match join semantics.
  if (stmt.top_n.has_value() || !stmt.order_by.empty()) {
    return Status::BindError(
        "TOP/ORDER BY are not supported in a two-basket merge expression");
  }
  ASSIGN_OR_RETURN(core::BasketPtr left, engine_->GetBasket(stmt.from[0].relation));
  ASSIGN_OR_RETURN(core::BasketPtr right, engine_->GetBasket(stmt.from[1].relation));
  const std::string lalias =
      stmt.from[0].alias.empty() ? stmt.from[0].relation : stmt.from[0].alias;
  const std::string ralias =
      stmt.from[1].alias.empty() ? stmt.from[1].relation : stmt.from[1].alias;

  // Lock both baskets for the whole read-join-delete sequence: the matched
  // row indices computed against the snapshots below must still describe
  // the baskets when the deletes run. The snapshots themselves are
  // zero-copy, so holding the locks costs contention, not copying. The
  // locks are taken in ascending address order — the canonical basket-lock
  // order (Factory::Fire) — so two sessions merging the same pair with
  // opposite FROM orders cannot deadlock.
  core::Basket* const lo = std::min(left.get(), right.get());
  core::Basket* const hi = std::max(left.get(), right.get());
  core::BasketLock lock_lo(lo);
  core::BasketLock lock_hi(hi);
  Table ltab = left->Peek();
  Table rtab = right->Peek();

  // Combined-name mapping (right columns renamed on collision, as in
  // MaterializeJoin).
  std::map<std::string, std::string> combined_to_right;
  std::vector<std::pair<std::string, std::string>> rvisible;
  for (const Field& f : rtab.schema().fields()) {
    std::string actual = f.name;
    if (ltab.schema().FindField(actual) >= 0) actual = "r_" + actual;
    combined_to_right[actual] = f.name;
    rvisible.emplace_back(f.name, actual);
  }
  NameScope scope;
  scope.AddSource(lalias, VisibleSelf(ltab.schema()));
  scope.AddSource(ralias, std::move(rvisible));

  if (stmt.where == nullptr) {
    return Status::BindError("a two-basket merge requires a join predicate");
  }
  ASSIGN_OR_RETURN(ExprPtr w, InlineSubqueries(stmt.where, subs));
  ASSIGN_OR_RETURN(w, ResolveColumns(w, scope, true));
  ASSIGN_OR_RETURN(EquiJoinPlan plan,
                   ExtractEquiJoin(w, ltab.schema(), combined_to_right));
  if (plan.keys.empty()) {
    return Status::BindError(
        "a two-basket merge requires at least one equality predicate");
  }
  std::vector<ops::JoinKey> keys;
  for (const ops::JoinKey& k : plan.keys) {
    keys.push_back({k.left, k.right});
  }
  ASSIGN_OR_RETURN(ops::JoinMatches matches,
                   ops::HashJoinIndices(ltab, rtab, keys));
  ASSIGN_OR_RETURN(Table combined, ops::MaterializeJoin(ltab, rtab, matches));
  SelVector surviving(combined.num_rows());
  for (size_t i = 0; i < surviving.size(); ++i) {
    surviving[i] = static_cast<uint32_t>(i);
  }
  if (plan.residual != nullptr) {
    ASSIGN_OR_RETURN(surviving, EvalPredicate(combined, *plan.residual, ctx));
  }
  Table result = combined.Take(surviving);

  // Consume exactly the matched tuples on both sides (non-matching tuples
  // remain, waiting for delayed arrivals).
  auto erase_side = [&](core::Basket* basket, const SelVector& match_rows) {
    SelVector rows;
    rows.reserve(surviving.size());
    for (uint32_t s : surviving) rows.push_back(match_rows[s]);
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    return basket->EraseRows(rows);
  };
  RETURN_NOT_OK(erase_side(left.get(), matches.left));
  RETURN_NOT_OK(erase_side(right.get(), matches.right));

  // Inner projection over the combined result.
  std::vector<ops::ProjectionItem> proj;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.star) {
      ASSIGN_OR_RETURN(auto cols, scope.StarColumns(item.star_qualifier));
      for (const auto& [vis, actual] : cols) {
        // Collapse duplicate output names from the two sides.
        bool dup = false;
        for (const auto& p : proj) {
          if (p.name == vis) dup = true;
        }
        proj.push_back({Expr::Col(actual), dup ? "r_" + vis : vis});
      }
      continue;
    }
    ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(item.expr, subs));
    ASSIGN_OR_RETURN(e, ResolveColumns(e, scope, true));
    proj.push_back({std::move(e), ItemName(item, i)});
  }
  return ops::Project(result, proj, ctx);
}

Result<Table> Executor::ExecSelect(const SelectStmt& stmt,
                                   const Subqueries* subs) {
  EvalContext ctx = MakeEvalContext();

  // --- FROM ---------------------------------------------------------------
  std::vector<Source> sources;
  for (const FromItem& f : stmt.from) {
    ASSIGN_OR_RETURN(Source s, EvalFromItem(f, subs));
    sources.push_back(std::move(s));
  }
  if (sources.size() > 2) {
    return Status::Unsupported("more than two FROM sources");
  }

  Table combined;
  NameScope scope;
  ExprPtr where_pending;  // still to apply after FROM
  if (stmt.where != nullptr) {
    ASSIGN_OR_RETURN(where_pending, InlineSubqueries(stmt.where, subs));
  }

  if (sources.empty()) {
    // SELECT with no FROM: one synthetic row.
    Table dummy(Schema({{"_one", DataType::kInt64}}));
    RETURN_NOT_OK(dummy.AppendRow({Value(1)}));
    combined = std::move(dummy);
  } else if (sources.size() == 1) {
    scope.AddSource(sources[0].alias, VisibleSelf(sources[0].table.schema()));
    combined = std::move(sources[0].table);
    if (where_pending != nullptr) {
      ASSIGN_OR_RETURN(ExprPtr w, ResolveColumns(where_pending, scope, true));
      ASSIGN_OR_RETURN(SelVector sel, EvalPredicate(combined, *w, ctx));
      combined = combined.Take(sel);
      where_pending = nullptr;
    }
  } else {
    const Table& ltab = sources[0].table;
    const Table& rtab = sources[1].table;
    std::map<std::string, std::string> combined_to_right;
    std::vector<std::pair<std::string, std::string>> rvisible;
    for (const Field& f : rtab.schema().fields()) {
      std::string actual = f.name;
      if (ltab.schema().FindField(actual) >= 0) actual = "r_" + actual;
      combined_to_right[actual] = f.name;
      rvisible.emplace_back(f.name, actual);
    }
    scope.AddSource(sources[0].alias, VisibleSelf(ltab.schema()));
    scope.AddSource(sources[1].alias, std::move(rvisible));

    if (where_pending == nullptr) {
      // Cross product via nested loop with a TRUE predicate.
      ASSIGN_OR_RETURN(
          ops::JoinMatches matches,
          ops::NestedLoopJoin(ltab, rtab, *Expr::Lit(Value(true)), ctx));
      ASSIGN_OR_RETURN(combined, ops::MaterializeJoin(ltab, rtab, matches));
    } else {
      ASSIGN_OR_RETURN(ExprPtr w, ResolveColumns(where_pending, scope, true));
      ASSIGN_OR_RETURN(EquiJoinPlan plan,
                       ExtractEquiJoin(w, ltab.schema(), combined_to_right));
      if (!plan.keys.empty()) {
        ASSIGN_OR_RETURN(ops::JoinMatches matches,
                         ops::HashJoinIndices(ltab, rtab, plan.keys));
        ASSIGN_OR_RETURN(combined, ops::MaterializeJoin(ltab, rtab, matches));
        if (plan.residual != nullptr) {
          ASSIGN_OR_RETURN(SelVector sel,
                           EvalPredicate(combined, *plan.residual, ctx));
          combined = combined.Take(sel);
        }
      } else {
        ASSIGN_OR_RETURN(ops::JoinMatches matches,
                         ops::NestedLoopJoin(ltab, rtab, *w, ctx));
        ASSIGN_OR_RETURN(combined, ops::MaterializeJoin(ltab, rtab, matches));
      }
      where_pending = nullptr;
    }
  }
  if (where_pending != nullptr) {
    // No-FROM select with a WHERE (rare): evaluate over the dummy row.
    ASSIGN_OR_RETURN(SelVector sel, EvalPredicate(combined, *where_pending, ctx));
    combined = combined.Take(sel);
  }

  // --- aggregation detection ----------------------------------------------
  bool aggregated = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (!item.star && item.expr != nullptr && ContainsAggregate(*item.expr)) {
      aggregated = true;
    }
  }
  if (stmt.having != nullptr) aggregated = true;

  Table projected;
  bool presorted = false;
  if (aggregated) {
    // Resolve group expressions.
    std::vector<ExprPtr> group_resolved;
    std::vector<ops::GroupItem> groups;
    for (size_t g = 0; g < stmt.group_by.size(); ++g) {
      ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(stmt.group_by[g], subs));
      ASSIGN_OR_RETURN(e, ResolveColumns(e, scope, true));
      group_resolved.push_back(e);
      groups.push_back({e, "_g" + std::to_string(g)});
    }
    // Rewrite select items and having over the aggregation output.
    std::vector<ops::AggItem> aggs;
    std::vector<ops::ProjectionItem> proj;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.star) {
        return Status::BindError("SELECT * is not valid in an aggregate query");
      }
      ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(item.expr, subs));
      ASSIGN_OR_RETURN(e, ResolveColumns(e, scope, true));
      e = SubstituteGroupExprs(e, group_resolved);
      ASSIGN_OR_RETURN(e, ExtractAggregates(e, &aggs));
      proj.push_back({std::move(e), ItemName(item, i)});
    }
    ExprPtr having;
    if (stmt.having != nullptr) {
      ASSIGN_OR_RETURN(having, InlineSubqueries(stmt.having, subs));
      ASSIGN_OR_RETURN(having, ResolveColumns(having, scope, true));
      having = SubstituteGroupExprs(having, group_resolved);
      ASSIGN_OR_RETURN(having, ExtractAggregates(having, &aggs));
    }
    ASSIGN_OR_RETURN(Table intermediate,
                     ops::Aggregate(combined, groups, aggs, ctx));
    if (having != nullptr) {
      ASSIGN_OR_RETURN(SelVector sel, EvalPredicate(intermediate, *having, ctx));
      intermediate = intermediate.Take(sel);
    }
    DedupeNames(&proj);
    ASSIGN_OR_RETURN(projected, ops::Project(intermediate, proj, ctx));
  } else {
    std::vector<ops::ProjectionItem> proj;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.star) {
        if (sources.empty()) {
          return Status::BindError("SELECT * requires a FROM clause");
        }
        ASSIGN_OR_RETURN(auto cols, scope.StarColumns(item.star_qualifier));
        for (const auto& [vis, actual] : cols) {
          bool dup = false;
          for (const auto& p : proj) {
            if (p.name == vis) dup = true;
          }
          proj.push_back({Expr::Col(actual), dup ? "r_" + vis : vis});
        }
        continue;
      }
      ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(item.expr, subs));
      ASSIGN_OR_RETURN(e, ResolveColumns(e, scope, true));
      proj.push_back({std::move(e), ItemName(item, i)});
    }
    DedupeNames(&proj);
    // ORDER BY keys referencing input columns dropped by the projection
    // (standard SQL allows this) sort the combined input *before*
    // projecting; keys binding to the output sort afterwards (handled by
    // the common block below).
    if (!stmt.order_by.empty()) {
      NameScope out_scope;
      std::vector<std::pair<std::string, std::string>> out_names;
      for (const ops::ProjectionItem& p : proj) {
        out_names.emplace_back(p.name, p.name);
      }
      out_scope.AddSource("", std::move(out_names));
      bool all_bind_output = true;
      for (const OrderItem& o : stmt.order_by) {
        if (!BindsAgainst(*o.expr, out_scope, scope)) all_bind_output = false;
      }
      if (!all_bind_output) {
        std::vector<ops::SortKey> keys;
        for (const OrderItem& o : stmt.order_by) {
          ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(o.expr, subs));
          ASSIGN_OR_RETURN(e, ResolveColumns(e, scope, true));
          keys.push_back({std::move(e), o.ascending});
        }
        ASSIGN_OR_RETURN(combined, ops::SortTable(combined, keys, ctx));
        presorted = true;
      }
    }
    ASSIGN_OR_RETURN(projected, ops::Project(combined, proj, ctx));
  }

  // --- DISTINCT -------------------------------------------------------------
  if (stmt.distinct) {
    std::vector<ops::GroupItem> groups;
    for (const Field& f : projected.schema().fields()) {
      groups.push_back({Expr::Col(f.name), f.name});
    }
    ASSIGN_OR_RETURN(projected, ops::Aggregate(projected, groups, {}, ctx));
  }

  // --- ORDER BY / LIMIT ------------------------------------------------------
  if (!stmt.order_by.empty() && !presorted) {
    NameScope out_scope;
    out_scope.AddSource("", VisibleSelf(projected.schema()));
    std::vector<ops::SortKey> keys;
    for (const OrderItem& o : stmt.order_by) {
      ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(o.expr, subs));
      e = ResolveAgainstOutput(e, out_scope);
      keys.push_back({std::move(e), o.ascending});
    }
    ASSIGN_OR_RETURN(projected, ops::SortTable(projected, keys, ctx));
  }
  if (stmt.top_n.has_value() && projected.num_rows() > *stmt.top_n) {
    SelVector prefix(*stmt.top_n);
    for (size_t i = 0; i < prefix.size(); ++i) {
      prefix[i] = static_cast<uint32_t>(i);
    }
    projected = projected.Take(prefix);
  }
  return projected;
}

Result<Table> Executor::ExecInsert(const InsertStmt& stmt,
                                   const Subqueries* subs) {
  EvalContext ctx = MakeEvalContext();

  // Materialize the source rows.
  Table source;
  if (!stmt.values.empty()) {
    // Infer a schema from the first evaluated row.
    std::vector<Row> rows;
    for (const auto& exprs : stmt.values) {
      Row row;
      for (const ExprPtr& e : exprs) {
        ASSIGN_OR_RETURN(ExprPtr inlined, InlineSubqueries(e, subs));
        ASSIGN_OR_RETURN(Value v, EvalConst(*inlined, ctx));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
    if (rows.empty()) return Table();
    Schema schema;
    for (size_t c = 0; c < rows[0].size(); ++c) {
      DataType t = DataType::kInt64;
      // Find the first non-null value in this position for typing.
      for (const Row& r : rows) {
        if (c < r.size() && !r[c].is_null()) {
          if (r[c].is_double()) t = DataType::kDouble;
          if (r[c].is_bool()) t = DataType::kBool;
          if (r[c].is_string()) t = DataType::kString;
          break;
        }
      }
      RETURN_NOT_OK(schema.AddField({"v" + std::to_string(c), t}));
    }
    source = Table(schema);
    for (const Row& r : rows) {
      RETURN_NOT_OK(source.AppendRow(r));
    }
  } else if (stmt.select != nullptr) {
    ASSIGN_OR_RETURN(source, ExecSelect(*stmt.select, subs));
  } else {
    return Status::InvalidArgument("INSERT without VALUES or SELECT");
  }

  // Resolve the target.
  const bool is_basket = engine_->HasBasket(stmt.target);
  Schema target_user_schema;
  if (is_basket) {
    ASSIGN_OR_RETURN(core::BasketPtr b, engine_->GetBasket(stmt.target));
    std::vector<Field> fields(b->schema().fields());
    if (b->has_arrival_column()) fields.pop_back();
    target_user_schema = Schema(std::move(fields));
  } else {
    ASSIGN_OR_RETURN(auto t, engine_->catalog().GetTable(stmt.target));
    target_user_schema = t->schema();
  }

  // Optional explicit column list: scatter source columns into place,
  // filling the rest with NULLs.
  if (!stmt.columns.empty()) {
    if (stmt.columns.size() != source.num_columns()) {
      return Status::InvalidArgument(
          "INSERT column list arity does not match source");
    }
    Table widened(target_user_schema);
    std::vector<int> positions;
    for (const std::string& col : stmt.columns) {
      int idx = target_user_schema.FindField(col);
      if (idx < 0) {
        return Status::BindError("no column '" + col + "' in '" +
                                 stmt.target + "'");
      }
      positions.push_back(idx);
    }
    for (size_t r = 0; r < source.num_rows(); ++r) {
      Row row(target_user_schema.num_fields(), Value::Null());
      for (size_t c = 0; c < positions.size(); ++c) {
        row[static_cast<size_t>(positions[c])] = source.column(c).GetValue(r);
      }
      RETURN_NOT_OK(widened.AppendRow(row));
    }
    source = std::move(widened);
  } else if (source.num_columns() == target_user_schema.num_fields() + 1) {
    // A full-schema stream row (including dc_arrival) forwarded into a
    // basket/table without that column: drop the arrival column by name.
    int idx = source.schema().FindField(core::kArrivalColumn);
    if (idx >= 0) {
      Schema trimmed;
      std::vector<size_t> keep;
      for (size_t c = 0; c < source.num_columns(); ++c) {
        if (static_cast<int>(c) == idx) continue;
        RETURN_NOT_OK(trimmed.AddField(source.schema().field(c)));
        keep.push_back(c);
      }
      Table t(trimmed);
      for (size_t k = 0; k < keep.size(); ++k) {
        RETURN_NOT_OK(t.column(k).AppendColumn(source.column(keep[k])));
      }
      source = std::move(t);
    }
  }

  ASSIGN_OR_RETURN(Table aligned, ConvertTableTo(target_user_schema, source));
  if (is_basket) {
    ASSIGN_OR_RETURN(core::BasketPtr b, engine_->GetBasket(stmt.target));
    ASSIGN_OR_RETURN(size_t n, b->Append(aligned, engine_->Now()));
    (void)n;
  } else {
    ASSIGN_OR_RETURN(auto t, engine_->catalog().GetTable(stmt.target));
    RETURN_NOT_OK(t->AppendTable(aligned));
  }
  return Table();
}

Result<Table> Executor::ExecCreate(const CreateStmt& stmt) {
  Status st;
  Schema schema = SchemaFromColumns(stmt.columns, &st);
  RETURN_NOT_OK(st);
  if (stmt.is_basket) {
    ASSIGN_OR_RETURN(auto b, engine_->CreateBasket(stmt.name, schema));
    // CHECK constraints resolve against the basket's full schema and act
    // as the §3.2 silent filter.
    NameScope scope;
    scope.AddSource(stmt.name, VisibleSelf(b->schema()));
    for (const ExprPtr& check : stmt.checks) {
      ASSIGN_OR_RETURN(ExprPtr resolved, ResolveColumns(check, scope, true));
      b->AddConstraint(std::move(resolved));
    }
  } else {
    if (engine_->HasBasket(stmt.name)) {
      return Status::AlreadyExists("a basket named '" + stmt.name + "' exists");
    }
    ASSIGN_OR_RETURN(auto t, engine_->catalog().CreateTable(stmt.name, schema));
    (void)t;
  }
  return Table();
}

Result<Table> Executor::ExecDrop(const DropStmt& stmt) {
  if (stmt.is_basket) {
    RETURN_NOT_OK(engine_->DropBasket(stmt.name));
  } else {
    RETURN_NOT_OK(engine_->catalog().DropTable(stmt.name));
  }
  return Table();
}

Result<Table> Executor::ExecSet(const SetStmt& stmt, const Subqueries* subs) {
  EvalContext ctx = MakeEvalContext();
  ASSIGN_OR_RETURN(ExprPtr e, InlineSubqueries(stmt.value, subs));
  ASSIGN_OR_RETURN(Value v, EvalConst(*e, ctx));
  // Observability toggles ride the SET statement: `SET dc_trace = 1`
  // starts capturing firing events into the dc_trace ring, `SET
  // dc_metrics = 0` turns off the optional hot-path instrumentation.
  // The variable is still stored, so `SELECT` of it reflects the toggle.
  if (stmt.name == "dc_trace" || stmt.name == "dc_metrics") {
    bool on = false;
    if (v.is_int()) {
      on = v.int_value() != 0;
    } else if (v.is_bool()) {
      on = v.bool_value();
    } else {
      return Status::InvalidArgument("SET " + stmt.name +
                                     " expects 0/1 or a boolean");
    }
    if (stmt.name == "dc_trace") {
      obs::TraceLog::Global().set_enabled(on);
    } else {
      obs::MetricsRegistry::set_enabled(on);
    }
  }
  // Durability knobs: `SET dc_spill = 0/1` opens/closes the basket spill
  // gate, `SET dc_fsync = 'none'|'batch'|'always'` retunes every open
  // ingest log's fsync policy.
  if (stmt.name == "dc_spill") {
    bool on = false;
    if (v.is_int()) {
      on = v.int_value() != 0;
    } else if (v.is_bool()) {
      on = v.bool_value();
    } else {
      return Status::InvalidArgument("SET dc_spill expects 0/1 or a boolean");
    }
    storage::SetSpillEnabled(on);
  }
  if (stmt.name == "dc_fsync") {
    if (!v.is_string()) {
      return Status::InvalidArgument(
          "SET dc_fsync expects 'none', 'batch' or 'always'");
    }
    storage::FsyncPolicy policy;
    const std::string& p = v.string_value();
    if (p == "none") {
      policy = storage::FsyncPolicy::kNone;
    } else if (p == "batch") {
      policy = storage::FsyncPolicy::kBatch;
    } else if (p == "always") {
      policy = storage::FsyncPolicy::kAlways;
    } else {
      return Status::InvalidArgument(
          "SET dc_fsync expects 'none', 'batch' or 'always', got '" + p + "'");
    }
    for (storage::IngestLog* log : storage::StorageRegistry::Global().Logs()) {
      log->set_policy(policy);
    }
  }
  // Sharding knob: `SET dc_shards = N` records how many ingress partitions
  // plan::BuildPartitionedChain should instantiate (read at wiring time by
  // plan::ResolvePartitions; a running gateway keeps its shard count).
  if (stmt.name == "dc_shards") {
    if (!v.is_int() || v.int_value() < 1) {
      return Status::InvalidArgument("SET dc_shards expects an integer >= 1");
    }
  }
  engine_->SetVariable(stmt.name, std::move(v));
  return Table();
}

Result<Table> Executor::ExecWithBlock(const WithBlockStmt& stmt,
                                      const Subqueries* subs) {
  ASSIGN_OR_RETURN(Table bound, EvalBasketExpr(*stmt.basket_query, subs));
  BindTemp(stmt.binding, std::move(bound));
  Status st;
  for (const StatementPtr& body : stmt.body) {
    Result<Table> r = ExecStatement(*body, subs);
    if (!r.ok()) {
      st = r.status();
      break;
    }
  }
  UnbindTemp(stmt.binding);
  RETURN_NOT_OK(st);
  return Table();
}

}  // namespace datacell::sql
