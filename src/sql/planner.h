#ifndef DATACELL_SQL_PLANNER_H_
#define DATACELL_SQL_PLANNER_H_

#include <map>
#include <string>

#include "column/type.h"
#include "expr/expr.h"
#include "ops/join.h"
#include "util/status.h"

namespace datacell::sql {

/// The join plan for a two-source FROM clause: hash-join keys plus a
/// residual predicate (evaluated over the combined table; null if the whole
/// WHERE was absorbed into keys). When `keys` is empty the executor falls
/// back to a nested-loop theta join over the full predicate.
struct EquiJoinPlan {
  std::vector<ops::JoinKey> keys;
  ExprPtr residual;
};

/// Splits a predicate (already resolved to combined-table column names)
/// into equality join keys and a residual. `combined_to_right` maps a
/// combined-table column name to the column's name in the right input
/// (right columns may have been renamed with an "r_" prefix on collision);
/// any combined name not in this map belongs to the left input.
Result<EquiJoinPlan> ExtractEquiJoin(
    const ExprPtr& where_combined, const Schema& left_schema,
    const std::map<std::string, std::string>& combined_to_right);

}  // namespace datacell::sql

#endif  // DATACELL_SQL_PLANNER_H_
