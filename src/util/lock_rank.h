#ifndef DATACELL_UTIL_LOCK_RANK_H_
#define DATACELL_UTIL_LOCK_RANK_H_

#include <cstddef>

/// Debug-build lock-hierarchy checker.
///
/// Every datacell::Mutex / RecursiveMutex carries a LockRank. The global
/// hierarchy (DESIGN.md "Concurrency invariants") is
///
///     metrics < catalog < engine < scheduler < basket
///
/// where a < b means a is *inner* to b: a thread already holding a
/// lower-ranked lock must not acquire a higher-ranked one. Acquisitions
/// therefore run in strictly decreasing rank order — basket locks first
/// (outermost), then scheduler, then engine, then catalog; the logging
/// mutex is rank 0 so a log line may be emitted while holding anything.
/// Equal-rank acquisition is allowed only for baskets, and only in
/// ascending address order — exactly the canonical order Factory::Fire
/// uses — so any two code paths locking the same pair of baskets agree on
/// the order and cannot deadlock.
///
/// When DATACELL_LOCK_RANK_CHECKS is defined (cmake -DDATACELL_LOCK_RANK=ON,
/// default ON for Debug builds) every acquisition is validated against the
/// thread's held-lock stack; a violation prints the acquisition stack of
/// the conflicting held lock plus the current stack, then aborts. In other
/// builds the checker compiles away to nothing.
namespace datacell {

enum class LockRank : int {
  /// Innermost: the log-line mutex, acquirable while holding anything.
  kLogging = 0,
  /// Observability registry / trace ring (src/obs). Inner to everything
  /// except logging: metric registration and trace recording may happen
  /// from firing bodies (basket lock held) and from the scheduler, and
  /// must never call back out into engine state.
  kMetrics = 5,
  /// Spill-file page allocator (storage::Pager free list). Inner to the
  /// buffer pool, which allocates/frees pages while holding its frame
  /// table lock.
  kStoragePager = 6,
  /// Storage-tier state: buffer-pool frame table, ingest-log writer,
  /// storage registry. Acquired from basket spill paths (basket lock
  /// held), so inner to kBasket — and never while another kStorage lock
  /// is held (the registry copies instance pointers out before querying
  /// them).
  kStorage = 8,
  /// Catalog of persistent tables.
  kCatalog = 10,
  /// Engine registry (baskets map, session variables).
  kEngine = 20,
  /// Measurement-tool leaves (actuator stats).
  kActuator = 25,
  /// Scheduler ready-queue state. Acquired from basket listeners, so it is
  /// inner to kBasket.
  kScheduler = 30,
  /// Outermost: basket locks. Same-rank acquisition must ascend by
  /// address (the canonical multi-basket order).
  kBasket = 40,
};

namespace lock_rank {

#ifdef DATACELL_LOCK_RANK_CHECKS

/// Validates that acquiring `mu` respects the hierarchy given this
/// thread's held locks, then records it. `recursive` marks mutexes that
/// may be re-entered by the holding thread. Aborts on violation.
void NoteAcquire(const void* mu, LockRank rank, bool recursive);

/// Removes the most recent record of `mu` from this thread's held stack.
void NoteRelease(const void* mu);

inline constexpr bool Enabled() { return true; }

#else

inline void NoteAcquire(const void*, LockRank, bool) {}
inline void NoteRelease(const void*) {}
inline constexpr bool Enabled() { return false; }

#endif  // DATACELL_LOCK_RANK_CHECKS

}  // namespace lock_rank
}  // namespace datacell

#endif  // DATACELL_UTIL_LOCK_RANK_H_
