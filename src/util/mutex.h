#ifndef DATACELL_UTIL_MUTEX_H_
#define DATACELL_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace datacell {

/// Annotated std::mutex wrapper: a Clang Thread Safety Analysis capability
/// with an integrated lock rank (see lock_rank.h). All mutexes in the
/// concurrent core go through this wrapper (or RecursiveMutex) so that
///  * fields marked DC_GUARDED_BY(mu_) cannot be touched without the lock
///    (compile-time, clang), and
///  * acquisition order violations of the documented hierarchy abort with
///    both stacks (runtime, debug builds).
class DC_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DC_ACQUIRE() {
    lock_rank::NoteAcquire(this, rank_, /*recursive=*/false);
    mu_.lock();
  }

  void Unlock() DC_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(this);
  }

 private:
  friend class CondVar;

  std::mutex mu_;
  const LockRank rank_;
};

/// Annotated std::recursive_mutex wrapper. Used where a multi-step
/// sequence must hold the lock across calls into the same object's public
/// API (the basket protocol of Algorithm 1).
class DC_CAPABILITY("mutex") RecursiveMutex {
 public:
  explicit RecursiveMutex(LockRank rank) : rank_(rank) {}

  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void Lock() DC_ACQUIRE() {
    lock_rank::NoteAcquire(this, rank_, /*recursive=*/true);
    mu_.lock();
  }

  void Unlock() DC_RELEASE() {
    mu_.unlock();
    lock_rank::NoteRelease(this);
  }

 private:
  std::recursive_mutex mu_;
  const LockRank rank_;
};

/// Scoped holder for Mutex, with explicit Unlock/Lock for code that
/// releases around a blocking region (the scheduler worker loop). The
/// analysis tracks the lock state through those calls.
class DC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DC_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }

  ~MutexLock() DC_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() DC_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }

  void Lock() DC_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_;
};

/// Scoped holder for RecursiveMutex, with early Unlock for snapshot-then-
/// evaluate paths (BasketExpression).
class DC_SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex* mu) DC_ACQUIRE(mu)
      : mu_(mu), held_(true) {
    mu_->Lock();
  }

  ~RecursiveMutexLock() DC_RELEASE() {
    if (held_) mu_->Unlock();
  }

  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

  void Unlock() DC_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }

 private:
  RecursiveMutex* const mu_;
  bool held_;
};

/// Condition variable bound to a Mutex at wait time. The wait functions
/// take the mutex expression directly so the analysis can check the
/// caller holds it; the internal release/reacquire balances out, so the
/// lock-rank bookkeeping (which considers the mutex held for the whole
/// wait) stays consistent.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) DC_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Returns false on timeout.
  bool WaitFor(Mutex* mu, Micros timeout) DC_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const std::cv_status st =
        cv_.wait_for(native, std::chrono::microseconds(timeout));
    native.release();
    return st != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace datacell

#endif  // DATACELL_UTIL_MUTEX_H_
