#include "util/lock_rank.h"

#ifdef DATACELL_LOCK_RANK_CHECKS

#include <cstdio>
#include <cstdlib>
#include <vector>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define DC_LOCK_RANK_HAVE_BACKTRACE 1
#endif
#endif

namespace datacell::lock_rank {

namespace {

constexpr int kMaxFrames = 24;

struct HeldLock {
  const void* mu;
  LockRank rank;
  bool recursive;
#ifdef DC_LOCK_RANK_HAVE_BACKTRACE
  void* frames[kMaxFrames];
  int num_frames;
#endif
};

// The checker must not use DC_LOG: logging takes a ranked mutex itself,
// and a violation report has to work no matter which locks are held.
// Everything below writes straight to stderr and aborts.
thread_local std::vector<HeldLock>* t_held = nullptr;

std::vector<HeldLock>& Held() {
  // Leaked on thread exit by design: checker builds are debug-only and the
  // alternative (destruction order vs. late lock use) is worse.
  if (t_held == nullptr) t_held = new std::vector<HeldLock>();
  return *t_held;
}

void PrintStack(const char* title, const HeldLock* held) {
  std::fprintf(stderr, "%s\n", title);
#ifdef DC_LOCK_RANK_HAVE_BACKTRACE
  if (held != nullptr) {
    backtrace_symbols_fd(held->frames, held->num_frames, 2);
    return;
  }
  void* frames[kMaxFrames];
  const int n = backtrace(frames, kMaxFrames);
  backtrace_symbols_fd(frames, n, 2);
#else
  (void)held;
  std::fprintf(stderr, "  (no backtrace support on this platform)\n");
#endif
}

[[noreturn]] void Violation(const char* what, const void* mu, LockRank rank,
                            const HeldLock& conflicting) {
  std::fprintf(stderr,
               "lock_rank: %s: acquiring mutex %p (rank %d) while holding "
               "mutex %p (rank %d)\n",
               what, mu, static_cast<int>(rank), conflicting.mu,
               static_cast<int>(conflicting.rank));
  PrintStack("lock_rank: held lock was acquired at:", &conflicting);
  PrintStack("lock_rank: current acquisition at:", nullptr);
  std::abort();
}

}  // namespace

void NoteAcquire(const void* mu, LockRank rank, bool recursive) {
  std::vector<HeldLock>& held = Held();
  for (const HeldLock& h : held) {
    if (h.mu == mu) {
      // Re-entry by the holding thread: fine for recursive mutexes, a
      // guaranteed self-deadlock for plain ones.
      if (!recursive) Violation("self-deadlock (non-recursive re-entry)", mu,
                                rank, h);
      goto record;
    }
  }
  for (const HeldLock& h : held) {
    if (static_cast<int>(rank) > static_cast<int>(h.rank)) {
      Violation("hierarchy inversion", mu, rank, h);
    }
    if (rank == h.rank) {
      // Equal rank: only baskets, and only ascending by address (the
      // canonical multi-basket order of Factory::Fire).
      if (rank != LockRank::kBasket || mu < h.mu) {
        Violation("same-rank order violation", mu, rank, h);
      }
    }
  }
record:
  HeldLock entry;
  entry.mu = mu;
  entry.rank = rank;
  entry.recursive = recursive;
#ifdef DC_LOCK_RANK_HAVE_BACKTRACE
  entry.num_frames = backtrace(entry.frames, kMaxFrames);
#endif
  held.push_back(entry);
}

void NoteRelease(const void* mu) {
  std::vector<HeldLock>& held = Held();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mu == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr, "lock_rank: releasing mutex %p this thread does not hold\n",
               mu);
  PrintStack("lock_rank: release at:", nullptr);
  std::abort();
}

}  // namespace datacell::lock_rank

#endif  // DATACELL_LOCK_RANK_CHECKS
