#ifndef DATACELL_UTIL_RANDOM_H_
#define DATACELL_UTIL_RANDOM_H_

#include <cstdint>

namespace datacell {

/// Small, fast, seedable PRNG (xorshift64*). Deterministic across
/// platforms, which matters for reproducible workload generation; we avoid
/// std::mt19937 so that generated Linear Road runs are stable regardless of
/// standard library.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : state_(seed ? seed : 1) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace datacell

#endif  // DATACELL_UTIL_RANDOM_H_
