#ifndef DATACELL_UTIL_CLOCK_H_
#define DATACELL_UTIL_CLOCK_H_

#include <cstdint>
#include <memory>

namespace datacell {

/// Microseconds since an arbitrary epoch. All stream timestamps in the
/// system use this unit (the paper's baskets carry a per-tuple timestamp
/// column reflecting arrival time).
using Micros = int64_t;

constexpr Micros kMicrosPerSecond = 1'000'000;
constexpr Micros kMicrosPerMilli = 1'000;

/// Time source abstraction so tests and the Linear Road driver can run on a
/// deterministic simulated clock while the network benches use wall time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds.
  virtual Micros Now() const = 0;

  /// Blocks (really or virtually) for the given duration.
  virtual void SleepFor(Micros duration) = 0;
};

/// Wall-clock backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  Micros Now() const override;
  void SleepFor(Micros duration) override;

  /// Shared process-wide instance.
  static SystemClock* Get();
};

/// A manually-advanced clock for deterministic tests and time-compressed
/// benchmark runs. SleepFor advances the clock instead of blocking.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(Micros start = 0) : now_(start) {}

  Micros Now() const override { return now_; }
  void SleepFor(Micros duration) override { now_ += duration; }

  /// Moves time forward by `delta` microseconds.
  void Advance(Micros delta) { now_ += delta; }
  /// Jumps to an absolute time; must not move backwards.
  void SetTime(Micros t);

 private:
  Micros now_;
};

}  // namespace datacell

#endif  // DATACELL_UTIL_CLOCK_H_
