#include "util/clock.h"

#include <chrono>
#include <thread>

#include "util/logging.h"

namespace datacell {

Micros SystemClock::Now() const {
  auto d = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

void SystemClock::SleepFor(Micros duration) {
  if (duration <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(duration));
}

SystemClock* SystemClock::Get() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

void SimulatedClock::SetTime(Micros t) {
  DC_CHECK(t >= now_) << "SimulatedClock moving backwards: " << t << " < "
                      << now_;
  now_ = t;
}

}  // namespace datacell
