// Random is header-only; this file keeps the build graph uniform (every
// module has a .cc) and anchors the class's vtable-free ODR story.
#include "util/random.h"
