#include "util/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#if !defined(DATACELL_SIMD_DISABLED)
#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define DATACELL_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define DATACELL_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !DATACELL_SIMD_DISABLED

namespace datacell::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

bool EnvForcesScalar() {
  static const bool off = [] {
    const char* e = std::getenv("DATACELL_SIMD");
    if (e == nullptr) return false;
    return std::strcmp(e, "off") == 0 || std::strcmp(e, "OFF") == 0 ||
           std::strcmp(e, "0") == 0 || std::strcmp(e, "scalar") == 0;
  }();
  return off;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNEON:
      return "neon";
    case Level::kAVX2:
      return "avx2";
  }
  return "?";
}

Level DetectedLevel() {
#if defined(DATACELL_SIMD_X86)
  static const Level lvl =
      __builtin_cpu_supports("avx2") ? Level::kAVX2 : Level::kScalar;
  return lvl;
#elif defined(DATACELL_SIMD_NEON)
  return Level::kNEON;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() {
  if (force_scalar() || EnvForcesScalar()) return Level::kScalar;
  return DetectedLevel();
}

void SetForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool force_scalar() { return g_force_scalar.load(std::memory_order_relaxed); }

bool CmpMatchesI64(Cmp op, int64_t x, int64_t k) {
  switch (op) {
    case Cmp::kEq:
      return x == k;
    case Cmp::kNe:
      return x != k;
    case Cmp::kLt:
      return x < k;
    case Cmp::kLe:
      return x <= k;
    case Cmp::kGt:
      return x > k;
    case Cmp::kGe:
      return x >= k;
  }
  return false;
}

bool CmpMatchesF64(Cmp op, double x, double k) {
  switch (op) {
    case Cmp::kEq:
      return x == k;
    case Cmp::kNe:
      return x != k;
    case Cmp::kLt:
      return x < k;
    case Cmp::kLe:
      return x <= k;
    case Cmp::kGt:
      return x > k;
    case Cmp::kGe:
      return x >= k;
  }
  return false;
}

void FoldState::MergeFrom(const FoldState& o) {
  count += o.count;
  isum += o.isum;
  // Chunk-order merge: callers merge partials in ascending chunk order, so
  // this addition sequence is the same no matter how many workers ran.
  dsum += o.dsum;
  if (!o.seen) return;
  if (!seen) {
    seen = true;
    imin = o.imin;
    imax = o.imax;
    dmin = o.dmin;
    dmax = o.dmax;
    return;
  }
  imin = (o.imin < imin) ? o.imin : imin;
  imax = (o.imax > imax) ? o.imax : imax;
  // Keep the incumbent (earlier chunk) on ties — same shape as the stripe
  // combine inside the folds.
  dmin = (o.dmin < dmin) ? o.dmin : dmin;
  dmax = (o.dmax > dmax) ? o.dmax : dmax;
}

// ---------------------------------------------------------------------------
// Scalar fallback. The reference implementation: every vector backend must
// be byte-identical with these (see the determinism contract in simd.h).
// ---------------------------------------------------------------------------

namespace scalar {

template <typename T, typename Pred>
void SelectIf(const T* d, const uint8_t* valid, size_t n, uint32_t base,
              std::vector<uint32_t>* out, Pred pred) {
  if (valid == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (pred(d[i])) out->push_back(base + static_cast<uint32_t>(i));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (valid[i] != 0 && pred(d[i])) {
      out->push_back(base + static_cast<uint32_t>(i));
    }
  }
}

template <typename T>
void SelectCmp(const T* d, const uint8_t* valid, size_t n, Cmp op, T k,
               uint32_t base, std::vector<uint32_t>* out) {
  switch (op) {
    case Cmp::kEq:
      SelectIf(d, valid, n, base, out, [k](T x) { return x == k; });
      break;
    case Cmp::kNe:
      SelectIf(d, valid, n, base, out, [k](T x) { return x != k; });
      break;
    case Cmp::kLt:
      SelectIf(d, valid, n, base, out, [k](T x) { return x < k; });
      break;
    case Cmp::kLe:
      SelectIf(d, valid, n, base, out, [k](T x) { return x <= k; });
      break;
    case Cmp::kGt:
      SelectIf(d, valid, n, base, out, [k](T x) { return x > k; });
      break;
    case Cmp::kGe:
      SelectIf(d, valid, n, base, out, [k](T x) { return x >= k; });
      break;
  }
}

void SelectRangeI64(const int64_t* d, const uint8_t* valid, size_t n,
                    int64_t a, int64_t b, uint32_t base,
                    std::vector<uint32_t>* out) {
  SelectIf(d, valid, n, base, out,
           [a, b](int64_t x) { return x >= a && x <= b; });
}

void SelectRangeF64(const double* d, const uint8_t* valid, size_t n, double lo,
                    bool lo_inc, double hi, bool hi_inc, uint32_t base,
                    std::vector<uint32_t>* out) {
  SelectIf(d, valid, n, base, out, [=](double x) {
    const bool lo_ok = lo_inc ? x >= lo : x > lo;
    const bool hi_ok = hi_inc ? x <= hi : x < hi;
    return lo_ok && hi_ok;
  });
}

FoldState FoldI64(const int64_t* d, const uint8_t* valid, size_t n) {
  FoldState st;
  int64_t mn = std::numeric_limits<int64_t>::max();
  int64_t mx = std::numeric_limits<int64_t>::min();
  if (valid == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      const int64_t x = d[i];
      st.isum += static_cast<uint64_t>(x);
      mn = (x < mn) ? x : mn;
      mx = (x > mx) ? x : mx;
    }
    st.count = n;
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (valid[i] == 0) continue;
      const int64_t x = d[i];
      st.isum += static_cast<uint64_t>(x);
      mn = (x < mn) ? x : mn;
      mx = (x > mx) ? x : mx;
      ++st.count;
    }
  }
  if (st.count > 0) {
    st.seen = true;
    st.imin = mn;
    st.imax = mx;
  }
  return st;
}

// The striped double fold (contract in simd.h): stripe j of {s,mn,mx}
// accumulates elements whose position within the span is ≡ j (mod 4),
// stripes reduce as (s0+s1)+(s2+s3) and min/max combine left to right.
struct Stripes4 {
  double s[4] = {0, 0, 0, 0};
  double mn[4];
  double mx[4];

  Stripes4() {
    for (double& v : mn) v = std::numeric_limits<double>::infinity();
    for (double& v : mx) v = -std::numeric_limits<double>::infinity();
  }

  inline void Fold(size_t pos, double x) {
    const size_t j = pos & 3;
    s[j] += x;
    mn[j] = (x < mn[j]) ? x : mn[j];
    mx[j] = (x > mx[j]) ? x : mx[j];
  }

  void Finish(FoldState* st) const {
    st->dsum = (s[0] + s[1]) + (s[2] + s[3]);
    double lo = mn[0];
    double hi = mx[0];
    for (int j = 1; j < 4; ++j) {
      lo = (mn[j] < lo) ? mn[j] : lo;
      hi = (mx[j] > hi) ? mx[j] : hi;
    }
    st->dmin = lo;
    st->dmax = hi;
  }
};

FoldState FoldF64(const double* d, const uint8_t* valid, size_t n) {
  FoldState st;
  Stripes4 acc;
  if (valid == nullptr) {
    for (size_t i = 0; i < n; ++i) acc.Fold(i, d[i]);
    st.count = n;
  } else {
    size_t pos = 0;  // stripe index runs over the *valid* elements
    for (size_t i = 0; i < n; ++i) {
      if (valid[i] == 0) continue;
      acc.Fold(pos++, d[i]);
    }
    st.count = pos;
  }
  if (st.count > 0) {
    st.seen = true;
    acc.Finish(&st);
  }
  return st;
}

FoldState FoldI64Sel(const int64_t* d, const uint8_t* valid,
                     const uint32_t* sel, size_t n) {
  FoldState st;
  int64_t mn = std::numeric_limits<int64_t>::max();
  int64_t mx = std::numeric_limits<int64_t>::min();
  for (size_t j = 0; j < n; ++j) {
    const uint32_t r = sel[j];
    if (valid != nullptr && valid[r] == 0) continue;
    const int64_t x = d[r];
    st.isum += static_cast<uint64_t>(x);
    mn = (x < mn) ? x : mn;
    mx = (x > mx) ? x : mx;
    ++st.count;
  }
  if (st.count > 0) {
    st.seen = true;
    st.imin = mn;
    st.imax = mx;
  }
  return st;
}

FoldState FoldF64Sel(const double* d, const uint8_t* valid,
                     const uint32_t* sel, size_t n) {
  FoldState st;
  Stripes4 acc;
  size_t pos = 0;
  for (size_t j = 0; j < n; ++j) {
    const uint32_t r = sel[j];
    if (valid != nullptr && valid[r] == 0) continue;
    acc.Fold(pos++, d[r]);
  }
  st.count = pos;
  if (st.count > 0) {
    st.seen = true;
    acc.Finish(&st);
  }
  return st;
}

void HashI64(const int64_t* d, size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint64_t>(d[i]) * kHashMul;
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 backend. Compiled into target("avx2") functions so the library
// builds without -mavx2 and the dispatch stays a runtime decision.
// ---------------------------------------------------------------------------

#if defined(DATACELL_SIMD_X86)

namespace avx2 {

// Shuffle table for the 4-lane uint32 compressed store: entry m rearranges
// the lanes whose bit is set in m to the front (ascending), everything
// else is zeroed (0x80) and overwritten by the next emit.
struct Lut4 {
  alignas(16) uint8_t b[16][16];
};

constexpr Lut4 MakeLut4() {
  Lut4 l{};
  for (int mask = 0; mask < 16; ++mask) {
    int outpos = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask & (1 << lane)) == 0) continue;
      for (int byte = 0; byte < 4; ++byte) {
        l.b[mask][outpos * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
      }
      ++outpos;
    }
    for (int rest = outpos * 4; rest < 16; ++rest) l.b[mask][rest] = 0x80;
  }
  return l;
}

constexpr Lut4 kLut4 = MakeLut4();

__attribute__((target("avx2"))) inline int MaskOf(__m256i m) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(m));
}

// Compressed store of the selected lanes of `idx` (4x uint32 row ids).
// Always writes 16 bytes at outp; safe because the emitted count so far
// can never exceed the element offset, so outp + 4 stays inside a buffer
// sized for the whole span.
__attribute__((target("avx2"))) inline uint32_t* Emit(int bits, __m128i idx,
                                                      uint32_t* outp) {
  const __m128i shuf =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kLut4.b[bits]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(outp),
                   _mm_shuffle_epi8(idx, shuf));
  return outp + __builtin_popcount(static_cast<unsigned>(bits));
}

__attribute__((target("avx2"))) size_t SelectCmpI64(const int64_t* d, size_t n,
                                                    Cmp op, int64_t k,
                                                    uint32_t base,
                                                    uint32_t* outp) {
  uint32_t* const out0 = outp;
  const __m256i kv = _mm256_set1_epi64x(k);
  __m128i idx = _mm_setr_epi32(
      static_cast<int>(base), static_cast<int>(base + 1),
      static_cast<int>(base + 2), static_cast<int>(base + 3));
  const __m128i step = _mm_set1_epi32(4);
  // Derive every comparison from cmpeq/cmpgt plus a mask flip:
  // lt(x,k) = gt(k,x), le = ~gt(x,k), ge = ~gt(k,x), ne = ~eq.
  int inv = 0;
  int mode = 0;  // 0: eq(x,k)  1: gt(x,k)  2: gt(k,x)
  switch (op) {
    case Cmp::kEq:
      mode = 0;
      break;
    case Cmp::kNe:
      mode = 0;
      inv = 0xF;
      break;
    case Cmp::kGt:
      mode = 1;
      break;
    case Cmp::kLe:
      mode = 1;
      inv = 0xF;
      break;
    case Cmp::kLt:
      mode = 2;
      break;
    case Cmp::kGe:
      mode = 2;
      inv = 0xF;
      break;
  }
  size_t i = 0;
  const size_t nvec = n & ~size_t{3};
#define DC_AVX2_SELECT_BODY(CMPEXPR)                                     \
  for (; i < nvec; i += 4) {                                             \
    const __m256i x =                                                    \
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));     \
    const int bits = MaskOf(CMPEXPR) ^ inv;                              \
    outp = Emit(bits, idx, outp);                                        \
    idx = _mm_add_epi32(idx, step);                                      \
  }
  switch (mode) {
    case 0:
      DC_AVX2_SELECT_BODY(_mm256_cmpeq_epi64(x, kv));
      break;
    case 1:
      DC_AVX2_SELECT_BODY(_mm256_cmpgt_epi64(x, kv));
      break;
    default:
      DC_AVX2_SELECT_BODY(_mm256_cmpgt_epi64(kv, x));
      break;
  }
#undef DC_AVX2_SELECT_BODY
  for (; i < n; ++i) {
    if (CmpMatchesI64(op, d[i], k)) {
      *outp++ = base + static_cast<uint32_t>(i);
    }
  }
  return static_cast<size_t>(outp - out0);
}

__attribute__((target("avx2"))) size_t SelectCmpF64(const double* d, size_t n,
                                                    Cmp op, double k,
                                                    uint32_t base,
                                                    uint32_t* outp) {
  uint32_t* const out0 = outp;
  const __m256d kv = _mm256_set1_pd(k);
  __m128i idx = _mm_setr_epi32(
      static_cast<int>(base), static_cast<int>(base + 1),
      static_cast<int>(base + 2), static_cast<int>(base + 3));
  const __m128i step = _mm_set1_epi32(4);
  size_t i = 0;
  const size_t nvec = n & ~size_t{3};
#define DC_AVX2_SELECT_PD(PRED)                                          \
  for (; i < nvec; i += 4) {                                             \
    const __m256d x = _mm256_loadu_pd(d + i);                            \
    const int bits = _mm256_movemask_pd(_mm256_cmp_pd(x, kv, (PRED)));   \
    outp = Emit(bits, idx, outp);                                        \
    idx = _mm_add_epi32(idx, step);                                      \
  }
  // Ordered predicates except NEQ (IEEE !=, true on NaN) — exactly the
  // scalar operators in CmpMatchesF64.
  switch (op) {
    case Cmp::kEq:
      DC_AVX2_SELECT_PD(_CMP_EQ_OQ);
      break;
    case Cmp::kNe:
      DC_AVX2_SELECT_PD(_CMP_NEQ_UQ);
      break;
    case Cmp::kLt:
      DC_AVX2_SELECT_PD(_CMP_LT_OQ);
      break;
    case Cmp::kLe:
      DC_AVX2_SELECT_PD(_CMP_LE_OQ);
      break;
    case Cmp::kGt:
      DC_AVX2_SELECT_PD(_CMP_GT_OQ);
      break;
    case Cmp::kGe:
      DC_AVX2_SELECT_PD(_CMP_GE_OQ);
      break;
  }
#undef DC_AVX2_SELECT_PD
  for (; i < n; ++i) {
    if (CmpMatchesF64(op, d[i], k)) {
      *outp++ = base + static_cast<uint32_t>(i);
    }
  }
  return static_cast<size_t>(outp - out0);
}

__attribute__((target("avx2"))) size_t SelectRangeI64(const int64_t* d,
                                                      size_t n, int64_t a,
                                                      int64_t b, uint32_t base,
                                                      uint32_t* outp) {
  uint32_t* const out0 = outp;
  const __m256i av = _mm256_set1_epi64x(a);
  const __m256i bv = _mm256_set1_epi64x(b);
  __m128i idx = _mm_setr_epi32(
      static_cast<int>(base), static_cast<int>(base + 1),
      static_cast<int>(base + 2), static_cast<int>(base + 3));
  const __m128i step = _mm_set1_epi32(4);
  size_t i = 0;
  const size_t nvec = n & ~size_t{3};
  for (; i < nvec; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    // in-range = (x >= a) & (x <= b) = ~gt(a,x) & ~gt(x,b)
    const int bits =
        ~(MaskOf(_mm256_cmpgt_epi64(av, x)) | MaskOf(_mm256_cmpgt_epi64(x, bv))) &
        0xF;
    outp = Emit(bits, idx, outp);
    idx = _mm_add_epi32(idx, step);
  }
  for (; i < n; ++i) {
    const int64_t x = d[i];
    if (x >= a && x <= b) *outp++ = base + static_cast<uint32_t>(i);
  }
  return static_cast<size_t>(outp - out0);
}

__attribute__((target("avx2"))) size_t SelectRangeF64(
    const double* d, size_t n, double lo, bool lo_inc, double hi, bool hi_inc,
    uint32_t base, uint32_t* outp) {
  uint32_t* const out0 = outp;
  const __m256d lov = _mm256_set1_pd(lo);
  const __m256d hiv = _mm256_set1_pd(hi);
  __m128i idx = _mm_setr_epi32(
      static_cast<int>(base), static_cast<int>(base + 1),
      static_cast<int>(base + 2), static_cast<int>(base + 3));
  const __m128i step = _mm_set1_epi32(4);
  size_t i = 0;
  const size_t nvec = n & ~size_t{3};
#define DC_AVX2_RANGE_PD(LOPRED, HIPRED)                                  \
  for (; i < nvec; i += 4) {                                              \
    const __m256d x = _mm256_loadu_pd(d + i);                             \
    const __m256d m = _mm256_and_pd(_mm256_cmp_pd(x, lov, (LOPRED)),      \
                                    _mm256_cmp_pd(x, hiv, (HIPRED)));     \
    outp = Emit(_mm256_movemask_pd(m), idx, outp);                        \
    idx = _mm_add_epi32(idx, step);                                       \
  }
  if (lo_inc && hi_inc) {
    DC_AVX2_RANGE_PD(_CMP_GE_OQ, _CMP_LE_OQ);
  } else if (lo_inc) {
    DC_AVX2_RANGE_PD(_CMP_GE_OQ, _CMP_LT_OQ);
  } else if (hi_inc) {
    DC_AVX2_RANGE_PD(_CMP_GT_OQ, _CMP_LE_OQ);
  } else {
    DC_AVX2_RANGE_PD(_CMP_GT_OQ, _CMP_LT_OQ);
  }
#undef DC_AVX2_RANGE_PD
  for (; i < n; ++i) {
    const double x = d[i];
    const bool lo_ok = lo_inc ? x >= lo : x > lo;
    const bool hi_ok = hi_inc ? x <= hi : x < hi;
    if (lo_ok && hi_ok) *outp++ = base + static_cast<uint32_t>(i);
  }
  return static_cast<size_t>(outp - out0);
}

// Row indices are uint32 but i32gather sign-extends: fine, a 2^31-row
// column would need a 16 GiB buffer, far beyond any basket bound.
__attribute__((target("avx2"))) void GatherI64(const int64_t* src,
                                               const uint32_t* sel, size_t n,
                                               int64_t* dst) {
  size_t j = 0;
  const size_t nvec = n & ~size_t{3};
  for (; j < nvec; j += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    const __m256i v = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(src), idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j), v);
  }
  for (; j < n; ++j) dst[j] = src[sel[j]];
}

__attribute__((target("avx2"))) void GatherF64(const double* src,
                                               const uint32_t* sel, size_t n,
                                               double* dst) {
  size_t j = 0;
  const size_t nvec = n & ~size_t{3};
  for (; j < nvec; j += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    const __m256d v = _mm256_i32gather_pd(src, idx, 8);
    _mm256_storeu_pd(dst + j, v);
  }
  for (; j < n; ++j) dst[j] = src[sel[j]];
}

__attribute__((target("avx2"))) FoldState FoldI64(const int64_t* d, size_t n) {
  FoldState st;
  __m256i s = _mm256_setzero_si256();
  __m256i mn = _mm256_set1_epi64x(std::numeric_limits<int64_t>::max());
  __m256i mx = _mm256_set1_epi64x(std::numeric_limits<int64_t>::min());
  size_t i = 0;
  const size_t nvec = n & ~size_t{3};
  for (; i < nvec; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    s = _mm256_add_epi64(s, x);  // wraps exactly like the uint64 scalar sum
    mn = _mm256_blendv_epi8(mn, x, _mm256_cmpgt_epi64(mn, x));
    mx = _mm256_blendv_epi8(mx, x, _mm256_cmpgt_epi64(x, mx));
  }
  alignas(32) int64_t ls[4], lmn[4], lmx[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(ls), s);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lmn), mn);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lmx), mx);
  uint64_t isum = static_cast<uint64_t>(ls[0]) + static_cast<uint64_t>(ls[1]) +
                  static_cast<uint64_t>(ls[2]) + static_cast<uint64_t>(ls[3]);
  int64_t rmn = lmn[0], rmx = lmx[0];
  for (int j = 1; j < 4; ++j) {
    rmn = (lmn[j] < rmn) ? lmn[j] : rmn;
    rmx = (lmx[j] > rmx) ? lmx[j] : rmx;
  }
  for (; i < n; ++i) {
    const int64_t x = d[i];
    isum += static_cast<uint64_t>(x);
    rmn = (x < rmn) ? x : rmn;
    rmx = (x > rmx) ? x : rmx;
  }
  st.count = n;
  st.isum = isum;
  if (n > 0) {
    st.seen = true;
    st.imin = rmn;
    st.imax = rmx;
  }
  return st;
}

__attribute__((target("avx2"))) FoldState FoldF64(const double* d, size_t n) {
  FoldState st;
  // Lane j is stripe j: identical accumulation shape to scalar::Stripes4.
  __m256d s = _mm256_setzero_pd();
  __m256d mn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d mx = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  size_t i = 0;
  const size_t nvec = n & ~size_t{3};
  for (; i < nvec; i += 4) {
    const __m256d x = _mm256_loadu_pd(d + i);
    s = _mm256_add_pd(s, x);
    mn = _mm256_min_pd(x, mn);  // (x < mn) ? x : mn — incumbent wins ties
    mx = _mm256_max_pd(x, mx);  // (x > mx) ? x : mx
  }
  scalar::Stripes4 acc;
  _mm256_storeu_pd(acc.s, s);
  _mm256_storeu_pd(acc.mn, mn);
  _mm256_storeu_pd(acc.mx, mx);
  for (; i < n; ++i) acc.Fold(i, d[i]);
  st.count = n;
  if (n > 0) {
    st.seen = true;
    acc.Finish(&st);
  }
  return st;
}

__attribute__((target("avx2"))) FoldState FoldI64Sel(const int64_t* d,
                                                     const uint32_t* sel,
                                                     size_t n) {
  FoldState st;
  __m256i s = _mm256_setzero_si256();
  __m256i mn = _mm256_set1_epi64x(std::numeric_limits<int64_t>::max());
  __m256i mx = _mm256_set1_epi64x(std::numeric_limits<int64_t>::min());
  size_t j = 0;
  const size_t nvec = n & ~size_t{3};
  for (; j < nvec; j += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    const __m256i x = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(d), idx, 8);
    s = _mm256_add_epi64(s, x);
    mn = _mm256_blendv_epi8(mn, x, _mm256_cmpgt_epi64(mn, x));
    mx = _mm256_blendv_epi8(mx, x, _mm256_cmpgt_epi64(x, mx));
  }
  alignas(32) int64_t ls[4], lmn[4], lmx[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(ls), s);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lmn), mn);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lmx), mx);
  uint64_t isum = static_cast<uint64_t>(ls[0]) + static_cast<uint64_t>(ls[1]) +
                  static_cast<uint64_t>(ls[2]) + static_cast<uint64_t>(ls[3]);
  int64_t rmn = lmn[0], rmx = lmx[0];
  for (int t = 1; t < 4; ++t) {
    rmn = (lmn[t] < rmn) ? lmn[t] : rmn;
    rmx = (lmx[t] > rmx) ? lmx[t] : rmx;
  }
  for (; j < n; ++j) {
    const int64_t x = d[sel[j]];
    isum += static_cast<uint64_t>(x);
    rmn = (x < rmn) ? x : rmn;
    rmx = (x > rmx) ? x : rmx;
  }
  st.count = n;
  st.isum = isum;
  if (n > 0) {
    st.seen = true;
    st.imin = rmn;
    st.imax = rmx;
  }
  return st;
}

__attribute__((target("avx2"))) FoldState FoldF64Sel(const double* d,
                                                     const uint32_t* sel,
                                                     size_t n) {
  FoldState st;
  __m256d s = _mm256_setzero_pd();
  __m256d mn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d mx = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  size_t j = 0;
  const size_t nvec = n & ~size_t{3};
  for (; j < nvec; j += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    const __m256d x = _mm256_i32gather_pd(d, idx, 8);
    s = _mm256_add_pd(s, x);
    mn = _mm256_min_pd(x, mn);
    mx = _mm256_max_pd(x, mx);
  }
  scalar::Stripes4 acc;
  _mm256_storeu_pd(acc.s, s);
  _mm256_storeu_pd(acc.mn, mn);
  _mm256_storeu_pd(acc.mx, mx);
  for (; j < n; ++j) acc.Fold(j, d[sel[j]]);
  st.count = n;
  if (n > 0) {
    st.seen = true;
    acc.Finish(&st);
  }
  return st;
}

// 64x64→low-64 multiply out of three 32x32 multiplies (no mullo_epi64
// before AVX-512): x*C mod 2^64 = lo(x)*lo(C) + ((hi(x)*lo(C) +
// lo(x)*hi(C)) << 32). Matches the scalar uint64 multiply bit for bit.
__attribute__((target("avx2"))) void HashI64(const int64_t* d, size_t n,
                                             uint64_t* out) {
  const __m256i c = _mm256_set1_epi64x(static_cast<int64_t>(kHashMul));
  const __m256i ch = _mm256_set1_epi64x(static_cast<int64_t>(kHashMul >> 32));
  size_t i = 0;
  const size_t nvec = n & ~size_t{3};
  for (; i < nvec; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const __m256i lo = _mm256_mul_epu32(x, c);
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(xh, c), _mm256_mul_epu32(x, ch));
    const __m256i h = _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  for (; i < n; ++i) out[i] = static_cast<uint64_t>(d[i]) * kHashMul;
}

}  // namespace avx2

#endif  // DATACELL_SIMD_X86

// ---------------------------------------------------------------------------
// NEON backend (aarch64): 2-lane f64/i64 vectors, so stripes {0,1} and
// {2,3} live in two registers. Comparisons extract lane masks and emit
// indices scalar (no pshufb-style compressed store pays off at 2 lanes).
// ---------------------------------------------------------------------------

#if defined(DATACELL_SIMD_NEON)

namespace neon {

template <typename EmitCmp>
size_t SelectLanesI64(const int64_t* d, size_t n, uint32_t base,
                      uint32_t* outp, EmitCmp cmp) {
  uint32_t* const out0 = outp;
  size_t i = 0;
  const size_t nvec = n & ~size_t{1};
  for (; i < nvec; i += 2) {
    const int64x2_t x = vld1q_s64(d + i);
    const uint64x2_t m = cmp(x);
    if (vgetq_lane_u64(m, 0) != 0) *outp++ = base + static_cast<uint32_t>(i);
    if (vgetq_lane_u64(m, 1) != 0) {
      *outp++ = base + static_cast<uint32_t>(i + 1);
    }
  }
  return static_cast<size_t>(outp - out0);
}

size_t SelectCmpI64(const int64_t* d, size_t n, Cmp op, int64_t k,
                    uint32_t base, uint32_t* outp) {
  const int64x2_t kv = vdupq_n_s64(k);
  size_t count = 0;
  switch (op) {
    case Cmp::kEq:
      count = SelectLanesI64(d, n, base, outp,
                             [kv](int64x2_t x) { return vceqq_s64(x, kv); });
      break;
    case Cmp::kNe:
      count = SelectLanesI64(d, n, base, outp, [kv](int64x2_t x) {
        return vreinterpretq_u64_u32(
            vmvnq_u32(vreinterpretq_u32_u64(vceqq_s64(x, kv))));
      });
      break;
    case Cmp::kLt:
      count = SelectLanesI64(d, n, base, outp,
                             [kv](int64x2_t x) { return vcltq_s64(x, kv); });
      break;
    case Cmp::kLe:
      count = SelectLanesI64(d, n, base, outp,
                             [kv](int64x2_t x) { return vcleq_s64(x, kv); });
      break;
    case Cmp::kGt:
      count = SelectLanesI64(d, n, base, outp,
                             [kv](int64x2_t x) { return vcgtq_s64(x, kv); });
      break;
    case Cmp::kGe:
      count = SelectLanesI64(d, n, base, outp,
                             [kv](int64x2_t x) { return vcgeq_s64(x, kv); });
      break;
  }
  uint32_t* p = outp + count;
  for (size_t i = n & ~size_t{1}; i < n; ++i) {
    if (CmpMatchesI64(op, d[i], k)) *p++ = base + static_cast<uint32_t>(i);
  }
  return static_cast<size_t>(p - outp);
}

template <typename EmitCmp>
size_t SelectLanesF64(const double* d, size_t n, uint32_t base, uint32_t* outp,
                      EmitCmp cmp) {
  uint32_t* const out0 = outp;
  size_t i = 0;
  const size_t nvec = n & ~size_t{1};
  for (; i < nvec; i += 2) {
    const float64x2_t x = vld1q_f64(d + i);
    const uint64x2_t m = cmp(x);
    if (vgetq_lane_u64(m, 0) != 0) *outp++ = base + static_cast<uint32_t>(i);
    if (vgetq_lane_u64(m, 1) != 0) {
      *outp++ = base + static_cast<uint32_t>(i + 1);
    }
  }
  return static_cast<size_t>(outp - out0);
}

size_t SelectCmpF64(const double* d, size_t n, Cmp op, double k, uint32_t base,
                    uint32_t* outp) {
  const float64x2_t kv = vdupq_n_f64(k);
  size_t count = 0;
  switch (op) {
    case Cmp::kEq:
      count = SelectLanesF64(d, n, base, outp,
                             [kv](float64x2_t x) { return vceqq_f64(x, kv); });
      break;
    case Cmp::kNe:
      // FCMEQ is ordered (false on NaN), so the complement is IEEE != .
      count = SelectLanesF64(d, n, base, outp, [kv](float64x2_t x) {
        return vreinterpretq_u64_u32(
            vmvnq_u32(vreinterpretq_u32_u64(vceqq_f64(x, kv))));
      });
      break;
    case Cmp::kLt:
      count = SelectLanesF64(d, n, base, outp,
                             [kv](float64x2_t x) { return vcltq_f64(x, kv); });
      break;
    case Cmp::kLe:
      count = SelectLanesF64(d, n, base, outp,
                             [kv](float64x2_t x) { return vcleq_f64(x, kv); });
      break;
    case Cmp::kGt:
      count = SelectLanesF64(d, n, base, outp,
                             [kv](float64x2_t x) { return vcgtq_f64(x, kv); });
      break;
    case Cmp::kGe:
      count = SelectLanesF64(d, n, base, outp,
                             [kv](float64x2_t x) { return vcgeq_f64(x, kv); });
      break;
  }
  uint32_t* p = outp + count;
  for (size_t i = n & ~size_t{1}; i < n; ++i) {
    if (CmpMatchesF64(op, d[i], k)) *p++ = base + static_cast<uint32_t>(i);
  }
  return static_cast<size_t>(p - outp);
}

size_t SelectRangeI64(const int64_t* d, size_t n, int64_t a, int64_t b,
                      uint32_t base, uint32_t* outp) {
  const int64x2_t av = vdupq_n_s64(a);
  const int64x2_t bv = vdupq_n_s64(b);
  size_t count = SelectLanesI64(d, n, base, outp, [av, bv](int64x2_t x) {
    return vandq_u64(vcgeq_s64(x, av), vcleq_s64(x, bv));
  });
  uint32_t* p = outp + count;
  for (size_t i = n & ~size_t{1}; i < n; ++i) {
    if (d[i] >= a && d[i] <= b) *p++ = base + static_cast<uint32_t>(i);
  }
  return static_cast<size_t>(p - outp);
}

FoldState FoldI64(const int64_t* d, size_t n) {
  FoldState st;
  int64x2_t s = vdupq_n_s64(0);
  int64x2_t mn = vdupq_n_s64(std::numeric_limits<int64_t>::max());
  int64x2_t mx = vdupq_n_s64(std::numeric_limits<int64_t>::min());
  size_t i = 0;
  const size_t nvec = n & ~size_t{1};
  for (; i < nvec; i += 2) {
    const int64x2_t x = vld1q_s64(d + i);
    s = vaddq_s64(s, x);
    mn = vbslq_s64(vcltq_s64(x, mn), x, mn);
    mx = vbslq_s64(vcgtq_s64(x, mx), x, mx);
  }
  uint64_t isum = static_cast<uint64_t>(vgetq_lane_s64(s, 0)) +
                  static_cast<uint64_t>(vgetq_lane_s64(s, 1));
  int64_t rmn = vgetq_lane_s64(mn, 0);
  int64_t rmx = vgetq_lane_s64(mx, 0);
  const int64_t mn1 = vgetq_lane_s64(mn, 1);
  const int64_t mx1 = vgetq_lane_s64(mx, 1);
  rmn = (mn1 < rmn) ? mn1 : rmn;
  rmx = (mx1 > rmx) ? mx1 : rmx;
  for (; i < n; ++i) {
    const int64_t x = d[i];
    isum += static_cast<uint64_t>(x);
    rmn = (x < rmn) ? x : rmn;
    rmx = (x > rmx) ? x : rmx;
  }
  st.count = n;
  st.isum = isum;
  if (n > 0) {
    st.seen = true;
    st.imin = rmn;
    st.imax = rmx;
  }
  return st;
}

FoldState FoldF64(const double* d, size_t n) {
  FoldState st;
  // s01 carries stripes {0,1}, s23 stripes {2,3}: the same 4-stripe grid
  // as scalar::Stripes4 and the AVX2 lanes.
  float64x2_t s01 = vdupq_n_f64(0.0), s23 = vdupq_n_f64(0.0);
  float64x2_t mn01 = vdupq_n_f64(std::numeric_limits<double>::infinity());
  float64x2_t mn23 = mn01;
  float64x2_t mx01 = vdupq_n_f64(-std::numeric_limits<double>::infinity());
  float64x2_t mx23 = mx01;
  size_t i = 0;
  const size_t nvec = n & ~size_t{3};
  for (; i < nvec; i += 4) {
    const float64x2_t a = vld1q_f64(d + i);
    const float64x2_t b = vld1q_f64(d + i + 2);
    s01 = vaddq_f64(s01, a);
    s23 = vaddq_f64(s23, b);
    mn01 = vbslq_f64(vcltq_f64(a, mn01), a, mn01);  // (a < mn) ? a : mn
    mn23 = vbslq_f64(vcltq_f64(b, mn23), b, mn23);
    mx01 = vbslq_f64(vcgtq_f64(a, mx01), a, mx01);
    mx23 = vbslq_f64(vcgtq_f64(b, mx23), b, mx23);
  }
  scalar::Stripes4 acc;
  acc.s[0] = vgetq_lane_f64(s01, 0);
  acc.s[1] = vgetq_lane_f64(s01, 1);
  acc.s[2] = vgetq_lane_f64(s23, 0);
  acc.s[3] = vgetq_lane_f64(s23, 1);
  acc.mn[0] = vgetq_lane_f64(mn01, 0);
  acc.mn[1] = vgetq_lane_f64(mn01, 1);
  acc.mn[2] = vgetq_lane_f64(mn23, 0);
  acc.mn[3] = vgetq_lane_f64(mn23, 1);
  acc.mx[0] = vgetq_lane_f64(mx01, 0);
  acc.mx[1] = vgetq_lane_f64(mx01, 1);
  acc.mx[2] = vgetq_lane_f64(mx23, 0);
  acc.mx[3] = vgetq_lane_f64(mx23, 1);
  for (; i < n; ++i) acc.Fold(i, d[i]);
  st.count = n;
  if (n > 0) {
    st.seen = true;
    acc.Finish(&st);
  }
  return st;
}

}  // namespace neon

#endif  // DATACELL_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch wrappers. Vector backends handle the no-validity fast case;
// spans with a validity mask always take the scalar reference path (the
// mask is rare on hot streams — nulls only materialize once appended).
// ---------------------------------------------------------------------------

namespace {

// Appends up to n entries produced by a vector emitter into *out without
// per-element push_back: resize to worst case, emit, shrink.
template <typename EmitFn>
void EmitInto(std::vector<uint32_t>* out, size_t n, EmitFn emit) {
  const size_t old = out->size();
  out->resize(old + n);
  const size_t count = emit(out->data() + old);
  out->resize(old + count);
}

}  // namespace

void SelectCmpI64(const int64_t* d, const uint8_t* valid, size_t n, Cmp op,
                  int64_t k, uint32_t base, std::vector<uint32_t>* out) {
  if (n == 0) return;
#if defined(DATACELL_SIMD_X86)
  if (valid == nullptr && ActiveLevel() == Level::kAVX2) {
    EmitInto(out, n, [&](uint32_t* p) {
      return avx2::SelectCmpI64(d, n, op, k, base, p);
    });
    return;
  }
#elif defined(DATACELL_SIMD_NEON)
  if (valid == nullptr && ActiveLevel() == Level::kNEON) {
    EmitInto(out, n, [&](uint32_t* p) {
      return neon::SelectCmpI64(d, n, op, k, base, p);
    });
    return;
  }
#endif
  scalar::SelectCmp(d, valid, n, op, k, base, out);
}

void SelectCmpF64(const double* d, const uint8_t* valid, size_t n, Cmp op,
                  double k, uint32_t base, std::vector<uint32_t>* out) {
  if (n == 0) return;
#if defined(DATACELL_SIMD_X86)
  if (valid == nullptr && ActiveLevel() == Level::kAVX2) {
    EmitInto(out, n, [&](uint32_t* p) {
      return avx2::SelectCmpF64(d, n, op, k, base, p);
    });
    return;
  }
#elif defined(DATACELL_SIMD_NEON)
  if (valid == nullptr && ActiveLevel() == Level::kNEON) {
    EmitInto(out, n, [&](uint32_t* p) {
      return neon::SelectCmpF64(d, n, op, k, base, p);
    });
    return;
  }
#endif
  scalar::SelectCmp(d, valid, n, op, k, base, out);
}

void SelectRangeI64(const int64_t* d, const uint8_t* valid, size_t n,
                    int64_t a, int64_t b, uint32_t base,
                    std::vector<uint32_t>* out) {
  if (n == 0) return;
#if defined(DATACELL_SIMD_X86)
  if (valid == nullptr && ActiveLevel() == Level::kAVX2) {
    EmitInto(out, n, [&](uint32_t* p) {
      return avx2::SelectRangeI64(d, n, a, b, base, p);
    });
    return;
  }
#elif defined(DATACELL_SIMD_NEON)
  if (valid == nullptr && ActiveLevel() == Level::kNEON) {
    EmitInto(out, n, [&](uint32_t* p) {
      return neon::SelectRangeI64(d, n, a, b, base, p);
    });
    return;
  }
#endif
  scalar::SelectRangeI64(d, valid, n, a, b, base, out);
}

void SelectRangeF64(const double* d, const uint8_t* valid, size_t n, double lo,
                    bool lo_inclusive, double hi, bool hi_inclusive,
                    uint32_t base, std::vector<uint32_t>* out) {
  if (n == 0) return;
#if defined(DATACELL_SIMD_X86)
  if (valid == nullptr && ActiveLevel() == Level::kAVX2) {
    EmitInto(out, n, [&](uint32_t* p) {
      return avx2::SelectRangeF64(d, n, lo, lo_inclusive, hi, hi_inclusive,
                                  base, p);
    });
    return;
  }
#endif
  scalar::SelectRangeF64(d, valid, n, lo, lo_inclusive, hi, hi_inclusive, base,
                         out);
}

void GatherI64(const int64_t* src, const uint32_t* sel, size_t n,
               int64_t* dst) {
#if defined(DATACELL_SIMD_X86)
  if (ActiveLevel() == Level::kAVX2) {
    avx2::GatherI64(src, sel, n, dst);
    return;
  }
#endif
  for (size_t j = 0; j < n; ++j) dst[j] = src[sel[j]];
}

void GatherF64(const double* src, const uint32_t* sel, size_t n, double* dst) {
#if defined(DATACELL_SIMD_X86)
  if (ActiveLevel() == Level::kAVX2) {
    avx2::GatherF64(src, sel, n, dst);
    return;
  }
#endif
  for (size_t j = 0; j < n; ++j) dst[j] = src[sel[j]];
}

FoldState FoldI64(const int64_t* d, const uint8_t* valid, size_t n) {
#if defined(DATACELL_SIMD_X86)
  if (valid == nullptr && ActiveLevel() == Level::kAVX2) {
    return avx2::FoldI64(d, n);
  }
#elif defined(DATACELL_SIMD_NEON)
  if (valid == nullptr && ActiveLevel() == Level::kNEON) {
    return neon::FoldI64(d, n);
  }
#endif
  return scalar::FoldI64(d, valid, n);
}

FoldState FoldF64(const double* d, const uint8_t* valid, size_t n) {
#if defined(DATACELL_SIMD_X86)
  if (valid == nullptr && ActiveLevel() == Level::kAVX2) {
    return avx2::FoldF64(d, n);
  }
#elif defined(DATACELL_SIMD_NEON)
  if (valid == nullptr && ActiveLevel() == Level::kNEON) {
    return neon::FoldF64(d, n);
  }
#endif
  return scalar::FoldF64(d, valid, n);
}

FoldState FoldI64Sel(const int64_t* d, const uint8_t* valid,
                     const uint32_t* sel, size_t n) {
#if defined(DATACELL_SIMD_X86)
  if (valid == nullptr && ActiveLevel() == Level::kAVX2) {
    return avx2::FoldI64Sel(d, sel, n);
  }
#endif
  return scalar::FoldI64Sel(d, valid, sel, n);
}

FoldState FoldF64Sel(const double* d, const uint8_t* valid,
                     const uint32_t* sel, size_t n) {
#if defined(DATACELL_SIMD_X86)
  if (valid == nullptr && ActiveLevel() == Level::kAVX2) {
    return avx2::FoldF64Sel(d, sel, n);
  }
#endif
  return scalar::FoldF64Sel(d, valid, sel, n);
}

void HashI64(const int64_t* d, size_t n, uint64_t* out) {
#if defined(DATACELL_SIMD_X86)
  if (ActiveLevel() == Level::kAVX2) {
    avx2::HashI64(d, n, out);
    return;
  }
#endif
  scalar::HashI64(d, n, out);
}

}  // namespace datacell::simd
