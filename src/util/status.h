#ifndef DATACELL_UTIL_STATUS_H_
#define DATACELL_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace datacell {

/// Error categories used across the DataCell code base.
///
/// The library never throws exceptions on library paths; all fallible
/// operations return a Status (or a Result<T>, see below), in the style of
/// Apache Arrow and RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTypeMismatch,
  kParseError,
  kBindError,
  kIOError,
  kInternal,
  kUnsupported,
  kResourceExhausted,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome.
///
/// Cheap to copy in the success case (no allocation); carries a message in
/// the error case. Functions that produce a value use Result<T> instead.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Explicitly discards this status. The only sanctioned way to drop a
  /// Status: reserved for call sites where failure is provably impossible
  /// (an infallible callback threaded through a fallible runner) or where
  /// the error is the expected outcome (a test killing the peer mid-send)
  /// — say which, in a comment. `(void)` casts are flagged by the
  /// datacell-status-checked tidy gate; this reads as a decision, not an
  /// accident, and stays greppable.
  void IgnoreError() const {}

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error outcome, analogous to arrow::Result.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = *r;
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (`return 42;` / `return Status::NotFound(...)`).
  Result(T value) : inner_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : inner_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(inner_); }

  /// The error status; Status::OK() when holding a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(inner_);
  }

  /// Accessors; must only be called when ok().
  const T& value() const& { return std::get<T>(inner_); }
  T& value() & { return std::get<T>(inner_); }
  T&& value() && { return std::get<T>(std::move(inner_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    if (ok()) return std::get<T>(std::move(inner_));
    return fallback;
  }

 private:
  std::variant<T, Status> inner_;
};

/// Propagates errors: `RETURN_NOT_OK(DoThing());`
#define RETURN_NOT_OK(expr)                       \
  do {                                            \
    ::datacell::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define DATACELL_CONCAT_IMPL(x, y) x##y
#define DATACELL_CONCAT(x, y) DATACELL_CONCAT_IMPL(x, y)

/// Unwraps a Result or propagates its error:
///   ASSIGN_OR_RETURN(auto table, ReadTable(name));
#define ASSIGN_OR_RETURN(lhs, rexpr)                                    \
  auto DATACELL_CONCAT(_res_, __LINE__) = (rexpr);                      \
  if (!DATACELL_CONCAT(_res_, __LINE__).ok())                           \
    return DATACELL_CONCAT(_res_, __LINE__).status();                   \
  lhs = std::move(DATACELL_CONCAT(_res_, __LINE__)).value()

}  // namespace datacell

#endif  // DATACELL_UTIL_STATUS_H_
