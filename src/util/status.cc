#include "util/status.h"

namespace datacell {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace datacell
