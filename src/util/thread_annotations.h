#ifndef DATACELL_UTIL_THREAD_ANNOTATIONS_H_
#define DATACELL_UTIL_THREAD_ANNOTATIONS_H_

/// Portable Clang Thread Safety Analysis annotations.
///
/// Under clang (-Wthread-safety, enforced with -Werror in CI) these expand
/// to the capability attributes, turning the locking conventions of the
/// concurrent core — every shared field names its mutex with
/// DC_GUARDED_BY, every lock-requiring helper carries DC_REQUIRES — into
/// compile-time errors instead of TSan reports. Under GCC and other
/// compilers they compile away entirely.
///
/// See DESIGN.md "Concurrency invariants" for the conventions and how to
/// read a -Wthread-safety failure.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DC_THREAD_ANNOTATION
#define DC_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability (a lockable type).
#define DC_CAPABILITY(x) DC_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define DC_SCOPED_CAPABILITY DC_THREAD_ANNOTATION(scoped_lockable)

/// The field may only be accessed while holding the given capability.
#define DC_GUARDED_BY(x) DC_THREAD_ANNOTATION(guarded_by(x))

/// The pointed-to data may only be accessed while holding the capability.
#define DC_PT_GUARDED_BY(x) DC_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the given capabilities;
/// it does not acquire or release them.
#define DC_REQUIRES(...) DC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the capabilities and holds them on return.
#define DC_ACQUIRE(...) DC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases capabilities the caller holds.
#define DC_RELEASE(...) DC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function attempts to acquire the capability, returning the first
/// argument's value on success.
#define DC_TRY_ACQUIRE(...) \
  DC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capabilities (deadlock documentation; only
/// enforced under -Wthread-safety-negative).
#define DC_EXCLUDES(...) DC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held, teaching the analysis
/// that it is from here on.
#define DC_ASSERT_CAPABILITY(x) DC_THREAD_ANNOTATION(assert_capability(x))

/// Documents lock-ordering relationships to the analysis.
#define DC_ACQUIRED_BEFORE(...) \
  DC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DC_ACQUIRED_AFTER(...) DC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define DC_RETURN_CAPABILITY(x) DC_THREAD_ANNOTATION(lock_returned(x))

/// Declares that a mutable field of a Mutex-owning class is deliberately
/// not guarded by that mutex — set once before threads exist, owned by a
/// single thread, or synchronized by other means (say which, in a comment
/// on the field). The datacell-guarded-by-coverage tidy check treats any
/// mutable field of a Mutex-owning class without DC_GUARDED_BY or this
/// opt-out as an error, so the annotation is a reviewed decision, not a
/// default.
#if defined(__clang__)
#define DC_UNGUARDED __attribute__((annotate("datacell_unguarded")))
#else
#define DC_UNGUARDED
#endif

/// Escape hatch: turns the analysis off for one function. Reserved for
/// dynamic lock sets the analysis cannot model (Factory::Fire's canonical
/// multi-basket acquisition); the runtime lock-rank checker still covers
/// these paths in debug builds.
#define DC_NO_THREAD_SAFETY_ANALYSIS \
  DC_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // DATACELL_UTIL_THREAD_ANNOTATIONS_H_
