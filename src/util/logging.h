#ifndef DATACELL_UTIL_LOGGING_H_
#define DATACELL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace datacell {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kFatal };

/// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Builds one log line in a stream and flushes it (thread-safe) on
/// destruction. kFatal aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Streams one log line at the given severity:
///   DC_LOG(Info) << "loaded " << n << " tuples";
/// The body (including argument evaluation) is skipped entirely when the
/// level is below the configured threshold.
#define DC_LOG(level)                                                        \
  for (bool _dc_log_once =                                                   \
           (::datacell::LogLevel::k##level >= ::datacell::GetLogLevel());    \
       _dc_log_once; _dc_log_once = false)                                   \
  ::datacell::internal_logging::LogMessage(::datacell::LogLevel::k##level,   \
                                           __FILE__, __LINE__)               \
      .stream()

/// Invariant check, active in all build types; aborts with a message on
/// failure. Hot loops should use DC_DCHECK instead.
#define DC_CHECK(cond)                                                      \
  for (bool _dc_chk = !(cond); _dc_chk; _dc_chk = false)                    \
  ::datacell::internal_logging::LogMessage(::datacell::LogLevel::kFatal,    \
                                           __FILE__, __LINE__)              \
          .stream()                                                         \
      << "Check failed: " #cond " "

#ifdef NDEBUG
#define DC_DCHECK(cond) \
  while (false) DC_CHECK(cond)
#else
#define DC_DCHECK(cond) DC_CHECK(cond)
#endif

}  // namespace datacell

#endif  // DATACELL_UTIL_LOGGING_H_
