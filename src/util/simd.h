#ifndef DATACELL_UTIL_SIMD_H_
#define DATACELL_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// Portable SIMD layer for the ops kernels (DESIGN.md §12).
///
/// The backend is chosen at compile time (AVX2 on x86-64, NEON on aarch64,
/// scalar everywhere else) and *dispatched at runtime*: the library is
/// compiled without -mavx2, the AVX2 bodies live in
/// __attribute__((target("avx2"))) functions, and the first kernel call
/// probes the CPU (__builtin_cpu_supports) once. `DATACELL_SIMD=off` in the
/// environment — or building with -DDATACELL_SIMD=OFF, which defines
/// DATACELL_SIMD_DISABLED — forces the scalar fallback; SetForceScalar()
/// does the same per-process for in-process A/B comparison (benches, the
/// byte-identity tests).
///
/// Determinism contract (byte-identity across backends and morsel counts):
///  * Floating-point sums use four striped accumulators — element i of a
///    span lands in stripe i&3, and stripes reduce as (s0+s1)+(s2+s3).
///    The scalar fallback implements exactly the same shape, so AVX2 (one
///    stripe per 64-bit lane), NEON (two 2-lane accumulators) and scalar
///    produce bit-identical sums for the same span.
///  * Min/max fold per stripe as `m = (x < m) ? x : m` (keep the
///    incumbent on ties, which pins the -0.0/+0.0 tie-break), then combine
///    stripes in order — again the same shape in every backend.
///  * Spans are only ever folded on the fixed kMorselRows grid (see
///    ops/morsel.h): the ops layer always chunks, whether the chunks run
///    inline on one thread or as parallel morsels, so the grouping of
///    partial sums — and therefore every rounding step — is independent of
///    the worker count.
///  * Integer sums accumulate as uint64 (wraparound is defined and matches
///    the vector paddq semantics); comparisons are exact, so selection
///    vectors and int folds are trivially identical across backends.
///
/// Double comparisons use the IEEE predicates directly (ordered except
/// kNe): NaN never matches Eq/Lt/Le/Gt/Ge and always matches Ne. Alignment:
/// callers hand in spans that may start anywhere (COW buffers keep a
/// logical head offset, so a span's base is unaligned after ErasePrefix);
/// every vector path uses unaligned loads.
namespace datacell::simd {

/// Active backend, in increasing capability order.
enum class Level : uint8_t { kScalar = 0, kNEON = 1, kAVX2 = 2 };

const char* LevelName(Level level);

/// Backend the CPU supports (ignores the force-scalar switches). Cached
/// after the first call.
Level DetectedLevel();

/// Backend the kernels will actually use: DetectedLevel() unless scalar is
/// forced (DATACELL_SIMD_DISABLED build, DATACELL_SIMD=off env, or
/// SetForceScalar(true)).
Level ActiveLevel();

/// Process-wide switch to force the scalar fallback; used by benches and
/// tests to compare both code paths in one process. Thread-safe.
void SetForceScalar(bool force);
bool force_scalar();

/// Comparison ops for SelectCmp*. Matches BinaryOp's comparison subset.
enum class Cmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// True when `x <op> k` under the kernels' semantics (exact for int64,
/// IEEE predicates for double). The scalar reference the vector paths must
/// agree with.
bool CmpMatchesI64(Cmp op, int64_t x, int64_t k);
bool CmpMatchesF64(Cmp op, double x, double k);

/// --- Compare-select: indices of matching elements -----------------------
/// Appends `base + i` to *out (ascending) for every i in [0, n) where
/// d[i] <op> k and (valid == nullptr || valid[i]). The AVX2 path emits
/// matches branch-free via compare-mask + compressed-store; spans with a
/// validity mask take the scalar path.
void SelectCmpI64(const int64_t* d, const uint8_t* valid, size_t n, Cmp op,
                  int64_t k, uint32_t base, std::vector<uint32_t>* out);
void SelectCmpF64(const double* d, const uint8_t* valid, size_t n, Cmp op,
                  double k, uint32_t base, std::vector<uint32_t>* out);

/// Two-sided range select, fused: a <= d[i] <= b (int bounds already
/// normalized to inclusive by the caller).
void SelectRangeI64(const int64_t* d, const uint8_t* valid, size_t n,
                    int64_t a, int64_t b, uint32_t base,
                    std::vector<uint32_t>* out);
/// Double range with open/closed bounds (cannot be normalized).
void SelectRangeF64(const double* d, const uint8_t* valid, size_t n, double lo,
                    bool lo_inclusive, double hi, bool hi_inclusive,
                    uint32_t base, std::vector<uint32_t>* out);

/// --- Gather: materialize selected rows ----------------------------------
/// dst[j] = src[sel[j]] for j in [0, n). dst must have room for n.
void GatherI64(const int64_t* src, const uint32_t* sel, size_t n,
               int64_t* dst);
void GatherF64(const double* src, const uint32_t* sel, size_t n, double* dst);

/// --- Columnar fold (sum/count/min/max) ----------------------------------
/// Partial aggregate state for one span (one morsel-grid chunk). Merge
/// order is chunk order; MergeFrom implements the contract's combine shape.
struct FoldState {
  uint64_t count = 0;  // elements folded (valid rows)
  uint64_t isum = 0;   // int64 sum, wraparound (cast to int64_t to read)
  double dsum = 0;     // striped double sum
  bool seen = false;   // any element folded into min/max
  int64_t imin = 0;
  int64_t imax = 0;
  double dmin = 0;
  double dmax = 0;

  void MergeFrom(const FoldState& o);
};

/// Folds d[i] for i in [0, n) where valid[i] (or all rows when valid is
/// null). Int fold fills count/isum/imin/imax; double fold fills
/// count/dsum/dmin/dmax.
FoldState FoldI64(const int64_t* d, const uint8_t* valid, size_t n);
FoldState FoldF64(const double* d, const uint8_t* valid, size_t n);

/// Folds d[sel[j]] for j in [0, n): aggregate over a selection vector.
FoldState FoldI64Sel(const int64_t* d, const uint8_t* valid,
                     const uint32_t* sel, size_t n);
FoldState FoldF64Sel(const double* d, const uint8_t* valid,
                     const uint32_t* sel, size_t n);

/// --- Vectorized hash (join build/probe) ---------------------------------
/// Fibonacci multiply-shift: out[i] = (uint64)d[i] * 0x9E3779B97F4A7C15.
/// The caller takes the top log2(buckets) bits (h >> (64 - log2_buckets)).
inline constexpr uint64_t kHashMul = 0x9E3779B97F4A7C15ULL;
void HashI64(const int64_t* d, size_t n, uint64_t* out);

}  // namespace datacell::simd

#endif  // DATACELL_UTIL_SIMD_H_
