#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"

namespace datacell {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes writes so concurrent threads do not interleave lines. Rank
// kLogging (innermost): a log line may be emitted while holding any other
// lock in the system.
Mutex& LogMutex() {
  static Mutex* mu = new Mutex(LockRank::kLogging);
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    MutexLock lock(&LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging

}  // namespace datacell
