#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace datacell {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty integer literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty double literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid double: " + buf);
  }
  return v;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace datacell
