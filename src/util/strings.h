#ifndef DATACELL_UTIL_STRINGS_H_
#define DATACELL_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace datacell {

/// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Joins the pieces with `sep` between them.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict integer / double parsing (whole string must match).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace datacell

#endif  // DATACELL_UTIL_STRINGS_H_
