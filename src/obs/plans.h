#ifndef DATACELL_OBS_PLANS_H_
#define DATACELL_OBS_PLANS_H_

#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// Published view of the multi-query optimizer's compiled net (the
/// `dc_plans` virtual table). The optimizer pushes plain data rows here
/// after every rebuild; readers (dc_plans materialization) copy them out
/// under the registry lock and join the live rows_in/rows_out counters by
/// transition name at read time. Keeping this a passive mirror — rather
/// than a callback into planner state — means a factory body that SELECTs
/// dc_plans while holding basket locks (rank kBasket) only ever descends
/// to kMetrics, and the optimizer's rebuild path never takes a lock a
/// reader might hold.
namespace datacell::obs {

/// One stage of one query's compiled pipeline, in pipeline order.
struct PlanRow {
  std::string query;        // registered continuous-query name
  std::string stage;        // transition name ("" for plan-only rows)
  std::string kind;         // scan | filter | window | project | leaf | ...
  std::string detail;       // predicate / projection text
  std::string fingerprint;  // subtree fingerprint (hex), "" if n/a
  int64_t shared_by = 1;    // number of standing queries using this stage
  double est_rows = 0;      // cost-model estimated output cardinality
};

/// Process-global registry of published plans. Mutex rank kMetrics (same
/// tier as MetricsRegistry: leaf-ish, safe under basket locks).
class PlansRegistry {
 public:
  static PlansRegistry& Global();

  /// Replaces the published rows for `query`. Called by the optimizer
  /// after (re)compiling the standing set.
  void Publish(const std::string& query, std::vector<PlanRow> rows)
      DC_EXCLUDES(mu_);

  /// Drops the published rows for `query` (query unregistered).
  void Retract(const std::string& query) DC_EXCLUDES(mu_);

  /// All published rows, grouped by query name (map order), stages in
  /// publish order within each query.
  std::vector<PlanRow> Snapshot() const DC_EXCLUDES(mu_);

  size_t size() const DC_EXCLUDES(mu_);

 private:
  PlansRegistry() = default;

  mutable Mutex mu_{LockRank::kMetrics};
  std::map<std::string, std::vector<PlanRow>> plans_ DC_GUARDED_BY(mu_);
};

}  // namespace datacell::obs

#endif  // DATACELL_OBS_PLANS_H_
