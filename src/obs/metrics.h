#ifndef DATACELL_OBS_METRICS_H_
#define DATACELL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

/// Engine-wide observability primitives (DESIGN.md §10).
///
/// Every hot-path operation on these types is a relaxed atomic — no locks,
/// no allocation, no syscalls — so components can instrument append/fire
/// paths unconditionally. The registry mutex (rank LockRank::kMetrics,
/// inner to everything but logging) is taken only on registration and
/// snapshot, both cold paths.
///
/// Naming convention: `<component>.<instance>.<what>` with `_us` suffixed
/// on microsecond histograms, e.g. `basket.in.appended`,
/// `transition.q1.fire_us`, `gateway.tuples_received`. Metrics are
/// process-global and keyed by name: two instances registering the same
/// name share one counter (components with per-instance exact counters —
/// Basket::Stats — keep those as the source of truth and treat the
/// registry as the queryable mirror).
namespace datacell::obs {

/// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (depths, backlogs).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of a Histogram, with percentile estimation over the
/// log-scale buckets (linear interpolation within the landing bucket,
/// clamped to the exact observed max).
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 48;

  uint64_t count = 0;
  uint64_t sum = 0;  // saturating
  Micros max = 0;
  uint64_t counts[kBuckets] = {};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// q in [0,1]; returns 0 when empty.
  double Percentile(double q) const;
  double p50() const { return Percentile(0.50); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }
};

/// Fixed-bucket log2-scale latency histogram. Bucket 0 holds values < 1;
/// bucket i (i >= 1) holds [2^(i-1), 2^i) microseconds; the top bucket
/// absorbs everything above ~2^46 us. Record() is 3 relaxed fetch_adds
/// plus a CAS-max; Snapshot() is wait-free reads.
class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  void Record(Micros v);
  HistogramSnapshot Snapshot() const;

  /// Inclusive lower bound of bucket i (0 for buckets 0 and 1).
  static uint64_t BucketLowerBound(size_t i);
  /// Exclusive upper bound of bucket i.
  static uint64_t BucketUpperBound(size_t i);
  static size_t BucketIndex(Micros v);

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<Micros> max_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One row of MetricsRegistry::Snapshot() (and of the dc_metrics virtual
/// table). `value` carries the counter/gauge value (the histogram count
/// for histograms); percentile fields are 0 for non-histograms.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  Micros max = 0;
};

/// Process-global named-metric registry. Get-or-create returns stable
/// pointers (metrics never move or die), so components resolve their
/// metrics once at construction and touch only the atomics afterwards.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Global kill switch for *optional* instrumentation (per-basket registry
  /// mirrors, trace capture). Core counters keep counting regardless; the
  /// flag exists so the hot-path overhead can be measured and disabled.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  Counter* GetCounter(const std::string& name) DC_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) DC_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) DC_EXCLUDES(mu_);

  /// All registered metrics, sorted by name (counters, then gauges, then
  /// histograms for duplicate names across kinds).
  std::vector<MetricSnapshot> Snapshot() const DC_EXCLUDES(mu_);

  size_t size() const DC_EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  static std::atomic<bool> enabled_;

  mutable Mutex mu_{LockRank::kMetrics};
  std::map<std::string, std::unique_ptr<Counter>> counters_ DC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DC_GUARDED_BY(mu_);
};

inline const char* MetricKindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace datacell::obs

#endif  // DATACELL_OBS_METRICS_H_
