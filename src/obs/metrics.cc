#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace datacell::obs {

std::atomic<bool> MetricsRegistry::enabled_{true};

size_t Histogram::BucketIndex(Micros v) {
  if (v < 1) return 0;
  const size_t width = std::bit_width(static_cast<uint64_t>(v));
  return std::min(width, kBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  return i <= 1 ? 0 : uint64_t{1} << (i - 1);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  return i == 0 ? 1 : uint64_t{1} << i;
}

void Histogram::Record(Micros v) {
  counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v < 0 ? 0 : static_cast<uint64_t>(v),
                 std::memory_order_relaxed);
  Micros cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  for (size_t i = 0; i < kBuckets; ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count += s.counts[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next = cum + counts[i];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(Histogram::BucketLowerBound(i));
      const double hi = static_cast<double>(Histogram::BucketUpperBound(i));
      const double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(counts[i]);
      // Interpolated position within the landing bucket, clamped to the
      // exact observed max so p99 never exceeds a real value.
      return std::min(lo + frac * (hi - lo), static_cast<double>(max));
    }
    cum = next;
  }
  return static_cast<double>(max);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Deliberately leaked: metrics outlive every component that holds a
  // pointer into the registry, including statics destroyed after main.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

size_t MetricsRegistry::size() const {
  MutexLock lock(&mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  MutexLock lock(&mu_);
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto h = histograms_.begin();
  // Three-way sorted merge so the result is ordered by name regardless of
  // which map a metric lives in.
  while (c != counters_.end() || g != gauges_.end() || h != histograms_.end()) {
    const std::string* cn = c != counters_.end() ? &c->first : nullptr;
    const std::string* gn = g != gauges_.end() ? &g->first : nullptr;
    const std::string* hn = h != histograms_.end() ? &h->first : nullptr;
    const std::string* next = cn;
    if (next == nullptr || (gn != nullptr && *gn < *next)) next = gn;
    if (next == nullptr || (hn != nullptr && *hn < *next)) next = hn;
    MetricSnapshot m;
    m.name = *next;
    if (cn != nullptr && *cn == *next) {
      m.kind = MetricKind::kCounter;
      m.count = c->second->value();
      m.value = static_cast<double>(m.count);
      ++c;
    } else if (gn != nullptr && *gn == *next) {
      m.kind = MetricKind::kGauge;
      m.value = static_cast<double>(g->second->value());
      ++g;
    } else {
      m.kind = MetricKind::kHistogram;
      const HistogramSnapshot s = h->second->Snapshot();
      m.count = s.count;
      m.sum = s.sum;
      m.value = static_cast<double>(s.count);
      m.p50 = s.p50();
      m.p95 = s.p95();
      m.p99 = s.p99();
      m.max = s.max;
      ++h;
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace datacell::obs
