#include "obs/tables.h"

#include <utility>
#include <vector>

#include "core/basket.h"
#include "core/engine.h"
#include "core/scheduler.h"
#include "net/shard.h"
#include "obs/metrics.h"
#include "obs/plans.h"
#include "obs/trace.h"
#include "storage/ingest_log.h"
#include "storage/pager.h"

namespace datacell::obs {

namespace {

Result<Table> MetricsTable() {
  Table t(Schema({{"name", DataType::kString},
                  {"kind", DataType::kString},
                  {"value", DataType::kDouble},
                  {"count", DataType::kInt64},
                  {"sum", DataType::kInt64},
                  {"p50_us", DataType::kDouble},
                  {"p95_us", DataType::kDouble},
                  {"p99_us", DataType::kDouble},
                  {"max_us", DataType::kInt64}}));
  for (const MetricSnapshot& m : MetricsRegistry::Global().Snapshot()) {
    RETURN_NOT_OK(t.AppendRow({Value(m.name), Value(MetricKindName(m.kind)),
                               Value(m.value),
                               Value(static_cast<int64_t>(m.count)),
                               Value(static_cast<int64_t>(m.sum)), Value(m.p50),
                               Value(m.p95), Value(m.p99), Value(m.max)}));
  }
  return t;
}

Result<Table> BasketsTable(core::Engine* engine) {
  Table t(Schema({{"name", DataType::kString},
                  {"rows", DataType::kInt64},
                  {"enabled", DataType::kBool},
                  {"capacity", DataType::kInt64},
                  {"low_watermark", DataType::kInt64},
                  {"appended", DataType::kInt64},
                  {"dropped", DataType::kInt64},
                  {"consumed", DataType::kInt64},
                  {"peak_rows", DataType::kInt64},
                  {"credit_stalls", DataType::kInt64}}));
  for (const std::string& name : engine->ListBaskets()) {
    ASSIGN_OR_RETURN(core::BasketPtr b, engine->GetBasket(name));
    const core::Basket::Stats s = b->stats();
    RETURN_NOT_OK(
        t.AppendRow({Value(b->name()), Value(static_cast<int64_t>(b->size())),
                     Value(b->enabled()),
                     Value(static_cast<int64_t>(b->capacity())),
                     Value(static_cast<int64_t>(b->low_watermark())),
                     Value(static_cast<int64_t>(s.appended)),
                     Value(static_cast<int64_t>(s.dropped)),
                     Value(static_cast<int64_t>(s.consumed)),
                     Value(static_cast<int64_t>(s.peak_rows)),
                     Value(static_cast<int64_t>(s.credit_stalls))}));
  }
  return t;
}

Result<Table> TransitionsTable(core::Engine* engine) {
  Table t(Schema({{"name", DataType::kString},
                  {"firings", DataType::kInt64},
                  {"rows_in", DataType::kInt64},
                  {"rows_out", DataType::kInt64},
                  {"mean_us", DataType::kDouble},
                  {"p50_us", DataType::kDouble},
                  {"p95_us", DataType::kDouble},
                  {"p99_us", DataType::kDouble},
                  {"max_us", DataType::kInt64},
                  {"total_us", DataType::kInt64},
                  {"morsels", DataType::kInt64},
                  {"morsel_p50_us", DataType::kDouble},
                  {"morsel_p99_us", DataType::kDouble}}));
  for (const core::Scheduler::TransitionStats& ts :
       engine->scheduler().TransitionStatsSnapshot()) {
    RETURN_NOT_OK(
        t.AppendRow({Value(ts.name), Value(static_cast<int64_t>(ts.firings)),
                     Value(static_cast<int64_t>(ts.rows_in)),
                     Value(static_cast<int64_t>(ts.rows_out)),
                     Value(ts.latency.Mean()), Value(ts.latency.p50()),
                     Value(ts.latency.p95()), Value(ts.latency.p99()),
                     Value(ts.latency.max),
                     Value(static_cast<int64_t>(ts.latency.sum)),
                     Value(static_cast<int64_t>(ts.morsels)),
                     Value(ts.morsel_latency.p50()),
                     Value(ts.morsel_latency.p99())}));
  }
  return t;
}

// The optimizer publishes plan rows (plain data) after each rebuild; the
// live rows_in/rows_out are joined in here by transition name so observed
// cardinalities sit next to the cost model's estimates.
Result<Table> PlansTable() {
  Table t(Schema({{"query", DataType::kString},
                  {"stage", DataType::kString},
                  {"kind", DataType::kString},
                  {"detail", DataType::kString},
                  {"fingerprint", DataType::kString},
                  {"shared_by", DataType::kInt64},
                  {"est_rows", DataType::kDouble},
                  {"rows_in", DataType::kInt64},
                  {"rows_out", DataType::kInt64}}));
  MetricsRegistry& reg = MetricsRegistry::Global();
  for (const PlanRow& r : PlansRegistry::Global().Snapshot()) {
    int64_t rows_in = 0;
    int64_t rows_out = 0;
    if (!r.stage.empty()) {
      const std::string prefix = "transition." + r.stage + ".";
      rows_in =
          static_cast<int64_t>(reg.GetCounter(prefix + "rows_in")->value());
      rows_out =
          static_cast<int64_t>(reg.GetCounter(prefix + "rows_out")->value());
    }
    RETURN_NOT_OK(t.AppendRow({Value(r.query), Value(r.stage), Value(r.kind),
                               Value(r.detail), Value(r.fingerprint),
                               Value(r.shared_by), Value(r.est_rows),
                               Value(rows_in), Value(rows_out)}));
  }
  return t;
}

Result<Table> TraceTable() {
  Table t(Schema({{"seq", DataType::kInt64},
                  {"at", DataType::kTimestamp},
                  {"transition", DataType::kString},
                  {"trigger", DataType::kString},
                  {"rows_in", DataType::kInt64},
                  {"rows_out", DataType::kInt64},
                  {"duration_us", DataType::kInt64}}));
  for (const TraceEvent& e : TraceLog::Global().Snapshot()) {
    RETURN_NOT_OK(t.AppendRow(
        {Value(static_cast<int64_t>(e.seq)), Value(e.at), Value(e.transition),
         Value(e.trigger), Value(static_cast<int64_t>(e.rows_in)),
         Value(static_cast<int64_t>(e.rows_out)), Value(e.duration_us)}));
  }
  return t;
}

// One row per durability-tier entity. Numeric columns not applicable to a
// row's kind read as 0 (the table stays flat and filterable on `kind`).
Result<Table> StorageTable() {
  Table t(Schema({{"kind", DataType::kString},
                  {"name", DataType::kString},
                  {"records", DataType::kInt64},
                  {"bytes", DataType::kInt64},
                  {"fsyncs", DataType::kInt64},
                  {"last_seq", DataType::kInt64},
                  {"acked", DataType::kInt64},
                  {"pages_in_use", DataType::kInt64},
                  {"fetches", DataType::kInt64},
                  {"hits", DataType::kInt64},
                  {"misses", DataType::kInt64},
                  {"evictions", DataType::kInt64},
                  {"writebacks", DataType::kInt64}}));
  const auto i64 = [](uint64_t v) { return Value(static_cast<int64_t>(v)); };
  storage::StorageRegistry& reg = storage::StorageRegistry::Global();
  for (storage::IngestLog* log : reg.Logs()) {
    const storage::IngestLog::Stats s = log->stats();
    RETURN_NOT_OK(t.AppendRow({Value(std::string("log")), Value(log->path()),
                               i64(s.records), i64(s.bytes), i64(s.fsyncs),
                               i64(0), i64(0), i64(0), i64(0), i64(0), i64(0),
                               i64(0), i64(0)}));
    for (const storage::IngestLog::StreamInfo& si : log->Streams()) {
      RETURN_NOT_OK(t.AppendRow({Value(std::string("stream")), Value(si.name),
                                 i64(0), i64(0), i64(0), i64(si.last_seq),
                                 i64(si.acked), i64(0), i64(0), i64(0), i64(0),
                                 i64(0), i64(0)}));
    }
  }
  for (storage::BufferPool* pool : reg.Pools()) {
    const storage::BufferPool::Stats s = pool->stats();
    RETURN_NOT_OK(t.AppendRow(
        {Value(std::string("pool")), Value(pool->pager().path()), i64(0),
         i64(pool->pager().bytes_on_disk()), i64(0), i64(0), i64(0),
         i64(pool->pager().pages_in_use()), i64(s.fetches), i64(s.hits),
         i64(s.misses), i64(s.evictions), i64(s.writebacks)}));
  }
  return t;
}

// One row per reactor shard of every live sharded ingress (fed by
// net::ShardRegistry, same pattern as dc_storage's StorageRegistry).
// `port` distinguishes ingresses when several are up in one process.
Result<Table> ShardsTable() {
  Table t(Schema({{"port", DataType::kInt64},
                  {"shard", DataType::kInt64},
                  {"connections", DataType::kInt64},
                  {"active", DataType::kInt64},
                  {"tuples", DataType::kInt64},
                  {"dropped", DataType::kInt64},
                  {"credit_stalls", DataType::kInt64},
                  {"backpressure_engagements", DataType::kInt64},
                  {"backpressured", DataType::kBool}}));
  const auto i64 = [](uint64_t v) { return Value(static_cast<int64_t>(v)); };
  for (net::ShardedIngress* si : net::ShardRegistry::Global().Ingresses()) {
    for (size_t k = 0; k < si->num_shards(); ++k) {
      const net::ShardedIngress::ShardStats s = si->shard_stats(k);
      RETURN_NOT_OK(t.AppendRow(
          {i64(si->port()), i64(k), i64(s.connections), i64(s.active),
           i64(s.tuples), i64(s.dropped), i64(s.credit_stalls),
           i64(s.backpressure_engagements), Value(s.backpressured)}));
    }
  }
  return t;
}

}  // namespace

bool IsVirtualTable(const std::string& name) {
  return name == "dc_metrics" || name == "dc_baskets" ||
         name == "dc_transitions" || name == "dc_trace" ||
         name == "dc_plans" || name == "dc_storage" || name == "dc_shards";
}

Result<Table> VirtualTable(core::Engine* engine, const std::string& name) {
  if (name == "dc_metrics") return MetricsTable();
  if (name == "dc_baskets") return BasketsTable(engine);
  if (name == "dc_transitions") return TransitionsTable(engine);
  if (name == "dc_trace") return TraceTable();
  if (name == "dc_plans") return PlansTable();
  if (name == "dc_storage") return StorageTable();
  if (name == "dc_shards") return ShardsTable();
  return Status::NotFound("unknown virtual table '" + name + "'");
}

}  // namespace datacell::obs
