#ifndef DATACELL_OBS_TRACE_H_
#define DATACELL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace datacell::obs {

/// One Petri-net firing event: which transition fired, which place
/// triggered it, how many tokens it consumed/produced, and how long the
/// body ran.
struct TraceEvent {
  uint64_t seq = 0;        // global firing order (monotonic)
  Micros at = 0;           // engine-clock time the firing was scheduled
  std::string transition;  // transition name
  std::string trigger;     // first input place ("" for self-scheduled)
  uint64_t rows_in = 0;    // tokens consumed from input places
  uint64_t rows_out = 0;   // tokens appended to output places
  Micros duration_us = 0;  // wall-clock body duration
};

/// Bounded ring buffer of firing events, off by default. The scheduler
/// checks enabled() (one relaxed load — the only always-on cost) before
/// assembling an event, so disabled tracing costs nothing measurable; when
/// enabled, recording takes the ring mutex (rank kMetrics) briefly.
///
/// Toggle at runtime with `SET dc_trace = 1` through any SQL session, or
/// programmatically. The ring keeps the newest `capacity` events;
/// Snapshot() returns them oldest-first, and the `seq` numbers expose how
/// many were overwritten.
class TraceLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static TraceLog& Global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops recorded events and resizes the ring (capacity 0 keeps the
  /// current one).
  void Reset(size_t capacity = 0) DC_EXCLUDES(mu_);

  /// Appends an event, assigning its seq. The caller should check
  /// enabled() first; Record itself does too (racing toggles just lose or
  /// gain a boundary event).
  void Record(TraceEvent event) DC_EXCLUDES(mu_);

  /// Events still resident, oldest first.
  std::vector<TraceEvent> Snapshot() const DC_EXCLUDES(mu_);

  /// Total events ever recorded (>= Snapshot().size()).
  uint64_t recorded() const DC_EXCLUDES(mu_);

 private:
  explicit TraceLog(size_t capacity) : capacity_(capacity) {
    ring_.reserve(capacity_);
  }

  std::atomic<bool> enabled_{false};

  mutable Mutex mu_{LockRank::kMetrics};
  size_t capacity_ DC_GUARDED_BY(mu_);
  uint64_t next_seq_ DC_GUARDED_BY(mu_) = 0;
  std::vector<TraceEvent> ring_ DC_GUARDED_BY(mu_);  // slot = seq % capacity_
};

}  // namespace datacell::obs

#endif  // DATACELL_OBS_TRACE_H_
