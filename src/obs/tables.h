#ifndef DATACELL_OBS_TABLES_H_
#define DATACELL_OBS_TABLES_H_

#include <string>

#include "column/table.h"
#include "util/status.h"

namespace datacell::core {
class Engine;
}  // namespace datacell::core

/// Relational views over the observability layer (the R-GMA move: the
/// monitoring data is just more relations). The SQL executor resolves
/// these names as a fallback after WITH temps, baskets and catalog tables,
/// so a user relation with the same name shadows the virtual one.
///
///   dc_metrics     — every registered counter/gauge/histogram
///   dc_baskets     — live per-basket state (engine-registered baskets)
///   dc_transitions — per-transition firing counts, row deltas + latency
///   dc_trace       — the firing-event ring (enable with SET dc_trace = 1)
///   dc_plans       — the optimizer's compiled net: one row per pipeline
///                    stage per standing query, with sharing fan-out,
///                    estimated vs observed cardinalities
///   dc_storage     — the durability tier: one row per open ingest log
///                    (kind='log'), per logged stream (kind='stream',
///                    with last_seq/acked), and per spill buffer pool
///                    (kind='pool', with page and hit/miss counts)
///   dc_shards      — the sharded gateway: one row per reactor shard of
///                    every live net::ShardedIngress (connections, tuples,
///                    credit stalls, backpressure state)
///
/// Each SELECT materializes a fresh snapshot table; there is no consumption
/// semantics (these are tables, not baskets).
namespace datacell::obs {

/// True for the dc_* names above.
bool IsVirtualTable(const std::string& name);

/// Materializes the named virtual table against `engine` (which supplies
/// the basket registry and scheduler; the metrics registry and trace log
/// are process-global).
Result<Table> VirtualTable(core::Engine* engine, const std::string& name);

}  // namespace datacell::obs

#endif  // DATACELL_OBS_TABLES_H_
