#include "obs/trace.h"

#include <algorithm>

namespace datacell::obs {

TraceLog& TraceLog::Global() {
  // Leaked for the same reason as the metrics registry: recording paths
  // (scheduler workers) may outlive any static destruction order.
  static TraceLog* global = new TraceLog(kDefaultCapacity);
  return *global;
}

void TraceLog::Reset(size_t capacity) {
  MutexLock lock(&mu_);
  if (capacity > 0) capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_seq_ = 0;
}

void TraceLog::Record(TraceEvent event) {
  if (!enabled()) return;
  MutexLock lock(&mu_);
  event.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[event.seq % capacity_] = std::move(event);
  }
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (next_seq_ <= capacity_) {
    out = ring_;  // not yet wrapped: slots are already oldest-first
  } else {
    const size_t head = next_seq_ % capacity_;  // oldest resident slot
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

uint64_t TraceLog::recorded() const {
  MutexLock lock(&mu_);
  return next_seq_;
}

}  // namespace datacell::obs
