#include "obs/plans.h"

#include <utility>

namespace datacell::obs {

PlansRegistry& PlansRegistry::Global() {
  static PlansRegistry* instance = new PlansRegistry();
  return *instance;
}

void PlansRegistry::Publish(const std::string& query,
                            std::vector<PlanRow> rows) {
  MutexLock lock(&mu_);
  plans_[query] = std::move(rows);
}

void PlansRegistry::Retract(const std::string& query) {
  MutexLock lock(&mu_);
  plans_.erase(query);
}

std::vector<PlanRow> PlansRegistry::Snapshot() const {
  std::vector<PlanRow> out;
  MutexLock lock(&mu_);
  for (const auto& [query, rows] : plans_) {
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

size_t PlansRegistry::size() const {
  MutexLock lock(&mu_);
  return plans_.size();
}

}  // namespace datacell::obs
