#ifndef DATACELL_COLUMN_TYPE_H_
#define DATACELL_COLUMN_TYPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace datacell {

/// Logical column types supported by the kernel.
///
/// kTimestamp is physically an int64 (microseconds, see util/clock.h) but
/// kept logically distinct so the SQL layer can type-check time expressions
/// and the codec can format it.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble,
  kBool,
  kString,
  kTimestamp,
};

/// "int", "double", "bool", "string", "timestamp".
const char* DataTypeName(DataType type);

/// Inverse of DataTypeName (case-insensitive); also accepts SQL synonyms
/// (integer, bigint, float, real, varchar, text).
Result<DataType> DataTypeFromName(const std::string& name);

/// True if the physical representation is int64 (kInt64, kTimestamp).
inline bool IsIntegerPhysical(DataType t) {
  return t == DataType::kInt64 || t == DataType::kTimestamp;
}

/// True for types usable in arithmetic (+,-,*,/).
inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kTimestamp;
}

/// A named, typed column slot in a schema.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const = default;
};

/// An ordered list of fields with by-name lookup.
///
/// Schemas are value types; copying one is cheap relative to table data.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with this name, or -1.
  int FindField(const std::string& name) const;

  /// Appends a field; duplicate names are rejected.
  Status AddField(Field field);

  /// "(a int, b double)" — for error messages and tooling.
  std::string ToString() const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

}  // namespace datacell

#endif  // DATACELL_COLUMN_TYPE_H_
