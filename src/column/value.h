#ifndef DATACELL_COLUMN_VALUE_H_
#define DATACELL_COLUMN_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "column/type.h"
#include "util/status.h"

namespace datacell {

/// A scalar value: null, int64/timestamp, double, bool, or string.
///
/// Value is the boundary representation — literals in expressions, rows in
/// the textual codec, test fixtures. Bulk processing never goes through
/// Value; operators work on whole columns.
class Value {
 public:
  /// Null value.
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}             // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}        // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}              // NOLINT(runtime/explicit)
  Value(bool v) : data_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  /// Typed accessors; must match the held alternative.
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  bool bool_value() const { return std::get<bool>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Numeric value widened to double (int or double); null/bool/string error.
  Result<double> AsDouble() const;

  /// Coerces to the given column type (int<->double widening/narrowing,
  /// timestamp<->int). Strings are never implicitly converted.
  Result<Value> CastTo(DataType type) const;

  /// True if this value can be stored in a column of `type` without cast.
  bool MatchesType(DataType type) const;

  /// SQL-ish rendering: NULL, 42, 3.5, true, 'text'.
  std::string ToString() const;

  /// Deep equality (null == null is true here; SQL three-valued logic lives in
  /// the expression evaluator, not in Value).
  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string> data_;
};

/// One relational tuple at the Value-level boundary.
using Row = std::vector<Value>;

}  // namespace datacell

#endif  // DATACELL_COLUMN_VALUE_H_
