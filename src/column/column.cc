#include "column/column.h"

#include "util/logging.h"

namespace datacell {

namespace {

bool PhysicalIsInt(DataType t) {
  return t == DataType::kInt64 || t == DataType::kTimestamp;
}

}  // namespace

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      data_ = std::vector<int64_t>();
      break;
    case DataType::kDouble:
      data_ = std::vector<double>();
      break;
    case DataType::kBool:
      data_ = std::vector<uint8_t>();
      break;
    case DataType::kString:
      data_ = std::vector<std::string>();
      break;
  }
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

void Column::EnsureValidity() {
  if (valid_.empty()) valid_.assign(size(), 1);
}

void Column::AppendInt(int64_t v) {
  DC_DCHECK(PhysicalIsInt(type_));
  ints().push_back(v);
  if (!valid_.empty()) valid_.push_back(1);
}

void Column::AppendDouble(double v) {
  DC_DCHECK(type_ == DataType::kDouble);
  doubles().push_back(v);
  if (!valid_.empty()) valid_.push_back(1);
}

void Column::AppendBool(bool v) {
  DC_DCHECK(type_ == DataType::kBool);
  bools().push_back(v ? 1 : 0);
  if (!valid_.empty()) valid_.push_back(1);
}

void Column::AppendString(std::string v) {
  DC_DCHECK(type_ == DataType::kString);
  strings().push_back(std::move(v));
  if (!valid_.empty()) valid_.push_back(1);
}

void Column::AppendNull() {
  EnsureValidity();
  std::visit([](auto& v) { v.emplace_back(); }, data_);
  valid_.push_back(0);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      if (!v.is_int()) break;
      AppendInt(v.int_value());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.double_value());
        return Status::OK();
      }
      if (v.is_int()) {
        AppendDouble(static_cast<double>(v.int_value()));
        return Status::OK();
      }
      break;
    case DataType::kBool:
      if (!v.is_bool()) break;
      AppendBool(v.bool_value());
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) break;
      AppendString(v.string_value());
      return Status::OK();
  }
  return Status::TypeMismatch("cannot append " + v.ToString() +
                              " to column of type " + DataTypeName(type_));
}

Status Column::AppendColumn(const Column& other) {
  if (other.type_ != type_) {
    return Status::TypeMismatch(std::string("append type mismatch: ") +
                                DataTypeName(other.type_) + " vs " +
                                DataTypeName(type_));
  }
  const size_t old_size = size();
  std::visit(
      [&other](auto& dst) {
        using Vec = std::decay_t<decltype(dst)>;
        const Vec& src = std::get<Vec>(other.data_);
        dst.insert(dst.end(), src.begin(), src.end());
      },
      data_);
  if (other.has_nulls()) {
    if (valid_.empty()) {
      valid_.assign(old_size, 1);
    }
    valid_.insert(valid_.end(), other.valid_.begin(), other.valid_.end());
  } else if (!valid_.empty()) {
    valid_.insert(valid_.end(), other.size(), 1);
  }
  return Status::OK();
}

Status Column::AppendColumnRows(const Column& other, const SelVector& sel) {
  if (other.type_ != type_) {
    return Status::TypeMismatch(std::string("append type mismatch: ") +
                                DataTypeName(other.type_) + " vs " +
                                DataTypeName(type_));
  }
  const size_t old_size = size();
  std::visit(
      [&](auto& dst) {
        using Vec = std::decay_t<decltype(dst)>;
        const Vec& src = std::get<Vec>(other.data_);
        dst.reserve(dst.size() + sel.size());
        for (uint32_t r : sel) dst.push_back(src[r]);
      },
      data_);
  if (other.has_nulls()) {
    if (valid_.empty()) valid_.assign(old_size, 1);
    for (uint32_t r : sel) valid_.push_back(other.valid_[r]);
  } else if (!valid_.empty()) {
    valid_.insert(valid_.end(), sel.size(), 1);
  }
  return Status::OK();
}

Value Column::GetValue(size_t i) const {
  DC_DCHECK(i < size());
  if (!IsValid(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return Value(ints()[i]);
    case DataType::kDouble:
      return Value(doubles()[i]);
    case DataType::kBool:
      return Value(bools()[i] != 0);
    case DataType::kString:
      return Value(strings()[i]);
  }
  return Value::Null();
}

Column Column::Take(const SelVector& sel) const {
  Column out(type_);
  Status st = out.AppendColumnRows(*this, sel);
  DC_DCHECK(st.ok());
  return out;
}

template <typename Vec>
void Column::EraseRowsIn(Vec& v, const SelVector& sorted_sel) {
  if (sorted_sel.empty()) return;
  // Single-pass shift: walk the survivors over the holes.
  size_t write = sorted_sel[0];
  size_t del_idx = 0;
  for (size_t read = sorted_sel[0]; read < v.size(); ++read) {
    if (del_idx < sorted_sel.size() && sorted_sel[del_idx] == read) {
      ++del_idx;
      continue;
    }
    v[write++] = std::move(v[read]);
  }
  v.resize(write);
}

template <typename Vec>
void Column::KeepRowsIn(Vec& v, const SelVector& sorted_sel) {
  size_t write = 0;
  for (uint32_t r : sorted_sel) {
    // Guard against self-move: for a kept prefix write == r, and
    // move-assigning a std::string onto itself may clear it.
    if (write != r) v[write] = std::move(v[r]);
    ++write;
  }
  v.resize(write);
}

void Column::EraseRows(const SelVector& sorted_sel) {
  if (sorted_sel.empty()) return;
  std::visit([&](auto& v) { EraseRowsIn(v, sorted_sel); }, data_);
  if (!valid_.empty()) EraseRowsIn(valid_, sorted_sel);
}

void Column::KeepRows(const SelVector& sorted_sel) {
  std::visit([&](auto& v) { KeepRowsIn(v, sorted_sel); }, data_);
  if (!valid_.empty()) KeepRowsIn(valid_, sorted_sel);
}

void Column::Clear() {
  std::visit([](auto& v) { v.clear(); }, data_);
  valid_.clear();
}

std::string Column::ValueToString(size_t i) const {
  return GetValue(i).ToString();
}

}  // namespace datacell
