#include "column/column.h"

#include "util/logging.h"
#include "util/simd.h"

namespace datacell {

namespace {

bool PhysicalIsInt(DataType t) {
  return t == DataType::kInt64 || t == DataType::kTimestamp;
}

// A consumed prefix shorter than this is never worth compacting: the copy
// would cost more than the memory it reclaims.
constexpr size_t kCompactMinRows = 256;

template <typename It>
It At(It begin, size_t offset) {
  return begin + static_cast<typename std::iterator_traits<It>::difference_type>(
                     offset);
}

}  // namespace

Column::Column(DataType type) : type_(type) { ResetBuffers(); }

void Column::ResetBuffers() {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      data_ = std::make_shared<std::vector<int64_t>>();
      break;
    case DataType::kDouble:
      data_ = std::make_shared<std::vector<double>>();
      break;
    case DataType::kBool:
      data_ = std::make_shared<std::vector<uint8_t>>();
      break;
    case DataType::kString:
      data_ = std::make_shared<std::vector<std::string>>();
      break;
  }
  valid_.reset();
  head_ = 0;
}

size_t Column::PhysicalSize() const {
  return std::visit([](const auto& b) { return b->size(); }, data_);
}

bool Column::Shared() const {
  if (valid_ != nullptr && valid_.use_count() > 1) return true;
  const bool shared =
      std::visit([](const auto& b) { return b.use_count() > 1; }, data_);
  if (!shared) {
    // use_count() is a relaxed load. Observing 1 may mean a snapshot on
    // another thread released its reference moments ago; callers take
    // "not shared" as licence to mutate the buffer in place, so those
    // writes must be ordered after that reader's final buffer reads.
    // Take the acquire edge through the refcount itself: copy/destroy of
    // the owner runs acq_rel RMWs on the count, which synchronize with
    // the release half of the snapshot destructor's decrement. (A bare
    // std::atomic_thread_fence(acquire) would also be correct, but TSan
    // does not model fences, so the RMW form keeps sanitizer runs clean.)
    std::visit([](const auto& b) { auto pin = b; }, data_);
    if (valid_ != nullptr) {
      auto pin = valid_;
    }
  }
  return shared;
}

bool Column::SharesStorageWith(const Column& other) const {
  return std::visit(
      [&](const auto& buf) {
        using P = std::decay_t<decltype(buf)>;
        const P* o = std::get_if<P>(&other.data_);
        return o != nullptr && buf.get() == o->get();
      },
      data_);
}

void Column::Detach(bool compact) {
  const bool shared = Shared();
  if (!shared && (!compact || head_ == 0)) return;
  std::visit(
      [&](auto& buf) {
        using Vec = typename std::decay_t<decltype(buf)>::element_type;
        if (shared) {
          // Copy only the live rows; the snapshot keeps the old buffer.
          buf = std::make_shared<Vec>(At(buf->begin(), head_), buf->end());
          if (valid_ != nullptr) {
            valid_ = std::make_shared<std::vector<uint8_t>>(
                At(valid_->begin(), head_), valid_->end());
          }
        } else {
          // Exclusive owner with a stale prefix: reclaim it in place.
          buf->erase(buf->begin(), At(buf->begin(), head_));
          if (valid_ != nullptr) {
            valid_->erase(valid_->begin(), At(valid_->begin(), head_));
          }
        }
        head_ = 0;
      },
      data_);
}

void Column::MaybeCompact() {
  if (head_ < kCompactMinRows || head_ * 2 < PhysicalSize()) return;
  if (Shared()) return;  // a snapshot pins the buffer; reclaim later
  Detach(/*compact=*/true);
}

void Column::EnsureValidity() {
  if (valid_ == nullptr) {
    valid_ = std::make_shared<std::vector<uint8_t>>(PhysicalSize(), 1);
  }
}

void Column::AppendInt(int64_t v) {
  DC_DCHECK(PhysicalIsInt(type_));
  Detach(false);
  std::get<BufPtr<int64_t>>(data_)->push_back(v);
  if (valid_ != nullptr) valid_->push_back(1);
}

void Column::AppendDouble(double v) {
  DC_DCHECK(type_ == DataType::kDouble);
  Detach(false);
  std::get<BufPtr<double>>(data_)->push_back(v);
  if (valid_ != nullptr) valid_->push_back(1);
}

void Column::AppendBool(bool v) {
  DC_DCHECK(type_ == DataType::kBool);
  Detach(false);
  std::get<BufPtr<uint8_t>>(data_)->push_back(v ? 1 : 0);
  if (valid_ != nullptr) valid_->push_back(1);
}

void Column::AppendString(std::string v) {
  DC_DCHECK(type_ == DataType::kString);
  Detach(false);
  std::get<BufPtr<std::string>>(data_)->push_back(std::move(v));
  if (valid_ != nullptr) valid_->push_back(1);
}

void Column::AppendNull() {
  Detach(false);
  EnsureValidity();
  std::visit([](auto& b) { b->emplace_back(); }, data_);
  valid_->push_back(0);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      if (!v.is_int()) break;
      AppendInt(v.int_value());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.double_value());
        return Status::OK();
      }
      if (v.is_int()) {
        AppendDouble(static_cast<double>(v.int_value()));
        return Status::OK();
      }
      break;
    case DataType::kBool:
      if (!v.is_bool()) break;
      AppendBool(v.bool_value());
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) break;
      AppendString(v.string_value());
      return Status::OK();
  }
  return Status::TypeMismatch("cannot append " + v.ToString() +
                              " to column of type " + DataTypeName(type_));
}

Status Column::AppendColumn(const Column& other) {
  if (other.type_ != type_) {
    return Status::TypeMismatch(std::string("append type mismatch: ") +
                                DataTypeName(other.type_) + " vs " +
                                DataTypeName(type_));
  }
  Detach(false);
  if (other.has_nulls()) EnsureValidity();
  std::visit(
      [&](auto& dst) {
        using P = std::decay_t<decltype(dst)>;
        const auto& src = *std::get<P>(other.data_);
        dst->insert(dst->end(), At(src.begin(), other.head_), src.end());
      },
      data_);
  if (valid_ != nullptr) {
    if (other.has_nulls()) {
      valid_->insert(valid_->end(), At(other.valid_->begin(), other.head_),
                     other.valid_->end());
    } else {
      valid_->insert(valid_->end(), other.size(), 1);
    }
  }
  return Status::OK();
}

Status Column::AppendColumnRows(const Column& other, const SelVector& sel) {
  if (other.type_ != type_) {
    return Status::TypeMismatch(std::string("append type mismatch: ") +
                                DataTypeName(other.type_) + " vs " +
                                DataTypeName(type_));
  }
  Detach(false);
  if (other.has_nulls()) EnsureValidity();
  std::visit(
      [&](auto& dst) {
        using P = std::decay_t<decltype(dst)>;
        using T = typename P::element_type::value_type;
        const auto& src = *std::get<P>(other.data_);
        const size_t old = dst->size();
        if constexpr (std::is_same_v<T, int64_t> || std::is_same_v<T, double>) {
          // Vectorized gather for the numeric fast path (AVX2 i32gather
          // when available). Falls back to the element loop when source
          // and destination share a buffer: resize would invalidate the
          // raw source span.
          if (dst.get() != &src) {
            dst->resize(old + sel.size());
            if constexpr (std::is_same_v<T, int64_t>) {
              simd::GatherI64(src.data() + other.head_, sel.data(),
                              sel.size(), dst->data() + old);
            } else {
              simd::GatherF64(src.data() + other.head_, sel.data(),
                              sel.size(), dst->data() + old);
            }
            return;
          }
        }
        dst->reserve(old + sel.size());
        for (uint32_t r : sel) dst->push_back(src[other.head_ + r]);
      },
      data_);
  if (valid_ != nullptr) {
    if (other.has_nulls()) {
      for (uint32_t r : sel) {
        valid_->push_back((*other.valid_)[other.head_ + r]);
      }
    } else {
      valid_->insert(valid_->end(), sel.size(), 1);
    }
  }
  return Status::OK();
}

Value Column::GetValue(size_t i) const {
  DC_DCHECK(i < size());
  if (!IsValid(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return Value(ints()[i]);
    case DataType::kDouble:
      return Value(doubles()[i]);
    case DataType::kBool:
      return Value(bools()[i] != 0);
    case DataType::kString:
      return Value(strings()[i]);
  }
  return Value::Null();
}

Column Column::Take(const SelVector& sel) const {
  Column out(type_);
  Status st = out.AppendColumnRows(*this, sel);
  DC_DCHECK(st.ok());
  return out;
}

template <typename Vec>
void Column::EraseRowsIn(Vec& v, const SelVector& sorted_sel) {
  if (sorted_sel.empty()) return;
  // Single-pass shift: walk the survivors over the holes.
  size_t write = sorted_sel[0];
  size_t del_idx = 0;
  for (size_t read = sorted_sel[0]; read < v.size(); ++read) {
    if (del_idx < sorted_sel.size() && sorted_sel[del_idx] == read) {
      ++del_idx;
      continue;
    }
    v[write++] = std::move(v[read]);
  }
  v.resize(write);
}

template <typename Vec>
void Column::KeepRowsIn(Vec& v, const SelVector& sorted_sel) {
  size_t write = 0;
  for (uint32_t r : sorted_sel) {
    // Guard against self-move: for a kept prefix write == r, and
    // move-assigning a std::string onto itself may clear it.
    if (write != r) v[write] = std::move(v[r]);
    ++write;
  }
  v.resize(write);
}

void Column::EraseRows(const SelVector& sorted_sel) {
  if (sorted_sel.empty()) return;
  // An ascending unique selection whose maximum is k-1 is exactly the
  // prefix {0..k-1}: consume it by advancing the head instead of shifting.
  if (static_cast<size_t>(sorted_sel.back()) + 1 == sorted_sel.size()) {
    ErasePrefix(sorted_sel.size());
    return;
  }
  Detach(/*compact=*/true);
  std::visit([&](auto& b) { EraseRowsIn(*b, sorted_sel); }, data_);
  if (valid_ != nullptr) EraseRowsIn(*valid_, sorted_sel);
}

void Column::KeepRows(const SelVector& sorted_sel) {
  Detach(/*compact=*/true);
  std::visit([&](auto& b) { KeepRowsIn(*b, sorted_sel); }, data_);
  if (valid_ != nullptr) KeepRowsIn(*valid_, sorted_sel);
}

void Column::ErasePrefix(size_t n) {
  n = std::min(n, size());
  if (n == 0) return;
  head_ += n;
  if (head_ == PhysicalSize()) {
    // Everything consumed: drop our reference to the buffer entirely
    // (snapshots, if any, keep theirs).
    ResetBuffers();
    return;
  }
  MaybeCompact();
}

void Column::Clear() { ResetBuffers(); }

std::string Column::ValueToString(size_t i) const {
  return GetValue(i).ToString();
}

}  // namespace datacell
