#include "column/catalog.h"

namespace datacell {

Result<std::shared_ptr<Table>> Catalog::CreateTable(const std::string& name,
                                                    Schema schema) {
  MutexLock lock(&mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_shared<Table>(std::move(schema));
  tables_[name] = table;
  return table;
}

Result<std::shared_ptr<Table>> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  MutexLock lock(&mu_);
  return tables_.count(name) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  MutexLock lock(&mu_);
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace datacell
