#include "column/table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace datacell {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  int idx = schema_.FindField(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return static_cast<size_t>(idx);
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
  return &columns_[idx];
}

Result<Column*> Table::GetMutableColumn(const std::string& name) {
  ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  // Validate all values before mutating any column so a failed append
  // leaves the table aligned.
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].MatchesType(schema_.field(i).type)) {
      return Status::TypeMismatch("value " + row[i].ToString() +
                                  " does not fit column '" +
                                  schema_.field(i).name + "' of type " +
                                  DataTypeName(schema_.field(i).type));
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Status st = columns_[i].AppendValue(row[i]);
    DC_DCHECK(st.ok());
  }
  return Status::OK();
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::TypeMismatch("appending table with different arity");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    RETURN_NOT_OK(columns_[i].AppendColumn(other.columns_[i]));
  }
  return Status::OK();
}

Status Table::AppendTableRows(const Table& other, const SelVector& sel) {
  if (other.num_columns() != num_columns()) {
    return Status::TypeMismatch("appending table with different arity");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    RETURN_NOT_OK(columns_[i].AppendColumnRows(other.columns_[i], sel));
  }
  return Status::OK();
}

Row Table::GetRow(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const Column& c : columns_) row.push_back(c.GetValue(i));
  return row;
}

Table Table::Take(const SelVector& sel) const {
  Table out(schema_);
  Status st = out.AppendTableRows(*this, sel);
  DC_DCHECK(st.ok());
  return out;
}

Status Table::CheckSortedSelection(const SelVector& sel) const {
  const size_t n = num_rows();
  for (size_t i = 0; i < sel.size(); ++i) {
    if (sel[i] >= n) {
      return Status::InvalidArgument("selection row out of range");
    }
    if (i > 0 && sel[i] <= sel[i - 1]) {
      return Status::InvalidArgument("selection not strictly ascending");
    }
  }
  return Status::OK();
}

Status Table::EraseRows(const SelVector& sorted_sel) {
  RETURN_NOT_OK(CheckSortedSelection(sorted_sel));
  for (Column& c : columns_) c.EraseRows(sorted_sel);
  return Status::OK();
}

Status Table::KeepRows(const SelVector& sorted_sel) {
  RETURN_NOT_OK(CheckSortedSelection(sorted_sel));
  for (Column& c : columns_) c.KeepRows(sorted_sel);
  return Status::OK();
}

Status Table::ErasePrefix(size_t n) {
  n = std::min(n, num_rows());
  if (n == 0) return Status::OK();
  for (Column& c : columns_) c.ErasePrefix(n);
  return Status::OK();
}

void Table::Clear() {
  for (Column& c : columns_) c.Clear();
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream out;
  out << schema_.ToString() << " rows=" << num_rows() << "\n";
  const size_t n = std::min(max_rows, num_rows());
  for (size_t r = 0; r < n; ++r) {
    out << "  ";
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out << " | ";
      out << columns_[c].ValueToString(r);
    }
    out << "\n";
  }
  if (n < num_rows()) out << "  ... (" << (num_rows() - n) << " more)\n";
  return out.str();
}

}  // namespace datacell
