#ifndef DATACELL_COLUMN_COLUMN_H_
#define DATACELL_COLUMN_COLUMN_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "column/type.h"
#include "column/value.h"
#include "util/status.h"

namespace datacell {

/// A list of row positions, sorted ascending unless stated otherwise.
/// Operators communicate intermediate results as selection vectors over
/// their input to avoid materializing columns (MonetDB-style candidate
/// lists).
using SelVector = std::vector<uint32_t>;

/// Read-only view over the live rows of a column's backing buffer —
/// the MonetDB candidate-friendly answer to handing out the raw vector.
/// Indexing is logical: view[0] is the column's first live row even when
/// a consumed prefix is still physically present.
template <typename T>
class ColumnView {
 public:
  using value_type = T;
  using const_iterator = const T*;

  ColumnView() = default;
  ColumnView(const T* data, size_t size) : data_(data), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* data() const { return data_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  friend bool operator==(const ColumnView& a, const std::vector<T>& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<T>& a, const ColumnView& b) {
    return b == a;
  }
  friend bool operator==(const ColumnView& a, const ColumnView& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

/// A single typed column — the DataCell analogue of a MonetDB BAT tail.
///
/// Row identity is positional: the i-th entries of all columns of a table
/// form tuple i (the paper's tuple-order alignment). The head/key column of
/// a BAT is therefore virtual, exactly as in MonetDB.
///
/// Storage is shared copy-on-write, mirroring MonetDB's shared immutable
/// BAT tails: copying a Column is an O(1) refcount bump, so a basket
/// snapshot (`Basket::Peek`) shares buffers with the basket instead of
/// duplicating the stream. Any mutation first *detaches* — if another
/// owner holds the buffer, the live rows are copied into a private one —
/// so snapshots are immutable no matter what the writer does next.
///
/// FIFO consumption is O(1): the column keeps a logical head offset and
/// `ErasePrefix` merely advances it. The consumed prefix is physically
/// reclaimed by amortized compaction once it exceeds half the buffer
/// (skipped while snapshots pin the storage; the next exclusive mutation
/// reclaims it).
///
/// Nulls are tracked in an optional validity vector that is only
/// materialized once the first null is appended.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const { return PhysicalSize() - head_; }
  bool empty() const { return size() == 0; }

  /// Read-only typed views of the live rows (logical indexing). Cheap to
  /// construct; used by operators for vector-at-a-time processing.
  ColumnView<int64_t> ints() const { return View<int64_t>(); }
  ColumnView<double> doubles() const { return View<double>(); }
  ColumnView<uint8_t> bools() const { return View<uint8_t>(); }
  ColumnView<std::string> strings() const { return View<std::string>(); }

  /// Direct mutable access to the backing vector. Detaches from any
  /// snapshot and compacts the head offset first, so physical and logical
  /// indexing coincide for the returned vector. The alternative must match
  /// the column's physical type (int64 for kInt64/kTimestamp, uint8_t for
  /// kBool).
  std::vector<int64_t>& ints() { return Mutable<int64_t>(); }
  std::vector<double>& doubles() { return Mutable<double>(); }
  std::vector<uint8_t>& bools() { return Mutable<uint8_t>(); }
  std::vector<std::string>& strings() { return Mutable<std::string>(); }

  /// True if any row is null.
  bool has_nulls() const { return valid_ != nullptr; }
  /// Validity of row i (true = non-null).
  bool IsValid(size_t i) const {
    return valid_ == nullptr || (*valid_)[head_ + i] != 0;
  }
  /// Raw validity bytes of the live rows (1 = valid), aligned with the
  /// typed views; nullptr when the column has no nulls. Input to the
  /// vector kernels (util/simd.h). Like the views, the pointer is only
  /// stable until the next mutation — and after ErasePrefix it starts at
  /// an arbitrary offset into the backing buffer, which is why the
  /// kernels use unaligned loads throughout.
  const uint8_t* raw_validity() const {
    return valid_ == nullptr ? nullptr : valid_->data() + head_;
  }

  /// Typed appends (hot path, no Value boxing). The value slot appended for
  /// AppendNull holds a zero/empty placeholder.
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);
  void AppendNull();

  /// Checked append from a boxed Value (boundary path). Numeric widening
  /// int->double is applied; anything else mismatched is an error.
  Status AppendValue(const Value& v);

  /// Appends all rows of `other` (same type required).
  Status AppendColumn(const Column& other);
  /// Appends the selected rows of `other`.
  Status AppendColumnRows(const Column& other, const SelVector& sel);

  /// Boxed read of row i.
  Value GetValue(size_t i) const;

  /// New column with only the selected rows.
  Column Take(const SelVector& sel) const;

  /// Removes the rows in `sorted_sel` (ascending, unique) by shifting the
  /// survivors down in a single pass — the paper's custom "delete a set of
  /// tuples in one go" kernel operator (§6.2). A selection that is exactly
  /// the prefix {0..k-1} is routed through the O(1) head advance instead.
  void EraseRows(const SelVector& sorted_sel);

  /// Keeps only the rows in `sorted_sel` (ascending, unique), compacting in
  /// place; complement of EraseRows.
  void KeepRows(const SelVector& sorted_sel);

  /// Removes the first n rows in O(1) by advancing the head offset;
  /// physical compaction is amortized (and deferred while snapshots share
  /// the buffer).
  void ErasePrefix(size_t n);

  /// Drops all rows. O(1) even when snapshots share the storage (they keep
  /// the old buffer; this column starts a fresh one).
  void Clear();

  /// Rendering of row i for the codec and debugging.
  std::string ValueToString(size_t i) const;

  /// --- Storage introspection (tests, benches, compaction policy) --------
  /// Rows physically present, including the consumed-but-uncompacted
  /// prefix.
  size_t PhysicalSize() const;
  /// Consumed rows not yet physically reclaimed.
  size_t head() const { return head_; }
  /// True if this column and `other` share the same backing buffer (i.e.
  /// one is a zero-copy snapshot of the other).
  bool SharesStorageWith(const Column& other) const;

 private:
  template <typename T>
  using BufPtr = std::shared_ptr<std::vector<T>>;

  template <typename T>
  ColumnView<T> View() const {
    const auto& v = *std::get<BufPtr<T>>(data_);
    return ColumnView<T>(v.data() + head_, v.size() - head_);
  }

  template <typename T>
  std::vector<T>& Mutable() {
    Detach(/*compact=*/true);
    return *std::get<BufPtr<T>>(data_);
  }

  // True when another Column shares either buffer.
  bool Shared() const;

  // Ensures exclusive ownership of the buffers. With `compact` the head
  // offset is also folded away (required before handing out raw vectors or
  // shifting rows); without it an already-exclusive buffer keeps its head
  // untouched, so appends after prefix consumption stay O(1).
  void Detach(bool compact);

  // Amortized reclamation of the consumed prefix; no-op while shared.
  void MaybeCompact();

  // Replaces the storage with fresh empty buffers.
  void ResetBuffers();

  template <typename Vec>
  static void EraseRowsIn(Vec& v, const SelVector& sorted_sel);
  template <typename Vec>
  static void KeepRowsIn(Vec& v, const SelVector& sorted_sel);

  // Lazily materializes the validity vector (all rows currently valid).
  // Caller must have detached already.
  void EnsureValidity();

  DataType type_;
  std::variant<BufPtr<int64_t>, BufPtr<double>, BufPtr<uint8_t>,
               BufPtr<std::string>>
      data_;
  BufPtr<uint8_t> valid_;  // null = all valid; aligned with the buffer
  size_t head_ = 0;        // first live physical row
};

}  // namespace datacell

#endif  // DATACELL_COLUMN_COLUMN_H_
