#ifndef DATACELL_COLUMN_COLUMN_H_
#define DATACELL_COLUMN_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "column/type.h"
#include "column/value.h"
#include "util/status.h"

namespace datacell {

/// A list of row positions, sorted ascending unless stated otherwise.
/// Operators communicate intermediate results as selection vectors over
/// their input to avoid materializing columns (MonetDB-style candidate
/// lists).
using SelVector = std::vector<uint32_t>;

/// A single typed column — the DataCell analogue of a MonetDB BAT tail.
///
/// Row identity is positional: the i-th entries of all columns of a table
/// form tuple i (the paper's tuple-order alignment). The head/key column of
/// a BAT is therefore virtual, exactly as in MonetDB.
///
/// Nulls are tracked in an optional validity vector that is only
/// materialized once the first null is appended.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Direct typed access to the backing vector. The alternative must match
  /// the column's physical type (int64 for kInt64/kTimestamp, uint8_t for
  /// kBool). Used by operators for vector-at-a-time processing.
  std::vector<int64_t>& ints() { return std::get<std::vector<int64_t>>(data_); }
  const std::vector<int64_t>& ints() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  std::vector<double>& doubles() { return std::get<std::vector<double>>(data_); }
  const std::vector<double>& doubles() const {
    return std::get<std::vector<double>>(data_);
  }
  std::vector<uint8_t>& bools() { return std::get<std::vector<uint8_t>>(data_); }
  const std::vector<uint8_t>& bools() const {
    return std::get<std::vector<uint8_t>>(data_);
  }
  std::vector<std::string>& strings() {
    return std::get<std::vector<std::string>>(data_);
  }
  const std::vector<std::string>& strings() const {
    return std::get<std::vector<std::string>>(data_);
  }

  /// True if any row is null.
  bool has_nulls() const { return !valid_.empty(); }
  /// Validity of row i (true = non-null).
  bool IsValid(size_t i) const { return valid_.empty() || valid_[i] != 0; }

  /// Typed appends (hot path, no Value boxing). The value slot appended for
  /// AppendNull holds a zero/empty placeholder.
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);
  void AppendNull();

  /// Checked append from a boxed Value (boundary path). Numeric widening
  /// int->double is applied; anything else mismatched is an error.
  Status AppendValue(const Value& v);

  /// Appends all rows of `other` (same type required).
  Status AppendColumn(const Column& other);
  /// Appends the selected rows of `other`.
  Status AppendColumnRows(const Column& other, const SelVector& sel);

  /// Boxed read of row i.
  Value GetValue(size_t i) const;

  /// New column with only the selected rows.
  Column Take(const SelVector& sel) const;

  /// Removes the rows in `sorted_sel` (ascending, unique) by shifting the
  /// survivors down in a single pass — the paper's custom "delete a set of
  /// tuples in one go" kernel operator (§6.2).
  void EraseRows(const SelVector& sorted_sel);

  /// Keeps only the rows in `sorted_sel` (ascending, unique), compacting in
  /// place; complement of EraseRows.
  void KeepRows(const SelVector& sorted_sel);

  /// Drops all rows.
  void Clear();

  /// Rendering of row i for the codec and debugging.
  std::string ValueToString(size_t i) const;

 private:
  template <typename Vec>
  static void EraseRowsIn(Vec& v, const SelVector& sorted_sel);
  template <typename Vec>
  static void KeepRowsIn(Vec& v, const SelVector& sorted_sel);

  // Lazily materializes the validity vector (all rows currently valid).
  void EnsureValidity();

  DataType type_;
  std::variant<std::vector<int64_t>, std::vector<double>,
               std::vector<uint8_t>, std::vector<std::string>>
      data_;
  std::vector<uint8_t> valid_;  // empty = all valid
};

}  // namespace datacell

#endif  // DATACELL_COLUMN_COLUMN_H_
