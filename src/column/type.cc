#include "column/type.h"

#include "util/strings.h"

namespace datacell {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kBool:
      return "bool";
    case DataType::kString:
      return "string";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "?";
}

Result<DataType> DataTypeFromName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "int" || n == "integer" || n == "bigint" || n == "smallint") {
    return DataType::kInt64;
  }
  if (n == "double" || n == "float" || n == "real" || n == "decimal") {
    return DataType::kDouble;
  }
  if (n == "bool" || n == "boolean") return DataType::kBool;
  if (n == "string" || n == "varchar" || n == "text" || n == "char") {
    return DataType::kString;
  }
  if (n == "timestamp") return DataType::kTimestamp;
  return Status::ParseError("unknown type name: " + name);
}

int Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::AddField(Field field) {
  if (FindField(field.name) >= 0) {
    return Status::AlreadyExists("duplicate field name: " + field.name);
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace datacell
