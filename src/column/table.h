#ifndef DATACELL_COLUMN_TABLE_H_
#define DATACELL_COLUMN_TABLE_H_

#include <string>
#include <vector>

#include "column/column.h"
#include "column/type.h"
#include "column/value.h"
#include "util/status.h"

namespace datacell {

/// A relational table: a schema plus one length-aligned Column per field.
///
/// Tables are value types used both for persistent relations (via Catalog)
/// and for intermediate operator results. Baskets (core/basket.h) wrap a
/// Table and add the stream-specific semantics.
///
/// Copying a Table is a zero-copy snapshot: columns share their backing
/// buffers copy-on-write (see Column), so the copy costs O(#columns)
/// refcount bumps and both sides detach lazily on their next mutation.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  bool empty() const { return num_rows() == 0; }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Column index by field name, or error.
  Result<size_t> ColumnIndex(const std::string& name) const;
  /// Column pointer by field name, or error. The pointer is invalidated by
  /// structural changes (appends of new columns), not by row appends.
  Result<const Column*> GetColumn(const std::string& name) const;
  Result<Column*> GetMutableColumn(const std::string& name);

  /// Appends one tuple; arity and types must match the schema.
  Status AppendRow(const Row& row);
  /// Appends all rows of `other`; schemas must be type-compatible
  /// (same column count and types; names are not required to match, as
  /// operator outputs are matched positionally).
  Status AppendTable(const Table& other);
  /// Appends the selected rows of `other`.
  Status AppendTableRows(const Table& other, const SelVector& sel);

  /// Boxed read of one tuple.
  Row GetRow(size_t i) const;

  /// New table with only the selected rows (any order, duplicates allowed).
  Table Take(const SelVector& sel) const;

  /// Removes the given rows (ascending, unique) from every column in one
  /// shifting pass. A selection that is exactly the prefix {0..k-1} is
  /// consumed in O(1) per column via ErasePrefix.
  Status EraseRows(const SelVector& sorted_sel);
  /// Keeps only the given rows (ascending, unique).
  Status KeepRows(const SelVector& sorted_sel);
  /// Removes the first n rows (FIFO window consumption) in O(1) per column
  /// by advancing the logical head; physical reclamation is amortized.
  Status ErasePrefix(size_t n);

  /// Drops all rows, keeping the schema.
  void Clear();

  /// Tabular rendering of up to `max_rows` rows, for debugging and the
  /// examples.
  std::string ToString(size_t max_rows = 20) const;

 private:
  // Validates that sel is strictly ascending and in range.
  Status CheckSortedSelection(const SelVector& sel) const;

  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace datacell

#endif  // DATACELL_COLUMN_TABLE_H_
