#include "column/value.h"

#include "util/strings.h"

namespace datacell {

Result<double> Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  if (is_double()) return double_value();
  return Status::TypeMismatch("value is not numeric: " + ToString());
}

Result<Value> Value::CastTo(DataType type) const {
  if (is_null()) return Value::Null();
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      if (is_int()) return *this;
      if (is_double()) return Value(static_cast<int64_t>(double_value()));
      if (is_bool()) return Value(static_cast<int64_t>(bool_value() ? 1 : 0));
      break;
    case DataType::kDouble:
      if (is_double()) return *this;
      if (is_int()) return Value(static_cast<double>(int_value()));
      break;
    case DataType::kBool:
      if (is_bool()) return *this;
      break;
    case DataType::kString:
      if (is_string()) return *this;
      break;
  }
  return Status::TypeMismatch("cannot cast " + ToString() + " to " +
                              DataTypeName(type));
}

bool Value::MatchesType(DataType type) const {
  if (is_null()) return true;
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return is_int();
    case DataType::kDouble:
      return is_double() || is_int();
    case DataType::kBool:
      return is_bool();
    case DataType::kString:
      return is_string();
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(int_value());
  if (is_double()) return StringPrintf("%g", double_value());
  if (is_bool()) return bool_value() ? "true" : "false";
  return "'" + string_value() + "'";
}

}  // namespace datacell
