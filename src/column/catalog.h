#ifndef DATACELL_COLUMN_CATALOG_H_
#define DATACELL_COLUMN_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "column/table.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace datacell {

/// Thread-safe registry of persistent relational tables.
///
/// Continuous queries may reference persistent tables and baskets
/// interchangeably (a headline capability of the DataCell: predicate
/// windows over "multiple streams and persistent tables"). Streams live in
/// the core::BasketRegistry; ordinary tables live here.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table with the given schema.
  Result<std::shared_ptr<Table>> CreateTable(const std::string& name,
                                             Schema schema);

  /// Looks up a table by name.
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Names of all tables, sorted.
  std::vector<std::string> ListTables() const;

 private:
  mutable Mutex mu_{LockRank::kCatalog};
  std::map<std::string, std::shared_ptr<Table>> tables_ DC_GUARDED_BY(mu_);
};

}  // namespace datacell

#endif  // DATACELL_COLUMN_CATALOG_H_
