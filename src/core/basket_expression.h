#ifndef DATACELL_CORE_BASKET_EXPRESSION_H_
#define DATACELL_CORE_BASKET_EXPRESSION_H_

#include <optional>
#include <vector>

#include "core/basket.h"
#include "ops/sort.h"
#include "util/status.h"

namespace datacell::core {

/// What a basket expression deletes from its source basket when evaluated.
enum class ConsumePolicy : uint8_t {
  /// Delete exactly the tuples the expression returned — the paper's
  /// default: "all tuples referenced in a basket expression are removed
  /// from their underlying store automatically", leaving a partially
  /// emptied basket behind (predicate windows, merge joins, partial
  /// deletes).
  kMatched,
  /// Delete every tuple present at evaluation time, whether or not it
  /// qualified (classic consume-the-batch continuous query; avoids
  /// unbounded growth of never-matching tuples).
  kBatch,
  /// Delete nothing (shared-baskets readers; the unlocker factory deletes
  /// later; also plain table inspection outside a basket expression).
  kNone,
  /// Delete the tuples matching `expire_predicate` instead of the returned
  /// window — sliding windows keep tuples still valid for the next window
  /// (§4.1: "it removes only the tuples that given the query do not qualify
  /// for the next window").
  kExpired,
};

/// A compiled basket expression (§3.4): the bracketed sub-query
/// `[select ... from basket where ... order by ... top n]` that defines a
/// predicate window over a stream with consumption side effects.
class BasketExpression {
 public:
  explicit BasketExpression(BasketPtr source) : source_(std::move(source)) {}

  /// Window predicate; null means all tuples.
  BasketExpression& Where(ExprPtr predicate) {
    predicate_ = std::move(predicate);
    return *this;
  }
  /// `order by` keys applied to the window before `top n`.
  BasketExpression& OrderBy(std::vector<ops::SortKey> keys) {
    order_by_ = std::move(keys);
    return *this;
  }
  /// `top n`: the result must hold exactly n tuples; evaluation returns an
  /// empty table (and consumes nothing) until the basket can fill the
  /// window.
  BasketExpression& Top(size_t n) {
    top_n_ = n;
    return *this;
  }
  BasketExpression& Consume(ConsumePolicy policy) {
    consume_ = policy;
    return *this;
  }
  /// For kExpired.
  BasketExpression& ExpireWhere(ExprPtr predicate) {
    expire_predicate_ = std::move(predicate);
    return *this;
  }

  const BasketPtr& source() const { return source_; }
  const ExprPtr& predicate() const { return predicate_; }
  ConsumePolicy consume() const { return consume_; }
  std::optional<size_t> top_n() const { return top_n_; }

  /// Evaluates the window over the current basket contents, applies the
  /// consumption side effect, and returns the window as a table (full
  /// basket schema, including the arrival column). Atomic with respect to
  /// the basket lock.
  Result<Table> Evaluate(const EvalContext& ctx) const;

  /// The minimum number of tuples the source basket must hold before this
  /// expression can produce output (Petri-net firing threshold): top_n when
  /// set, else 1.
  size_t MinTuples() const { return top_n_.value_or(1); }

 private:
  // Window evaluation + consumption over an immutable snapshot of the
  // basket (steps shared by both locking disciplines in Evaluate). For the
  // row-targeted policies the caller holds the basket lock so the snapshot
  // indices stay valid against the live basket.
  Result<Table> EvaluateSnapshot(const Table& data, const EvalContext& ctx) const;

  BasketPtr source_;
  ExprPtr predicate_;
  std::vector<ops::SortKey> order_by_;
  std::optional<size_t> top_n_;
  ConsumePolicy consume_ = ConsumePolicy::kMatched;
  ExprPtr expire_predicate_;
};

}  // namespace datacell::core

#endif  // DATACELL_CORE_BASKET_EXPRESSION_H_
