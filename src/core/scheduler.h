#ifndef DATACELL_CORE_SCHEDULER_H_
#define DATACELL_CORE_SCHEDULER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "obs/metrics.h"
#include "ops/morsel.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace datacell::core {

/// The DataCell scheduler (§4.1). The paper describes it as an infinite
/// loop that "checks which transitions can fire by analyzing their inputs";
/// we keep that contract but make it event-driven: transitions declare
/// their place sets (Transition::input_places / output_places), every
/// basket mutation signals the transitions watching that place, and the
/// signalled transitions enter a ready-queue instead of being found by a
/// blind poll over everything.
///
/// Two execution modes share the ready-queue:
///  * Cooperative — the caller drives rounds on its own thread
///    (RunOnce / RunUntilQuiescent). Deterministic: each round drains the
///    ready set in registration order, and a round that does no work falls
///    back to the classic full scan, so quiescence detection is exactly the
///    poll-loop semantics. Used by tests, the latency benchmarks and the
///    Linear Road driver.
///  * Threaded — Start() spawns `num_workers` worker threads. A worker
///    claims the oldest ready transition whose place set does not overlap
///    any currently-firing transition's (the conflict rule; canonical-order
///    basket locking inside Factory::Fire stays as the safety net), fires
///    it outside the scheduler lock, and parks on a condition variable when
///    idle. Metronomes bound the park with their next deadline; pull
///    receptors are polled on a short interval, everything else wakes on
///    basket signals.
///
/// Locking: mu_ (rank kScheduler) protects the scheduling state. Firing
/// bodies take basket locks (rank kBasket, which out-ranks kScheduler), so
/// transitions always fire with mu_ released; the basket→scheduler signal
/// path (Basket::Touch → listener → OnPlaceSignal) is the only place both
/// are held together, in the hierarchy's basket-then-scheduler order.
class Scheduler {
 public:
  explicit Scheduler(Clock* clock, size_t num_workers = 1);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a transition and subscribes it to its declared input
  /// places. Round order is registration order (the Petri-net model leaves
  /// firing order undefined; we pick a stable one). Thread-safe, including
  /// while workers are running or another thread is inside RunOnce.
  void Register(TransitionPtr transition);

  /// Removes a registered transition: unsubscribes its basket listeners,
  /// pulls it from the ready queue and, in threaded mode, waits for any
  /// in-flight firing to complete before returning — after which the
  /// transition will never fire again. This is the teardown half of the
  /// multi-query optimizer's shared-subnet rewiring (dropping one query
  /// must not tear down transitions other queries still use, so the
  /// planner unregisters exactly the factories it rebuilds). Safe against
  /// concurrent workers and Register calls; in cooperative mode it must be
  /// called from the driving thread (the thread running RunOnce), which is
  /// the Session registration thread in practice. Returns NotFound if the
  /// transition was never registered (or already unregistered).
  Status Unregister(const TransitionPtr& transition);

  /// One pass, firing each eligible ready transition once (registration
  /// order). Returns true if any firing did work.
  Result<bool> RunOnce();

  /// Loops RunOnce until a full round does no work, or `max_rounds` is hit.
  /// Returns the number of rounds that did work.
  Result<size_t> RunUntilQuiescent(size_t max_rounds = 1'000'000);

  /// Threaded mode.
  Status Start();
  void Stop();
  bool running() const { return running_.load(); }

  /// Worker-pool size. May be called at any time, including while the
  /// pool is running: growing spawns workers immediately, shrinking
  /// retires workers as they reach the top of their loop (an in-flight
  /// firing always completes). Morsel dispatch snapshots the count once
  /// per firing, so a resize never changes a firing's view mid-flight.
  Status set_num_workers(size_t n);
  size_t num_workers() const;

  size_t num_transitions() const;

  /// True when no transition is queued or firing. Basket sizes are
  /// lock-free reads that can observe the transient state inside a firing
  /// (inputs already taken, outputs not yet appended), so a drain test is
  /// `places empty && Idle()` — tokens in flight keep Idle() false.
  bool Idle() const;

  /// First error that stopped the worker pool (OK while healthy).
  Status last_error() const;

  /// Per-transition firing stats (dc_transitions). `firings` counts
  /// eligible firings (CanFire held and the body ran, worked or not);
  /// `latency` is the wall-clock body duration histogram; `rows_in` /
  /// `rows_out` are the token-movement deltas observed around firings
  /// (input-place consumed / output-place appended) — the live selectivity
  /// feed the cost-based optimizer reads. All come from the process-global
  /// registry (`transition.<name>.firings` / `.fire_us` / `.rows_in` /
  /// `.rows_out`), so same-named transitions share a row's counters.
  struct TransitionStats {
    std::string name;
    uint64_t firings = 0;
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
    obs::HistogramSnapshot latency;
    // Intra-firing parallelism: morsels dispatched by this transition's
    // firings (`transition.<name>.morsels`) and their per-morsel run time
    // (`.morsel_us`). Zero / empty when firings stay under the morsel
    // threshold or the pool runs a single worker.
    uint64_t morsels = 0;
    obs::HistogramSnapshot morsel_latency;
  };
  std::vector<TransitionStats> TransitionStatsSnapshot() const;

 private:
  // Per-transition scheduling state. Nodes are shared_ptr-owned by nodes_
  // so worker-loop scan vectors can hold them across the unlocked windows
  // where Unregister may run; a node unlinked from nodes_ stays alive
  // until the last scan drops it, and `removed` keeps it from ever being
  // enqueued again. The mutable fields (queued, firing, removed,
  // park_until, fired_in_round) are guarded by the scheduler's mu_; the
  // analysis cannot express a guard living in the owning object, so that
  // part of the contract is enforced by review plus the runtime rank
  // checker, not by annotations.
  struct Node {
    TransitionPtr t;
    size_t index = 0;                  // registration order
    std::vector<Basket*> places;       // sorted unique input ∪ output set
    // Distinct input/output place sets for the trace's consumed/produced
    // deltas, plus the name of the first input place (the trace trigger).
    // Immutable after Register, read without mu_.
    std::vector<BasketPtr> in_places;
    std::vector<BasketPtr> out_places;
    std::string trigger;
    // Registry metrics, resolved at Register (stable pointers; hot-path
    // updates are relaxed atomics).
    obs::Counter* firings_metric = nullptr;  // transition.<name>.firings
    obs::Histogram* fire_hist = nullptr;     // transition.<name>.fire_us
    obs::Counter* rows_in_metric = nullptr;  // transition.<name>.rows_in
    obs::Counter* rows_out_metric = nullptr;  // transition.<name>.rows_out
    obs::Counter* morsels_metric = nullptr;  // transition.<name>.morsels
    obs::Histogram* morsel_hist = nullptr;   // transition.<name>.morsel_us
    bool data_driven = false;          // has declared input places
    bool queued = false;               // in ready_
    bool firing = false;               // claimed by a worker
    bool removed = false;              // unregistered; never enqueue again
    Micros park_until = 0;             // poller back-off (threaded mode)
    uint64_t fired_in_round = 0;       // cooperative-round dedup marker
    // Listener registrations to undo on scheduler destruction.
    std::vector<std::pair<BasketPtr, size_t>> subscriptions;
  };

  // One firing's intra-transition morsel batch (DESIGN.md §12): published
  // to morsel_groups_ by the firing worker, drained work-stealing by idle
  // workers and the submitter itself, removed by the submitter once every
  // morsel completed. fn/n/morsel_rows/num_morsels and the metric pointers
  // are immutable after publication; next/done/error are guarded by mu_
  // (like Node's mutable fields, the analysis cannot express an external
  // guard, so the runtime rank checker enforces it).
  struct MorselGroup {
    const ops::MorselFn* fn = nullptr;
    size_t n = 0;
    size_t morsel_rows = 0;
    size_t num_morsels = 0;
    size_t next = 0;  // next unclaimed morsel index
    size_t done = 0;  // completed morsels
    Status error;     // first morsel error (claim-and-skip after)
    obs::Counter* morsels_metric = nullptr;
    obs::Histogram* morsel_hist = nullptr;
  };

  // The MorselExecutor a worker installs around Fire: forwards kernel
  // RunMorsels calls into the scheduler's worker pool with a per-firing
  // worker-count snapshot.
  class FiringMorselExecutor;

  // A basket watched by `node` changed; make the node claimable. Runs on
  // the signal path (basket lock held), so it must not already hold mu_.
  void OnPlaceSignal(Node* node) DC_EXCLUDES(mu_);
  void EnqueueLocked(Node* node) DC_REQUIRES(mu_);
  bool ConflictsLocked(const Node& node) const DC_REQUIRES(mu_);
  bool HasClaimableMorselLocked() const DC_REQUIRES(mu_);
  // Claims and runs pending morsels (any group) until none remain;
  // acquires mu_ itself and releases it around each morsel body.
  void DrainPendingMorsels() DC_EXCLUDES(mu_);
  // Publishes a group, participates in draining it, waits for completion
  // and returns the first morsel error. Called from a firing body (no
  // scheduler locks held).
  Status RunMorselGroup(MorselGroup* group) DC_EXCLUDES(mu_);

  void WorkerLoop();
  // Fires `node` if eligible. Returns whether the body did work; sets
  // *fired when CanFire held and the transition actually ran. Must run
  // with mu_ released: firing bodies take basket locks, which out-rank
  // the scheduler lock.
  Result<bool> FireIfEligible(Node* node, bool* fired) DC_EXCLUDES(mu_);

  // Set at construction, never reseated; Clock implementations are
  // internally synchronized.
  Clock* clock_ DC_UNGUARDED;

  mutable Mutex mu_{LockRank::kScheduler};
  CondVar cv_;
  std::vector<std::shared_ptr<Node>> nodes_ DC_GUARDED_BY(mu_);
  std::deque<Node*> ready_ DC_GUARDED_BY(mu_);
  std::unordered_set<Basket*> firing_places_ DC_GUARDED_BY(mu_);
  std::deque<MorselGroup*> morsel_groups_ DC_GUARDED_BY(mu_);
  size_t num_workers_ DC_GUARDED_BY(mu_);
  // Workers asked to exit by a live shrink; each retiree decrements at
  // the top of its loop and returns (Stop() joins the threads).
  size_t retiring_ DC_GUARDED_BY(mu_) = 0;
  uint64_t round_serial_ DC_GUARDED_BY(mu_) = 0;  // cooperative round counter
  Status error_ DC_GUARDED_BY(mu_) = Status::OK();
  // Joined outside mu_ (workers take mu_); Stop() moves the vector out
  // under the lock first.
  std::vector<std::thread> workers_ DC_GUARDED_BY(mu_);

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace datacell::core

#endif  // DATACELL_CORE_SCHEDULER_H_
