#ifndef DATACELL_CORE_SCHEDULER_H_
#define DATACELL_CORE_SCHEDULER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::core {

/// The DataCell scheduler (§4.1): runs an infinite loop and at every
/// iteration checks which transitions can fire by analyzing their inputs.
///
/// Two execution modes:
///  * Cooperative — the caller drives rounds on its own thread
///    (RunOnce / RunUntilQuiescent). Deterministic; used by tests, the
///    latency benchmarks and the Linear Road driver.
///  * Threaded — Start() spawns a scheduler thread that keeps polling,
///    parking briefly when a full round fires nothing. Used together with
///    receptor/emitter threads in the network experiments.
class Scheduler {
 public:
  explicit Scheduler(Clock* clock) : clock_(clock) {}
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a transition. Round order is registration order (the
  /// Petri-net model leaves firing order undefined; we pick a stable one).
  void Register(TransitionPtr transition);

  /// One pass over all transitions, firing each eligible one once.
  /// Returns true if any firing did work.
  Result<bool> RunOnce();

  /// Loops RunOnce until a full round does no work, or `max_rounds` is hit.
  /// Returns the number of rounds that did work.
  Result<size_t> RunUntilQuiescent(size_t max_rounds = 1'000'000);

  /// Threaded mode.
  Status Start();
  void Stop();
  bool running() const { return running_.load(); }

  size_t num_transitions() const;

 private:
  void ThreadLoop();

  Clock* clock_;
  mutable std::mutex mu_;
  std::vector<TransitionPtr> transitions_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace datacell::core

#endif  // DATACELL_CORE_SCHEDULER_H_
