#include "core/basket_expression.h"

#include <algorithm>

#include "expr/eval.h"
#include "util/logging.h"

namespace datacell::core {

Result<Table> BasketExpression::Evaluate(const EvalContext& ctx) const {
  auto lock = source_->AcquireLock();
  const Table& data = source_->contents();

  // 1. Window predicate.
  SelVector window;
  if (predicate_ != nullptr) {
    ASSIGN_OR_RETURN(window, EvalPredicate(data, *predicate_, ctx));
  } else {
    window.resize(data.num_rows());
    for (size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<uint32_t>(i);
    }
  }

  // 2. order by / top n over the window.
  SelVector selected = window;
  if (!order_by_.empty() || top_n_.has_value()) {
    Table window_tab = data.Take(window);
    if (top_n_.has_value()) {
      // A `top n` window is exact: wait until it can be filled.
      if (window_tab.num_rows() < *top_n_) {
        return Table(data.schema());
      }
      ASSIGN_OR_RETURN(SelVector local,
                       ops::TopNIndices(window_tab, order_by_, *top_n_, ctx));
      selected.clear();
      selected.reserve(local.size());
      for (uint32_t l : local) selected.push_back(window[l]);
    } else {
      ASSIGN_OR_RETURN(SelVector local,
                       ops::SortIndices(window_tab, order_by_, ctx));
      selected.clear();
      selected.reserve(local.size());
      for (uint32_t l : local) selected.push_back(window[l]);
    }
  }

  // 3. Materialize the result before mutating the basket.
  Table result = data.Take(selected);

  // 4. Consumption side effect.
  switch (consume_) {
    case ConsumePolicy::kNone:
      break;
    case ConsumePolicy::kBatch:
      source_->Clear();
      break;
    case ConsumePolicy::kMatched: {
      SelVector to_erase = selected;
      std::sort(to_erase.begin(), to_erase.end());
      to_erase.erase(std::unique(to_erase.begin(), to_erase.end()),
                     to_erase.end());
      RETURN_NOT_OK(source_->EraseRows(to_erase));
      break;
    }
    case ConsumePolicy::kExpired: {
      if (expire_predicate_ == nullptr) {
        return Status::InvalidArgument(
            "kExpired consume policy requires an expire predicate");
      }
      ASSIGN_OR_RETURN(SelVector expired,
                       EvalPredicate(data, *expire_predicate_, ctx));
      RETURN_NOT_OK(source_->EraseRows(expired));
      break;
    }
  }
  return result;
}

}  // namespace datacell::core
