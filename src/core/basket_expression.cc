#include "core/basket_expression.h"

#include <algorithm>

#include "expr/eval.h"
#include "util/logging.h"

namespace datacell::core {

Result<Table> BasketExpression::Evaluate(const EvalContext& ctx) const {
  // Snapshot the basket under its lock. The snapshot shares the basket's
  // column buffers copy-on-write, so it costs O(#columns), and it stays
  // immutable no matter what producers append afterwards. Policies that do
  // not erase *specific* rows can therefore release the lock before the
  // (possibly expensive) window evaluation:
  //   * kNone never mutates the basket;
  //   * kBatch consumes exactly the snapshot, so we Clear() up front (O(1);
  //     the snapshot keeps the rows) — except under `top n`, which must
  //     consume nothing when the window cannot be filled yet, so it keeps
  //     the lock like the row-targeted policies;
  //   * kMatched/kExpired erase rows by index into the snapshot, so the
  //     basket must not change between snapshot and erase: hold the lock.
  // The two branches keep the lock state balanced on every path, which is
  // what the thread-safety analysis can follow.
  const bool consume_upfront =
      consume_ == ConsumePolicy::kBatch && !top_n_.has_value();
  if (consume_ == ConsumePolicy::kNone || consume_upfront) {
    Table data;
    {
      BasketLock lock(source_.get());
      data = source_->Peek();
      if (consume_upfront) source_->Clear();
    }
    return EvaluateSnapshot(data, ctx);
  }
  BasketLock lock(source_.get());
  Table data = source_->Peek();
  return EvaluateSnapshot(data, ctx);
}

Result<Table> BasketExpression::EvaluateSnapshot(const Table& data,
                                                const EvalContext& ctx) const {
  const bool consume_upfront =
      consume_ == ConsumePolicy::kBatch && !top_n_.has_value();

  // 1. Window predicate.
  SelVector window;
  if (predicate_ != nullptr) {
    ASSIGN_OR_RETURN(window, EvalPredicate(data, *predicate_, ctx));
  } else {
    window.resize(data.num_rows());
    for (size_t i = 0; i < window.size(); ++i) {
      window[i] = static_cast<uint32_t>(i);
    }
  }

  // 2. order by / top n over the window.
  SelVector selected = window;
  if (!order_by_.empty() || top_n_.has_value()) {
    Table window_tab = data.Take(window);
    if (top_n_.has_value()) {
      // A `top n` window is exact: wait until it can be filled.
      if (window_tab.num_rows() < *top_n_) {
        return Table(data.schema());
      }
      ASSIGN_OR_RETURN(SelVector local,
                       ops::TopNIndices(window_tab, order_by_, *top_n_, ctx));
      selected.clear();
      selected.reserve(local.size());
      for (uint32_t l : local) selected.push_back(window[l]);
    } else {
      ASSIGN_OR_RETURN(SelVector local,
                       ops::SortIndices(window_tab, order_by_, ctx));
      selected.clear();
      selected.reserve(local.size());
      for (uint32_t l : local) selected.push_back(window[l]);
    }
  }

  // 3. Materialize the result before mutating the basket.
  Table result = data.Take(selected);

  // 4. Consumption side effect (indices refer to the snapshot; for the
  // row-targeted policies the lock held by Evaluate since the snapshot
  // keeps them valid against the basket).
  switch (consume_) {
    case ConsumePolicy::kNone:
      break;
    case ConsumePolicy::kBatch:
      if (!consume_upfront) source_->Clear();
      break;
    case ConsumePolicy::kMatched: {
      SelVector to_erase = selected;
      std::sort(to_erase.begin(), to_erase.end());
      to_erase.erase(std::unique(to_erase.begin(), to_erase.end()),
                     to_erase.end());
      RETURN_NOT_OK(source_->EraseRows(to_erase));
      break;
    }
    case ConsumePolicy::kExpired: {
      if (expire_predicate_ == nullptr) {
        return Status::InvalidArgument(
            "kExpired consume policy requires an expire predicate");
      }
      ASSIGN_OR_RETURN(SelVector expired,
                       EvalPredicate(data, *expire_predicate_, ctx));
      RETURN_NOT_OK(source_->EraseRows(expired));
      break;
    }
  }
  return result;
}

}  // namespace datacell::core
