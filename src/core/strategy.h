#ifndef DATACELL_CORE_STRATEGY_H_
#define DATACELL_CORE_STRATEGY_H_

#include <string>
#include <vector>

#include "core/basket.h"
#include "core/basket_expression.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "util/status.h"

namespace datacell::core {

/// One simple continuous selection query, the unit the §4.2 strategies are
/// defined over: `select * from [select * from S where predicate] as Z`.
struct ContinuousQuery {
  std::string name;
  ExprPtr predicate;  // null = select all
};

/// A wired query network: push tuples through `receptor`, drive
/// `transitions` with a scheduler, read results from `outputs[i]`
/// (one basket per query, holding the full stream schema).
struct QueryNetwork {
  ReceptorPtr receptor;
  std::vector<BasketPtr> outputs;
  std::vector<TransitionPtr> transitions;

  /// Registers all transitions with a scheduler, in construction order.
  void RegisterAll(Scheduler* scheduler) const;
};

/// §4.2 Separate baskets: maximum independence. Each query gets a private
/// input basket; the receptor replicates every incoming tuple into all k
/// baskets; each factory consumes its own basket with no coordination.
Result<QueryNetwork> BuildSeparateBaskets(
    const Schema& stream_schema, const std::vector<ContinuousQuery>& queries,
    size_t batch_size);

/// §4.2 Shared baskets: one input basket shared by all query factories,
/// guarded by the locker/unlocker factory pair of Figure 2(b). The locker
/// pins the current batch and raises one flag token per query; each query
/// factory reads without consuming and raises its done token; the unlocker
/// erases the batch once every query has finished and re-arms the locker.
Result<QueryNetwork> BuildSharedBaskets(
    const Schema& stream_schema, const std::vector<ContinuousQuery>& queries,
    size_t batch_size);

/// §4.2 Partial deletes: queries form a chain over one shared basket
/// (Figure 2(c)); each query deletes the tuples that qualified its basket
/// predicate before the next query reads, so later queries scan fewer
/// tuples (intended for disjoint predicates). The last query clears the
/// leftover batch.
Result<QueryNetwork> BuildPartialDeleteChain(
    const Schema& stream_schema, const std::vector<ContinuousQuery>& queries,
    size_t batch_size);

/// §4.3 research direction "share not only baskets but also execution
/// cost": queries with a common selection prefix are grouped behind one
/// auxiliary factory that evaluates the shared predicate once per batch;
/// only its (much smaller) output is replicated to the per-query residual
/// factories. Queries see tuples satisfying `shared_predicate AND their
/// own predicate`.
struct SharedPrefixGroup {
  std::string name;
  /// The common selection evaluated once (null = pass-through).
  ExprPtr shared_predicate;
  /// Residual queries evaluated over the prefix output.
  std::vector<ContinuousQuery> queries;
};

Result<QueryNetwork> BuildSharedPrefix(
    const Schema& stream_schema, const std::vector<SharedPrefixGroup>& groups,
    size_t batch_size);

/// §4.3 research direction "split the query plan into multiple factories":
/// wraps a (possibly slow) query body behind a cheap load factory that
/// moves the input into a private staging basket and releases the shared
/// input immediately — a fast query sharing the stream no longer waits for
/// a slow one. Returns the two transitions (loader, worker) and the
/// staging basket they communicate through.
struct SplitPlan {
  TransitionPtr loader;
  TransitionPtr worker;
  BasketPtr staging;
};

Result<SplitPlan> SplitQueryPlan(const std::string& name, BasketPtr input,
                                 size_t batch_size, Factory::Body worker_body);

}  // namespace datacell::core

#endif  // DATACELL_CORE_STRATEGY_H_
