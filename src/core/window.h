#ifndef DATACELL_CORE_WINDOW_H_
#define DATACELL_CORE_WINDOW_H_

#include <string>
#include <vector>

#include "core/basket.h"
#include "core/factory.h"
#include "ops/aggregate.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::core {

/// Time-based window queries (§4.1): the paper handles them "at the level
/// of the factory ... by plugging in auxiliary queries that check the
/// input for the window properties". These builders package that pattern.

/// A tumbling (non-overlapping) time window over a basket's arrival
/// column: when the clock passes the end of the current window, all tuples
/// that arrived inside it are aggregated into one output row
/// (window_start, window_end, aggregates...) and evicted; tuples of the
/// next window stay (kExpired consumption).
///
/// The returned factory's firing condition is input-driven; pair it with a
/// Metronome feeding a tick basket when windows must close in the absence
/// of new tuples (the §5 heartbeat pattern) — pass that tick basket as
/// `tick` (may be null: then a window closes when the first tuple after it
/// arrives).
struct TumblingWindowSpec {
  Micros window_length = kMicrosPerSecond;
  /// Aggregates computed per window over the basket's user columns.
  std::vector<ops::AggItem> aggregates;
  /// Optional per-window grouping expressions over the basket columns.
  std::vector<ops::GroupItem> group_by;
};

/// Creates the output basket schema for a spec: (window_start timestamp,
/// window_end timestamp, group columns..., aggregate columns...). The
/// output types for aggregates follow ops::Aggregate over `input_schema`.
Result<Schema> TumblingWindowOutputSchema(const Schema& input_schema,
                                          const TumblingWindowSpec& spec);

/// Builds the factory: reads `input`, closes every window that ended at or
/// before now(), appends one row per (window, group) to `output`, and
/// expires consumed tuples. `tick` (optional) is an extra input basket
/// whose tokens force evaluation (drain-only).
Result<FactoryPtr> MakeTumblingWindowFactory(const std::string& name,
                                             BasketPtr input, BasketPtr output,
                                             TumblingWindowSpec spec,
                                             BasketPtr tick = nullptr);

}  // namespace datacell::core

#endif  // DATACELL_CORE_WINDOW_H_
