#ifndef DATACELL_CORE_ENGINE_H_
#define DATACELL_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "column/catalog.h"
#include "core/basket.h"
#include "core/scheduler.h"
#include "storage/ingest_log.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace datacell::core {

/// The DataCell engine: the top-level object bundling the catalog of
/// persistent tables (the DBMS side), the registry of baskets (the stream
/// side), the Petri-net scheduler, the clock, and session variables.
///
/// The SQL session (sql/session.h) and the examples operate through this
/// facade; the lower-level pieces remain usable on their own.
class Engine {
 public:
  /// The engine does not own the clock (tests share a SimulatedClock).
  /// `num_workers` sizes the scheduler's worker pool for threaded mode
  /// (cooperative RunOnce/RunUntilQuiescent is unaffected).
  explicit Engine(Clock* clock, size_t num_workers = 1)
      : clock_(clock),
        scheduler_(std::make_unique<Scheduler>(clock, num_workers)) {}

  Clock* clock() const { return clock_; }
  Micros Now() const { return clock_->Now(); }

  Catalog& catalog() { return catalog_; }
  Scheduler& scheduler() { return *scheduler_; }

  /// --- Baskets ------------------------------------------------------------
  Result<BasketPtr> CreateBasket(const std::string& name, const Schema& schema,
                                 bool add_arrival_ts = true);
  /// As above, additionally installing a capacity bound (resident-row high
  /// watermark) for credit-based backpressure at the ingestion edge;
  /// `low_watermark` 0 defaults to capacity/2. See Basket::SetCapacity.
  Result<BasketPtr> CreateBoundedBasket(const std::string& name,
                                        const Schema& schema, size_t capacity,
                                        size_t low_watermark = 0,
                                        bool add_arrival_ts = true);
  Result<BasketPtr> GetBasket(const std::string& name) const;
  bool HasBasket(const std::string& name) const;
  Status DropBasket(const std::string& name);
  std::vector<std::string> ListBaskets() const;

  /// --- Durability / recovery ----------------------------------------------
  /// Startup recovery step 1: loads every table persisted under `dir` into
  /// the catalog. A missing directory is a fresh start, not an error.
  Status RecoverCatalog(const std::string& dir);
  /// Startup recovery step 2: replays the ingest log at `path`, appending
  /// every not-yet-acknowledged tuple to the basket named by its stream
  /// (full-schema streams append aligned; user-schema streams are stamped
  /// with the current clock). Streams with no matching basket are dropped
  /// with a warning — wire the baskets before replaying. A missing log
  /// file is an empty replay.
  Result<storage::ReplayReport> ReplayIngest(const std::string& path);

  /// --- Session variables (SQL declare/set) --------------------------------
  void SetVariable(const std::string& name, Value value);
  Result<Value> GetVariable(const std::string& name) const;
  bool HasVariable(const std::string& name) const;
  /// Snapshot for expression evaluation.
  std::map<std::string, Value> VariablesSnapshot() const;

  /// Convenience: register a transition and return it.
  template <typename T>
  std::shared_ptr<T> Register(std::shared_ptr<T> transition) {
    scheduler_->Register(transition);
    return transition;
  }

 private:
  Clock* clock_;
  // Catalog serializes itself with its own internal mutex (kCatalog).
  Catalog catalog_ DC_UNGUARDED;
  // Set in the constructor, never reseated; Scheduler has its own lock.
  std::unique_ptr<Scheduler> scheduler_ DC_UNGUARDED;

  mutable Mutex mu_{LockRank::kEngine};
  std::map<std::string, BasketPtr> baskets_ DC_GUARDED_BY(mu_);
  std::map<std::string, Value> variables_ DC_GUARDED_BY(mu_);
};

}  // namespace datacell::core

#endif  // DATACELL_CORE_ENGINE_H_
