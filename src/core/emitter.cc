#include "core/receptor.h"

namespace datacell::core {

bool Emitter::CanFire(Micros) const {
  for (const BasketPtr& b : inputs_) {
    if (!b->empty()) return true;
  }
  return false;
}

Result<bool> Emitter::Fire(Micros) {
  bool moved = false;
  for (const BasketPtr& b : inputs_) {
    if (b->empty()) continue;
    Table batch = b->TakeAll();
    if (batch.num_rows() == 0) continue;
    emitted_.fetch_add(batch.num_rows(), std::memory_order_relaxed);
    RETURN_NOT_OK(sink_(batch));
    moved = true;
  }
  return moved;
}

}  // namespace datacell::core
