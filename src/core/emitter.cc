#include "core/receptor.h"

#include "storage/ingest_log.h"
#include "util/logging.h"

namespace datacell::core {

Emitter::Emitter(std::string name, Sink sink)
    : name_(std::move(name)), sink_(std::move(sink)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  m_tuples_ = reg.GetCounter("emitter." + name_ + ".tuples");
  m_sink_errors_ = reg.GetCounter("emitter." + name_ + ".sink_errors");
}

bool Emitter::CanFire(Micros) const {
  if (pending_rows_.load(std::memory_order_relaxed) > 0) return true;
  for (const BasketPtr& b : inputs_) {
    if (!b->empty()) return true;
  }
  return false;
}

Result<bool> Emitter::Fire(Micros) {
  bool moved = false;
  // Retry the staged batch first so a recovered sink sees tuples in the
  // original order; while it keeps failing no new input is consumed.
  if (pending_rows_.load(std::memory_order_relaxed) > 0) {
    if (Status st = sink_(pending_); !st.ok()) {
      sink_errors_.fetch_add(1, std::memory_order_relaxed);
      m_sink_errors_->Increment();
      return st;
    }
    const uint64_t n = pending_.num_rows();
    emitted_.fetch_add(n, std::memory_order_relaxed);
    m_tuples_->Increment(n);
    if (staging_log_ != nullptr && staged_last_seq_ > 0) {
      // The staged batch reached the sink: mark its logged tuples durable
      // downstream so a later restart does not re-deliver them.
      if (Status st = staging_log_->Ack(staging_stream_, staged_last_seq_);
          !st.ok()) {
        DC_LOG(Warn) << "emitter '" << name_
                     << "' staging ack failed: " << st.message();
      }
      staged_last_seq_ = 0;
    }
    // Clear(), not `pending_ = Table()`: a default Table is schema-less,
    // and the staged slot must keep a valid schema for anything that
    // inspects it between firings.
    pending_.Clear();
    pending_rows_.store(0, std::memory_order_relaxed);
    moved = true;
  }
  for (const BasketPtr& b : inputs_) {
    if (b->empty()) continue;
    Table batch = b->TakeAll();
    const uint64_t n = batch.num_rows();
    if (n == 0) continue;
    if (Status st = sink_(batch); !st.ok()) {
      // The batch is already out of the basket; stage it so no tuple is
      // lost and the next firing retries it. The error still propagates
      // (scheduler policy decides whether to keep running).
      sink_errors_.fetch_add(1, std::memory_order_relaxed);
      m_sink_errors_->Increment();
      pending_ = std::move(batch);
      pending_rows_.store(n, std::memory_order_relaxed);
      if (staging_log_ != nullptr) {
        // Log the at-risk batch so a crash while it is staged re-delivers
        // it after restart (successful batches never touch the log).
        Result<std::pair<uint64_t, uint64_t>> seqs =
            staging_log_->AppendBatch(staging_stream_, pending_);
        if (seqs.ok()) {
          staged_last_seq_ = seqs->second;
        } else {
          DC_LOG(Warn) << "emitter '" << name_
                       << "' staging log append failed: "
                       << seqs.status().message();
        }
      }
      return st;
    }
    emitted_.fetch_add(n, std::memory_order_relaxed);
    m_tuples_->Increment(n);
    moved = true;
  }
  return moved;
}

}  // namespace datacell::core
