#include "core/strategy.h"

#include <memory>

#include "expr/eval.h"
#include "util/logging.h"

namespace datacell::core {

namespace {

// Schema for token/flag baskets (no arrival column: pure Petri-net tokens).
Schema TokenSchema() { return Schema({{"flag", DataType::kBool}}); }

Status PushToken(Basket& basket, Micros now) {
  // One cached single-row token table: pushed very frequently by the
  // shared-basket and chain coordination factories.
  static const Table* token_table = [] {
    auto* t = new Table(TokenSchema());
    DC_CHECK(t->AppendRow({Value(true)}).ok());
    return t;
  }();
  ASSIGN_OR_RETURN(size_t n, basket.AppendAligned(*token_table, now));
  (void)n;
  return Status::OK();
}

BasketPtr MakeTokenBasket(const std::string& name) {
  return std::make_shared<Basket>(name, TokenSchema(),
                                  /*add_arrival_ts=*/false);
}

// Output basket carrying the full stream basket schema (arrival column
// already included), so results can be forwarded aligned.
BasketPtr MakeResultBasket(const std::string& name, const Schema& full) {
  return std::make_shared<Basket>(name, full, /*add_arrival_ts=*/false);
}

}  // namespace

void QueryNetwork::RegisterAll(Scheduler* scheduler) const {
  for (const TransitionPtr& t : transitions) scheduler->Register(t);
}

Result<QueryNetwork> BuildSeparateBaskets(
    const Schema& stream_schema, const std::vector<ContinuousQuery>& queries,
    size_t batch_size) {
  QueryNetwork net;
  net.receptor = std::make_shared<Receptor>("receptor");
  for (const ContinuousQuery& q : queries) {
    // Private input basket, replicated into by the receptor.
    auto input = std::make_shared<Basket>("in_" + q.name, stream_schema);
    net.receptor->AddOutput(input);
    auto output = MakeResultBasket("out_" + q.name, input->schema());
    net.outputs.push_back(output);

    auto bexpr = std::make_shared<BasketExpression>(input);
    if (q.predicate != nullptr) bexpr->Where(q.predicate);
    // Consume the whole batch: each tuple is seen exactly once per query.
    bexpr->Consume(ConsumePolicy::kBatch);

    auto factory = std::make_shared<Factory>(
        q.name, [bexpr, output](FactoryContext& ctx) -> Status {
          ASSIGN_OR_RETURN(Table result, bexpr->Evaluate(ctx.eval()));
          if (result.num_rows() == 0) return Status::OK();
          ASSIGN_OR_RETURN(size_t n, output->AppendAligned(result, ctx.now()));
          (void)n;
          return Status::OK();
        });
    factory->AddInput(input, batch_size);
    factory->AddOutput(output);
    net.transitions.push_back(factory);
  }
  return net;
}

Result<QueryNetwork> BuildSharedBaskets(
    const Schema& stream_schema, const std::vector<ContinuousQuery>& queries,
    size_t batch_size) {
  QueryNetwork net;
  const size_t k = queries.size();
  net.receptor = std::make_shared<Receptor>("receptor");
  auto shared = std::make_shared<Basket>("shared", stream_schema);
  net.receptor->AddOutput(shared);

  // Mutual-exclusion token: present when the locker may pin a new batch.
  auto ready = MakeTokenBasket("ready");
  {
    Table t(TokenSchema());
    DC_CHECK(t.AppendRow({Value(true)}).ok());
    auto r = ready->AppendAligned(t, 0);
    DC_CHECK(r.ok());
  }

  // Shared state: how many tuples the current pinned batch holds.
  auto batch_n = std::make_shared<size_t>(0);

  std::vector<BasketPtr> flags;    // locker -> query i
  std::vector<BasketPtr> dones;    // query i -> unlocker
  for (size_t i = 0; i < k; ++i) {
    flags.push_back(MakeTokenBasket("flag_" + queries[i].name));
    dones.push_back(MakeTokenBasket("done_" + queries[i].name));
  }

  // Locker L (Figure 2b): fires when the shared basket has a full batch and
  // the ready token is present; pins the batch size and raises all flags.
  auto locker = std::make_shared<Factory>(
      "locker", [shared, flags, batch_n](FactoryContext& ctx) -> Status {
        ctx.input(1).Clear();  // consume the ready token
        *batch_n = shared->size();
        for (const BasketPtr& f : flags) {
          RETURN_NOT_OK(PushToken(*f, ctx.now()));
        }
        return Status::OK();
      });
  locker->AddInput(shared, batch_size);
  locker->AddInput(ready, 1);
  for (const BasketPtr& f : flags) locker->AddOutput(f);
  net.transitions.push_back(locker);

  // Query factories: read the pinned prefix without consuming.
  for (size_t i = 0; i < k; ++i) {
    const ContinuousQuery& q = queries[i];
    auto output = MakeResultBasket("out_" + q.name, shared->schema());
    net.outputs.push_back(output);
    ExprPtr pred = q.predicate;
    BasketPtr flag = flags[i];
    BasketPtr done = dones[i];
    auto factory = std::make_shared<Factory>(
        q.name,
        [shared, pred, output, flag, done, batch_n](
            FactoryContext& ctx) -> Status {
          flag->Clear();  // consume the trigger token
          // Snapshot the pinned batch — sharing means no per-query copy of
          // the stream (the whole point of this strategy), and the COW
          // snapshot shares the shared basket's buffers, so this is
          // O(#columns). The lock is dropped before predicate evaluation:
          // k readers can then scan the same pinned prefix concurrently,
          // and the unlocker's O(1) ErasePrefix head-advance never
          // disturbs snapshots already taken.
          size_t n;
          Table data;
          {
            const Basket* s = shared.get();
            BasketLock lock(s);
            n = std::min(*batch_n, s->size());
            data = s->contents();
          }
          SelVector prefix(n);
          for (size_t r = 0; r < n; ++r) prefix[r] = static_cast<uint32_t>(r);
          SelVector sel = std::move(prefix);
          if (pred != nullptr) {
            ASSIGN_OR_RETURN(sel, EvalPredicateOn(data, *pred, sel, ctx.eval()));
          }
          if (!sel.empty()) {
            Table result = data.Take(sel);
            ASSIGN_OR_RETURN(size_t cnt,
                             output->AppendAligned(result, ctx.now()));
            (void)cnt;
          }
          return PushToken(*done, ctx.now());
        });
    factory->AddInput(flag, 1);
    factory->AddInput(shared, 1);
    factory->AddOutput(output);
    factory->AddOutput(done);
    net.transitions.push_back(factory);
  }

  // Unlocker U: once every query finished, drop the pinned batch (an O(1)
  // head advance; any reader snapshot still in flight keeps the physical
  // rows alive) and re-arm the locker.
  auto unlocker = std::make_shared<Factory>(
      "unlocker",
      [shared, dones, ready, batch_n](FactoryContext& ctx) -> Status {
        for (const BasketPtr& d : dones) d->Clear();
        RETURN_NOT_OK(shared->ErasePrefix(*batch_n));
        *batch_n = 0;
        return PushToken(*ready, ctx.now());
      });
  for (const BasketPtr& d : dones) unlocker->AddInput(d, 1);
  unlocker->AddOutput(shared);
  unlocker->AddOutput(ready);
  net.transitions.push_back(unlocker);
  return net;
}

Result<QueryNetwork> BuildPartialDeleteChain(
    const Schema& stream_schema, const std::vector<ContinuousQuery>& queries,
    size_t batch_size) {
  QueryNetwork net;
  const size_t k = queries.size();
  DC_CHECK(k > 0);
  net.receptor = std::make_shared<Receptor>("receptor");
  auto shared = std::make_shared<Basket>("chain", stream_schema);
  net.receptor->AddOutput(shared);

  // Round token: lets query i+1 run only after query i finished; the tail
  // re-arms the head so a new batch can start.
  std::vector<BasketPtr> tokens;
  for (size_t i = 0; i < k; ++i) {
    tokens.push_back(MakeTokenBasket("tok_" + std::to_string(i)));
  }
  {
    Table t(TokenSchema());
    DC_CHECK(t.AppendRow({Value(true)}).ok());
    auto r = tokens[0]->AppendAligned(t, 0);
    DC_CHECK(r.ok());
  }

  for (size_t i = 0; i < k; ++i) {
    const ContinuousQuery& q = queries[i];
    auto output = MakeResultBasket("out_" + q.name, shared->schema());
    net.outputs.push_back(output);

    auto bexpr = std::make_shared<BasketExpression>(shared);
    if (q.predicate != nullptr) bexpr->Where(q.predicate);
    // Each query deletes what it consumed (the partial delete); the last
    // one clears the leftover batch so unmatched tuples do not accumulate.
    bexpr->Consume(i + 1 == k ? ConsumePolicy::kBatch : ConsumePolicy::kMatched);

    BasketPtr my_token = tokens[i];
    BasketPtr next_token = tokens[(i + 1) % k];
    auto factory = std::make_shared<Factory>(
        q.name,
        [bexpr, output, my_token, next_token](FactoryContext& ctx) -> Status {
          my_token->Clear();
          ASSIGN_OR_RETURN(Table result, bexpr->Evaluate(ctx.eval()));
          if (result.num_rows() > 0) {
            ASSIGN_OR_RETURN(size_t n, output->AppendAligned(result, ctx.now()));
            (void)n;
          }
          return PushToken(*next_token, ctx.now());
        });
    factory->AddInput(my_token, 1);
    // Only the chain head waits for a full batch; the rest run on the
    // token alone (the batch is already in the basket) — but every chain
    // member deletes from `shared` in place, so it must be in the declared
    // place set. Declaring it as an output keeps the firing rule intact
    // (outputs never gate eligibility) while telling the scheduler that
    // chain members conflict on the shared basket.
    if (i == 0) {
      factory->AddInput(shared, batch_size);
    } else {
      factory->AddOutput(shared);
    }
    factory->AddOutput(output);
    factory->AddOutput(next_token);
    net.transitions.push_back(factory);
  }
  return net;
}

Result<QueryNetwork> BuildSharedPrefix(
    const Schema& stream_schema, const std::vector<SharedPrefixGroup>& groups,
    size_t batch_size) {
  QueryNetwork net;
  net.receptor = std::make_shared<Receptor>("receptor");
  for (const SharedPrefixGroup& group : groups) {
    // One input basket per group, fed by the receptor.
    auto input = std::make_shared<Basket>("in_" + group.name, stream_schema);
    net.receptor->AddOutput(input);

    // The shared-prefix factory: evaluates the common selection once and
    // replicates only the qualifying tuples to the per-query baskets.
    auto bexpr = std::make_shared<BasketExpression>(input);
    if (group.shared_predicate != nullptr) bexpr->Where(group.shared_predicate);
    bexpr->Consume(ConsumePolicy::kBatch);

    std::vector<BasketPtr> fanout;
    for (const ContinuousQuery& q : group.queries) {
      fanout.push_back(MakeResultBasket("pre_" + group.name + "_" + q.name,
                                        input->schema()));
    }
    auto prefix_factory = std::make_shared<Factory>(
        "prefix_" + group.name,
        [bexpr, fanout](FactoryContext& ctx) -> Status {
          ASSIGN_OR_RETURN(Table matched, bexpr->Evaluate(ctx.eval()));
          if (matched.num_rows() == 0) return Status::OK();
          for (const BasketPtr& b : fanout) {
            ASSIGN_OR_RETURN(size_t n, b->AppendAligned(matched, ctx.now()));
            (void)n;
          }
          return Status::OK();
        });
    prefix_factory->AddInput(input, batch_size);
    for (const BasketPtr& b : fanout) prefix_factory->AddOutput(b);
    net.transitions.push_back(prefix_factory);

    // Residual factories: the per-query predicates over the prefix output.
    for (size_t i = 0; i < group.queries.size(); ++i) {
      const ContinuousQuery& q = group.queries[i];
      auto output =
          MakeResultBasket("out_" + group.name + "_" + q.name, input->schema());
      net.outputs.push_back(output);
      auto residual = std::make_shared<BasketExpression>(fanout[i]);
      if (q.predicate != nullptr) residual->Where(q.predicate);
      residual->Consume(ConsumePolicy::kBatch);
      auto f = std::make_shared<Factory>(
          group.name + "_" + q.name,
          [residual, output](FactoryContext& ctx) -> Status {
            ASSIGN_OR_RETURN(Table result, residual->Evaluate(ctx.eval()));
            if (result.num_rows() == 0) return Status::OK();
            ASSIGN_OR_RETURN(size_t n, output->AppendAligned(result, ctx.now()));
            (void)n;
            return Status::OK();
          });
      f->AddInput(fanout[i], 1);
      f->AddOutput(output);
      net.transitions.push_back(f);
    }
  }
  return net;
}

Result<SplitPlan> SplitQueryPlan(const std::string& name, BasketPtr input,
                                 size_t batch_size, Factory::Body worker_body) {
  DC_CHECK(input != nullptr);
  SplitPlan plan;
  plan.staging = std::make_shared<Basket>("stage_" + name, input->schema(),
                                          /*add_arrival_ts=*/false);
  BasketPtr staging = plan.staging;
  BasketPtr in = input;
  // The loader holds the shared input only long enough to move the batch.
  auto loader = std::make_shared<Factory>(
      "load_" + name, [in, staging](FactoryContext& ctx) -> Status {
        Table batch = in->TakeAll();
        if (batch.num_rows() == 0) return Status::OK();
        ASSIGN_OR_RETURN(size_t n, staging->AppendAligned(batch, ctx.now()));
        (void)n;
        return Status::OK();
      });
  loader->AddInput(input, batch_size);
  loader->AddOutput(plan.staging);
  auto worker = std::make_shared<Factory>("work_" + name,
                                          std::move(worker_body));
  worker->AddInput(plan.staging, 1);
  plan.loader = loader;
  plan.worker = worker;
  return plan;
}

}  // namespace datacell::core
