#ifndef DATACELL_CORE_MERGE_H_
#define DATACELL_CORE_MERGE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/basket.h"
#include "core/factory.h"

namespace datacell::core {

/// The explicit cross-partition merge transition: re-joins the per-shard
/// partitions of a logical stream into one basket so downstream
/// aggregates/joins see a single place, keeping partitioning an ingress
/// concern instead of leaking into every consumer (the R-GMA-style
/// mediation point).
///
/// Determinism contract (mirrors the morsel merge discipline): each firing
/// consumes the partitions in their *declared order* — partition 0's rows
/// first, then partition 1's, and so on — so for a given sequence of
/// per-partition arrivals the merged basket's row order is a pure function
/// of that sequence, never of reactor-thread timing within a firing. The
/// partition list must therefore be shard order (0..N-1), which is what
/// plan::BuildPartitionedChain wires.
///
/// Firing rule: unlike a Factory (every input non-empty), the merge fires
/// when *any* partition holds tuples — an idle shard must not dam its
/// siblings' data.
class MergeTransition : public Transition {
 public:
  MergeTransition(std::string name, std::vector<BasketPtr> partitions,
                  BasketPtr output);

  const std::string& name() const override { return name_; }
  bool CanFire(Micros now) const override;
  /// Takes everything from each non-empty partition, declared order, and
  /// appends it (schema-aligned, arrival stamps preserved) to the output.
  /// All involved baskets are locked in canonical address order for the
  /// whole firing, so the move is atomic.
  Result<bool> Fire(Micros now) override;

  std::vector<BasketPtr> input_places() const override { return partitions_; }
  std::vector<BasketPtr> output_places() const override {
    return {output_};
  }

 private:
  const std::string name_;
  std::vector<BasketPtr> partitions_;
  BasketPtr output_;
};

/// Convenience: MergeTransition over `partitions` in the given (shard)
/// order, named `<name>`, writing into `output`.
TransitionPtr MakeMergeTransition(std::string name,
                                  std::vector<BasketPtr> partitions,
                                  BasketPtr output);

}  // namespace datacell::core

#endif  // DATACELL_CORE_MERGE_H_
