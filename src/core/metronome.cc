#include "core/metronome.h"

#include <algorithm>

#include "util/logging.h"

namespace datacell::core {

Metronome::Metronome(std::string name, BasketPtr output, Micros start,
                     Micros interval, RowFactory row_factory,
                     uint64_t max_ticks_per_fire)
    : name_(std::move(name)),
      output_(std::move(output)),
      next_tick_(start),
      interval_(interval),
      row_factory_(std::move(row_factory)),
      max_ticks_per_fire_(std::max<uint64_t>(max_ticks_per_fire, 1)) {
  DC_CHECK(interval_ > 0);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  m_ticks_ = reg.GetCounter("metronome." + name_ + ".ticks");
  m_capped_ = reg.GetCounter("metronome." + name_ + ".capped_firings");
  m_backlog_ = reg.GetGauge("metronome." + name_ + ".backlog_ticks");
}

Result<bool> Metronome::Fire(Micros now) {
  // Only one scheduler worker fires a transition at a time, so the local
  // tick cursor is race-free; the atomic store publishes it to concurrent
  // CanFire/next_deadline readers.
  Micros tick = next_tick_.load(std::memory_order_acquire);
  uint64_t ticks_emitted = 0;
  while (now >= tick && ticks_emitted < max_ticks_per_fire_) {
    Row row;
    if (row_factory_ != nullptr) {
      row = row_factory_(tick);
    } else {
      const size_t user_fields =
          output_->schema().num_fields() - (output_->has_arrival_column() ? 1 : 0);
      row.assign(user_fields, Value::Null());
    }
    RETURN_NOT_OK(output_->AppendRow(row, tick));
    tick += interval_;
    next_tick_.store(tick, std::memory_order_release);
    ++ticks_emitted;
  }
  if (ticks_emitted > 0) m_ticks_->Increment(ticks_emitted);
  if (now >= tick) {
    // Catch-up cap hit with ticks still owed. The cursor stays in the past,
    // so CanFire/next_deadline keep this transition immediately eligible
    // and the remainder is emitted over subsequent firings — no epoch is
    // ever skipped, the burst is just paced.
    capped_firings_.fetch_add(1, std::memory_order_relaxed);
    m_capped_->Increment();
    m_backlog_->Set((now - tick) / interval_ + 1);
  } else {
    m_backlog_->Set(0);
  }
  return ticks_emitted > 0;
}

TransitionPtr MakeHeartbeat(const std::string& name, BasketPtr hb_basket,
                            const std::string& epoch_column, Micros start,
                            Micros interval) {
  // Find the epoch column position among the user fields.
  int idx = hb_basket->schema().FindField(epoch_column);
  DC_CHECK(idx >= 0) << "heartbeat basket lacks epoch column " << epoch_column;
  const size_t user_fields = hb_basket->schema().num_fields() -
                             (hb_basket->has_arrival_column() ? 1 : 0);
  auto row_factory = [idx, user_fields](Micros tick) {
    Row row(user_fields, Value::Null());
    row[static_cast<size_t>(idx)] = Value(tick);
    return row;
  };
  return std::make_shared<Metronome>(name, hb_basket, start, interval,
                                     row_factory);
}

}  // namespace datacell::core
