#include "core/factory.h"

#include <algorithm>

#include "util/logging.h"

namespace datacell::core {

namespace {

// Holds a canonically-ordered (ascending address) set of basket locks for
// the duration of a firing. The set is dynamic, which Clang Thread Safety
// Analysis cannot model, so acquisition/release are exempted; the debug
// lock-rank checker still validates the ascending-address discipline at
// runtime, and the body only reaches guarded state through the baskets'
// internally-synchronized public API.
class BasketLockSet {
 public:
  explicit BasketLockSet(const std::vector<Basket*>& sorted)
      DC_NO_THREAD_SAFETY_ANALYSIS : baskets_(sorted) {
    for (Basket* b : baskets_) b->Lock();
  }

  ~BasketLockSet() DC_NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = baskets_.rbegin(); it != baskets_.rend(); ++it) {
      (*it)->Unlock();
    }
  }

  BasketLockSet(const BasketLockSet&) = delete;
  BasketLockSet& operator=(const BasketLockSet&) = delete;

 private:
  const std::vector<Basket*>& baskets_;
};

}  // namespace

Factory& Factory::AddInput(BasketPtr basket, size_t min_tuples) {
  DC_CHECK(basket != nullptr);
  inputs_.push_back(std::move(basket));
  min_tuples_.push_back(std::max<size_t>(min_tuples, 1));
  return *this;
}

Factory& Factory::AddOutput(BasketPtr basket) {
  DC_CHECK(basket != nullptr);
  outputs_.push_back(std::move(basket));
  return *this;
}

bool Factory::CanFire(Micros) const {
  // Petri-net firing rule: every input place holds tokens (≥ its
  // batch/window threshold).
  if (inputs_.empty()) return false;
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i]->size() < min_tuples_[i]) return false;
  }
  return true;
}

Result<bool> Factory::Fire(Micros now) {
  // Lock every involved basket in a canonical (pointer) order so factories
  // sharing baskets cannot deadlock; recursive mutexes let the body keep
  // using the public Basket API underneath.
  std::vector<Basket*> involved;
  involved.reserve(inputs_.size() + outputs_.size());
  for (const BasketPtr& b : inputs_) involved.push_back(b.get());
  for (const BasketPtr& b : outputs_) involved.push_back(b.get());
  std::sort(involved.begin(), involved.end());
  involved.erase(std::unique(involved.begin(), involved.end()),
                 involved.end());
  BasketLockSet locks(involved);

  // Track movement for quiescence detection.
  auto total_size = [&]() {
    size_t s = 0;
    for (Basket* b : involved) s += b->size();
    return s;
  };
  const size_t before = total_size();
  const auto before_stats = [&]() {
    uint64_t c = 0;
    for (Basket* b : involved) c += b->stats().appended + b->stats().consumed;
    return c;
  }();

  SystemClock* wall = SystemClock::Get();
  const Micros t0 = wall->Now();
  FactoryContext ctx(now, &inputs_, &outputs_);
  RETURN_NOT_OK(body_(ctx));
  const Micros dt = wall->Now() - t0;

  firings_.fetch_add(1, std::memory_order_relaxed);
  last_exec_.store(dt, std::memory_order_relaxed);
  total_exec_.fetch_add(dt, std::memory_order_relaxed);

  const uint64_t after_stats = [&]() {
    uint64_t c = 0;
    for (Basket* b : involved) c += b->stats().appended + b->stats().consumed;
    return c;
  }();
  return total_size() != before || after_stats != before_stats;
}

}  // namespace datacell::core
