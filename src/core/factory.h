#ifndef DATACELL_CORE_FACTORY_H_
#define DATACELL_CORE_FACTORY_H_

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/basket.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::core {

/// Sentinel for Transition::next_deadline: the transition is not
/// time-driven.
inline constexpr Micros kNoDeadline = std::numeric_limits<Micros>::max();

/// A Petri-net transition (§4.1): receptors, emitters and factories all
/// implement this interface. Baskets are the token places; a transition may
/// fire when its firing condition over its input places holds, and firing
/// is atomic.
///
/// Transitions declare their place sets (input_places/output_places) so the
/// scheduler can see the dataflow graph instead of only the opaque CanFire
/// predicate: a basket signal wakes exactly the transitions reading from
/// it, and two transitions with disjoint place sets may fire in parallel.
class Transition {
 public:
  virtual ~Transition() = default;

  virtual const std::string& name() const = 0;

  /// True if the transition's inputs allow it to fire now.
  virtual bool CanFire(Micros now) const = 0;

  /// Executes one atomic firing. Returns true if it did useful work (moved
  /// or produced tuples); the scheduler uses this for quiescence detection.
  virtual Result<bool> Fire(Micros now) = 0;

  /// The places this transition consumes from. A transition with no
  /// declared input places is self-scheduled: the scheduler polls it (pull
  /// receptors) or waits on its next_deadline (metronomes) instead of
  /// waiting for a basket signal.
  virtual std::vector<BasketPtr> input_places() const { return {}; }

  /// The places this transition produces into (part of its conflict set:
  /// two transitions sharing any place never fire concurrently).
  virtual std::vector<BasketPtr> output_places() const { return {}; }

  /// Earliest time a time-driven transition may next fire, or kNoDeadline
  /// for purely data-driven/polled transitions. Must be cheap and
  /// thread-safe: the scheduler calls it without claiming the transition.
  virtual Micros next_deadline(Micros now) const {
    (void)now;
    return kNoDeadline;
  }
};

using TransitionPtr = std::shared_ptr<Transition>;

/// Per-firing execution context handed to a factory body.
class FactoryContext {
 public:
  FactoryContext(Micros now, std::vector<BasketPtr>* inputs,
                 std::vector<BasketPtr>* outputs)
      : now_(now), inputs_(inputs), outputs_(outputs) {}

  Micros now() const { return now_; }
  size_t num_inputs() const { return inputs_->size(); }
  size_t num_outputs() const { return outputs_->size(); }
  Basket& input(size_t i) const { return *(*inputs_)[i]; }
  Basket& output(size_t i) const { return *(*outputs_)[i]; }
  const BasketPtr& input_ptr(size_t i) const { return (*inputs_)[i]; }
  const BasketPtr& output_ptr(size_t i) const { return (*outputs_)[i]; }

  /// Evaluation context pre-loaded with now(); bodies may extend it.
  EvalContext eval() const {
    EvalContext ctx;
    ctx.now = now_;
    return ctx;
  }

 private:
  Micros now_;
  std::vector<BasketPtr>* inputs_;
  std::vector<BasketPtr>* outputs_;
};

/// A factory (§3.3): a continuous query — or a fragment of one — modelled
/// as a function whose execution state is saved between calls.
///
/// The C++ rendering of MAL factories: the body is a closure; any state it
/// captures (running aggregates, window bookkeeping) persists across
/// firings, which is exactly the "factory keeps its status around and
/// continues from where it stopped" semantics.
class Factory : public Transition {
 public:
  /// The body runs with all input and output baskets locked (in a global
  /// canonical order, so factories sharing baskets cannot deadlock).
  using Body = std::function<Status(FactoryContext&)>;

  struct Stats {
    uint64_t firings = 0;
    Micros total_exec = 0;  // cumulative body time
    Micros last_exec = 0;
  };

  Factory(std::string name, Body body)
      : name_(std::move(name)), body_(std::move(body)) {}

  /// Declares an input place. The factory can fire only when every input
  /// holds at least `min_tuples` tuples (batch-processing / tuple-window
  /// threshold, §4.1).
  Factory& AddInput(BasketPtr basket, size_t min_tuples = 1);
  Factory& AddOutput(BasketPtr basket);

  const std::string& name() const override { return name_; }
  bool CanFire(Micros now) const override;
  Result<bool> Fire(Micros now) override;
  std::vector<BasketPtr> input_places() const override { return inputs_; }
  std::vector<BasketPtr> output_places() const override { return outputs_; }

  size_t num_inputs() const { return inputs_.size(); }
  size_t num_outputs() const { return outputs_.size(); }
  const BasketPtr& input(size_t i) const { return inputs_[i]; }
  const BasketPtr& output(size_t i) const { return outputs_[i]; }

  /// Safe to call while a scheduler thread is firing the factory.
  Stats stats() const {
    Stats s;
    s.firings = firings_.load(std::memory_order_relaxed);
    s.total_exec = total_exec_.load(std::memory_order_relaxed);
    s.last_exec = last_exec_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  const std::string name_;
  Body body_;
  std::vector<BasketPtr> inputs_;
  std::vector<size_t> min_tuples_;
  std::vector<BasketPtr> outputs_;
  std::atomic<uint64_t> firings_{0};
  std::atomic<Micros> total_exec_{0};
  std::atomic<Micros> last_exec_{0};
};

using FactoryPtr = std::shared_ptr<Factory>;

}  // namespace datacell::core

#endif  // DATACELL_CORE_FACTORY_H_
