#ifndef DATACELL_CORE_RECEPTOR_H_
#define DATACELL_CORE_RECEPTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/basket.h"
#include "core/factory.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace datacell::storage {
class IngestLog;
}  // namespace datacell::storage

namespace datacell::core {

/// A receptor (§3.1): the adapter that picks up incoming events from a
/// communication channel, validates them, and forwards them into baskets.
///
/// Two usage modes:
///  * Push: an external thread (e.g. net::TcpReceptor's connection handler)
///    calls Deliver() directly.
///  * Pull: a `source` poll function is installed and the receptor behaves
///    as a scheduled Petri-net transition, firing whenever the source has
///    events (used by in-process workload generators).
///
/// A receptor with several output baskets replicates each incoming tuple to
/// all of them — the fan-out used by the separate-baskets strategy.
class Receptor : public Transition {
 public:
  /// Returns the next batch of tuples, std::nullopt when nothing is
  /// pending, or an error.
  using Source = std::function<Result<std::optional<Table>>()>;

  explicit Receptor(std::string name) : Receptor(std::move(name), nullptr) {}
  Receptor(std::string name, Source source);

  Receptor& AddOutput(BasketPtr basket) {
    outputs_.push_back(std::move(basket));
    return *this;
  }

  /// Pushes a batch of user tuples into all output baskets, stamping
  /// arrival time `now`. Returns the number of tuples accepted into the
  /// first basket (constraint drops apply per basket).
  Result<size_t> Deliver(const Table& tuples, Micros now);

  /// --- Credit-based backpressure ------------------------------------------
  /// Rows the most constrained capacity-bounded output can still take
  /// before its high watermark; SIZE_MAX when no output is bounded. A
  /// cooperating channel adapter (the gateway) delivers at most this many
  /// rows and stops reading its socket at zero.
  size_t CreditRemaining() const;
  /// True once every capacity-bounded output has drained to its low
  /// watermark — the hysteresis point where paused channels resume.
  bool BackpressureReleased() const;
  /// True if any output declares a capacity bound.
  bool HasCapacityBound() const;
  /// The channel adapter reports that it paused its channel on zero
  /// credit; each currently-full bounded output records a credit stall.
  void NoteCreditStall() const;

  const std::string& name() const override { return name_; }

  /// Pull mode only: fires by polling the source once.
  bool CanFire(Micros now) const override;
  Result<bool> Fire(Micros now) override;

  /// No input places: the source is outside the Petri net, so the
  /// scheduler polls pull receptors instead of waiting for a signal.
  std::vector<BasketPtr> output_places() const override { return outputs_; }

  const std::vector<BasketPtr>& outputs() const { return outputs_; }

 private:
  const std::string name_;
  Source source_;
  std::vector<BasketPtr> outputs_;
  obs::Counter* m_batches_;  // receptor.<name>.batches
  obs::Counter* m_tuples_;   // receptor.<name>.tuples
};

using ReceptorPtr = std::shared_ptr<Receptor>;

/// An emitter (§3.1): picks up result tuples from its input baskets and
/// delivers them to subscribed clients through a sink callback.
///
/// Delivery is at-least-once across transient sink failures: a batch whose
/// sink call fails is *staged* inside the emitter (not re-appended to the
/// basket, which would race with concurrent producers and break FIFO
/// order) and retried on the next firing before any new input is taken.
/// tuples_emitted() counts only batches the sink accepted.
class Emitter : public Transition {
 public:
  /// Receives each outgoing batch (full basket schema).
  using Sink = std::function<Status(const Table&)>;

  Emitter(std::string name, Sink sink);

  Emitter& AddInput(BasketPtr basket) {
    inputs_.push_back(std::move(basket));
    return *this;
  }

  /// Makes staging durable: a batch staged by a failed sink call is also
  /// appended to `log` under `stream` (normally the emitter's input basket
  /// name, so restart replay re-feeds the basket), and acked once the
  /// retry succeeds. A crash while a batch is staged then re-delivers it
  /// after restart instead of losing it. Call at wiring time; the log must
  /// outlive the emitter.
  void EnableDurableStaging(storage::IngestLog* log, std::string stream) {
    staging_log_ = log;
    staging_stream_ = std::move(stream);
  }

  const std::string& name() const override { return name_; }
  /// True when a staged batch awaits retry or any input holds tuples.
  bool CanFire(Micros now) const override;
  /// Retries the staged batch (if any), then takes everything from each
  /// non-empty input and hands it to the sink.
  Result<bool> Fire(Micros now) override;

  /// The sink is outside the Petri net, so only input places are declared.
  std::vector<BasketPtr> input_places() const override { return inputs_; }

  uint64_t tuples_emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Sink calls that failed (each leaves its batch staged for retry).
  uint64_t sink_errors() const {
    return sink_errors_.load(std::memory_order_relaxed);
  }
  /// Tuples currently staged awaiting a sink retry.
  uint64_t tuples_pending() const {
    return pending_rows_.load(std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  Sink sink_;
  std::vector<BasketPtr> inputs_;
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> sink_errors_{0};
  // Staged batch from a failed sink call. Only Fire touches pending_ (the
  // scheduler never fires one transition concurrently); the row count is
  // mirrored atomically for cross-thread CanFire/tuples_pending reads.
  Table pending_;
  std::atomic<uint64_t> pending_rows_{0};
  // Durable staging (optional): the log the staged batch was appended to,
  // the stream it was logged under, and the last sequence number to ack
  // once the retry succeeds (0 = nothing logged).
  storage::IngestLog* staging_log_ = nullptr;
  std::string staging_stream_;
  uint64_t staged_last_seq_ = 0;
  obs::Counter* m_tuples_;       // emitter.<name>.tuples
  obs::Counter* m_sink_errors_;  // emitter.<name>.sink_errors
};

using EmitterPtr = std::shared_ptr<Emitter>;

}  // namespace datacell::core

#endif  // DATACELL_CORE_RECEPTOR_H_
