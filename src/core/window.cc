#include "core/window.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace datacell::core {

Result<Schema> TumblingWindowOutputSchema(const Schema& input_schema,
                                          const TumblingWindowSpec& spec) {
  // Derive group/aggregate output types by aggregating an empty table.
  Table empty(input_schema);
  EvalContext ctx;
  ASSIGN_OR_RETURN(Table proto,
                   ops::Aggregate(empty, spec.group_by, spec.aggregates, ctx));
  Schema out;
  RETURN_NOT_OK(out.AddField({"window_start", DataType::kTimestamp}));
  RETURN_NOT_OK(out.AddField({"window_end", DataType::kTimestamp}));
  for (const Field& f : proto.schema().fields()) {
    RETURN_NOT_OK(out.AddField(f));
  }
  return out;
}

Result<FactoryPtr> MakeTumblingWindowFactory(const std::string& name,
                                             BasketPtr input, BasketPtr output,
                                             TumblingWindowSpec spec,
                                             BasketPtr tick) {
  if (input == nullptr || output == nullptr) {
    return Status::InvalidArgument("window factory needs input and output");
  }
  if (!input->has_arrival_column()) {
    return Status::InvalidArgument(
        "time windows require the basket's arrival column");
  }
  if (spec.window_length <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  ASSIGN_OR_RETURN(Schema expected,
                   TumblingWindowOutputSchema(input->schema(), spec));
  if (!(output->schema() == expected)) {
    return Status::TypeMismatch("window output basket schema must be " +
                                expected.ToString());
  }
  ASSIGN_OR_RETURN(size_t arrival_idx,
                   Table(input->schema()).ColumnIndex(kArrivalColumn));

  auto shared_spec = std::make_shared<TumblingWindowSpec>(std::move(spec));
  auto body = [input, output, shared_spec, tick,
               arrival_idx](FactoryContext& ctx) -> Status {
    if (tick != nullptr) tick->Clear();
    const Micros len = shared_spec->window_length;
    // Windows [k*len, (k+1)*len) with (k+1)*len <= now are closed.
    const Micros closed_end = (ctx.now() / len) * len;
    if (closed_end <= 0) return Status::OK();

    // Zero-copy snapshot; the aggregation below runs without the basket
    // lock so producers keep appending concurrently. The scheduler's
    // place-set conflict rule makes this factory the only consumer of
    // `input` while it fires, and appends only add rows *past* the
    // snapshot, so the `consumed` row indices collected here are still
    // valid for the erase at the end. Since tuples arrive in time order
    // that selection is normally the prefix {0..k-1}, which EraseRows
    // routes through the O(1) head advance.
    Table data = input->Peek();
    const auto arrival = data.column(arrival_idx).ints();
    // Bucket closed-window rows by window id.
    std::map<Micros, SelVector> windows;
    SelVector consumed;
    for (uint32_t r = 0; r < data.num_rows(); ++r) {
      if (arrival[r] < closed_end) {
        windows[arrival[r] / len].push_back(r);
        consumed.push_back(r);
      }
    }
    if (windows.empty()) return Status::OK();

    EvalContext ectx = ctx.eval();
    for (const auto& [window_id, rows] : windows) {
      Table subset = data.Take(rows);
      ASSIGN_OR_RETURN(Table agg,
                       ops::Aggregate(subset, shared_spec->group_by,
                                      shared_spec->aggregates, ectx));
      Table out_rows(output->schema());
      const Micros start = window_id * len;
      for (size_t r = 0; r < agg.num_rows(); ++r) {
        Row row;
        row.reserve(2 + agg.num_columns());
        row.push_back(Value(start));
        row.push_back(Value(start + len));
        Row agg_row = agg.GetRow(r);
        row.insert(row.end(), agg_row.begin(), agg_row.end());
        RETURN_NOT_OK(out_rows.AppendRow(row));
      }
      ASSIGN_OR_RETURN(size_t n, output->AppendAligned(out_rows, ctx.now()));
      (void)n;
    }
    // Evict everything that belonged to a closed window.
    return input->EraseRows(consumed);
  };

  auto factory = std::make_shared<Factory>(name, std::move(body));
  factory->AddInput(input, 1);
  if (tick != nullptr) factory->AddInput(tick, 1);
  factory->AddOutput(output);
  return factory;
}

}  // namespace datacell::core
