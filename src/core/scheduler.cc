#include "core/scheduler.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace datacell::core {

namespace {
// Poll cadence for self-scheduled transitions with no deadline (pull
// receptors), matching the seed scheduler's idle park.
constexpr Micros kPollIntervalMicros = 100;
// Upper bound on any idle wait: the fallback-sweep cadence that re-checks
// every transition the classic way, catching eligibility changes that
// bypassed the basket signal path (e.g. a clock advance gating a factory
// body).
constexpr Micros kIdleWaitMicros = 10'000;
constexpr Micros kMinParkMicros = 20;
}  // namespace

Scheduler::Scheduler(Clock* clock, size_t num_workers)
    : clock_(clock), num_workers_(std::max<size_t>(num_workers, 1)) {}

Scheduler::~Scheduler() {
  Stop();
  // Teardown is single-threaded once Stop() has joined the workers, so
  // nodes_ needs no lock here (and the analysis skips destructors anyway).
  for (const auto& node : nodes_) {
    for (const auto& [basket, id] : node->subscriptions) {
      basket->RemoveListener(id);
    }
  }
}

void Scheduler::Register(TransitionPtr transition) {
  auto node = std::make_shared<Node>();
  node->t = std::move(transition);
  const std::vector<BasketPtr> inputs = node->t->input_places();
  const std::vector<BasketPtr> outputs = node->t->output_places();
  node->data_driven = !inputs.empty();
  node->in_places = inputs;
  node->out_places = outputs;
  if (!inputs.empty()) node->trigger = inputs.front()->name();
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const std::string prefix = "transition." + node->t->name() + ".";
    node->firings_metric = reg.GetCounter(prefix + "firings");
    node->fire_hist = reg.GetHistogram(prefix + "fire_us");
    node->rows_in_metric = reg.GetCounter(prefix + "rows_in");
    node->rows_out_metric = reg.GetCounter(prefix + "rows_out");
    node->morsels_metric = reg.GetCounter(prefix + "morsels");
    node->morsel_hist = reg.GetHistogram(prefix + "morsel_us");
  }
  node->places.reserve(inputs.size() + outputs.size());
  for (const BasketPtr& b : inputs) node->places.push_back(b.get());
  for (const BasketPtr& b : outputs) node->places.push_back(b.get());
  std::sort(node->places.begin(), node->places.end());
  node->places.erase(std::unique(node->places.begin(), node->places.end()),
                     node->places.end());

  Node* raw = node.get();
  {
    MutexLock lock(&mu_);
    raw->index = nodes_.size();
    nodes_.push_back(std::move(node));
  }
  // Subscribe outside mu_: AddListener takes the basket lock and the
  // listener itself takes mu_, so subscribing under mu_ would invert the
  // basket-then-scheduler lock order used on the signal path.
  std::unordered_set<Basket*> seen;
  for (const BasketPtr& b : inputs) {
    if (!seen.insert(b.get()).second) continue;
    const size_t id = b->AddListener([this, raw] { OnPlaceSignal(raw); });
    raw->subscriptions.emplace_back(b, id);
  }
  // A new transition starts ready: its places may already hold tokens.
  OnPlaceSignal(raw);
}

Status Scheduler::Unregister(const TransitionPtr& transition) {
  std::shared_ptr<Node> node;
  {
    MutexLock lock(&mu_);
    for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
      if ((*it)->t == transition) {
        node = *it;
        nodes_.erase(it);
        break;
      }
    }
    if (node == nullptr) {
      return Status::NotFound("transition '" + transition->name() +
                              "' is not registered");
    }
    node->removed = true;  // EnqueueLocked ignores it from here on
    node->queued = false;
    for (auto it = ready_.begin(); it != ready_.end();) {
      it = (*it == node.get()) ? ready_.erase(it) : it + 1;
    }
  }
  // Unsubscribe outside mu_, mirroring Register: RemoveListener takes the
  // basket lock, and the signal path holds basket-then-scheduler. After
  // this returns no listener can re-signal the node (Touch invokes
  // listeners under the basket lock RemoveListener just held).
  for (const auto& [basket, id] : node->subscriptions) {
    basket->RemoveListener(id);
  }
  node->subscriptions.clear();
  {
    // Threaded mode: a worker may have claimed the node before we marked
    // it removed; wait for that firing to finish so the caller can safely
    // tear down whatever the body touches.
    MutexLock lock(&mu_);
    while (node->firing) cv_.Wait(&mu_);
  }
  return Status::OK();
}

void Scheduler::OnPlaceSignal(Node* node) {
  MutexLock lock(&mu_);
  EnqueueLocked(node);
}

void Scheduler::EnqueueLocked(Node* node) {
  if (node->removed) return;
  node->park_until = 0;
  if (node->queued) return;
  node->queued = true;
  ready_.push_back(node);
  cv_.NotifyOne();
}

bool Scheduler::ConflictsLocked(const Node& node) const {
  if (node.firing) return true;
  for (Basket* b : node.places) {
    if (firing_places_.count(b) > 0) return true;
  }
  return false;
}

size_t Scheduler::num_transitions() const {
  MutexLock lock(&mu_);
  return nodes_.size();
}

bool Scheduler::Idle() const {
  MutexLock lock(&mu_);
  if (!ready_.empty()) return false;
  for (const auto& n : nodes_) {
    if (n->firing) return false;
  }
  return true;
}

Status Scheduler::set_num_workers(size_t n) {
  if (n == 0) return Status::InvalidArgument("worker count must be >= 1");
  MutexLock lock(&mu_);
  if (!running_.load() || stop_requested_.load()) {
    // Stopped (or stopping: Stop() has already moved workers_ out for the
    // join, so spawning here would leak a joinable thread). Next Start()
    // picks up the new size.
    num_workers_ = n;
    return Status::OK();
  }
  if (n > num_workers_) {
    const size_t grow = n - num_workers_;
    // Recall pending retirements first: a retiree that has not yet reached
    // the top of its loop can simply keep working.
    const size_t recalled = std::min(retiring_, grow);
    retiring_ -= recalled;
    for (size_t i = 0; i < grow - recalled; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } else if (n < num_workers_) {
    retiring_ += num_workers_ - n;
    cv_.NotifyAll();  // wake parked workers so retirees exit promptly
  }
  num_workers_ = n;
  return Status::OK();
}

size_t Scheduler::num_workers() const {
  MutexLock lock(&mu_);
  return num_workers_;
}

Status Scheduler::last_error() const {
  MutexLock lock(&mu_);
  return error_;
}

namespace {

// Token movement observed around one firing: input places count consumed
// tuples, output places count appended. Relaxed reads; concurrent firings
// on disjoint places cannot touch these baskets (the conflict rule), so
// the deltas attribute cleanly to this firing.
uint64_t SumConsumed(const std::vector<BasketPtr>& baskets) {
  uint64_t total = 0;
  for (const BasketPtr& b : baskets) total += b->stats().consumed;
  return total;
}

uint64_t SumAppended(const std::vector<BasketPtr>& baskets) {
  uint64_t total = 0;
  for (const BasketPtr& b : baskets) total += b->stats().appended;
  return total;
}

}  // namespace

Result<bool> Scheduler::FireIfEligible(Node* node, bool* fired) {
  *fired = false;
  const Micros now = clock_->Now();
  if (!node->t->CanFire(now)) return false;
  *fired = true;
  // The always-on cost per firing: two wall-clock reads, a relaxed-atomic
  // scan of the place stats, up to four counter increments and one
  // histogram record. The row deltas used to be trace-only; they are now
  // unconditional because the cost-based optimizer reads per-transition
  // rows_in/rows_out as its live selectivity feed.
  obs::TraceLog& trace = obs::TraceLog::Global();
  const bool tracing = trace.enabled();
  const uint64_t in_before = SumConsumed(node->in_places);
  const uint64_t out_before = SumAppended(node->out_places);
  SystemClock* wall = SystemClock::Get();
  const Micros fire_start = wall->Now();
  Result<bool> worked = node->t->Fire(clock_->Now());
  const Micros duration = wall->Now() - fire_start;
  const uint64_t rows_in = SumConsumed(node->in_places) - in_before;
  const uint64_t rows_out = SumAppended(node->out_places) - out_before;
  node->firings_metric->Increment();
  node->fire_hist->Record(duration);
  if (rows_in > 0) node->rows_in_metric->Increment(rows_in);
  if (rows_out > 0) node->rows_out_metric->Increment(rows_out);
  if (tracing) {
    obs::TraceEvent e;
    e.at = now;
    e.transition = node->t->name();
    e.trigger = node->trigger;
    e.rows_in = rows_in;
    e.rows_out = rows_out;
    e.duration_us = duration;
    trace.Record(std::move(e));
  }
  return worked;
}

std::vector<Scheduler::TransitionStats> Scheduler::TransitionStatsSnapshot()
    const {
  std::vector<TransitionStats> out;
  MutexLock lock(&mu_);
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    TransitionStats ts;
    ts.name = node->t->name();
    ts.firings = node->firings_metric->value();
    ts.rows_in = node->rows_in_metric->value();
    ts.rows_out = node->rows_out_metric->value();
    ts.latency = node->fire_hist->Snapshot();
    ts.morsels = node->morsels_metric->value();
    ts.morsel_latency = node->morsel_hist->Snapshot();
    out.push_back(std::move(ts));
  }
  return out;
}

Result<bool> Scheduler::RunOnce() {
  // Drain the ready set in registration order. Self-scheduled transitions
  // (no input places: pull receptors, metronomes) never receive basket
  // signals, so they join every round — exactly the seed poll loop's view
  // of them.
  // The round/sweep vectors hold shared_ptr copies: firing happens with
  // mu_ released, and a concurrent Unregister may unlink a node while this
  // round still references it (the removed flag keeps it from re-queueing).
  std::vector<std::shared_ptr<Node>> round;
  uint64_t serial;
  {
    MutexLock lock(&mu_);
    serial = ++round_serial_;
    round.reserve(nodes_.size());
    for (const auto& n : nodes_) {
      if (n->queued || !n->data_driven) {
        n->queued = false;
        round.push_back(n);
      }
    }
    ready_.clear();
  }
  // Firing happens outside mu_ so Register from another thread never blocks
  // behind a long factory body.
  bool any_work = false;
  for (const auto& n : round) {
    bool fired = false;
    ASSIGN_OR_RETURN(bool worked, FireIfEligible(n.get(), &fired));
    if (fired) n->fired_in_round = serial;
    any_work = any_work || worked;
  }
  if (any_work) return true;

  // Safety sweep: the ready set produced no work, so fall back to the
  // classic full scan before declaring the round idle. This keeps the
  // seed's exact quiescence semantics even for eligibility changes that
  // bypass basket signals (e.g. clock advances gating a factory body).
  std::vector<std::shared_ptr<Node>> sweep;
  {
    MutexLock lock(&mu_);
    sweep.reserve(nodes_.size());
    for (const auto& n : nodes_) {
      if (n->fired_in_round != serial) sweep.push_back(n);
    }
  }
  for (const auto& n : sweep) {
    bool fired = false;
    ASSIGN_OR_RETURN(bool worked, FireIfEligible(n.get(), &fired));
    any_work = any_work || worked;
  }
  return any_work;
}

Result<size_t> Scheduler::RunUntilQuiescent(size_t max_rounds) {
  size_t rounds = 0;
  while (rounds < max_rounds) {
    ASSIGN_OR_RETURN(bool worked, RunOnce());
    if (!worked) break;
    ++rounds;
  }
  return rounds;
}

// Forwards kernel RunMorsels calls issued inside a firing body into the
// scheduler's worker pool. parallelism() reports the worker count
// snapshotted when the firing was claimed, so a concurrent resize never
// changes a firing's dispatch decision mid-flight.
class Scheduler::FiringMorselExecutor : public ops::MorselExecutor {
 public:
  FiringMorselExecutor(Scheduler* scheduler, Node* node, size_t parallelism)
      : scheduler_(scheduler), node_(node), parallelism_(parallelism) {}

  Status Run(size_t n, size_t morsel_rows, const ops::MorselFn& fn) override {
    MorselGroup group;
    group.fn = &fn;
    group.n = n;
    group.morsel_rows = morsel_rows;
    group.num_morsels = ops::NumMorsels(n, morsel_rows);
    group.morsels_metric = node_->morsels_metric;
    group.morsel_hist = node_->morsel_hist;
    return scheduler_->RunMorselGroup(&group);
  }

  size_t parallelism() const override { return parallelism_; }

 private:
  Scheduler* scheduler_;
  Node* node_;
  size_t parallelism_;
};

bool Scheduler::HasClaimableMorselLocked() const {
  for (const MorselGroup* g : morsel_groups_) {
    if (g->next < g->num_morsels) return true;
  }
  return false;
}

void Scheduler::DrainPendingMorsels() {
  MutexLock lock(&mu_);
  for (;;) {
    MorselGroup* g = nullptr;
    for (MorselGroup* cand : morsel_groups_) {
      if (cand->next < cand->num_morsels) {
        g = cand;
        break;
      }
    }
    if (g == nullptr) return;
    const size_t m = g->next++;
    const size_t begin = m * g->morsel_rows;
    const size_t end = std::min(begin + g->morsel_rows, g->n);
    const ops::MorselFn* fn = g->fn;
    const bool skip = !g->error.ok();  // claim-and-skip after first error
    lock.Unlock();
    // The group outlives every claim: RunMorselGroup returns only once
    // done == num_morsels, so fn and the metric pointers stay valid here.
    Status st = Status::OK();
    SystemClock* wall = SystemClock::Get();
    const Micros start = wall->Now();
    if (!skip) {
      // Morsel bodies must not re-enter the pool: a nested RunMorsels
      // inside a morsel runs inline on the same grid.
      ops::ScopedMorselExecutor inline_only(nullptr);
      st = (*fn)(m, begin, end);
    }
    const Micros duration = wall->Now() - start;
    if (g->morsels_metric != nullptr) g->morsels_metric->Increment();
    if (g->morsel_hist != nullptr) g->morsel_hist->Record(duration);
    lock.Lock();
    if (!st.ok() && g->error.ok()) g->error = st;
    // The finisher of the last morsel wakes the submitter (and anyone
    // parked in Unregister; spurious wakes are harmless).
    if (++g->done == g->num_morsels) cv_.NotifyAll();
  }
}

Status Scheduler::RunMorselGroup(MorselGroup* group) {
  if (group->num_morsels == 0) return Status::OK();
  {
    MutexLock lock(&mu_);
    morsel_groups_.push_back(group);
    cv_.NotifyAll();  // wake idle workers to steal
  }
  DrainPendingMorsels();  // the submitter always participates
  MutexLock lock(&mu_);
  while (group->done < group->num_morsels) cv_.Wait(&mu_);
  for (auto it = morsel_groups_.begin(); it != morsel_groups_.end(); ++it) {
    if (*it == group) {
      morsel_groups_.erase(it);
      break;
    }
  }
  return group->error;
}

Status Scheduler::Start() {
  MutexLock lock(&mu_);
  if (running_.load()) return Status::Internal("scheduler already running");
  stop_requested_.store(false);
  error_ = Status::OK();
  retiring_ = 0;
  running_.store(true);
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Scheduler::Stop() {
  // Move the worker threads out under the lock, join them without it:
  // workers take mu_ on every iteration, so joining under mu_ would
  // deadlock.
  std::vector<std::thread> workers;
  {
    MutexLock lock(&mu_);
    stop_requested_.store(true);
    workers = std::move(workers_);
    workers_.clear();
  }
  cv_.NotifyAll();
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
  running_.store(false);
}

void Scheduler::WorkerLoop() {
  MutexLock lock(&mu_);
  while (!stop_requested_.load()) {
    if (retiring_ > 0) {
      // A live shrink asked for fewer workers: exit at a loop boundary
      // (never mid-firing or mid-morsel). Stop() joins the thread.
      --retiring_;
      return;
    }
    // Intra-firing parallelism: help finish in-flight morsel batches
    // before claiming a new transition.
    if (HasClaimableMorselLocked()) {
      lock.Unlock();
      DrainPendingMorsels();
      lock.Lock();
      continue;
    }
    // Claim the oldest ready transition whose place set is disjoint from
    // everything currently firing. No basket is touched under mu_.
    Node* claimed = nullptr;
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
      if (!ConflictsLocked(**it)) {
        claimed = *it;
        ready_.erase(it);
        break;
      }
    }
    if (claimed != nullptr) {
      claimed->queued = false;
      claimed->firing = true;
      for (Basket* b : claimed->places) firing_places_.insert(b);
      const size_t pool_size = num_workers_;  // per-firing snapshot
      lock.Unlock();

      bool fired = false;
      Result<bool> worked = false;
      {
        // Kernels inside the firing body split large spans into morsels
        // and dispatch them to the pool — but only when a second worker
        // could actually steal them; alone, they run inline on the same
        // grid (byte-identical results either way, see DESIGN.md §12).
        FiringMorselExecutor executor(this, claimed, pool_size);
        ops::ScopedMorselExecutor scoped(pool_size > 1 ? &executor : nullptr);
        worked = FireIfEligible(claimed, &fired);
      }
      const Micros done_at = clock_->Now();

      lock.Lock();
      claimed->firing = false;
      // Unregister blocks on `firing` with an untimed wait; if the node was
      // unlinked while we fired, that waiter is the only party interested
      // in this transition and must be woken explicitly.
      if (claimed->removed) cv_.NotifyAll();
      for (Basket* b : claimed->places) firing_places_.erase(b);
      if (!worked.ok()) {
        DC_LOG(Error) << "scheduler worker stopping on error: "
                      << worked.status().ToString();
        if (error_.ok()) error_ = worked.status();
        stop_requested_.store(true);
        running_.store(false);
        cv_.NotifyAll();
        break;
      }
      if (fired && *worked) {
        // It produced: it may be able to fire again. Data-driven nodes
        // usually re-signal themselves by consuming input, but pollers
        // (no input places) only come back through here.
        EnqueueLocked(claimed);
      } else if (!claimed->data_driven && fired) {
        // Dry poll: back off instead of spinning on the source.
        claimed->park_until = done_at + kPollIntervalMicros;
      }
      // A completed firing may unblock conflicting ready transitions.
      if (!ready_.empty()) cv_.NotifyAll();
      continue;
    }

    if (!ready_.empty()) {
      // Everything ready conflicts with an in-flight firing; its
      // completion will notify.
      cv_.Wait(&mu_);
      continue;
    }

    // Idle: poll self-scheduled transitions and compute the wait bound.
    // Scan vectors hold shared_ptr copies: the scan runs with mu_ released
    // and a concurrent Unregister may unlink a node mid-scan (EnqueueLocked
    // drops removed nodes on relock, so a stale hit is harmless).
    std::vector<std::pair<std::shared_ptr<Node>, Micros>> self;
    for (const auto& n : nodes_) {
      if (!n->data_driven && !n->queued && !n->firing) {
        self.emplace_back(n, n->park_until);
      }
    }
    lock.Unlock();
    const Micros now = clock_->Now();
    Micros wait = kIdleWaitMicros;
    std::vector<std::shared_ptr<Node>> due;
    for (const auto& [n, park_until] : self) {
      const Micros dl = n->t->next_deadline(now);
      if (dl == kNoDeadline) {
        if (now >= park_until) {
          if (n->t->CanFire(now)) due.push_back(n);
        } else {
          wait = std::min(wait, park_until - now);
        }
      } else if (dl <= now) {
        due.push_back(n);
      } else {
        wait = std::min(wait, dl - now);
      }
    }
    lock.Lock();
    if (stop_requested_.load()) break;
    if (!due.empty()) {
      for (const auto& n : due) EnqueueLocked(n.get());
      continue;
    }
    if (!ready_.empty()) continue;  // a signal arrived while we scanned
    const bool notified =
        cv_.WaitFor(&mu_, std::clamp(wait, kMinParkMicros, kIdleWaitMicros));
    if (stop_requested_.load()) break;
    if (!ready_.empty() || notified) continue;

    // Fallback sweep (see kIdleWaitMicros): re-check data-driven
    // transitions that might have become eligible without a signal.
    std::vector<std::shared_ptr<Node>> sweep;
    for (const auto& n : nodes_) {
      if (n->data_driven && !n->queued && !n->firing) sweep.push_back(n);
    }
    lock.Unlock();
    const Micros snow = clock_->Now();
    std::vector<std::shared_ptr<Node>> hits;
    for (const auto& n : sweep) {
      if (n->t->CanFire(snow)) hits.push_back(n);
    }
    lock.Lock();
    for (const auto& n : hits) EnqueueLocked(n.get());
  }
}

}  // namespace datacell::core
