#include "core/scheduler.h"

#include "util/logging.h"

namespace datacell::core {

Scheduler::~Scheduler() { Stop(); }

void Scheduler::Register(TransitionPtr transition) {
  std::lock_guard<std::mutex> lock(mu_);
  transitions_.push_back(std::move(transition));
}

size_t Scheduler::num_transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_.size();
}

Result<bool> Scheduler::RunOnce() {
  // Snapshot under the lock; firing happens outside it so transitions can
  // be registered concurrently.
  std::vector<TransitionPtr> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = transitions_;
  }
  bool any_work = false;
  const Micros now = clock_->Now();
  for (const TransitionPtr& t : snapshot) {
    if (!t->CanFire(now)) continue;
    ASSIGN_OR_RETURN(bool worked, t->Fire(clock_->Now()));
    any_work = any_work || worked;
  }
  return any_work;
}

Result<size_t> Scheduler::RunUntilQuiescent(size_t max_rounds) {
  size_t rounds = 0;
  while (rounds < max_rounds) {
    ASSIGN_OR_RETURN(bool worked, RunOnce());
    if (!worked) break;
    ++rounds;
  }
  return rounds;
}

Status Scheduler::Start() {
  if (running_.load()) return Status::Internal("scheduler already running");
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { ThreadLoop(); });
  return Status::OK();
}

void Scheduler::Stop() {
  // Join unconditionally: the loop may already have exited on an error
  // (running_ false) while the thread object is still joinable.
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void Scheduler::ThreadLoop() {
  while (!stop_requested_.load()) {
    Result<bool> worked = RunOnce();
    if (!worked.ok()) {
      DC_LOG(Error) << "scheduler stopping on error: "
                    << worked.status().ToString();
      break;
    }
    if (!*worked) {
      // Nothing fired this round; park briefly instead of spinning.
      SystemClock::Get()->SleepFor(100);  // 0.1 ms
    }
  }
  running_.store(false);
}

}  // namespace datacell::core
