#include "core/basket.h"

#include "util/logging.h"

namespace datacell::core {

Basket::Basket(std::string name, const Schema& schema, bool add_arrival_ts)
    : name_(std::move(name)), schema_(schema), data_() {
  if (add_arrival_ts && schema_.FindField(kArrivalColumn) < 0) {
    Status st = schema_.AddField({kArrivalColumn, DataType::kTimestamp});
    DC_CHECK(st.ok());
    has_arrival_ = true;
  } else {
    has_arrival_ = schema_.FindField(kArrivalColumn) >= 0;
  }
  user_schema_ = Schema(std::vector<Field>(
      schema_.fields().begin(),
      schema_.fields().end() - (has_arrival_ ? 1 : 0)));
  data_ = Table(schema_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const std::string prefix = "basket." + name_ + ".";
  m_appended_ = reg.GetCounter(prefix + "appended");
  m_dropped_ = reg.GetCounter(prefix + "dropped");
  m_consumed_ = reg.GetCounter(prefix + "consumed");
  m_credit_stalls_ = reg.GetCounter(prefix + "credit_stalls");
  m_rows_ = reg.GetGauge(prefix + "rows");
}

void Basket::SetCapacity(size_t high_watermark, size_t low_watermark) {
  if (high_watermark == 0) {
    capacity_.store(0, std::memory_order_relaxed);
    low_watermark_.store(0, std::memory_order_relaxed);
    return;
  }
  if (low_watermark == 0) low_watermark = high_watermark / 2;
  low_watermark = std::min(low_watermark, high_watermark);
  capacity_.store(high_watermark, std::memory_order_relaxed);
  low_watermark_.store(low_watermark, std::memory_order_relaxed);
}

size_t Basket::CreditRemaining() const {
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return SIZE_MAX;
  const size_t n = size();
  return n >= cap ? 0 : cap - n;
}

bool Basket::Drained() const {
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return true;
  return size() <= low_watermark_.load(std::memory_order_relaxed);
}

void Basket::AddConstraint(ExprPtr predicate) {
  RecursiveMutexLock lock(&mu_);
  constraints_.push_back(std::move(predicate));
}

size_t Basket::AddListener(Listener listener) {
  RecursiveMutexLock lock(&mu_);
  const size_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Basket::RemoveListener(size_t id) {
  RecursiveMutexLock lock(&mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

void Basket::Touch() {
  const size_t rows = data_.num_rows();
  num_rows_.store(rows, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_acq_rel);
  if (obs::MetricsRegistry::enabled()) {
    m_rows_->Set(static_cast<int64_t>(rows));
  }
  for (const auto& [id, fn] : listeners_) fn();
}

void Basket::UpdatePeak() {
  // Caller holds mu_, so appends are serialized and a plain max-store is
  // race-free against concurrent stats() readers.
  const uint64_t rows = data_.num_rows();
  if (rows > peak_rows_.load(std::memory_order_relaxed)) {
    peak_rows_.store(rows, std::memory_order_relaxed);
  }
}

Result<SelVector> Basket::ApplyConstraints(const Table& tuples) const {
  SelVector sel(tuples.num_rows());
  for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<uint32_t>(i);
  EvalContext ctx;
  for (const ExprPtr& c : constraints_) {
    ASSIGN_OR_RETURN(sel, EvalPredicateOn(tuples, *c, sel, ctx));
  }
  return sel;
}

Result<size_t> Basket::Append(const Table& tuples, Micros now) {
  if (!enabled_.load()) {
    CountDropped(tuples.num_rows());
    return size_t{0};
  }
  // Widen to the full schema by stamping the arrival column. Arity checks
  // go through the immutable schema_, not data_, which another thread may
  // be consuming (data_ is only touched under mu_).
  if (!has_arrival_) return AppendAligned(tuples, now);
  if (tuples.num_columns() + 1 != schema_.num_fields()) {
    return Status::TypeMismatch("basket '" + name_ + "' expects " +
                                std::to_string(schema_.num_fields() - 1) +
                                " user columns, got " +
                                std::to_string(tuples.num_columns()));
  }
  Table widened(schema_);
  for (size_t c = 0; c < tuples.num_columns(); ++c) {
    RETURN_NOT_OK(widened.column(c).AppendColumn(tuples.column(c)));
  }
  Column& ts = widened.column(widened.num_columns() - 1);
  for (size_t i = 0; i < tuples.num_rows(); ++i) ts.AppendInt(now);
  return AppendAligned(widened, now);
}

Result<size_t> Basket::AppendAligned(const Table& tuples, Micros now) {
  (void)now;
  if (!enabled_.load()) {
    CountDropped(tuples.num_rows());
    return size_t{0};
  }
  if (tuples.num_columns() != schema_.num_fields()) {
    return Status::TypeMismatch("aligned append arity mismatch on basket '" +
                                name_ + "'");
  }
  RecursiveMutexLock lock(&mu_);
  if (constraints_.empty()) {
    RETURN_NOT_OK(data_.AppendTable(tuples));
    CountAppended(tuples.num_rows());
    UpdatePeak();
    if (tuples.num_rows() > 0) Touch();
    return tuples.num_rows();
  }
  ASSIGN_OR_RETURN(SelVector keep, ApplyConstraints(tuples));
  RETURN_NOT_OK(data_.AppendTableRows(tuples, keep));
  CountAppended(keep.size());
  CountDropped(tuples.num_rows() - keep.size());
  UpdatePeak();
  if (!keep.empty()) Touch();
  return keep.size();
}

Status Basket::AppendRow(const Row& row, Micros now) {
  Table t(user_schema_);
  RETURN_NOT_OK(t.AppendRow(row));
  ASSIGN_OR_RETURN(size_t n, Append(t, now));
  (void)n;
  return Status::OK();
}

Table Basket::Peek() const {
  RecursiveMutexLock lock(&mu_);
  return data_;
}

Table Basket::PeekRows(const SelVector& sel) const {
  RecursiveMutexLock lock(&mu_);
  return data_.Take(sel);
}

Table Basket::TakeAll() {
  RecursiveMutexLock lock(&mu_);
  Table out = std::move(data_);
  data_ = Table(schema_);
  CountConsumed(out.num_rows());
  if (out.num_rows() > 0) Touch();
  return out;
}

Result<Table> Basket::TakeRows(const SelVector& sorted_sel) {
  RecursiveMutexLock lock(&mu_);
  Table out = data_.Take(sorted_sel);
  RETURN_NOT_OK(data_.EraseRows(sorted_sel));
  CountConsumed(sorted_sel.size());
  if (!sorted_sel.empty()) Touch();
  return out;
}

Status Basket::EraseRows(const SelVector& sorted_sel) {
  RecursiveMutexLock lock(&mu_);
  RETURN_NOT_OK(data_.EraseRows(sorted_sel));
  CountConsumed(sorted_sel.size());
  if (!sorted_sel.empty()) Touch();
  return Status::OK();
}

Status Basket::ErasePrefix(size_t n) {
  RecursiveMutexLock lock(&mu_);
  n = std::min(n, data_.num_rows());
  if (n == 0) return Status::OK();
  RETURN_NOT_OK(data_.ErasePrefix(n));
  CountConsumed(n);
  Touch();
  return Status::OK();
}

void Basket::Clear() {
  RecursiveMutexLock lock(&mu_);
  const size_t n = data_.num_rows();
  CountConsumed(n);
  data_.Clear();
  if (n > 0) Touch();
}

Basket::Stats Basket::stats() const {
  Stats s;
  s.appended = appended_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.peak_rows = peak_rows_.load(std::memory_order_relaxed);
  s.credit_stalls = credit_stalls_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace datacell::core
