#include "core/basket.h"

#include <cstring>

#include "storage/chunk.h"
#include "storage/pager.h"
#include "util/logging.h"

namespace datacell::core {

Basket::Basket(std::string name, const Schema& schema, bool add_arrival_ts)
    : name_(std::move(name)), schema_(schema), data_() {
  if (add_arrival_ts && schema_.FindField(kArrivalColumn) < 0) {
    Status st = schema_.AddField({kArrivalColumn, DataType::kTimestamp});
    DC_CHECK(st.ok());
    has_arrival_ = true;
  } else {
    has_arrival_ = schema_.FindField(kArrivalColumn) >= 0;
  }
  user_schema_ = Schema(std::vector<Field>(
      schema_.fields().begin(),
      schema_.fields().end() - (has_arrival_ ? 1 : 0)));
  data_ = Table(schema_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const std::string prefix = "basket." + name_ + ".";
  m_appended_ = reg.GetCounter(prefix + "appended");
  m_dropped_ = reg.GetCounter(prefix + "dropped");
  m_consumed_ = reg.GetCounter(prefix + "consumed");
  m_credit_stalls_ = reg.GetCounter(prefix + "credit_stalls");
  m_rows_ = reg.GetGauge(prefix + "rows");
  m_spilled_rows_ = reg.GetCounter("storage.spilled_rows");
  m_spilled_pages_ = reg.GetCounter("storage.spilled_pages");
  m_faulted_rows_ = reg.GetCounter("storage.faulted_rows");
}

void Basket::SetCapacity(size_t high_watermark, size_t low_watermark) {
  if (high_watermark == 0) {
    capacity_.store(0, std::memory_order_relaxed);
    low_watermark_.store(0, std::memory_order_relaxed);
    return;
  }
  if (low_watermark == 0) low_watermark = high_watermark / 2;
  low_watermark = std::min(low_watermark, high_watermark);
  capacity_.store(high_watermark, std::memory_order_relaxed);
  low_watermark_.store(low_watermark, std::memory_order_relaxed);
}

size_t Basket::CreditRemaining() const {
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return SIZE_MAX;
  // Credit is bounded by *resident* rows: the capacity is a memory bound,
  // and evicting the cold prefix to the spill tier is what replenishes
  // producer credit. Without a spill pool resident == total, so this is
  // exactly the old size()-based accounting.
  const size_t n = resident_rows_.load(std::memory_order_acquire);
  return n >= cap ? 0 : cap - n;
}

bool Basket::Drained() const {
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return true;
  return resident_rows_.load(std::memory_order_acquire) <=
         low_watermark_.load(std::memory_order_relaxed);
}

void Basket::AddConstraint(ExprPtr predicate) {
  RecursiveMutexLock lock(&mu_);
  constraints_.push_back(std::move(predicate));
}

size_t Basket::AddListener(Listener listener) {
  RecursiveMutexLock lock(&mu_);
  const size_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Basket::RemoveListener(size_t id) {
  RecursiveMutexLock lock(&mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

void Basket::Touch() {
  const size_t resident = data_.num_rows();
  const size_t rows = resident + spilled_count_;
  num_rows_.store(rows, std::memory_order_release);
  resident_rows_.store(resident, std::memory_order_release);
  spilled_rows_now_.store(spilled_count_, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_acq_rel);
  if (obs::MetricsRegistry::enabled()) {
    m_rows_->Set(static_cast<int64_t>(rows));
  }
  for (const auto& [id, fn] : listeners_) fn();
}

void Basket::UpdatePeak() {
  // Caller holds mu_, so appends are serialized and a plain max-store is
  // race-free against concurrent stats() readers.
  const uint64_t rows = data_.num_rows();
  if (rows > peak_rows_.load(std::memory_order_relaxed)) {
    peak_rows_.store(rows, std::memory_order_relaxed);
  }
}

Result<SelVector> Basket::ApplyConstraints(const Table& tuples) const {
  SelVector sel(tuples.num_rows());
  for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<uint32_t>(i);
  EvalContext ctx;
  for (const ExprPtr& c : constraints_) {
    ASSIGN_OR_RETURN(sel, EvalPredicateOn(tuples, *c, sel, ctx));
  }
  return sel;
}

Result<size_t> Basket::Append(const Table& tuples, Micros now) {
  if (!enabled_.load()) {
    CountDropped(tuples.num_rows());
    return size_t{0};
  }
  // Widen to the full schema by stamping the arrival column. Arity checks
  // go through the immutable schema_, not data_, which another thread may
  // be consuming (data_ is only touched under mu_).
  if (!has_arrival_) return AppendAligned(tuples, now);
  if (tuples.num_columns() + 1 != schema_.num_fields()) {
    return Status::TypeMismatch("basket '" + name_ + "' expects " +
                                std::to_string(schema_.num_fields() - 1) +
                                " user columns, got " +
                                std::to_string(tuples.num_columns()));
  }
  Table widened(schema_);
  for (size_t c = 0; c < tuples.num_columns(); ++c) {
    RETURN_NOT_OK(widened.column(c).AppendColumn(tuples.column(c)));
  }
  Column& ts = widened.column(widened.num_columns() - 1);
  for (size_t i = 0; i < tuples.num_rows(); ++i) ts.AppendInt(now);
  return AppendAligned(widened, now);
}

Result<size_t> Basket::AppendAligned(const Table& tuples, Micros now) {
  (void)now;
  if (!enabled_.load()) {
    CountDropped(tuples.num_rows());
    return size_t{0};
  }
  if (tuples.num_columns() != schema_.num_fields()) {
    return Status::TypeMismatch("aligned append arity mismatch on basket '" +
                                name_ + "'");
  }
  RecursiveMutexLock lock(&mu_);
  if (constraints_.empty()) {
    RETURN_NOT_OK(data_.AppendTable(tuples));
    CountAppended(tuples.num_rows());
    UpdatePeak();  // before any spill: the peak tracks arrival pressure
    RETURN_NOT_OK(MaybeSpill());
    if (tuples.num_rows() > 0) Touch();
    return tuples.num_rows();
  }
  ASSIGN_OR_RETURN(SelVector keep, ApplyConstraints(tuples));
  RETURN_NOT_OK(data_.AppendTableRows(tuples, keep));
  CountAppended(keep.size());
  CountDropped(tuples.num_rows() - keep.size());
  UpdatePeak();
  RETURN_NOT_OK(MaybeSpill());
  if (!keep.empty()) Touch();
  return keep.size();
}

Status Basket::AppendRow(const Row& row, Micros now) {
  Table t(user_schema_);
  RETURN_NOT_OK(t.AppendRow(row));
  ASSIGN_OR_RETURN(size_t n, Append(t, now));
  (void)n;
  return Status::OK();
}

Table Basket::Peek() const {
  RecursiveMutexLock lock(&mu_);
  EnsureResident();
  return data_;
}

Table Basket::PeekRows(const SelVector& sel) const {
  RecursiveMutexLock lock(&mu_);
  EnsureResident();
  return data_.Take(sel);
}

Table Basket::TakeAll() {
  RecursiveMutexLock lock(&mu_);
  EnsureResident();
  Table out = std::move(data_);
  data_ = Table(schema_);
  CountConsumed(out.num_rows());
  if (out.num_rows() > 0) Touch();
  return out;
}

Result<Table> Basket::TakeRows(const SelVector& sorted_sel) {
  RecursiveMutexLock lock(&mu_);
  RETURN_NOT_OK(FaultAll());
  Table out = data_.Take(sorted_sel);
  RETURN_NOT_OK(data_.EraseRows(sorted_sel));
  CountConsumed(sorted_sel.size());
  if (!sorted_sel.empty()) Touch();
  return out;
}

Status Basket::EraseRows(const SelVector& sorted_sel) {
  RecursiveMutexLock lock(&mu_);
  RETURN_NOT_OK(FaultAll());
  RETURN_NOT_OK(data_.EraseRows(sorted_sel));
  CountConsumed(sorted_sel.size());
  if (!sorted_sel.empty()) Touch();
  return Status::OK();
}

Status Basket::ErasePrefix(size_t n) {
  RecursiveMutexLock lock(&mu_);
  n = std::min(n, data_.num_rows() + spilled_count_);
  if (n == 0) return Status::OK();
  // The prefix is the cold end: whole spilled segments covered by the
  // erase are consumed by freeing their pages, never reading them back —
  // the common shape when a consumer drains an overloaded stream.
  size_t remaining = n;
  storage::BufferPool* pool = spill_pool_.load(std::memory_order_acquire);
  while (!spilled_.empty() && remaining >= spilled_.front().rows) {
    SpillSegment& seg = spilled_.front();
    for (uint64_t id : seg.pages) RETURN_NOT_OK(pool->DeletePage(id));
    remaining -= seg.rows;
    spilled_count_ -= seg.rows;
    spilled_.pop_front();
  }
  // An erase ending inside the front segment rewrites just that segment
  // without its first `remaining` rows. Faulting the whole basket back in
  // here would be correct but catastrophic under a slow consumer: every
  // small drain would re-residentize megabytes that the very next append
  // re-spills (spill thrash). The rewrite touches one segment's pages and
  // leaves the residency split untouched.
  if (remaining > 0 && !spilled_.empty()) {
    SpillSegment& seg = spilled_.front();
    std::string chunk(seg.bytes, '\0');
    size_t off = 0;
    for (uint64_t id : seg.pages) {
      ASSIGN_OR_RETURN(char* frame, pool->FetchPage(id));
      std::memcpy(chunk.data() + off, frame,
                  std::min(storage::kPageSize, seg.bytes - off));
      pool->Unpin(id, /*dirty=*/false);
      off += storage::kPageSize;
    }
    ASSIGN_OR_RETURN(Table part, storage::DeserializeChunk(
                                     schema_, chunk.data(), chunk.size()));
    RETURN_NOT_OK(part.ErasePrefix(remaining));
    std::string rewritten;
    RETURN_NOT_OK(storage::SerializeChunk(part, &rewritten));
    SpillSegment fresh;
    fresh.rows = part.num_rows();
    fresh.bytes = rewritten.size();
    bool wrote = true;
    for (size_t w = 0; w < rewritten.size(); w += storage::kPageSize) {
      uint64_t id = storage::kInvalidPageId;
      Result<char*> frame = pool->NewPage(&id);
      if (!frame.ok()) {
        for (uint64_t allocated : fresh.pages) {
          // Rollback on a full pool: a failed delete only leaks a spill
          // page until the pager is rebuilt, never corrupts data.
          pool->DeletePage(allocated).IgnoreError();
        }
        wrote = false;
        break;
      }
      std::memcpy(*frame, rewritten.data() + w,
                  std::min(storage::kPageSize, rewritten.size() - w));
      pool->Unpin(id, /*dirty=*/true);
      fresh.pages.push_back(id);
    }
    if (wrote) {
      for (uint64_t id : seg.pages) RETURN_NOT_OK(pool->DeletePage(id));
      spilled_count_ -= remaining;
      seg = std::move(fresh);
      remaining = 0;
    } else {
      // Pool exhausted mid-rewrite (old pages still intact): fall back to
      // the resident path — correctness never depends on the fast path.
      RETURN_NOT_OK(FaultAll());
    }
  }
  if (remaining > 0) RETURN_NOT_OK(data_.ErasePrefix(remaining));
  CountConsumed(n);
  Touch();
  return Status::OK();
}

void Basket::Clear() {
  RecursiveMutexLock lock(&mu_);
  const size_t n = data_.num_rows() + spilled_count_;
  if (!spilled_.empty()) {
    storage::BufferPool* pool = spill_pool_.load(std::memory_order_acquire);
    for (const SpillSegment& seg : spilled_) {
      for (uint64_t id : seg.pages) {
        Status st = pool->DeletePage(id);
        if (!st.ok()) DC_LOG(Warn) << "spill page free failed: " << st.message();
      }
    }
    spilled_.clear();
    spilled_count_ = 0;
  }
  CountConsumed(n);
  data_.Clear();
  if (n > 0) Touch();
}

Status Basket::MaybeSpill() {
  storage::BufferPool* pool = spill_pool_.load(std::memory_order_acquire);
  if (pool == nullptr || !storage::SpillEnabled()) return Status::OK();
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  const size_t resident = data_.num_rows();
  // Trigger at the watermark, not past it: a credit-respecting producer
  // (the gateway) never appends beyond `cap` resident rows, so a
  // strictly-greater test would leave the valve permanently shut for
  // exactly the producers it exists to unblock.
  if (cap == 0 || resident < cap) return Status::OK();
  const size_t keep = low_watermark_.load(std::memory_order_relaxed);
  const size_t n = resident - keep;
  SelVector prefix(n);
  for (size_t i = 0; i < n; ++i) prefix[i] = static_cast<uint32_t>(i);
  std::string chunk;
  RETURN_NOT_OK(storage::SerializeChunk(data_.Take(prefix), &chunk));
  SpillSegment seg;
  seg.rows = n;
  seg.bytes = chunk.size();
  for (size_t off = 0; off < chunk.size(); off += storage::kPageSize) {
    uint64_t id = storage::kInvalidPageId;
    Result<char*> frame = pool->NewPage(&id);
    if (!frame.ok()) {
      // Pool exhausted (every frame pinned): degrade by keeping the rows
      // resident — correctness never depends on an eviction succeeding.
      for (uint64_t allocated : seg.pages) {
        pool->DeletePage(allocated).IgnoreError();  // rollback, see above
      }
      DC_LOG(Warn) << "basket '" << name_
                   << "' spill skipped: " << frame.status().message();
      return Status::OK();
    }
    std::memcpy(*frame, chunk.data() + off,
                std::min(storage::kPageSize, chunk.size() - off));
    pool->Unpin(id, /*dirty=*/true);
    seg.pages.push_back(id);
  }
  RETURN_NOT_OK(data_.ErasePrefix(n));
  spilled_count_ += n;
  spilled_total_.fetch_add(n, std::memory_order_relaxed);
  if (obs::MetricsRegistry::enabled()) {
    m_spilled_rows_->Increment(n);
    m_spilled_pages_->Increment(seg.pages.size());
  }
  spilled_.push_back(std::move(seg));
  return Status::OK();
}

Status Basket::FaultAll() {
  if (spilled_.empty()) return Status::OK();
  storage::BufferPool* pool = spill_pool_.load(std::memory_order_acquire);
  Table combined(schema_);
  std::string chunk;
  for (const SpillSegment& seg : spilled_) {
    chunk.resize(seg.bytes);
    size_t off = 0;
    for (uint64_t id : seg.pages) {
      ASSIGN_OR_RETURN(char* frame, pool->FetchPage(id));
      std::memcpy(chunk.data() + off, frame,
                  std::min(storage::kPageSize, seg.bytes - off));
      pool->Unpin(id, /*dirty=*/false);
      RETURN_NOT_OK(pool->DeletePage(id));
      off += storage::kPageSize;
    }
    ASSIGN_OR_RETURN(Table part, storage::DeserializeChunk(
                                     schema_, chunk.data(), chunk.size()));
    RETURN_NOT_OK(combined.AppendTable(part));
  }
  const size_t faulted = spilled_count_;
  spilled_.clear();
  spilled_count_ = 0;
  faulted_total_.fetch_add(faulted, std::memory_order_relaxed);
  if (obs::MetricsRegistry::enabled()) m_faulted_rows_->Increment(faulted);
  RETURN_NOT_OK(combined.AppendTable(data_));
  data_ = std::move(combined);
  // Same logical contents, different residency: refresh the split mirrors
  // without a version bump (listeners only care about content changes).
  resident_rows_.store(data_.num_rows(), std::memory_order_release);
  spilled_rows_now_.store(0, std::memory_order_release);
  return Status::OK();
}

void Basket::EnsureResident() const {
  Status st = const_cast<Basket*>(this)->FaultAll();
  DC_CHECK(st.ok()) << "basket '" << name_
                    << "' failed to fault spilled rows: " << st.message();
}

Basket::Stats Basket::stats() const {
  Stats s;
  s.appended = appended_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.peak_rows = peak_rows_.load(std::memory_order_relaxed);
  s.credit_stalls = credit_stalls_.load(std::memory_order_relaxed);
  s.spilled = spilled_total_.load(std::memory_order_relaxed);
  s.faulted = faulted_total_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace datacell::core
