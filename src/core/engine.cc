#include "core/engine.h"

#include "storage/persist.h"
#include "util/logging.h"

namespace datacell::core {

Status Engine::RecoverCatalog(const std::string& dir) {
  Status st = storage::LoadCatalog(&catalog_, dir);
  if (st.code() == StatusCode::kNotFound) return Status::OK();
  return st;
}

Result<storage::ReplayReport> Engine::ReplayIngest(const std::string& path) {
  return storage::ReplayIngestLog(
      path, [this](const std::string& stream, const Schema& schema,
                   uint64_t seq, const Row& row) -> Status {
        (void)seq;
        Result<BasketPtr> basket = GetBasket(stream);
        if (!basket.ok()) {
          DC_LOG(Warn) << "replay: no basket for stream '" << stream
                       << "', dropping tuple";
          return Status::OK();
        }
        if (schema == (*basket)->schema()) {
          // Full-schema stream (e.g. emitter staging): the arrival stamp
          // the tuple originally carried is part of the row.
          Table one(schema);
          RETURN_NOT_OK(one.AppendRow(row));
          ASSIGN_OR_RETURN(size_t n, (*basket)->AppendAligned(one, Now()));
          (void)n;
          return Status::OK();
        }
        return (*basket)->AppendRow(row, Now());
      });
}

Result<BasketPtr> Engine::CreateBasket(const std::string& name,
                                       const Schema& schema,
                                       bool add_arrival_ts) {
  MutexLock lock(&mu_);
  if (baskets_.count(name) > 0) {
    return Status::AlreadyExists("basket '" + name + "' already exists");
  }
  if (catalog_.HasTable(name)) {
    return Status::AlreadyExists("a table named '" + name + "' exists");
  }
  auto basket = std::make_shared<Basket>(name, schema, add_arrival_ts);
  baskets_[name] = basket;
  return basket;
}

Result<BasketPtr> Engine::CreateBoundedBasket(const std::string& name,
                                              const Schema& schema,
                                              size_t capacity,
                                              size_t low_watermark,
                                              bool add_arrival_ts) {
  ASSIGN_OR_RETURN(BasketPtr basket,
                   CreateBasket(name, schema, add_arrival_ts));
  basket->SetCapacity(capacity, low_watermark);
  return basket;
}

Result<BasketPtr> Engine::GetBasket(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = baskets_.find(name);
  if (it == baskets_.end()) {
    return Status::NotFound("no basket named '" + name + "'");
  }
  return it->second;
}

bool Engine::HasBasket(const std::string& name) const {
  MutexLock lock(&mu_);
  return baskets_.count(name) > 0;
}

Status Engine::DropBasket(const std::string& name) {
  MutexLock lock(&mu_);
  if (baskets_.erase(name) == 0) {
    return Status::NotFound("no basket named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Engine::ListBaskets() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(baskets_.size());
  for (const auto& [name, _] : baskets_) names.push_back(name);
  return names;
}

void Engine::SetVariable(const std::string& name, Value value) {
  MutexLock lock(&mu_);
  variables_[name] = std::move(value);
}

Result<Value> Engine::GetVariable(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = variables_.find(name);
  if (it == variables_.end()) {
    return Status::NotFound("no variable named '" + name + "'");
  }
  return it->second;
}

bool Engine::HasVariable(const std::string& name) const {
  MutexLock lock(&mu_);
  return variables_.count(name) > 0;
}

std::map<std::string, Value> Engine::VariablesSnapshot() const {
  MutexLock lock(&mu_);
  return variables_;
}

}  // namespace datacell::core
