#include "core/receptor.h"

#include <algorithm>

namespace datacell::core {

Receptor::Receptor(std::string name, Source source)
    : name_(std::move(name)), source_(std::move(source)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  m_batches_ = reg.GetCounter("receptor." + name_ + ".batches");
  m_tuples_ = reg.GetCounter("receptor." + name_ + ".tuples");
}

Result<size_t> Receptor::Deliver(const Table& tuples, Micros now) {
  size_t first_accepted = 0;
  for (size_t i = 0; i < outputs_.size(); ++i) {
    ASSIGN_OR_RETURN(size_t n, outputs_[i]->Append(tuples, now));
    if (i == 0) first_accepted = n;
  }
  m_batches_->Increment();
  m_tuples_->Increment(tuples.num_rows());
  return first_accepted;
}

size_t Receptor::CreditRemaining() const {
  size_t credit = SIZE_MAX;
  for (const BasketPtr& b : outputs_) {
    credit = std::min(credit, b->CreditRemaining());
  }
  return credit;
}

bool Receptor::BackpressureReleased() const {
  for (const BasketPtr& b : outputs_) {
    if (!b->Drained()) return false;
  }
  return true;
}

bool Receptor::HasCapacityBound() const {
  for (const BasketPtr& b : outputs_) {
    if (b->capacity() > 0) return true;
  }
  return false;
}

void Receptor::NoteCreditStall() const {
  for (const BasketPtr& b : outputs_) {
    if (b->capacity() > 0 && b->CreditRemaining() == 0) b->CountCreditStall();
  }
}

bool Receptor::CanFire(Micros) const {
  // Pull receptors are always eligible; the poll decides if there is work.
  return source_ != nullptr;
}

Result<bool> Receptor::Fire(Micros now) {
  if (source_ == nullptr) return false;
  ASSIGN_OR_RETURN(std::optional<Table> batch, source_());
  if (!batch.has_value() || batch->num_rows() == 0) return false;
  ASSIGN_OR_RETURN(size_t n, Deliver(*batch, now));
  (void)n;
  return true;
}

}  // namespace datacell::core
