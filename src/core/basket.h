#ifndef DATACELL_CORE_BASKET_H_
#define DATACELL_CORE_BASKET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "column/table.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::core {

/// Name of the implicit arrival-timestamp column every basket carries
/// (the paper: "for each relational table there exists an extra column, the
/// timestamp column, that ... reflects the time that this tuple entered the
/// system").
inline constexpr const char* kArrivalColumn = "dc_arrival";

/// The key DataCell data structure: a temporary main-memory table holding a
/// portion of a stream (§3.2).
///
/// Differences from a plain Table, per the paper:
///  * Integrity: tuples violating a constraint are silently dropped, acting
///    as a silent filter.
///  * ACID: contents are session-scoped and non-durable; concurrent access
///    is regulated with a lock.
///  * Control: a basket can be disabled, blocking the stream (appends are
///    rejected) until re-enabled.
///  * Consumption: tuples are removed once consumed by all relevant
///    continuous queries; there is no a-priori arrival order requirement.
///
/// All public methods are internally synchronized via a recursive mutex, so
/// multi-step factory sequences can additionally hold AcquireLock() across
/// statements (mirroring Algorithm 1's basket.lock/unlock) while still
/// calling the public API.
class Basket {
 public:
  struct Stats {
    uint64_t appended = 0;   // tuples accepted
    uint64_t dropped = 0;    // tuples silently dropped by constraints/disable
    uint64_t consumed = 0;   // tuples removed by queries
    uint64_t peak_rows = 0;  // high-water mark of resident rows
  };

  /// Watcher invoked after every content mutation (append/take/erase/clear),
  /// with the basket lock held. Listeners must be cheap and must not call
  /// back into any basket — they exist so a scheduler can wake the
  /// transitions watching this place.
  using Listener = std::function<void()>;

  /// Creates a basket over `schema`. When `add_arrival_ts` is set (the
  /// default) a kArrivalColumn timestamp field is appended to the schema
  /// and stamped on every accepted tuple.
  Basket(std::string name, const Schema& schema, bool add_arrival_ts = true);

  Basket(const Basket&) = delete;
  Basket& operator=(const Basket&) = delete;

  const std::string& name() const { return name_; }
  /// Full schema, including the arrival column when present.
  const Schema& schema() const { return schema_; }
  bool has_arrival_column() const { return has_arrival_; }

  /// --- Flow control -------------------------------------------------------
  void Enable() { enabled_.store(true); }
  void Disable() { enabled_.store(false); }
  bool enabled() const { return enabled_.load(); }

  /// --- Capacity / backpressure --------------------------------------------
  /// Disable() keeps the paper's semantics — the stream is blocked and
  /// tuples are *dropped* — while a capacity bound yields *push-back*: a
  /// producer that respects CreditRemaining() (the gateway) stops reading
  /// its channel when the basket reaches `high_watermark` resident rows and
  /// resumes once consumers drain it to `low_watermark` (hysteresis so the
  /// valve does not chatter). Appends themselves are never rejected by the
  /// bound; enforcement lives with cooperating producers.
  ///
  /// `high_watermark` 0 removes the bound; `low_watermark` 0 defaults to
  /// high/2.
  void SetCapacity(size_t high_watermark, size_t low_watermark = 0);
  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  size_t low_watermark() const {
    return low_watermark_.load(std::memory_order_relaxed);
  }
  /// Rows a credit-respecting producer may still append before hitting the
  /// high watermark; SIZE_MAX when unbounded.
  size_t CreditRemaining() const;
  /// True when no bound is set or the basket has drained to (or below) the
  /// low watermark — the point where paused producers resume.
  bool Drained() const;

  /// --- Integrity ----------------------------------------------------------
  /// Adds a constraint predicate over the basket schema. Tuples violating
  /// any constraint are silently dropped on append.
  void AddConstraint(ExprPtr predicate);

  /// --- Producer side ------------------------------------------------------
  /// Appends user tuples (without the arrival column), stamping arrival time
  /// `now` and filtering through the constraints. Returns the number of
  /// tuples accepted. If the basket is disabled all tuples are dropped.
  Result<size_t> Append(const Table& tuples, Micros now);
  /// Appends tuples that already carry the full basket schema (used when
  /// forwarding between baskets); constraints still apply.
  Result<size_t> AppendAligned(const Table& tuples, Micros now);
  /// Single-row convenience (boundary paths only).
  Status AppendRow(const Row& row, Micros now);

  /// --- Consumer side ------------------------------------------------------
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Zero-copy snapshot of the current contents (kConsumeNone reads): the
  /// returned table shares the basket's column buffers copy-on-write, so
  /// this costs O(#columns) refcount bumps, not O(#tuples). The snapshot
  /// is immutable — later appends/erases/compaction on the basket detach
  /// from the shared storage and never disturb it — which lets factories
  /// and the SQL executor evaluate over it without holding the basket
  /// lock.
  Table Peek() const;
  /// Copy of selected rows without consuming.
  Table PeekRows(const SelVector& sel) const;

  /// Moves the entire contents out (Algorithm 1's select-then-empty).
  Table TakeAll();
  /// Removes and returns exactly the given rows (ascending, unique).
  Result<Table> TakeRows(const SelVector& sorted_sel);
  /// Removes (without returning) the given rows.
  Status EraseRows(const SelVector& sorted_sel);
  /// Removes the first n tuples (shared-baskets unlocker step, FIFO window
  /// slides). O(1): advances the columns' logical head offsets; physical
  /// reclamation is amortized and deferred while snapshots pin the
  /// buffers.
  Status ErasePrefix(size_t n);
  /// Drops everything.
  void Clear();

  /// Direct access to the backing table for operator evaluation. Callers
  /// that need multi-step atomicity must hold AcquireLock() for the whole
  /// sequence.
  const Table& contents() const { return data_; }
  Table* mutable_contents() { return &data_; }

  /// Explicit lock spanning several operations (factory firing).
  std::unique_lock<std::recursive_mutex> AcquireLock() const {
    return std::unique_lock<std::recursive_mutex>(mu_);
  }

  /// --- Change signalling ---------------------------------------------------
  /// Monotonic counter bumped on every content mutation. A transition
  /// scheduler can compare versions to detect that a place changed between
  /// two observations without holding the basket lock.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Registers a change watcher; returns an id for RemoveListener. See
  /// Listener for the (deliberately tight) contract.
  size_t AddListener(Listener listener);
  void RemoveListener(size_t id);

  Stats stats() const;

 private:
  // Filters `tuples` (full schema) through constraints; returns accepted
  // row positions. Caller holds mu_.
  Result<SelVector> ApplyConstraints(const Table& tuples) const;

  // Bumps the version and notifies listeners. Caller holds mu_.
  void Touch();
  // Refreshes peak_rows_ from data_. Caller holds mu_.
  void UpdatePeak();

  const std::string name_;
  Schema schema_;
  // schema_ minus the arrival column — cached so single-row appends do not
  // rebuild a Schema (field-vector copy) per tuple.
  Schema user_schema_;
  bool has_arrival_ = false;
  std::atomic<bool> enabled_{true};
  std::atomic<size_t> capacity_{0};       // 0 = unbounded
  std::atomic<size_t> low_watermark_{0};  // resume point (hysteresis)

  // Counters are atomics so stats() and the factory quiescence check can
  // read them while another thread is appending/consuming.
  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> consumed_{0};
  std::atomic<uint64_t> version_{0};
  std::atomic<uint64_t> peak_rows_{0};

  mutable std::recursive_mutex mu_;
  Table data_;
  std::vector<ExprPtr> constraints_;
  size_t next_listener_id_ = 0;
  std::vector<std::pair<size_t, Listener>> listeners_;
};

using BasketPtr = std::shared_ptr<Basket>;

}  // namespace datacell::core

#endif  // DATACELL_CORE_BASKET_H_
