#ifndef DATACELL_CORE_BASKET_H_
#define DATACELL_CORE_BASKET_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "column/table.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace datacell::storage {
class BufferPool;
}  // namespace datacell::storage

namespace datacell::core {

/// Name of the implicit arrival-timestamp column every basket carries
/// (the paper: "for each relational table there exists an extra column, the
/// timestamp column, that ... reflects the time that this tuple entered the
/// system").
inline constexpr const char* kArrivalColumn = "dc_arrival";

/// The key DataCell data structure: a temporary main-memory table holding a
/// portion of a stream (§3.2).
///
/// Differences from a plain Table, per the paper:
///  * Integrity: tuples violating a constraint are silently dropped, acting
///    as a silent filter.
///  * ACID: contents are session-scoped and non-durable; concurrent access
///    is regulated with a lock.
///  * Control: a basket can be disabled, blocking the stream (appends are
///    rejected) until re-enabled.
///  * Consumption: tuples are removed once consumed by all relevant
///    continuous queries; there is no a-priori arrival order requirement.
///
/// All public methods are internally synchronized via a recursive mutex, so
/// multi-step factory sequences can additionally hold a BasketLock across
/// statements (mirroring Algorithm 1's basket.lock/unlock) while still
/// calling the public API. The mutex carries LockRank::kBasket — the
/// outermost rank in the documented hierarchy — and multiple baskets must
/// be locked in ascending address order (Factory::Fire's canonical order),
/// which the debug lock-rank checker enforces.
class Basket {
 public:
  struct Stats {
    uint64_t appended = 0;   // tuples accepted
    uint64_t dropped = 0;    // tuples silently dropped by constraints/disable
    uint64_t consumed = 0;   // tuples removed by queries
    uint64_t peak_rows = 0;  // high-water mark of resident rows
    // Times a credit-respecting producer hit this basket at zero credit
    // (counted by the producer via CountCreditStall).
    uint64_t credit_stalls = 0;
    uint64_t spilled = 0;  // tuples evicted to the spill tier (cumulative)
    uint64_t faulted = 0;  // tuples read back from the spill tier
  };

  /// Watcher invoked after every content mutation (append/take/erase/clear),
  /// with the basket lock held. Listeners must be cheap and must not call
  /// back into any basket — they exist so a scheduler can wake the
  /// transitions watching this place.
  using Listener = std::function<void()>;

  /// Creates a basket over `schema`. When `add_arrival_ts` is set (the
  /// default) a kArrivalColumn timestamp field is appended to the schema
  /// and stamped on every accepted tuple.
  Basket(std::string name, const Schema& schema, bool add_arrival_ts = true);

  Basket(const Basket&) = delete;
  Basket& operator=(const Basket&) = delete;

  const std::string& name() const { return name_; }
  /// Full schema, including the arrival column when present.
  const Schema& schema() const { return schema_; }
  bool has_arrival_column() const { return has_arrival_; }

  /// --- Flow control -------------------------------------------------------
  void Enable() { enabled_.store(true); }
  void Disable() { enabled_.store(false); }
  bool enabled() const { return enabled_.load(); }

  /// --- Capacity / backpressure --------------------------------------------
  /// Disable() keeps the paper's semantics — the stream is blocked and
  /// tuples are *dropped* — while a capacity bound yields *push-back*: a
  /// producer that respects CreditRemaining() (the gateway) stops reading
  /// its channel when the basket reaches `high_watermark` resident rows and
  /// resumes once consumers drain it to `low_watermark` (hysteresis so the
  /// valve does not chatter). Appends themselves are never rejected by the
  /// bound; enforcement lives with cooperating producers.
  ///
  /// `high_watermark` 0 removes the bound; `low_watermark` 0 defaults to
  /// high/2.
  void SetCapacity(size_t high_watermark, size_t low_watermark = 0);
  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  size_t low_watermark() const {
    return low_watermark_.load(std::memory_order_relaxed);
  }
  /// Rows a credit-respecting producer may still append before hitting the
  /// high watermark; SIZE_MAX when unbounded.
  size_t CreditRemaining() const;
  /// True when no bound is set or the basket has drained to (or below) the
  /// low watermark — the point where paused producers resume.
  bool Drained() const;
  /// A cooperating producer (the gateway via Receptor::NoteCreditStall)
  /// records that it paused its channel because this basket was full.
  void CountCreditStall() {
    credit_stalls_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsRegistry::enabled()) m_credit_stalls_->Increment();
  }

  /// --- Spilling -----------------------------------------------------------
  /// Attaches a buffer pool as this basket's spill tier. Once attached (and
  /// while the global SpillEnabled() gate is open), an append that pushes
  /// the resident row count past the high watermark evicts the cold prefix
  /// to disk — down to the low watermark — instead of exhausting producer
  /// credit. Spilled rows still count in size() (factories and CanFire see
  /// the full stream), but CreditRemaining()/Drained() track resident rows
  /// only, so spilling is what frees the producer to keep sending. Rows
  /// fault back transparently on any read or consume. Attach at wiring
  /// time, before tuples flow; the pool must outlive the basket.
  void AttachSpill(storage::BufferPool* pool) {
    spill_pool_.store(pool, std::memory_order_release);
  }
  bool spill_attached() const {
    return spill_pool_.load(std::memory_order_acquire) != nullptr;
  }
  /// Rows currently held in memory / evicted to the spill tier.
  size_t resident_rows() const {
    return resident_rows_.load(std::memory_order_acquire);
  }
  size_t spilled_rows() const {
    return spilled_rows_now_.load(std::memory_order_acquire);
  }

  /// --- Integrity ----------------------------------------------------------
  /// Adds a constraint predicate over the basket schema. Tuples violating
  /// any constraint are silently dropped on append.
  void AddConstraint(ExprPtr predicate);

  /// --- Producer side ------------------------------------------------------
  /// Appends user tuples (without the arrival column), stamping arrival time
  /// `now` and filtering through the constraints. Returns the number of
  /// tuples accepted. If the basket is disabled all tuples are dropped.
  Result<size_t> Append(const Table& tuples, Micros now);
  /// Appends tuples that already carry the full basket schema (used when
  /// forwarding between baskets); constraints still apply.
  Result<size_t> AppendAligned(const Table& tuples, Micros now);
  /// Single-row convenience (boundary paths only).
  Status AppendRow(const Row& row, Micros now);

  /// --- Consumer side ------------------------------------------------------
  /// Lock-free logical row count — resident plus spilled (maintained under
  /// mu_, read anywhere): eligibility checks and firing bodies may probe
  /// any basket's size without touching its lock, so a probe can never
  /// invert the basket lock order.
  size_t size() const { return num_rows_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  /// Zero-copy snapshot of the current contents (kConsumeNone reads): the
  /// returned table shares the basket's column buffers copy-on-write, so
  /// this costs O(#columns) refcount bumps, not O(#tuples). The snapshot
  /// is immutable — later appends/erases/compaction on the basket detach
  /// from the shared storage and never disturb it — which lets factories
  /// and the SQL executor evaluate over it without holding the basket
  /// lock.
  Table Peek() const;
  /// Copy of selected rows without consuming.
  Table PeekRows(const SelVector& sel) const;

  /// Moves the entire contents out (Algorithm 1's select-then-empty).
  Table TakeAll();
  /// Removes and returns exactly the given rows (ascending, unique).
  Result<Table> TakeRows(const SelVector& sorted_sel);
  /// Removes (without returning) the given rows.
  Status EraseRows(const SelVector& sorted_sel);
  /// Removes the first n tuples (shared-baskets unlocker step, FIFO window
  /// slides). O(1): advances the columns' logical head offsets; physical
  /// reclamation is amortized and deferred while snapshots pin the
  /// buffers.
  Status ErasePrefix(size_t n);
  /// Drops everything.
  void Clear();

  /// Direct access to the backing table for operator evaluation. Callers
  /// must hold the basket lock (BasketLock / Lock()) for the whole
  /// sequence that uses the reference — enforced by the analysis. Both
  /// lock entry points fault spilled rows back in first, so under the
  /// documented discipline this is always the full logical contents.
  const Table& contents() const DC_REQUIRES(mu_) { return data_; }

  /// Explicit lock spanning several operations (Algorithm 1's
  /// basket.lock/unlock). Prefer the scoped BasketLock; these exist for
  /// the annotated lock-set acquisition in Factory::Fire.
  void Lock() const DC_ACQUIRE(mu_) {
    mu_.Lock();
    EnsureResident();
  }
  void Unlock() const DC_RELEASE(mu_) { mu_.Unlock(); }

  /// --- Change signalling ---------------------------------------------------
  /// Monotonic counter bumped on every content mutation. A transition
  /// scheduler can compare versions to detect that a place changed between
  /// two observations without holding the basket lock.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Registers a change watcher; returns an id for RemoveListener. See
  /// Listener for the (deliberately tight) contract.
  size_t AddListener(Listener listener);
  void RemoveListener(size_t id);

  Stats stats() const;

 private:
  friend class BasketLock;

  // Filters `tuples` (full schema) through constraints; returns accepted
  // row positions.
  Result<SelVector> ApplyConstraints(const Table& tuples) const
      DC_REQUIRES(mu_);

  // Refreshes the lock-free row counts, bumps the version and notifies
  // listeners.
  void Touch() DC_REQUIRES(mu_);
  // Refreshes peak_rows_ from data_.
  void UpdatePeak() DC_REQUIRES(mu_);

  // One evicted cold-prefix run: a binary chunk (storage/chunk.h) written
  // across whole buffer-pool pages. Segments are strictly older than
  // data_, and older segments precede newer ones, preserving FIFO order.
  struct SpillSegment {
    std::vector<uint64_t> pages;
    size_t rows = 0;
    size_t bytes = 0;  // serialized chunk length
  };

  // Evicts the cold prefix to the spill tier when the resident count
  // exceeds the high watermark (pool attached + gate open only). Runs at
  // the tail of AppendAligned; degrades to keeping rows resident if the
  // pool is exhausted.
  Status MaybeSpill() DC_REQUIRES(mu_);
  // Reads every spilled segment back into data_ (front of the table, in
  // segment order) and frees its pages. No-op when nothing is spilled.
  Status FaultAll() DC_REQUIRES(mu_);
  // FaultAll for paths with no error channel (Peek, Lock). Aborts on
  // spill-file I/O failure: the spill file is this process's own cache,
  // so a read failure there is unrecoverable state corruption.
  void EnsureResident() const DC_REQUIRES(mu_);

  // Per-instance atomics stay the exact source of truth for stats(); the
  // process-global registry mirror (`basket.<name>.*`) aggregates
  // same-named baskets and only advances while MetricsRegistry::enabled()
  // — one relaxed load plus at most one relaxed RMW per call.
  void CountAppended(uint64_t n) {
    appended_.fetch_add(n, std::memory_order_relaxed);
    if (n > 0 && obs::MetricsRegistry::enabled()) m_appended_->Increment(n);
  }
  void CountDropped(uint64_t n) {
    dropped_.fetch_add(n, std::memory_order_relaxed);
    if (n > 0 && obs::MetricsRegistry::enabled()) m_dropped_->Increment(n);
  }
  void CountConsumed(uint64_t n) {
    consumed_.fetch_add(n, std::memory_order_relaxed);
    if (n > 0 && obs::MetricsRegistry::enabled()) m_consumed_->Increment(n);
  }

  const std::string name_;
  // Written once in the constructor, immutable thereafter — safe to read
  // from any thread without mu_.
  Schema schema_ DC_UNGUARDED;
  // schema_ minus the arrival column — cached so single-row appends do not
  // rebuild a Schema (field-vector copy) per tuple.
  Schema user_schema_ DC_UNGUARDED;       // construction-time, immutable
  bool has_arrival_ DC_UNGUARDED = false;  // construction-time, immutable
  std::atomic<bool> enabled_{true};
  std::atomic<size_t> capacity_{0};       // 0 = unbounded
  std::atomic<size_t> low_watermark_{0};  // resume point (hysteresis)

  // Counters are atomics so stats() and the factory quiescence check can
  // read them while another thread is appending/consuming.
  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> consumed_{0};
  std::atomic<uint64_t> credit_stalls_{0};
  std::atomic<uint64_t> version_{0};
  std::atomic<uint64_t> peak_rows_{0};
  // Registry mirrors, resolved once at construction. The pointers never
  // change after that (DC_UNGUARDED); the pointees are internally atomic.
  obs::Counter* m_appended_ DC_UNGUARDED;
  obs::Counter* m_dropped_ DC_UNGUARDED;
  obs::Counter* m_consumed_ DC_UNGUARDED;
  obs::Counter* m_credit_stalls_ DC_UNGUARDED;
  obs::Gauge* m_rows_ DC_UNGUARDED;
  // Logical row count (resident + spilled) mirrored on every mutation
  // (Touch), so size() — and with it Factory::CanFire, credit accounting,
  // and firing bodies probing a basket they did not lock — never takes
  // mu_. Taking a basket lock just to read the size is how the SplitPlan
  // firing path once inverted the basket lock order.
  std::atomic<size_t> num_rows_{0};
  // Mirrors of the resident/spilled split (also maintained by Touch).
  // CreditRemaining()/Drained() read resident_rows_: producer credit is a
  // memory bound, and evicting to disk is what must replenish it.
  std::atomic<size_t> resident_rows_{0};
  std::atomic<size_t> spilled_rows_now_{0};
  // Spill tier (null = spilling off, the default: every path then behaves
  // byte-identically to a basket built before the spill tier existed).
  std::atomic<storage::BufferPool*> spill_pool_{nullptr};
  std::atomic<uint64_t> spilled_total_{0};
  std::atomic<uint64_t> faulted_total_{0};
  // Process-wide spill mirrors (storage.*), resolved at construction —
  // stable pointers to internally-atomic counters, like the m_* above.
  obs::Counter* m_spilled_rows_ DC_UNGUARDED;
  obs::Counter* m_spilled_pages_ DC_UNGUARDED;
  obs::Counter* m_faulted_rows_ DC_UNGUARDED;

  mutable RecursiveMutex mu_{LockRank::kBasket};
  Table data_ DC_GUARDED_BY(mu_);
  std::deque<SpillSegment> spilled_ DC_GUARDED_BY(mu_);
  size_t spilled_count_ DC_GUARDED_BY(mu_) = 0;
  std::vector<ExprPtr> constraints_ DC_GUARDED_BY(mu_);
  size_t next_listener_id_ DC_GUARDED_BY(mu_) = 0;
  std::vector<std::pair<size_t, Listener>> listeners_ DC_GUARDED_BY(mu_);
};

/// Scoped basket lock: the annotated replacement for the old
/// AcquireLock() escape hatch. Holds the basket's recursive mutex for a
/// multi-step sequence; Unlock() releases early (snapshot-then-evaluate
/// paths).
class DC_SCOPED_CAPABILITY BasketLock {
 public:
  explicit BasketLock(const Basket* basket) DC_ACQUIRE(basket->mu_)
      : basket_(basket), held_(true) {
    basket_->mu_.Lock();
    // Lock entry implies intent to read contents(); make it whole.
    basket_->EnsureResident();
  }

  ~BasketLock() DC_RELEASE() {
    if (held_) basket_->mu_.Unlock();
  }

  BasketLock(const BasketLock&) = delete;
  BasketLock& operator=(const BasketLock&) = delete;

  void Unlock() DC_RELEASE() {
    basket_->mu_.Unlock();
    held_ = false;
  }

 private:
  const Basket* const basket_;
  bool held_;
};

using BasketPtr = std::shared_ptr<Basket>;

}  // namespace datacell::core

#endif  // DATACELL_CORE_BASKET_H_
