#ifndef DATACELL_CORE_METRONOME_H_
#define DATACELL_CORE_METRONOME_H_

#include <atomic>
#include <functional>
#include <string>

#include "core/basket.h"
#include "core/factory.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::core {

/// A metronome (§5): a transition that injects marker events into a basket
/// at a fixed interval, so queries can react to the *lack* of events.
///
/// The row factory receives the tick time and produces the marker tuple
/// (user columns only; the arrival column is stamped as usual). The default
/// marker is a single-null row per basket field.
class Metronome : public Transition {
 public:
  using RowFactory = std::function<Row(Micros tick)>;

  /// Ticks every `interval` microseconds starting at `start`; pass a null
  /// RowFactory for the all-null marker row.
  Metronome(std::string name, BasketPtr output, Micros start, Micros interval,
            RowFactory row_factory = nullptr);

  /// Copyable (the atomic tick cursor is copied by value).
  Metronome(const Metronome& other)
      : name_(other.name_),
        output_(other.output_),
        next_tick_(other.next_tick()),
        interval_(other.interval_),
        row_factory_(other.row_factory_) {}

  const std::string& name() const override { return name_; }
  bool CanFire(Micros now) const override { return now >= next_tick(); }

  /// Emits one marker per elapsed interval (catching up if the scheduler
  /// was delayed), so downstream epochs are never skipped — this is the
  /// heartbeat guarantee of §5.
  Result<bool> Fire(Micros now) override;

  /// Time-driven: no input places, and the scheduler's idle wait is bounded
  /// by the next tick instead of blind polling.
  std::vector<BasketPtr> output_places() const override { return {output_}; }
  Micros next_deadline(Micros) const override { return next_tick(); }

  Micros next_tick() const {
    return next_tick_.load(std::memory_order_acquire);
  }

 private:
  const std::string name_;
  BasketPtr output_;
  std::atomic<Micros> next_tick_;
  const Micros interval_;
  RowFactory row_factory_;
};

/// Builds the §5 heartbeat pattern: a dedicated "HB" basket fed by a
/// metronome whose markers carry the epoch timestamp in the given column.
/// Returns the transition to register; the basket is created by the caller
/// with a kTimestamp field named `epoch_column`.
TransitionPtr MakeHeartbeat(const std::string& name, BasketPtr hb_basket,
                            const std::string& epoch_column, Micros start,
                            Micros interval);

}  // namespace datacell::core

#endif  // DATACELL_CORE_METRONOME_H_
