#ifndef DATACELL_CORE_METRONOME_H_
#define DATACELL_CORE_METRONOME_H_

#include <atomic>
#include <functional>
#include <string>

#include "core/basket.h"
#include "core/factory.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/status.h"

namespace datacell::core {

/// A metronome (§5): a transition that injects marker events into a basket
/// at a fixed interval, so queries can react to the *lack* of events.
///
/// The row factory receives the tick time and produces the marker tuple
/// (user columns only; the arrival column is stamped as usual). The default
/// marker is a single-null row per basket field.
class Metronome : public Transition {
 public:
  using RowFactory = std::function<Row(Micros tick)>;

  /// Default bound on markers emitted by a single firing (see Fire).
  static constexpr uint64_t kDefaultMaxTicksPerFire = 64;

  /// Ticks every `interval` microseconds starting at `start`; pass a null
  /// RowFactory for the all-null marker row. `max_ticks_per_fire` bounds
  /// the post-stall catch-up burst of one firing (>= 1).
  Metronome(std::string name, BasketPtr output, Micros start, Micros interval,
            RowFactory row_factory = nullptr,
            uint64_t max_ticks_per_fire = kDefaultMaxTicksPerFire);

  /// Copyable (the atomic tick cursor is copied by value).
  Metronome(const Metronome& other)
      : name_(other.name_),
        output_(other.output_),
        next_tick_(other.next_tick()),
        interval_(other.interval_),
        row_factory_(other.row_factory_),
        max_ticks_per_fire_(other.max_ticks_per_fire_),
        m_ticks_(other.m_ticks_),
        m_capped_(other.m_capped_),
        m_backlog_(other.m_backlog_) {}

  const std::string& name() const override { return name_; }
  bool CanFire(Micros now) const override { return now >= next_tick(); }

  /// Emits one marker per elapsed interval, so downstream epochs are never
  /// skipped — the heartbeat guarantee of §5. After a long stall the
  /// catch-up is *bounded*: at most max_ticks_per_fire markers per firing,
  /// with the cursor left in the past so CanFire stays true and the
  /// scheduler re-fires immediately. Spreading the burst across firings
  /// lets bounded downstream baskets drain between installments instead of
  /// being blown past their watermark in one append storm.
  Result<bool> Fire(Micros now) override;

  /// Time-driven: no input places, and the scheduler's idle wait is bounded
  /// by the next tick instead of blind polling.
  std::vector<BasketPtr> output_places() const override { return {output_}; }
  Micros next_deadline(Micros) const override { return next_tick(); }

  Micros next_tick() const {
    return next_tick_.load(std::memory_order_acquire);
  }

  /// Firings that hit the catch-up cap with ticks still owed.
  uint64_t capped_firings() const {
    return capped_firings_.load(std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  BasketPtr output_;
  std::atomic<Micros> next_tick_;
  const Micros interval_;
  RowFactory row_factory_;
  uint64_t max_ticks_per_fire_ = kDefaultMaxTicksPerFire;
  std::atomic<uint64_t> capped_firings_{0};
  obs::Counter* m_ticks_;   // metronome.<name>.ticks
  obs::Counter* m_capped_;  // metronome.<name>.capped_firings
  obs::Gauge* m_backlog_;   // metronome.<name>.backlog_ticks
};

/// Builds the §5 heartbeat pattern: a dedicated "HB" basket fed by a
/// metronome whose markers carry the epoch timestamp in the given column.
/// Returns the transition to register; the basket is created by the caller
/// with a kTimestamp field named `epoch_column`.
TransitionPtr MakeHeartbeat(const std::string& name, BasketPtr hb_basket,
                            const std::string& epoch_column, Micros start,
                            Micros interval);

}  // namespace datacell::core

#endif  // DATACELL_CORE_METRONOME_H_
