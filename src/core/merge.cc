#include "core/merge.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace datacell::core {

namespace {

// Canonically-ordered basket lock set, same discipline as Factory::Fire:
// ascending address order so merges sharing baskets with factories cannot
// deadlock. The set is dynamic, which the thread-safety analysis cannot
// model; the debug lock-rank checker validates the discipline at runtime.
class MergeLockSet {
 public:
  explicit MergeLockSet(const std::vector<Basket*>& sorted)
      DC_NO_THREAD_SAFETY_ANALYSIS : baskets_(sorted) {
    for (Basket* b : baskets_) b->Lock();
  }

  ~MergeLockSet() DC_NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = baskets_.rbegin(); it != baskets_.rend(); ++it) {
      (*it)->Unlock();
    }
  }

  MergeLockSet(const MergeLockSet&) = delete;
  MergeLockSet& operator=(const MergeLockSet&) = delete;

 private:
  const std::vector<Basket*>& baskets_;
};

}  // namespace

MergeTransition::MergeTransition(std::string name,
                                 std::vector<BasketPtr> partitions,
                                 BasketPtr output)
    : name_(std::move(name)),
      partitions_(std::move(partitions)),
      output_(std::move(output)) {
  DC_CHECK(!partitions_.empty());
  DC_CHECK(output_ != nullptr);
}

bool MergeTransition::CanFire(Micros) const {
  for (const BasketPtr& p : partitions_) {
    if (!p->empty()) return true;
  }
  return false;
}

Result<bool> MergeTransition::Fire(Micros now) {
  std::vector<Basket*> involved;
  involved.reserve(partitions_.size() + 1);
  for (const BasketPtr& p : partitions_) involved.push_back(p.get());
  involved.push_back(output_.get());
  std::sort(involved.begin(), involved.end());
  involved.erase(std::unique(involved.begin(), involved.end()),
                 involved.end());
  MergeLockSet locks(involved);

  bool moved = false;
  for (const BasketPtr& p : partitions_) {  // declared (= shard) order
    if (p->empty()) continue;
    Table rows = p->TakeAll();
    if (rows.num_rows() == 0) continue;
    RETURN_NOT_OK(output_->AppendAligned(rows, now).status());
    moved = true;
  }
  return moved;
}

TransitionPtr MakeMergeTransition(std::string name,
                                  std::vector<BasketPtr> partitions,
                                  BasketPtr output) {
  return std::make_shared<MergeTransition>(std::move(name),
                                           std::move(partitions),
                                           std::move(output));
}

}  // namespace datacell::core
