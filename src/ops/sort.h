#ifndef DATACELL_OPS_SORT_H_
#define DATACELL_OPS_SORT_H_

#include <vector>

#include "column/table.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "util/status.h"

namespace datacell::ops {

/// One ORDER BY key.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Stable multi-key sort; returns the row permutation (NULLs sort first in
/// ascending order).
Result<SelVector> SortIndices(const Table& table,
                              const std::vector<SortKey>& keys,
                              const EvalContext& ctx);

/// Materialized sorted table.
Result<Table> SortTable(const Table& table, const std::vector<SortKey>& keys,
                        const EvalContext& ctx);

/// Row positions of the first `n` rows under the sort order — the engine
/// behind the paper's `top n` clause (with keys empty: the first n rows in
/// arrival order). Result is in sorted-output order, not ascending row id.
Result<SelVector> TopNIndices(const Table& table,
                              const std::vector<SortKey>& keys, size_t n,
                              const EvalContext& ctx);

}  // namespace datacell::ops

#endif  // DATACELL_OPS_SORT_H_
