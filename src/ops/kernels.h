#ifndef DATACELL_OPS_KERNELS_H_
#define DATACELL_OPS_KERNELS_H_

#include <cstdint>
#include <vector>

#include "column/column.h"
#include "expr/expr.h"
#include "ops/morsel.h"
#include "util/simd.h"
#include "util/status.h"

/// Column-level vectorized kernels: the bridge between whole Columns
/// (COW buffers, validity masks, head offsets) and the raw-span SIMD
/// primitives in util/simd.h. Every kernel runs on the fixed morsel grid
/// via RunMorsels — per-morsel partials land in per-morsel slots and are
/// merged in morsel order, so results are byte-identical whether the
/// morsels ran inline or across the worker pool (DESIGN.md §12).
namespace datacell::ops::kern {

/// Maps the comparison subset of BinaryOp to a kernel op. Returns false
/// for non-comparison ops (arithmetic, and/or).
bool CmpFromBinaryOp(BinaryOp op, simd::Cmp* out);

/// Dense compare-select: ascending indices of live rows where
/// `col <op> k` and the row is non-null. `col` must be kInt64/kTimestamp
/// (I64 flavor) or kDouble (F64 flavor).
SelVector SelectCmpI64Col(const Column& col, simd::Cmp op, int64_t k);
SelVector SelectCmpF64Col(const Column& col, simd::Cmp op, double k);

/// Dense range-select, bounds inclusive (int bounds pre-normalized by
/// the caller; double keeps open/closed flags).
SelVector SelectRangeI64Col(const Column& col, int64_t a, int64_t b);
SelVector SelectRangeF64Col(const Column& col, double lo, bool lo_inclusive,
                            double hi, bool hi_inclusive);

/// Columnar fold (count/sum/min/max) over all live rows, or over a
/// selection vector. Int columns fill count/isum/imin/imax, double
/// columns count/dsum/dmin/dmax (see simd::FoldState).
simd::FoldState FoldNumeric(const Column& col);
simd::FoldState FoldNumericSel(const Column& col, const SelVector& sel);

/// Vectorized multiply-shift hash of an int64 span (join build/probe),
/// morsel-gridded. out is resized to n.
void HashI64Span(const int64_t* d, size_t n, std::vector<uint64_t>* out);

}  // namespace datacell::ops::kern

#endif  // DATACELL_OPS_KERNELS_H_
