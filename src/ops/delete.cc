#include "ops/delete.h"

namespace datacell::ops {

Result<size_t> DeleteWhere(Table* table, const Expr& predicate,
                           const EvalContext& ctx) {
  ASSIGN_OR_RETURN(SelVector sel, EvalPredicate(*table, predicate, ctx));
  RETURN_NOT_OK(table->EraseRows(sel));
  return sel.size();
}

Status DeleteRows(Table* table, const SelVector& sorted_sel) {
  return table->EraseRows(sorted_sel);
}

Status KeepOnly(Table* table, const SelVector& sorted_sel) {
  return table->KeepRows(sorted_sel);
}

}  // namespace datacell::ops
