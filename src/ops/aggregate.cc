#include "ops/aggregate.h"

#include <unordered_map>

#include "ops/kernels.h"
#include "util/logging.h"
#include "util/strings.h"

namespace datacell::ops {

namespace {

// Accumulator for one (group, aggregate) pair.
struct AggState {
  int64_t count = 0;
  int64_t isum = 0;
  double dsum = 0;
  Value min;
  Value max;
};

// Encodes one row of the group-key columns into a byte string (same scheme
// as the join; nulls are encoded explicitly so NULL groups exist).
void EncodeGroupKey(const std::vector<Column>& cols, uint32_t row,
                    std::string* buf) {
  buf->clear();
  for (const Column& c : cols) {
    if (!c.IsValid(row)) {
      buf->push_back('n');
      continue;
    }
    switch (c.type()) {
      case DataType::kInt64:
      case DataType::kTimestamp: {
        buf->push_back('i');
        int64_t v = c.ints()[row];
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kDouble: {
        buf->push_back('d');
        double v = c.doubles()[row];
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kBool:
        buf->push_back('b');
        buf->push_back(static_cast<char>(c.bools()[row]));
        break;
      case DataType::kString: {
        const std::string& s = c.strings()[row];
        buf->push_back('s');
        uint32_t len = static_cast<uint32_t>(s.size());
        buf->append(reinterpret_cast<const char*>(&len), sizeof(len));
        buf->append(s);
        break;
      }
    }
  }
}

// Output type of an aggregate over an argument column type.
Result<DataType> AggOutputType(AggFunc func, DataType arg) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kSum:
      if (!IsNumeric(arg)) return Status::TypeMismatch("sum on non-numeric");
      return arg == DataType::kDouble ? DataType::kDouble : DataType::kInt64;
    case AggFunc::kAvg:
      if (!IsNumeric(arg)) return Status::TypeMismatch("avg on non-numeric");
      return DataType::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg;
  }
  return Status::Internal("unreachable");
}

bool ValueLess(const Value& a, const Value& b) {
  if (a.is_string()) return a.string_value() < b.string_value();
  if (a.is_bool()) return a.bool_value() < b.bool_value();
  double x = a.is_int() ? static_cast<double>(a.int_value()) : a.double_value();
  double y = b.is_int() ? static_cast<double>(b.int_value()) : b.double_value();
  return x < y;
}

void MergeMinMax(const Value& v, Value* min, Value* max) {
  if (min->is_null() || ValueLess(v, *min)) *min = v;
  if (max->is_null() || ValueLess(*max, v)) *max = v;
}

void UpdateMinMax(const Column& col, uint32_t row, Value* min, Value* max) {
  MergeMinMax(col.GetValue(row), min, max);
}

}  // namespace

Result<AggFunc> AggFuncFromName(const std::string& name, bool star) {
  std::string n = ToLower(name);
  if (n == "count") return star ? AggFunc::kCountStar : AggFunc::kCount;
  if (star) return Status::ParseError("'*' argument only valid for count");
  if (n == "sum") return AggFunc::kSum;
  if (n == "avg") return AggFunc::kAvg;
  if (n == "min") return AggFunc::kMin;
  if (n == "max") return AggFunc::kMax;
  return Status::BindError("unknown aggregate function '" + name + "'");
}

Result<Table> Aggregate(const Table& table, const std::vector<GroupItem>& groups,
                        const std::vector<AggItem>& aggs,
                        const EvalContext& ctx) {
  const size_t n = table.num_rows();

  // Evaluate group keys and aggregate arguments once, vectorized.
  std::vector<Column> key_cols;
  key_cols.reserve(groups.size());
  for (const GroupItem& g : groups) {
    ASSIGN_OR_RETURN(Column c, EvalScalar(table, *g.expr, ctx));
    key_cols.push_back(std::move(c));
  }
  std::vector<Column> arg_cols;  // parallel to aggs; empty column for count(*)
  arg_cols.reserve(aggs.size());
  for (const AggItem& a : aggs) {
    if (a.func == AggFunc::kCountStar) {
      arg_cols.emplace_back(DataType::kInt64);
      continue;
    }
    ASSIGN_OR_RETURN(Column c, EvalScalar(table, *a.arg, ctx));
    if ((a.func == AggFunc::kSum || a.func == AggFunc::kAvg) &&
        !IsNumeric(c.type())) {
      return Status::TypeMismatch("aggregate '" + a.name +
                                  "' requires a numeric argument, got " +
                                  DataTypeName(c.type()));
    }
    arg_cols.push_back(std::move(c));
  }

  // Group id per input row; group 0..k-1 in first-seen order.
  std::unordered_map<std::string, uint32_t> group_ids;
  std::vector<uint32_t> row_group(n);
  std::vector<uint32_t> group_rep;  // representative row per group
  std::string buf;
  if (groups.empty()) {
    group_ids.emplace("", 0);
    if (n > 0) group_rep.push_back(0);
    for (size_t i = 0; i < n; ++i) row_group[i] = 0;
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      EncodeGroupKey(key_cols, i, &buf);
      auto [it, inserted] =
          group_ids.emplace(buf, static_cast<uint32_t>(group_rep.size()));
      if (inserted) group_rep.push_back(i);
      row_group[i] = it->second;
    }
  }
  const size_t num_groups = groups.empty() ? 1 : group_rep.size();

  // Fold.
  std::vector<std::vector<AggState>> states(
      aggs.size(), std::vector<AggState>(num_groups));
  for (size_t a = 0; a < aggs.size(); ++a) {
    const AggItem& item = aggs[a];
    const Column& arg = arg_cols[a];
    auto& st = states[a];
    // Global (ungrouped) aggregates over numeric arguments go through the
    // columnar fold kernel: morsel-gridded SIMD count/sum/min/max with
    // partials merged in morsel order (DESIGN.md §12). Int min/max compare
    // exactly here (the boxed path compares int64 as double); int avg
    // derives from the exact integer sum.
    if (groups.empty() && item.func == AggFunc::kCountStar) {
      st[0].count = static_cast<int64_t>(n);
      continue;
    }
    if (groups.empty() && IsNumeric(arg.type())) {
      const simd::FoldState f = kern::FoldNumeric(arg);
      AggState& s = st[0];
      s.count = static_cast<int64_t>(f.count);
      if (arg.type() == DataType::kDouble) {
        s.dsum = f.dsum;
        if (f.seen) {
          s.min = Value(f.dmin);
          s.max = Value(f.dmax);
        }
      } else {
        s.isum = static_cast<int64_t>(f.isum);
        s.dsum = static_cast<double>(s.isum);
        if (f.seen) {
          s.min = Value(f.imin);
          s.max = Value(f.imax);
        }
      }
      continue;
    }
    for (uint32_t i = 0; i < n; ++i) {
      AggState& s = st[row_group[i]];
      if (item.func == AggFunc::kCountStar) {
        ++s.count;
        continue;
      }
      if (!arg.IsValid(i)) continue;
      switch (item.func) {
        case AggFunc::kCount:
          ++s.count;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          ++s.count;
          if (arg.type() == DataType::kDouble) {
            s.dsum += arg.doubles()[i];
          } else {
            s.isum += arg.ints()[i];
            s.dsum += static_cast<double>(arg.ints()[i]);
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          ++s.count;
          UpdateMinMax(arg, i, &s.min, &s.max);
          break;
        case AggFunc::kCountStar:
          break;
      }
    }
  }

  // Assemble output schema: group columns then aggregate columns.
  Schema out_schema;
  for (size_t g = 0; g < groups.size(); ++g) {
    RETURN_NOT_OK(out_schema.AddField({groups[g].name, key_cols[g].type()}));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    DataType arg_t = aggs[a].func == AggFunc::kCountStar ? DataType::kInt64
                                                         : arg_cols[a].type();
    ASSIGN_OR_RETURN(DataType out_t, AggOutputType(aggs[a].func, arg_t));
    RETURN_NOT_OK(out_schema.AddField({aggs[a].name, out_t}));
  }
  Table out(out_schema);

  for (size_t g = 0; g < num_groups; ++g) {
    Row row;
    row.reserve(groups.size() + aggs.size());
    for (size_t k = 0; k < groups.size(); ++k) {
      row.push_back(key_cols[k].GetValue(group_rep[g]));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& s = states[a][g];
      switch (aggs[a].func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          row.push_back(Value(s.count));
          break;
        case AggFunc::kSum:
          if (s.count == 0) {
            row.push_back(Value::Null());
          } else if (arg_cols[a].type() == DataType::kDouble) {
            row.push_back(Value(s.dsum));
          } else {
            row.push_back(Value(s.isum));
          }
          break;
        case AggFunc::kAvg:
          row.push_back(s.count == 0
                            ? Value::Null()
                            : Value(s.dsum / static_cast<double>(s.count)));
          break;
        case AggFunc::kMin:
          row.push_back(s.min);
          break;
        case AggFunc::kMax:
          row.push_back(s.max);
          break;
      }
    }
    RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

Status RunningAggregate::Update(const Column& column) {
  const size_t n = column.size();
  if (func_ == AggFunc::kCountStar) {
    count_ += static_cast<int64_t>(n);
    return Status::OK();
  }
  // Numeric batches fold through the vectorized kernel; the running sum
  // absorbs one striped per-batch partial instead of n per-row adds
  // (DESIGN.md §12).
  if (IsNumeric(column.type())) {
    const simd::FoldState f = kern::FoldNumeric(column);
    count_ += static_cast<int64_t>(f.count);
    if (f.count == 0) return Status::OK();
    if (column.type() == DataType::kDouble) {
      if (func_ == AggFunc::kSum || func_ == AggFunc::kAvg) {
        sum_is_int_ = false;
        sum_ += f.dsum;
      } else if (func_ == AggFunc::kMin || func_ == AggFunc::kMax) {
        MergeMinMax(Value(f.dmin), &min_, &max_);
        MergeMinMax(Value(f.dmax), &min_, &max_);
      }
    } else {
      const int64_t batch = static_cast<int64_t>(f.isum);
      if (func_ == AggFunc::kSum || func_ == AggFunc::kAvg) {
        isum_ += batch;
        sum_ += static_cast<double>(batch);
      } else if (func_ == AggFunc::kMin || func_ == AggFunc::kMax) {
        MergeMinMax(Value(f.imin), &min_, &max_);
        MergeMinMax(Value(f.imax), &min_, &max_);
      }
    }
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    if (func_ == AggFunc::kCountStar) {
      ++count_;
      continue;
    }
    if (!column.IsValid(i)) continue;
    switch (func_) {
      case AggFunc::kCount:
        ++count_;
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        ++count_;
        if (column.type() == DataType::kDouble) {
          sum_is_int_ = false;
          sum_ += column.doubles()[i];
        } else if (IsIntegerPhysical(column.type())) {
          isum_ += column.ints()[i];
          sum_ += static_cast<double>(column.ints()[i]);
        } else {
          return Status::TypeMismatch("sum/avg over non-numeric column");
        }
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        ++count_;
        UpdateMinMax(column, static_cast<uint32_t>(i), &min_, &max_);
        break;
      case AggFunc::kCountStar:
        break;
    }
  }
  return Status::OK();
}

Value RunningAggregate::Current() const {
  switch (func_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value(count_);
    case AggFunc::kSum:
      if (count_ == 0) return Value::Null();
      return sum_is_int_ ? Value(isum_) : Value(sum_);
    case AggFunc::kAvg:
      if (count_ == 0) return Value::Null();
      return Value(sum_ / static_cast<double>(count_));
    case AggFunc::kMin:
      return min_;
    case AggFunc::kMax:
      return max_;
  }
  return Value::Null();
}

void RunningAggregate::Reset() {
  count_ = 0;
  sum_ = 0;
  isum_ = 0;
  sum_is_int_ = true;
  min_ = Value::Null();
  max_ = Value::Null();
}

}  // namespace datacell::ops
