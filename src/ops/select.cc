#include "ops/select.h"

#include "ops/kernels.h"

namespace datacell::ops {

Result<SelVector> Select(const Table& table, const Expr& predicate,
                         const EvalContext& ctx) {
  return EvalPredicate(table, predicate, ctx);
}

Result<SelVector> SelectRange(const Table& table, const std::string& column,
                              const Value& lo, bool lo_inclusive,
                              const Value& hi, bool hi_inclusive) {
  ASSIGN_OR_RETURN(const Column* col, table.GetColumn(column));
  if (IsIntegerPhysical(col->type())) {
    if (!lo.is_null() && !lo.is_int()) {
      return Status::TypeMismatch("range bound type mismatch");
    }
    if (!hi.is_null() && !hi.is_int()) {
      return Status::TypeMismatch("range bound type mismatch");
    }
    // Normalize to an inclusive [a, b] for the fused range kernel:
    // x > a  <=>  x >= a+1 (empty if a is already INT64_MAX), same for b.
    int64_t a = lo.is_null() ? INT64_MIN : lo.int_value();
    int64_t b = hi.is_null() ? INT64_MAX : hi.int_value();
    if (!lo_inclusive) {
      if (a == INT64_MAX) return SelVector{};
      ++a;
    }
    if (!hi_inclusive) {
      if (b == INT64_MIN) return SelVector{};
      --b;
    }
    return kern::SelectRangeI64Col(*col, a, b);
  }
  if (col->type() == DataType::kDouble) {
    ASSIGN_OR_RETURN(double a, lo.is_null() ? Result<double>(-1e308) : lo.AsDouble());
    ASSIGN_OR_RETURN(double b, hi.is_null() ? Result<double>(1e308) : hi.AsDouble());
    return kern::SelectRangeF64Col(*col, a, lo_inclusive, b, hi_inclusive);
  }
  return Status::TypeMismatch("SelectRange requires a numeric column");
}

Result<Table> Filter(const Table& table, const Expr& predicate,
                     const EvalContext& ctx) {
  ASSIGN_OR_RETURN(SelVector sel, EvalPredicate(table, predicate, ctx));
  return table.Take(sel);
}

}  // namespace datacell::ops
