#include "ops/select.h"

namespace datacell::ops {

Result<SelVector> Select(const Table& table, const Expr& predicate,
                         const EvalContext& ctx) {
  return EvalPredicate(table, predicate, ctx);
}

Result<SelVector> SelectRange(const Table& table, const std::string& column,
                              const Value& lo, bool lo_inclusive,
                              const Value& hi, bool hi_inclusive) {
  ASSIGN_OR_RETURN(const Column* col, table.GetColumn(column));
  SelVector out;
  const size_t n = col->size();
  if (IsIntegerPhysical(col->type())) {
    int64_t a = lo.is_null() ? INT64_MIN : lo.int_value();
    int64_t b = hi.is_null() ? INT64_MAX : hi.int_value();
    if (!lo.is_null() && !lo.is_int()) {
      return Status::TypeMismatch("range bound type mismatch");
    }
    if (!hi.is_null() && !hi.is_int()) {
      return Status::TypeMismatch("range bound type mismatch");
    }
    const auto& v = col->ints();
    const bool nulls = col->has_nulls();
    for (size_t i = 0; i < n; ++i) {
      if (nulls && !col->IsValid(i)) continue;
      const int64_t x = v[i];
      const bool lo_ok = lo_inclusive ? x >= a : x > a;
      const bool hi_ok = hi_inclusive ? x <= b : x < b;
      if (lo_ok && hi_ok) out.push_back(static_cast<uint32_t>(i));
    }
    return out;
  }
  if (col->type() == DataType::kDouble) {
    ASSIGN_OR_RETURN(double a, lo.is_null() ? Result<double>(-1e308) : lo.AsDouble());
    ASSIGN_OR_RETURN(double b, hi.is_null() ? Result<double>(1e308) : hi.AsDouble());
    const auto& v = col->doubles();
    const bool nulls = col->has_nulls();
    for (size_t i = 0; i < n; ++i) {
      if (nulls && !col->IsValid(i)) continue;
      const double x = v[i];
      const bool lo_ok = lo_inclusive ? x >= a : x > a;
      const bool hi_ok = hi_inclusive ? x <= b : x < b;
      if (lo_ok && hi_ok) out.push_back(static_cast<uint32_t>(i));
    }
    return out;
  }
  return Status::TypeMismatch("SelectRange requires a numeric column");
}

Result<Table> Filter(const Table& table, const Expr& predicate,
                     const EvalContext& ctx) {
  ASSIGN_OR_RETURN(SelVector sel, EvalPredicate(table, predicate, ctx));
  return table.Take(sel);
}

}  // namespace datacell::ops
