#ifndef DATACELL_OPS_SELECT_H_
#define DATACELL_OPS_SELECT_H_

#include <string>

#include "column/table.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "util/status.h"

namespace datacell::ops {

/// Relational selection: rows of `table` satisfying `predicate`, as an
/// ascending selection vector.
Result<SelVector> Select(const Table& table, const Expr& predicate,
                         const EvalContext& ctx);

/// Range scan `lo < col < hi` (open/closed per flags) on a numeric column —
/// the kernel primitive behind the paper's `monetdb.select(input, v1, v2)`
/// factory example (Algorithm 1). Pass a null Value to leave a bound open.
Result<SelVector> SelectRange(const Table& table, const std::string& column,
                              const Value& lo, bool lo_inclusive,
                              const Value& hi, bool hi_inclusive);

/// Materializes the selected rows into a new table.
Result<Table> Filter(const Table& table, const Expr& predicate,
                     const EvalContext& ctx);

}  // namespace datacell::ops

#endif  // DATACELL_OPS_SELECT_H_
