#include "ops/sort.h"

#include <algorithm>

#include "util/logging.h"

namespace datacell::ops {

namespace {

// Three-way compare of rows i, j on one evaluated key column; nulls first.
int CompareKey(const Column& c, uint32_t i, uint32_t j) {
  const bool vi = c.IsValid(i);
  const bool vj = c.IsValid(j);
  if (!vi || !vj) return static_cast<int>(vi) - static_cast<int>(vj);
  switch (c.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      int64_t a = c.ints()[i], b = c.ints()[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kDouble: {
      double a = c.doubles()[i], b = c.doubles()[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case DataType::kBool:
      return static_cast<int>(c.bools()[i]) - static_cast<int>(c.bools()[j]);
    case DataType::kString:
      return c.strings()[i].compare(c.strings()[j]);
  }
  return 0;
}

}  // namespace

Result<SelVector> SortIndices(const Table& table,
                              const std::vector<SortKey>& keys,
                              const EvalContext& ctx) {
  const size_t n = table.num_rows();
  SelVector perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);

  std::vector<Column> key_cols;
  std::vector<bool> asc;
  key_cols.reserve(keys.size());
  for (const SortKey& k : keys) {
    ASSIGN_OR_RETURN(Column c, EvalScalar(table, *k.expr, ctx));
    key_cols.push_back(std::move(c));
    asc.push_back(k.ascending);
  }

  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      int cmp = CompareKey(key_cols[k], a, b);
      if (cmp != 0) return asc[k] ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  return perm;
}

Result<Table> SortTable(const Table& table, const std::vector<SortKey>& keys,
                        const EvalContext& ctx) {
  ASSIGN_OR_RETURN(SelVector perm, SortIndices(table, keys, ctx));
  return table.Take(perm);
}

Result<SelVector> TopNIndices(const Table& table,
                              const std::vector<SortKey>& keys, size_t n,
                              const EvalContext& ctx) {
  if (keys.empty()) {
    // Arrival order: the first n row positions.
    const size_t k = std::min(n, table.num_rows());
    SelVector out(k);
    for (size_t i = 0; i < k; ++i) out[i] = static_cast<uint32_t>(i);
    return out;
  }
  ASSIGN_OR_RETURN(SelVector perm, SortIndices(table, keys, ctx));
  if (perm.size() > n) perm.resize(n);
  return perm;
}

}  // namespace datacell::ops
