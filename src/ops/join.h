#ifndef DATACELL_OPS_JOIN_H_
#define DATACELL_OPS_JOIN_H_

#include <string>
#include <utility>
#include <vector>

#include "column/table.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "util/status.h"

namespace datacell::ops {

/// Equi-join key pair (column names in the respective inputs).
struct JoinKey {
  std::string left;
  std::string right;
};

/// Matching row-pair lists (parallel vectors; unsorted, duplicates allowed).
struct JoinMatches {
  SelVector left;
  SelVector right;
};

/// Hash equi-join on one or more keys (inner join). Builds on the smaller
/// input. Null keys never match. Works over self-joins (pass the same table
/// twice), which the Linear Road queries need.
Result<JoinMatches> HashJoinIndices(const Table& left, const Table& right,
                                    const std::vector<JoinKey>& keys);

/// Theta join: every pair satisfying `predicate`, evaluated over a combined
/// row (left columns first, right columns renamed on collision with a "r_"
/// prefix). O(n*m); used for the benchmark's theta joins where no equi-key
/// exists.
Result<JoinMatches> NestedLoopJoin(const Table& left, const Table& right,
                                   const Expr& predicate,
                                   const EvalContext& ctx);

/// Materializes matches into a result table: left columns then right
/// columns; a right column whose name collides gets a "r_" prefix.
Result<Table> MaterializeJoin(const Table& left, const Table& right,
                              const JoinMatches& matches);

/// Convenience: HashJoinIndices + optional residual predicate filter on the
/// combined result + materialization.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<JoinKey>& keys,
                       const ExprPtr& residual, const EvalContext& ctx);

}  // namespace datacell::ops

#endif  // DATACELL_OPS_JOIN_H_
