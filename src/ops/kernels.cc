#include "ops/kernels.h"

namespace datacell::ops::kern {

namespace {

// Runs an index-emitting kernel per morsel into per-morsel chunks and
// concatenates them in morsel order. EmitChunk(begin, end, base, *chunk)
// appends ascending indices for rows [begin, end).
template <typename EmitChunk>
SelVector SelectChunked(size_t n, EmitChunk emit) {
  const size_t num = NumMorsels(n);
  if (num <= 1) {
    SelVector out;
    emit(size_t{0}, n, &out);
    return out;
  }
  std::vector<SelVector> chunks(num);
  // The emitters cannot fail; RunMorsels' Status is for kernels that can.
  RunMorsels(n, [&](size_t m, size_t begin, size_t end) {
    emit(begin, end, &chunks[m]);
    return Status::OK();
  }).IgnoreError();
  size_t total = 0;
  for (const SelVector& c : chunks) total += c.size();
  SelVector out;
  out.reserve(total);
  for (const SelVector& c : chunks) out.insert(out.end(), c.begin(), c.end());
  return out;
}

template <typename FoldChunk>
simd::FoldState FoldChunked(size_t n, FoldChunk fold) {
  const size_t num = NumMorsels(n);
  if (num <= 1) return fold(size_t{0}, n);
  std::vector<simd::FoldState> parts(num);
  RunMorsels(n, [&](size_t m, size_t begin, size_t end) {
    parts[m] = fold(begin, end);
    return Status::OK();
  }).IgnoreError();  // infallible callback, see above
  simd::FoldState acc;
  // Merge in morsel order — the determinism contract's combine sequence.
  for (const simd::FoldState& p : parts) acc.MergeFrom(p);
  return acc;
}

}  // namespace

bool CmpFromBinaryOp(BinaryOp op, simd::Cmp* out) {
  switch (op) {
    case BinaryOp::kEq:
      *out = simd::Cmp::kEq;
      return true;
    case BinaryOp::kNe:
      *out = simd::Cmp::kNe;
      return true;
    case BinaryOp::kLt:
      *out = simd::Cmp::kLt;
      return true;
    case BinaryOp::kLe:
      *out = simd::Cmp::kLe;
      return true;
    case BinaryOp::kGt:
      *out = simd::Cmp::kGt;
      return true;
    case BinaryOp::kGe:
      *out = simd::Cmp::kGe;
      return true;
    default:
      return false;
  }
}

SelVector SelectCmpI64Col(const Column& col, simd::Cmp op, int64_t k) {
  const ColumnView<int64_t> v = col.ints();
  const uint8_t* valid = col.raw_validity();
  return SelectChunked(v.size(), [&](size_t begin, size_t end,
                                     SelVector* chunk) {
    simd::SelectCmpI64(v.data() + begin, valid ? valid + begin : nullptr,
                       end - begin, op, k, static_cast<uint32_t>(begin),
                       chunk);
  });
}

SelVector SelectCmpF64Col(const Column& col, simd::Cmp op, double k) {
  const ColumnView<double> v = col.doubles();
  const uint8_t* valid = col.raw_validity();
  return SelectChunked(v.size(), [&](size_t begin, size_t end,
                                     SelVector* chunk) {
    simd::SelectCmpF64(v.data() + begin, valid ? valid + begin : nullptr,
                       end - begin, op, k, static_cast<uint32_t>(begin),
                       chunk);
  });
}

SelVector SelectRangeI64Col(const Column& col, int64_t a, int64_t b) {
  const ColumnView<int64_t> v = col.ints();
  const uint8_t* valid = col.raw_validity();
  return SelectChunked(v.size(), [&](size_t begin, size_t end,
                                     SelVector* chunk) {
    simd::SelectRangeI64(v.data() + begin, valid ? valid + begin : nullptr,
                         end - begin, a, b, static_cast<uint32_t>(begin),
                         chunk);
  });
}

SelVector SelectRangeF64Col(const Column& col, double lo, bool lo_inclusive,
                            double hi, bool hi_inclusive) {
  const ColumnView<double> v = col.doubles();
  const uint8_t* valid = col.raw_validity();
  return SelectChunked(v.size(), [&](size_t begin, size_t end,
                                     SelVector* chunk) {
    simd::SelectRangeF64(v.data() + begin, valid ? valid + begin : nullptr,
                         end - begin, lo, lo_inclusive, hi, hi_inclusive,
                         static_cast<uint32_t>(begin), chunk);
  });
}

simd::FoldState FoldNumeric(const Column& col) {
  const uint8_t* valid = col.raw_validity();
  if (col.type() == DataType::kDouble) {
    const ColumnView<double> v = col.doubles();
    return FoldChunked(v.size(), [&](size_t begin, size_t end) {
      return simd::FoldF64(v.data() + begin, valid ? valid + begin : nullptr,
                           end - begin);
    });
  }
  const ColumnView<int64_t> v = col.ints();
  return FoldChunked(v.size(), [&](size_t begin, size_t end) {
    return simd::FoldI64(v.data() + begin, valid ? valid + begin : nullptr,
                         end - begin);
  });
}

simd::FoldState FoldNumericSel(const Column& col, const SelVector& sel) {
  const uint8_t* valid = col.raw_validity();
  if (col.type() == DataType::kDouble) {
    const ColumnView<double> v = col.doubles();
    return FoldChunked(sel.size(), [&](size_t begin, size_t end) {
      return simd::FoldF64Sel(v.data(), valid, sel.data() + begin,
                              end - begin);
    });
  }
  const ColumnView<int64_t> v = col.ints();
  return FoldChunked(sel.size(), [&](size_t begin, size_t end) {
    return simd::FoldI64Sel(v.data(), valid, sel.data() + begin, end - begin);
  });
}

void HashI64Span(const int64_t* d, size_t n, std::vector<uint64_t>* out) {
  out->resize(n);
  RunMorsels(n, [&](size_t, size_t begin, size_t end) {
    simd::HashI64(d + begin, end - begin, out->data() + begin);
    return Status::OK();
  }).IgnoreError();  // infallible callback, see above
}

}  // namespace datacell::ops::kern
