#ifndef DATACELL_OPS_DELETE_H_
#define DATACELL_OPS_DELETE_H_

#include "column/table.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "util/status.h"

namespace datacell::ops {

/// Deletes every row satisfying `predicate`; reports how many were removed.
/// This is the paper's §6.2 custom kernel operator: it removes a set of
/// tuples and shifts the survivors in a single pass per column, instead of
/// chaining 3-4 generic operators.
Result<size_t> DeleteWhere(Table* table, const Expr& predicate,
                           const EvalContext& ctx);

/// Deletes the given rows (ascending, unique).
Status DeleteRows(Table* table, const SelVector& sorted_sel);

/// Keeps only the given rows (ascending, unique); used by sliding windows
/// to retain tuples still valid for the next window.
Status KeepOnly(Table* table, const SelVector& sorted_sel);

}  // namespace datacell::ops

#endif  // DATACELL_OPS_DELETE_H_
