#ifndef DATACELL_OPS_AGGREGATE_H_
#define DATACELL_OPS_AGGREGATE_H_

#include <string>
#include <vector>

#include "column/table.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "util/status.h"

namespace datacell::ops {

enum class AggFunc : uint8_t {
  kCountStar,  // count(*)
  kCount,      // count(expr): non-null rows
  kSum,
  kAvg,
  kMin,
  kMax,
};

/// Parses "count"/"sum"/"avg"/"min"/"max" (case-insensitive).
Result<AggFunc> AggFuncFromName(const std::string& name, bool star);

/// One aggregate output column.
struct AggItem {
  AggFunc func;
  ExprPtr arg;  // null for kCountStar
  std::string name;
};

/// One grouping key.
struct GroupItem {
  ExprPtr expr;
  std::string name;
};

/// Hash group-by aggregation. With no group items, produces exactly one row
/// (global aggregates; count over an empty input is 0, other aggregates are
/// NULL, matching SQL).
Result<Table> Aggregate(const Table& table, const std::vector<GroupItem>& groups,
                        const std::vector<AggItem>& aggs,
                        const EvalContext& ctx);

/// Running-aggregate state for the paper's §5 two-phase incremental
/// aggregation (initialize once, fold in each new batch). Used by the SQL
/// layer's `declare`/`set` pattern and directly by the library API.
class RunningAggregate {
 public:
  explicit RunningAggregate(AggFunc func) : func_(func) {}

  /// Folds in every (non-null) value of `column`.
  Status Update(const Column& column);

  /// Current value: int64 count, sum in the input domain, double avg, etc.
  /// NULL until the first value arrives (except counts, which start at 0).
  Value Current() const;

  void Reset();

 private:
  AggFunc func_;
  int64_t count_ = 0;
  double sum_ = 0;
  bool sum_is_int_ = true;
  int64_t isum_ = 0;
  Value min_;
  Value max_;
};

}  // namespace datacell::ops

#endif  // DATACELL_OPS_AGGREGATE_H_
