#ifndef DATACELL_OPS_PROJECT_H_
#define DATACELL_OPS_PROJECT_H_

#include <string>
#include <vector>

#include "column/table.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "util/status.h"

namespace datacell::ops {

/// One output column of a projection: an expression and its output name —
/// covers both projection and the stream `map` operation of §5.
struct ProjectionItem {
  ExprPtr expr;
  std::string name;
};

/// Builds a projection list selecting every column of `schema` unchanged
/// (SELECT *).
std::vector<ProjectionItem> ProjectAll(const Schema& schema);

/// Evaluates each item over `table` and assembles the result table. If
/// `sel` is non-null, only those rows are evaluated/emitted.
Result<Table> Project(const Table& table,
                      const std::vector<ProjectionItem>& items,
                      const EvalContext& ctx, const SelVector* sel = nullptr);

}  // namespace datacell::ops

#endif  // DATACELL_OPS_PROJECT_H_
