#include "ops/project.h"

#include "util/logging.h"

namespace datacell::ops {

std::vector<ProjectionItem> ProjectAll(const Schema& schema) {
  std::vector<ProjectionItem> items;
  items.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    items.push_back({Expr::Col(f.name), f.name});
  }
  return items;
}

Result<Table> Project(const Table& table,
                      const std::vector<ProjectionItem>& items,
                      const EvalContext& ctx, const SelVector* sel) {
  // Restrict first so expressions are only evaluated on surviving rows.
  // Bare column references skip the copy via the borrow in EvalScalar when
  // sel is null.
  const Table* input = &table;
  Table restricted;
  if (sel != nullptr) {
    restricted = table.Take(*sel);
    input = &restricted;
  }
  Schema out_schema;
  std::vector<Column> out_columns;
  out_columns.reserve(items.size());
  for (const ProjectionItem& item : items) {
    ASSIGN_OR_RETURN(Column col, EvalScalar(*input, *item.expr, ctx));
    RETURN_NOT_OK(out_schema.AddField({item.name, col.type()}));
    out_columns.push_back(std::move(col));
  }
  Table out(out_schema);
  for (size_t i = 0; i < out_columns.size(); ++i) {
    RETURN_NOT_OK(out.column(i).AppendColumn(out_columns[i]));
  }
  return out;
}

}  // namespace datacell::ops
