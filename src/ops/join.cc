#include "ops/join.h"

#include <cstring>
#include <unordered_map>

#include "ops/kernels.h"
#include "util/logging.h"
#include "util/simd.h"

namespace datacell::ops {

namespace {

// Encodes the key columns of row `row` into `buf` with type tags so that
// composite keys cannot collide across types. Returns false if any key part
// is null (null keys never join).
bool EncodeKey(const std::vector<const Column*>& cols, uint32_t row,
               std::string* buf) {
  buf->clear();
  for (const Column* c : cols) {
    if (!c->IsValid(row)) return false;
    switch (c->type()) {
      case DataType::kInt64:
      case DataType::kTimestamp: {
        buf->push_back('i');
        int64_t v = c->ints()[row];
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kDouble: {
        buf->push_back('d');
        double v = c->doubles()[row];
        buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kBool:
        buf->push_back('b');
        buf->push_back(static_cast<char>(c->bools()[row]));
        break;
      case DataType::kString: {
        const std::string& s = c->strings()[row];
        buf->push_back('s');
        uint32_t len = static_cast<uint32_t>(s.size());
        buf->append(reinterpret_cast<const char*>(&len), sizeof(len));
        buf->append(s);
        break;
      }
    }
  }
  return true;
}

Result<std::vector<const Column*>> ResolveKeyColumns(
    const Table& table, const std::vector<JoinKey>& keys, bool left_side) {
  std::vector<const Column*> cols;
  cols.reserve(keys.size());
  for (const JoinKey& k : keys) {
    ASSIGN_OR_RETURN(const Column* c,
                     table.GetColumn(left_side ? k.left : k.right));
    cols.push_back(c);
  }
  return cols;
}

// Fast path for the common stream join: a single int64/timestamp key with
// no nulls on either side. Keys hash in batch through the vectorized
// multiply-shift kernel into a chained power-of-two bucket table — no
// per-row string encoding, no node allocations.
JoinMatches HashJoinIndicesI64(const Column& build_col,
                               const Column& probe_col, bool build_left) {
  const ColumnView<int64_t> bkeys = build_col.ints();
  const ColumnView<int64_t> pkeys = probe_col.ints();
  const size_t build_n = bkeys.size();
  const size_t probe_n = pkeys.size();
  JoinMatches out;
  if (build_n == 0 || probe_n == 0) return out;

  int log2b = 1;
  while ((size_t{1} << log2b) < build_n * 2) ++log2b;
  const int shift = 64 - log2b;

  std::vector<uint64_t> hashes;
  kern::HashI64Span(bkeys.data(), build_n, &hashes);
  std::vector<int32_t> head(size_t{1} << log2b, -1);
  std::vector<int32_t> next(build_n, -1);
  // Insert in reverse row order so every chain lists build rows ascending
  // and each probe's matches come out deterministic in build-row order.
  for (size_t i = build_n; i-- > 0;) {
    const size_t b = hashes[i] >> shift;
    next[i] = head[b];
    head[b] = static_cast<int32_t>(i);
  }

  kern::HashI64Span(pkeys.data(), probe_n, &hashes);
  for (uint32_t i = 0; i < probe_n; ++i) {
    const int64_t k = pkeys[i];
    for (int32_t j = head[hashes[i] >> shift]; j >= 0; j = next[j]) {
      if (bkeys[j] != k) continue;
      if (build_left) {
        out.left.push_back(static_cast<uint32_t>(j));
        out.right.push_back(i);
      } else {
        out.left.push_back(i);
        out.right.push_back(static_cast<uint32_t>(j));
      }
    }
  }
  return out;
}

}  // namespace

Result<JoinMatches> HashJoinIndices(const Table& left, const Table& right,
                                    const std::vector<JoinKey>& keys) {
  if (keys.empty()) {
    return Status::InvalidArgument("hash join requires at least one key");
  }
  ASSIGN_OR_RETURN(auto left_cols, ResolveKeyColumns(left, keys, true));
  ASSIGN_OR_RETURN(auto right_cols, ResolveKeyColumns(right, keys, false));
  for (size_t i = 0; i < keys.size(); ++i) {
    const bool num_ok =
        IsNumeric(left_cols[i]->type()) && IsNumeric(right_cols[i]->type());
    if (left_cols[i]->type() != right_cols[i]->type() && !num_ok) {
      return Status::TypeMismatch("join key type mismatch on '" +
                                  keys[i].left + "'");
    }
    // Physical encodings must match for byte-wise keys.
    if (IsIntegerPhysical(left_cols[i]->type()) !=
        IsIntegerPhysical(right_cols[i]->type())) {
      return Status::TypeMismatch(
          "join key physical type mismatch on '" + keys[i].left +
          "' (int vs double keys are not supported; cast first)");
    }
  }

  // Build on the smaller side.
  const bool build_left = left.num_rows() < right.num_rows();
  const auto& build_cols = build_left ? left_cols : right_cols;
  const auto& probe_cols = build_left ? right_cols : left_cols;
  const size_t build_n = build_left ? left.num_rows() : right.num_rows();
  const size_t probe_n = build_left ? right.num_rows() : left.num_rows();

  if (keys.size() == 1 && IsIntegerPhysical(build_cols[0]->type()) &&
      !build_cols[0]->has_nulls() && !probe_cols[0]->has_nulls()) {
    return HashJoinIndicesI64(*build_cols[0], *probe_cols[0], build_left);
  }

  std::unordered_multimap<std::string, uint32_t> ht;
  ht.reserve(build_n);
  std::string buf;
  for (uint32_t i = 0; i < build_n; ++i) {
    if (EncodeKey(build_cols, i, &buf)) ht.emplace(buf, i);
  }

  JoinMatches out;
  for (uint32_t i = 0; i < probe_n; ++i) {
    if (!EncodeKey(probe_cols, i, &buf)) continue;
    auto [lo, hi] = ht.equal_range(buf);
    for (auto it = lo; it != hi; ++it) {
      if (build_left) {
        out.left.push_back(it->second);
        out.right.push_back(i);
      } else {
        out.left.push_back(i);
        out.right.push_back(it->second);
      }
    }
  }
  return out;
}

Result<JoinMatches> NestedLoopJoin(const Table& left, const Table& right,
                                   const Expr& predicate,
                                   const EvalContext& ctx) {
  // Build the full cross product lazily in blocks of left rows to bound
  // memory: for each left row, evaluate the predicate against all right
  // rows with the left values bound as "variables" is not expressible, so
  // we materialize a combined table per left row only when inputs are
  // small, and otherwise fall back to row-at-a-time via combined chunks.
  JoinMatches out;
  const size_t ln = left.num_rows();
  const size_t rn = right.num_rows();
  if (ln == 0 || rn == 0) return out;

  // Materialize combined chunk: replicate one left row across rn rows and
  // evaluate the predicate vectorized over the right side.
  ASSIGN_OR_RETURN(Table combined_proto, MaterializeJoin(left, right, {}));
  for (uint32_t li = 0; li < ln; ++li) {
    JoinMatches chunk;
    chunk.left.assign(rn, li);
    chunk.right.resize(rn);
    for (uint32_t ri = 0; ri < rn; ++ri) chunk.right[ri] = ri;
    ASSIGN_OR_RETURN(Table combined, MaterializeJoin(left, right, chunk));
    ASSIGN_OR_RETURN(SelVector sel, EvalPredicate(combined, predicate, ctx));
    for (uint32_t s : sel) {
      out.left.push_back(li);
      out.right.push_back(s);
    }
  }
  return out;
}

Result<Table> MaterializeJoin(const Table& left, const Table& right,
                              const JoinMatches& matches) {
  DC_CHECK(matches.left.size() == matches.right.size());
  Schema schema;
  for (const Field& f : left.schema().fields()) {
    RETURN_NOT_OK(schema.AddField(f));
  }
  for (const Field& f : right.schema().fields()) {
    std::string name = f.name;
    if (schema.FindField(name) >= 0) name = "r_" + name;
    RETURN_NOT_OK(schema.AddField({name, f.type}));
  }
  Table out(schema);
  const size_t lcols = left.num_columns();
  for (size_t c = 0; c < lcols; ++c) {
    RETURN_NOT_OK(out.column(c).AppendColumnRows(left.column(c), matches.left));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    RETURN_NOT_OK(
        out.column(lcols + c).AppendColumnRows(right.column(c), matches.right));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<JoinKey>& keys,
                       const ExprPtr& residual, const EvalContext& ctx) {
  ASSIGN_OR_RETURN(JoinMatches matches, HashJoinIndices(left, right, keys));
  ASSIGN_OR_RETURN(Table combined, MaterializeJoin(left, right, matches));
  if (residual == nullptr) return combined;
  ASSIGN_OR_RETURN(SelVector sel, EvalPredicate(combined, *residual, ctx));
  return combined.Take(sel);
}

}  // namespace datacell::ops
