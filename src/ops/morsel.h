#ifndef DATACELL_OPS_MORSEL_H_
#define DATACELL_OPS_MORSEL_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "util/status.h"

/// Morsel-parallel execution for the ops kernels (DESIGN.md §12).
///
/// A large firing splits its input span into fixed-size morsels and runs
/// them on whatever executor the surrounding context installed: inside a
/// threaded Scheduler firing that is the scheduler's own worker pool
/// (work-stealing from a per-firing morsel queue), in benches/tests it is
/// a PoolMorselExecutor, and with no executor installed the morsels run
/// inline on the calling thread.
///
/// Determinism: the morsel grid is a pure function of the span length —
/// morsel m covers [m*kMorselRows, min((m+1)*kMorselRows, n)) — and
/// RunMorsels *always* applies it, inline or parallel. Kernels produce
/// per-morsel partials (selection-vector chunks, FoldStates) into
/// per-morsel slots and merge them in morsel order afterwards, so the
/// result is byte-identical no matter how many workers ran (see the
/// contract in util/simd.h).
namespace datacell::ops {

/// Rows per morsel. Sized so a morsel's working set (a few numeric
/// columns) stays L2-resident: 32k rows x 8B ≈ 256 KiB per column.
inline constexpr size_t kMorselRows = 32768;

/// One morsel of work: rows [begin, end) of the span, morsel index
/// `morsel` on the fixed grid. Must be safe to run concurrently with
/// other morsels of the same span (disjoint output slots, read-only
/// shared input).
using MorselFn = std::function<Status(size_t morsel, size_t begin, size_t end)>;

/// Something that can run a batch of morsels, possibly in parallel.
class MorselExecutor {
 public:
  virtual ~MorselExecutor() = default;

  /// Runs fn for every morsel of an n-row span on the `morsel_rows` grid.
  /// The calling thread participates; returns the first morsel error (by
  /// completion, not index — callers treat any error as fatal for the
  /// whole span). Must NOT be re-entered from inside a morsel; executors
  /// clear the thread-local current executor around fn to enforce that.
  virtual Status Run(size_t n, size_t morsel_rows, const MorselFn& fn) = 0;

  /// Workers potentially available to Run (including the caller). A
  /// stable per-firing snapshot where the pool can resize.
  virtual size_t parallelism() const = 0;
};

/// The executor installed for the current thread (nullptr = run inline).
MorselExecutor* CurrentMorselExecutor();

/// Installs `exec` as the current thread's executor for the scope,
/// restoring the previous one on destruction. Installing nullptr forces
/// inline execution (used inside morsel bodies to prevent nesting).
class ScopedMorselExecutor {
 public:
  explicit ScopedMorselExecutor(MorselExecutor* exec);
  ~ScopedMorselExecutor();

  ScopedMorselExecutor(const ScopedMorselExecutor&) = delete;
  ScopedMorselExecutor& operator=(const ScopedMorselExecutor&) = delete;

 private:
  MorselExecutor* prev_;
};

/// Morsels in an n-row span on the given grid (0 for an empty span).
inline size_t NumMorsels(size_t n, size_t morsel_rows = kMorselRows) {
  return (n + morsel_rows - 1) / morsel_rows;
}

/// Runs fn over every morsel of [0, n) on the kMorselRows grid — via the
/// current executor when one is installed and the span has more than one
/// morsel, inline otherwise. n == 0 returns OK without calling fn.
Status RunMorsels(size_t n, const MorselFn& fn);

/// Standalone executor over its own persistent thread pool; the calling
/// thread works too, so parallelism() == threads + 1. Used by
/// bench_kernel_throughput and the ops tests; engine firings use the
/// Scheduler's pool instead.
class PoolMorselExecutor : public MorselExecutor {
 public:
  /// Spawns `extra_threads` workers (0 = inline-only, parallelism 1).
  explicit PoolMorselExecutor(size_t extra_threads);
  ~PoolMorselExecutor() override;

  Status Run(size_t n, size_t morsel_rows, const MorselFn& fn) override;
  size_t parallelism() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace datacell::ops

#endif  // DATACELL_OPS_MORSEL_H_
