#include "ops/morsel.h"

#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace datacell::ops {

namespace {

thread_local MorselExecutor* t_current_executor = nullptr;

}  // namespace

MorselExecutor* CurrentMorselExecutor() { return t_current_executor; }

ScopedMorselExecutor::ScopedMorselExecutor(MorselExecutor* exec)
    : prev_(t_current_executor) {
  t_current_executor = exec;
}

ScopedMorselExecutor::~ScopedMorselExecutor() { t_current_executor = prev_; }

Status RunMorsels(size_t n, const MorselFn& fn) {
  if (n == 0) return Status::OK();
  const size_t num = NumMorsels(n);
  MorselExecutor* exec = t_current_executor;
  if (exec != nullptr && num > 1 && exec->parallelism() > 1) {
    return exec->Run(n, kMorselRows, fn);
  }
  // Inline path walks the same grid so partial-merge order (and therefore
  // every FP rounding step) is identical to the parallel path.
  for (size_t m = 0; m < num; ++m) {
    const size_t begin = m * kMorselRows;
    const size_t end = (begin + kMorselRows < n) ? begin + kMorselRows : n;
    Status st = fn(m, begin, end);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PoolMorselExecutor
// ---------------------------------------------------------------------------

struct PoolMorselExecutor::Impl {
  // kActuator: leaf-ish rank, below scheduler/basket (morsel fns may run
  // under an engine context that already holds those) and above metrics/
  // logging, which morsel bodies are allowed to touch. The mutex is never
  // held while fn runs.
  Mutex mu{LockRank::kActuator};
  CondVar work_cv;  // workers wait for a job or shutdown
  CondVar done_cv;  // Run() waits for the last morsel
  // Touched only by the owner thread (constructor spawn, destructor join);
  // workers never look at the vector that holds them.
  std::vector<std::thread> threads DC_UNGUARDED;

  // Current job; valid while job_fn != nullptr.
  const MorselFn* job_fn DC_GUARDED_BY(mu) = nullptr;
  size_t job_n DC_GUARDED_BY(mu) = 0;
  size_t job_rows DC_GUARDED_BY(mu) = 0;
  size_t job_morsels DC_GUARDED_BY(mu) = 0;
  size_t next DC_GUARDED_BY(mu) = 0;
  size_t done DC_GUARDED_BY(mu) = 0;
  Status error DC_GUARDED_BY(mu);
  bool stopping DC_GUARDED_BY(mu) = false;

  // Claims and runs morsels of the current job until none remain.
  // Returns with mu held; caller decides whether to wait or return.
  void DrainLocked() DC_REQUIRES(mu) {
    while (job_fn != nullptr && next < job_morsels) {
      const size_t m = next++;
      const size_t begin = m * job_rows;
      const size_t end =
          (begin + job_rows < job_n) ? begin + job_rows : job_n;
      const MorselFn* fn = job_fn;
      const bool skip = !error.ok();
      mu.Unlock();
      Status st = Status::OK();
      if (!skip) {
        // Inline-force inside the morsel: a kernel that itself calls
        // RunMorsels must not re-enter this pool from a worker.
        ScopedMorselExecutor inline_only(nullptr);
        st = (*fn)(m, begin, end);
      }
      mu.Lock();
      if (!st.ok() && error.ok()) error = st;
      ++done;
      if (done == job_morsels) done_cv.NotifyAll();
    }
  }

  void WorkerLoop() {
    MutexLock lock(&mu);
    while (true) {
      if (stopping) return;
      if (job_fn != nullptr && next < job_morsels) {
        DrainLocked();
        continue;
      }
      work_cv.Wait(&mu);
    }
  }
};

PoolMorselExecutor::PoolMorselExecutor(size_t extra_threads)
    : impl_(std::make_unique<Impl>()) {
  impl_->threads.reserve(extra_threads);
  for (size_t i = 0; i < extra_threads; ++i) {
    impl_->threads.emplace_back([impl = impl_.get()] { impl->WorkerLoop(); });
  }
}

PoolMorselExecutor::~PoolMorselExecutor() {
  {
    MutexLock lock(&impl_->mu);
    impl_->stopping = true;
    impl_->work_cv.NotifyAll();
  }
  for (std::thread& t : impl_->threads) t.join();
}

size_t PoolMorselExecutor::parallelism() const {
  return impl_->threads.size() + 1;
}

Status PoolMorselExecutor::Run(size_t n, size_t morsel_rows,
                               const MorselFn& fn) {
  if (n == 0) return Status::OK();
  Impl* impl = impl_.get();
  MutexLock lock(&impl->mu);
  impl->job_fn = &fn;
  impl->job_n = n;
  impl->job_rows = morsel_rows;
  impl->job_morsels = NumMorsels(n, morsel_rows);
  impl->next = 0;
  impl->done = 0;
  impl->error = Status::OK();
  impl->work_cv.NotifyAll();
  // The submitting thread participates — with zero extra threads this
  // degenerates to the inline loop.
  impl->DrainLocked();
  while (impl->done < impl->job_morsels) impl->done_cv.Wait(&impl->mu);
  impl->job_fn = nullptr;
  return impl->error;
}

}  // namespace datacell::ops
