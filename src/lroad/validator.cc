#include "lroad/validator.h"

#include <cmath>
#include <unordered_map>

#include "lroad/history.h"
#include "util/strings.h"

namespace datacell::lroad {

namespace {

// Is `toll` a possible output of toll = 2 * (n - 50)^2 with n > 50?
bool ValidTollValue(int64_t toll) {
  if (toll <= 0 || toll % 2 != 0) return false;
  const int64_t half = toll / 2;
  const int64_t root = static_cast<int64_t>(std::llround(std::sqrt(
      static_cast<double>(half))));
  return root > 0 && root * root == half;
}

}  // namespace

ValidationReport Validate(const Driver::Report& report) {
  ValidationReport out;
  out.injected_accidents = report.injected_accidents.size();

  // 1. Accident detection. Detection requires 4 identical consecutive
  // reports (≥ 90 s after the stop), then a car crossing into the zone.
  for (const auto& acc : report.injected_accidents) {
    const int64_t lifetime = acc.clear_time - acc.start_time;
    if (lifetime < 5 * kReportIntervalSec) continue;  // too brief to detect
    ++out.detectable_accidents;
    bool detected = false;
    for (const Driver::AlertRecord& alert : report.accident_alert_log) {
      if (alert.xway != acc.xway) continue;
      if (alert.seg != acc.seg) continue;
      if (alert.time < acc.start_time + 3 * kReportIntervalSec) continue;
      if (alert.time > acc.clear_time + 4 * kReportIntervalSec) continue;
      detected = true;
      break;
    }
    if (detected) ++out.detected_accidents;
  }

  // Alerts must never report a toll charge.
  for (const Driver::AlertRecord& alert : report.accident_alert_log) {
    ++out.alerts_checked;
    if (alert.toll != 0) {
      out.errors.push_back(StringPrintf(
          "accident alert for vid %lld carries toll %lld",
          static_cast<long long>(alert.vid), static_cast<long long>(alert.toll)));
    }
  }

  // 2. Toll soundness: every distinct charged value fits 2*(n-50)^2.
  for (const auto& [value, count] : report.toll_value_counts) {
    (void)count;
    ++out.tolls_checked;
    if (!ValidTollValue(value)) {
      out.errors.push_back(StringPrintf(
          "charged toll %lld is not of the form 2*(n-50)^2",
          static_cast<long long>(value)));
      if (out.errors.size() > 20) return out;
    }
  }
  for (const auto& [vid, total] : report.tolls_charged_per_vid) {
    (void)vid;
    if (total < 0) out.errors.push_back("negative accumulated toll");
  }

  // 3. Balance consistency: final balance == sum of charged tolls.
  for (const auto& [vid, balance] : report.final_balances) {
    ++out.balances_checked;
    auto it = report.tolls_charged_per_vid.find(vid);
    const int64_t charged = it == report.tolls_charged_per_vid.end()
                                ? 0
                                : it->second;
    if (charged != balance) {
      out.errors.push_back(StringPrintf(
          "vid %lld: final balance %lld != charged tolls %lld",
          static_cast<long long>(vid), static_cast<long long>(balance),
          static_cast<long long>(charged)));
      if (out.errors.size() > 20) return out;
    }
  }
  // Balance answers must be monotone snapshots bounded by the final value.
  std::unordered_map<int64_t, int64_t> last_answer;
  for (const Driver::BalanceRecord& b : report.balance_log) {
    auto fit = report.final_balances.find(b.vid);
    const int64_t final_balance =
        fit == report.final_balances.end() ? 0 : fit->second;
    if (b.balance > final_balance) {
      out.errors.push_back(StringPrintf(
          "vid %lld: balance answer %lld exceeds final balance %lld",
          static_cast<long long>(b.vid), static_cast<long long>(b.balance),
          static_cast<long long>(final_balance)));
      if (out.errors.size() > 20) return out;
    }
    int64_t& prev = last_answer[b.vid];
    if (b.balance < prev) {
      out.errors.push_back(StringPrintf(
          "vid %lld: balance answers not monotone (%lld after %lld)",
          static_cast<long long>(b.vid), static_cast<long long>(b.balance),
          static_cast<long long>(prev)));
    }
    prev = b.balance;
  }
  out.balances_checked += report.balance_log.size();

  // 4. Expenditure answers match the deterministic history.
  TollHistory history(report.history_seed);
  for (const Driver::ExpenditureRecord& e : report.expenditure_log) {
    ++out.expenditures_checked;
    const int64_t expect = history.DailyExpenditure(e.vid, e.day, e.xway);
    if (expect != e.expenditure) {
      out.errors.push_back(StringPrintf(
          "expenditure answer qid %lld: got %lld want %lld",
          static_cast<long long>(e.qid), static_cast<long long>(e.expenditure),
          static_cast<long long>(expect)));
      if (out.errors.size() > 20) return out;
    }
  }
  return out;
}

}  // namespace datacell::lroad
