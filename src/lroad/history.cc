#include "lroad/history.h"

namespace datacell::lroad {

namespace {

// SplitMix64: decorrelates the composite key.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

int64_t TollHistory::DailyExpenditure(int64_t vid, int64_t day,
                                      int64_t xway) const {
  uint64_t h = Mix(seed_ ^ Mix(static_cast<uint64_t>(vid)) ^
                   Mix(static_cast<uint64_t>(day) * 0x100000001B3ULL) ^
                   Mix(static_cast<uint64_t>(xway) + 0x12345ULL));
  // Daily expenditure in [0, 100) dollars, in cents.
  return static_cast<int64_t>(h % 10000);
}

Table TollHistory::Materialize(int64_t num_vids, int64_t num_xways) const {
  Table t(Schema({{"vid", DataType::kInt64},
                  {"day", DataType::kInt64},
                  {"xway", DataType::kInt64},
                  {"toll", DataType::kInt64}}));
  for (int64_t vid = 0; vid < num_vids; ++vid) {
    for (int64_t day = 1; day <= kHistoryDays; ++day) {
      for (int64_t xway = 0; xway < num_xways; ++xway) {
        t.column(0).AppendInt(vid);
        t.column(1).AppendInt(day);
        t.column(2).AppendInt(xway);
        t.column(3).AppendInt(DailyExpenditure(vid, day, xway));
      }
    }
  }
  return t;
}

}  // namespace datacell::lroad
