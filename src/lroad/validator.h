#ifndef DATACELL_LROAD_VALIDATOR_H_
#define DATACELL_LROAD_VALIDATOR_H_

#include <string>
#include <vector>

#include "lroad/driver.h"

namespace datacell::lroad {

/// Self-validation of a Linear Road run (substitute for the official
/// validator tool; see DESIGN.md §5). Checks:
///  1. Accident detection: every injected accident that lasted long enough
///     to be detectable (≥ 5 report intervals) and had traffic crossing
///     its zone produced at least one accident alert with the right
///     expressway/segment, no earlier than detection is possible.
///  2. Toll soundness: every charged toll is a valid output of the toll
///     formula 2·(n−50)², n > 50.
///  3. Balance consistency: the network's final account balance of every
///     vehicle equals the sum of its charged toll notifications, and every
///     balance answer is bounded by the final balance.
///  4. Expenditure answers equal the deterministic toll history.
struct ValidationReport {
  size_t injected_accidents = 0;
  size_t detectable_accidents = 0;
  size_t detected_accidents = 0;
  size_t alerts_checked = 0;
  size_t tolls_checked = 0;
  size_t balances_checked = 0;
  size_t expenditures_checked = 0;
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
  /// Fraction of detectable accidents that produced an alert.
  double DetectionRatio() const {
    return detectable_accidents == 0
               ? 1.0
               : static_cast<double>(detected_accidents) /
                     static_cast<double>(detectable_accidents);
  }
};

ValidationReport Validate(const Driver::Report& report);

}  // namespace datacell::lroad

#endif  // DATACELL_LROAD_VALIDATOR_H_
