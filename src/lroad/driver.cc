#include "lroad/driver.h"

#include <algorithm>

#include "core/scheduler.h"
#include "util/clock.h"
#include "util/logging.h"

namespace datacell::lroad {

Result<Driver::Report> Driver::Run(const Options& options,
                                   std::ostream* progress) {
  SimulatedClock clock(0);
  core::Engine engine(&clock);
  Generator generator(options.generator);
  ASSIGN_OR_RETURN(std::unique_ptr<Network> network,
                   Network::Create(&engine, options.network));
  SystemClock* wall = SystemClock::Get();

  Report report;
  report.history_seed = options.network.history_seed;
  obs::Histogram batch_latency;

  // Per-collection bookkeeping for the current sample window.
  struct WindowStats {
    uint64_t firings = 0;
    Micros exec = 0;
    double max_ms = 0;
  };
  std::array<WindowStats, 7> window{};
  std::array<core::Factory::Stats, 7> last_stats{};
  int64_t window_start = 0;

  // Fig 9 bookkeeping.
  uint64_t q7_tuples_in_window = 0;
  uint64_t q7_tuples_total = 0;
  core::Factory::Stats q7_last = network->collections()[6]->stats();

  const int64_t duration = options.generator.duration_sec;
  for (int64_t t = 0; t < duration; ++t) {
    clock.SetTime(t * kMicrosPerSecond);
    Table batch = generator.NextSecond();
    uint64_t batch_pos_reports = 0;
    if (batch.num_rows() > 0) {
      const auto& types = batch.column(0).ints();
      for (int64_t ty : types) {
        if (ty == 0) ++batch_pos_reports;
      }
    }
    const Micros wall0 = wall->Now();
    RETURN_NOT_OK(network->DeliverInput(batch));
    ASSIGN_OR_RETURN(size_t rounds, engine.scheduler().RunUntilQuiescent());
    (void)rounds;
    const Micros batch_us = wall->Now() - wall0;
    batch_latency.Record(batch_us);
    const double batch_ms = static_cast<double>(batch_us) / kMicrosPerMilli;
    report.max_batch_wall_ms = std::max(report.max_batch_wall_ms, batch_ms);
    if (batch_ms > kDeadlineTollSec * 1000.0) ++report.deadline_violations;

    // Update per-collection window stats.
    for (size_t c = 0; c < 7; ++c) {
      const core::Factory::Stats now_stats =
          network->collections()[c]->stats();
      if (now_stats.firings > last_stats[c].firings) {
        window[c].firings += now_stats.firings - last_stats[c].firings;
        window[c].exec += now_stats.total_exec - last_stats[c].total_exec;
        window[c].max_ms =
            std::max(window[c].max_ms, static_cast<double>(now_stats.last_exec) /
                                           kMicrosPerMilli);
      }
      last_stats[c] = now_stats;
    }

    // Fig 9: Q7 average response per tuple window.
    q7_tuples_in_window += batch_pos_reports;
    q7_tuples_total += batch_pos_reports;
    if (q7_tuples_in_window >= options.q7_window_tuples) {
      const core::Factory::Stats q7_now = network->collections()[6]->stats();
      const uint64_t df = q7_now.firings - q7_last.firings;
      const double avg_ms =
          df == 0 ? 0.0
                  : static_cast<double>(q7_now.total_exec - q7_last.total_exec) /
                        static_cast<double>(df) / kMicrosPerMilli;
      report.q7_response.emplace_back(q7_tuples_total, avg_ms);
      q7_last = q7_now;
      q7_tuples_in_window = 0;
    }

    // Drain the output baskets into compact logs/counters.
    {
      Table alerts = network->alerts()->TakeAll();
      if (alerts.num_rows() > 0) {
        const auto& atype = alerts.column(0).ints();
        const auto& vid = alerts.column(1).ints();
        const auto& time = alerts.column(2).ints();
        const auto& xway = alerts.column(4).ints();
        const auto& seg = alerts.column(5).ints();
        const auto& toll = alerts.column(7).ints();
        for (size_t i = 0; i < alerts.num_rows(); ++i) {
          if (atype[i] == 1) {
            ++report.accident_alerts;
            report.accident_alert_log.push_back(
                AlertRecord{atype[i], vid[i], time[i], xway[i], seg[i], toll[i]});
          } else {
            ++report.toll_notifications;
            if (toll[i] > 0) {
              ++report.tolls_nonzero;
              report.tolls_charged_per_vid[vid[i]] += toll[i];
              ++report.toll_value_counts[toll[i]];
            }
          }
        }
      }
      Table balances = network->balance_answers()->TakeAll();
      for (size_t i = 0; i < balances.num_rows(); ++i) {
        ++report.balance_answers;
        report.balance_log.push_back(
            BalanceRecord{balances.column(0).ints()[i],
                          balances.column(3).ints()[i],
                          balances.column(1).ints()[i],
                          balances.column(4).ints()[i]});
      }
      Table exps = network->expenditure_answers()->TakeAll();
      for (size_t i = 0; i < exps.num_rows(); ++i) {
        ++report.expenditure_answers;
        report.expenditure_log.push_back(
            ExpenditureRecord{exps.column(0).ints()[i],
                              exps.column(3).ints()[i],
                              exps.column(4).ints()[i],
                              exps.column(5).ints()[i],
                              exps.column(6).ints()[i]});
      }
    }

    // Sample-window rollover.
    if ((t + 1) % options.sample_every_sec == 0 || t + 1 == duration) {
      const int64_t span = t + 1 - window_start;
      const uint64_t before = report.total_tuples;
      report.total_tuples = generator.tuples_generated();
      report.arrival_rate.emplace_back(
          t + 1, static_cast<double>(report.total_tuples - before) /
                     static_cast<double>(std::max<int64_t>(span, 1)));
      report.cumulative_tuples.emplace_back(t + 1, report.total_tuples);
      for (size_t c = 0; c < 7; ++c) {
        LoadSample sample;
        sample.sim_sec = t + 1;
        sample.firings = window[c].firings;
        sample.max_ms = window[c].max_ms;
        sample.avg_ms =
            window[c].firings == 0
                ? 0.0
                : static_cast<double>(window[c].exec) /
                      static_cast<double>(window[c].firings) / kMicrosPerMilli;
        report.collection_load[c].push_back(sample);
        window[c] = WindowStats{};
      }
      window_start = t + 1;
    }
    if (progress != nullptr && (t + 1) % 600 == 0) {
      (*progress) << "  [lroad] t=" << (t + 1) << "s tuples="
                  << generator.tuples_generated()
                  << " cars=" << generator.active_cars()
                  << " accidents=" << generator.injected_accidents().size()
                  << " batch_ms=" << batch_ms << "\n";
      progress->flush();
    }
  }

  report.total_tuples = generator.tuples_generated();
  report.injected_accidents = generator.injected_accidents();
  report.final_balances = network->accounts();
  report.batch_latency = batch_latency.Snapshot();
  return report;
}

}  // namespace datacell::lroad
