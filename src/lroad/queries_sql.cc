#include "lroad/queries_sql.h"

namespace datacell::lroad {

// Collection sizes follow Figure 6's printed counts (3, 5, 5, 4, 2, 18, 1
// queries): Q1 = 3 (stopped cars / accidents), Q2 = 5 (statistics),
// Q3 = 5 (statistics'), Q4 = 1 (filter by type), Q5 = 4 (daily
// expenditure), Q6 = 2 (account balance), Q7 = 18 (toll/accident alerts).

std::vector<std::string> LinearRoadSchemaSql() {
  return {
      // The input stream and the per-collection stage baskets.
      "create basket lr_in (type int, time int, vid int, speed int, "
      "xway int, lane int, dir int, seg int, pos int, qid int, day int)",
      "create basket lr_pos (time int, vid int, speed int, xway int, "
      "lane int, dir int, seg int, pos int)",
      "create basket lr_pos_stats (time int, vid int, speed int, xway int, "
      "lane int, dir int, seg int)",
      "create basket lr_pos_toll (time int, vid int, xway int, lane int, "
      "dir int, seg int)",
      "create basket lr_balreq (time int, vid int, qid int)",
      "create basket lr_expreq (time int, vid int, qid int, xway int, "
      "day int)",
      // Q1 intermediates.
      "create basket lr_zero_speed (time int, vid int, xway int, dir int, "
      "pos int)",
      "create basket lr_stopped (time int, vid int, xway int, dir int, "
      "pos int)",
      "create basket lr_accidents (time int, xway int, dir int, seg int)",
      "create basket lr_acc_cleared (time int, xway int, dir int, seg int)",
      // Q2/Q3 intermediates.
      "create basket lr_minute_stats (minute int, xway int, dir int, "
      "seg int, avg_speed double, cars int)",
      "create basket lr_lav (minute int, xway int, dir int, seg int, "
      "lav double, cars int)",
      "create basket lr_crossings (time int, vid int, xway int, dir int, "
      "seg int)",
      // Persistent state and outputs.
      "create table lr_seg_tolls (xway int, dir int, seg int, toll int)",
      "create table lr_accidents_active (xway int, dir int, seg int, "
      "since int)",
      "create table lr_accounts (vid int, balance int)",
      "create table lr_toll_history (vid int, day int, xway int, toll int)",
      "create table lr_out_tolls (vid int, time int, lav int, toll int)",
      "create table lr_out_alerts (vid int, time int, seg int)",
      "create table lr_out_balance (qid int, time int, vid int, "
      "balance int)",
      "create table lr_out_expenditure (qid int, time int, vid int, "
      "expenditure int)",
      "create table lr_trash (time int, vid int, xway int, dir int, "
      "pos int)",
      // Session variables used by the window queries.
      "declare cur_minute int",
      "set cur_minute = 0",
  };
}

const std::vector<LogicalQuery>& LinearRoadQueriesSql() {
  static const std::vector<LogicalQuery>* queries = new std::vector<
      LogicalQuery>{
      // --- Q4: filter by type (1) -------------------------------------------
      {"Q4", "route_by_type",
       "with t as [select * from lr_in] begin "
       "insert into lr_pos select t.time, t.vid, t.speed, t.xway, t.lane, "
       "t.dir, t.seg, t.pos from t where t.type = 0; "
       "insert into lr_pos_stats select t.time, t.vid, t.speed, t.xway, "
       "t.lane, t.dir, t.seg from t where t.type = 0; "
       "insert into lr_pos_toll select t.time, t.vid, t.xway, t.lane, "
       "t.dir, t.seg from t where t.type = 0; "
       "insert into lr_balreq select t.time, t.vid, t.qid from t "
       "where t.type = 2; "
       "insert into lr_expreq select t.time, t.vid, t.qid, t.xway, t.day "
       "from t where t.type = 3; "
       "end",
       true},

      // --- Q1: stopped cars and accidents (3) -------------------------------
      {"Q1", "zero_speed_reports",
       "insert into lr_zero_speed select z.time, z.vid, z.xway, z.dir, "
       "z.pos from [select * from lr_pos where lr_pos.speed = 0 and "
       "lr_pos.lane >= 1 and lr_pos.lane <= 3] as z",
       true},
      {"Q1", "stopped_cars",
       // Four consecutive identical reports: grouped over the retained
       // zero-speed window (predicate window keeps recent epochs only).
       "insert into lr_stopped select max(z.time) time, z.vid, z.xway, "
       "z.dir, z.pos from [select * from lr_zero_speed] as z "
       "group by z.vid, z.xway, z.dir, z.pos having count(*) >= 4",
       true},
      {"Q1", "create_accidents",
       "insert into lr_accidents select max(s.time) time, s.xway, s.dir, "
       "s.pos / 5280 seg from [select * from lr_stopped] as s "
       "group by s.xway, s.dir, s.pos having count(*) >= 2",
       true},

      // --- Q2: per-minute statistics (5) -------------------------------------
      {"Q2", "minute_speed",
       "insert into lr_minute_stats select p.time / 60 minute, p.xway, "
       "p.dir, p.seg, avg(p.speed) avg_speed, count(*) cars "
       "from [select * from lr_pos_stats where lr_pos_stats.lane <= 3] as p "
       "group by p.time / 60, p.xway, p.dir, p.seg",
       true},
      {"Q2", "distinct_cars_minute",
       "select s.minute, s.xway, s.dir, s.seg, count(*) cars from "
       "lr_minute_stats s group by s.minute, s.xway, s.dir, s.seg",
       false},
      {"Q2", "entry_lane_volume",
       "select p.xway, p.seg, count(*) entries from lr_pos_stats p "
       "where p.lane = 0 group by p.xway, p.seg",
       false},
      {"Q2", "exit_lane_volume",
       "select p.xway, p.seg, count(*) exits from lr_pos_stats p "
       "where p.lane = 4 group by p.xway, p.seg",
       false},
      {"Q2", "speed_histogram",
       "select p.speed / 10 bucket, count(*) n from lr_pos_stats p "
       "group by p.speed / 10 order by bucket",
       false},

      // --- Q3: statistics' — LAV and tolls (5) --------------------------------
      {"Q3", "five_minute_lav",
       "insert into lr_lav select m.minute, m.xway, m.dir, m.seg, "
       "avg(m.avg_speed) lav, max(m.cars) cars from "
       "[select * from lr_minute_stats where "
       "lr_minute_stats.minute >= cur_minute - 5] as m "
       "group by m.minute, m.xway, m.dir, m.seg",
       true},
      {"Q3", "congested_segments",
       "select l.xway, l.dir, l.seg from lr_lav l where l.lav < 40 and "
       "l.cars > 50",
       false},
      {"Q3", "update_current_tolls",
       "insert into lr_seg_tolls select l.xway, l.dir, l.seg, "
       "2 * (l.cars - 50) * (l.cars - 50) toll from "
       "[select * from lr_lav where lr_lav.lav < 40 and lr_lav.cars > 50] "
       "as l",
       true},
      {"Q3", "clear_uncongested_tolls",
       "insert into lr_trash select l.minute, 0 vid, l.xway, l.dir, "
       "l.seg from [select * from lr_lav where lr_lav.lav >= 40] as l",
       true},
      {"Q3", "toll_statistics",
       "select t.xway, avg(t.toll) mean_toll, max(t.toll) max_toll from "
       "lr_seg_tolls t group by t.xway",
       false},

      // --- Q7: toll notifications and accident alerts (18) --------------------
      {"Q7", "segment_crossings",
       "insert into lr_crossings select p.time, p.vid, p.xway, p.dir, "
       "p.seg from [select * from lr_pos_toll where lr_pos_toll.lane < 4] "
       "as p",
       true},
      {"Q7", "accident_zone_0",
       "insert into lr_out_alerts select c.vid, c.time, c.seg from "
       "[select * from lr_crossings, lr_accidents where "
       "lr_crossings.seg = lr_accidents.seg] as c",
       true},
      {"Q7", "accident_zone_1",
       "select c.vid, c.time, a.seg from lr_crossings c, "
       "lr_accidents_active a where c.xway = a.xway and c.dir = a.dir "
       "and c.seg = a.seg - 1",
       false},
      {"Q7", "accident_zone_2",
       "select c.vid, c.time, a.seg from lr_crossings c, "
       "lr_accidents_active a where c.xway = a.xway and c.dir = a.dir "
       "and c.seg = a.seg - 2",
       false},
      {"Q7", "accident_zone_3",
       "select c.vid, c.time, a.seg from lr_crossings c, "
       "lr_accidents_active a where c.xway = a.xway and c.dir = a.dir "
       "and c.seg = a.seg - 3",
       false},
      {"Q7", "accident_zone_4",
       "select c.vid, c.time, a.seg from lr_crossings c, "
       "lr_accidents_active a where c.xway = a.xway and c.dir = a.dir "
       "and c.seg = a.seg - 4",
       false},
      {"Q7", "toll_for_crossing",
       "insert into lr_out_tolls select c.vid, c.time, 0 lav, t.toll from "
       "[select * from lr_crossings] as c, lr_seg_tolls t "
       "where c.xway = t.xway and c.dir = t.dir and c.seg = t.seg",
       true},
      {"Q7", "zero_toll_notification",
       "select c.vid, c.time from lr_crossings c where c.seg >= 0",
       false},
      {"Q7", "charge_account",
       "insert into lr_accounts select o.vid, sum(o.toll) balance from "
       "lr_out_tolls o group by o.vid",
       false},
      {"Q7", "account_rollup",
       "select a.vid, sum(a.balance) total from lr_accounts a group by "
       "a.vid having sum(a.balance) > 0",
       false},
      {"Q7", "toll_history_append",
       "insert into lr_toll_history select o.vid, 0 day, 0 xway, o.toll "
       "from lr_out_tolls o where o.toll > 0",
       false},
      {"Q7", "dedup_notifications",
       "select distinct o.vid, o.time from lr_out_tolls o",
       false},
      {"Q7", "reissue_after_accident_clear",
       "insert into lr_out_tolls select c.vid, c.time, 0 lav, 0 toll from "
       "[select * from lr_crossings, lr_acc_cleared where "
       "lr_crossings.seg = lr_acc_cleared.seg] as c",
       true},
      {"Q7", "alert_dedup",
       "select distinct a.vid, a.seg from lr_out_alerts a",
       false},
      {"Q7", "per_minute_toll_revenue",
       "select o.time / 60 minute, sum(o.toll) revenue from lr_out_tolls o "
       "group by o.time / 60 order by minute",
       false},
      {"Q7", "most_charged_vehicles",
       "select o.vid, sum(o.toll) paid from lr_out_tolls o group by o.vid "
       "order by paid desc limit 10",
       false},
      {"Q7", "alerts_per_accident",
       "select a.seg, count(*) n from lr_out_alerts a group by a.seg",
       false},
      {"Q7", "notification_latency_audit",
       "select max(o.time) newest from lr_out_tolls o",
       false},

      // --- Q6: account balances (2) -------------------------------------------
      {"Q6", "answer_balance",
       "insert into lr_out_balance select r.qid, r.time, r.vid, "
       "(select sum(a.balance) from lr_accounts a) balance "
       "from [select * from lr_balreq] as r",
       true},
      {"Q6", "negative_balance_audit",
       "select a.vid from lr_accounts a where a.balance < 0",
       false},

      // --- Q5: daily expenditures (4) ------------------------------------------
      {"Q5", "answer_expenditure",
       "insert into lr_out_expenditure select r.qid, r.time, r.vid, "
       "(select sum(h.toll) from lr_toll_history h) expenditure "
       "from [select * from lr_expreq] as r",
       true},
      {"Q5", "history_by_day",
       "select h.day, sum(h.toll) total from lr_toll_history h "
       "group by h.day order by h.day",
       false},
      {"Q5", "history_by_vehicle",
       "select h.vid, h.xway, sum(h.toll) total from lr_toll_history h "
       "group by h.vid, h.xway",
       false},
      {"Q5", "expenditure_answer_audit",
       "select count(*) answered from lr_out_expenditure",
       false},
  };
  return *queries;
}

}  // namespace datacell::lroad
