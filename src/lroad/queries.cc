#include "lroad/queries.h"

#include <algorithm>

#include "util/logging.h"

namespace datacell::lroad {

namespace {

Schema StatsSchema() {
  return Schema({{"minute", DataType::kInt64},
                 {"xway", DataType::kInt64},
                 {"dir", DataType::kInt64},
                 {"seg", DataType::kInt64},
                 {"avg_speed", DataType::kDouble},
                 {"cars", DataType::kInt64},
                 {"reports", DataType::kInt64}});
}

// Basket helper: internal pipeline baskets carry their producer's schema
// verbatim (no extra arrival column; the input basket already stamped one).
core::BasketPtr MakeStage(const std::string& name, const Schema& schema) {
  return std::make_shared<core::Basket>(name, schema, /*add_arrival_ts=*/false);
}

}  // namespace

int64_t Network::account_balance(int64_t vid) const {
  auto it = state_->accounts.find(vid);
  return it == state_->accounts.end() ? 0 : it->second;
}

Status Network::DeliverInput(const Table& batch) {
  ASSIGN_OR_RETURN(size_t n, input_->Append(batch, engine_->Now()));
  (void)n;
  return Status::OK();
}

Result<std::unique_ptr<Network>> Network::Create(core::Engine* engine,
                                                 Options options) {
  auto net = std::unique_ptr<Network>(new Network());
  net->engine_ = engine;
  net->history_ = TollHistory(options.history_seed);
  net->state_ = std::make_shared<State>();

  // --- Baskets --------------------------------------------------------------
  ASSIGN_OR_RETURN(net->input_, engine->CreateBasket("lr_input", InputSchema()));
  const Schema& full = net->input_->schema();  // includes dc_arrival
  net->pos_q1_ = MakeStage("lr_pos_q1", full);
  net->pos_q2_ = MakeStage("lr_pos_q2", full);
  net->pos_q7_ = MakeStage("lr_pos_q7", full);
  net->bal_req_ = MakeStage("lr_bal_req", full);
  net->exp_req_ = MakeStage("lr_exp_req", full);
  net->stats_ = MakeStage("lr_stats", StatsSchema());
  net->alerts_ = MakeStage("lr_alerts", TollAlertSchema());
  net->balance_out_ = MakeStage("lr_balance_out", BalanceAnswerSchema());
  net->exp_out_ = MakeStage("lr_exp_out", ExpenditureAnswerSchema());

  std::shared_ptr<State> st = net->state_;
  const TollHistory history = net->history_;

  // --- Q4: filter by type (2 logical queries) -------------------------------
  // Routes balance/expenditure requests and replicates position reports to
  // the three collections that consume them (column-store fan-out).
  {
    core::BasketPtr in = net->input_;
    core::BasketPtr q1 = net->pos_q1_, q2 = net->pos_q2_, q7 = net->pos_q7_;
    core::BasketPtr bal = net->bal_req_, exp = net->exp_req_;
    auto body = [in, q1, q2, q7, bal, exp](core::FactoryContext& ctx) -> Status {
      Table all = in->TakeAll();
      const auto& type = all.column(0).ints();
      SelVector pos_sel, bal_sel, exp_sel;
      for (uint32_t i = 0; i < all.num_rows(); ++i) {
        switch (type[i]) {
          case 0:
            pos_sel.push_back(i);
            break;
          case 2:
            bal_sel.push_back(i);
            break;
          case 3:
            exp_sel.push_back(i);
            break;
          default:
            break;  // unknown types are silently dropped
        }
      }
      if (!pos_sel.empty()) {
        Table pos = all.Take(pos_sel);
        for (const core::BasketPtr& b : {q1, q2, q7}) {
          ASSIGN_OR_RETURN(size_t n, b->AppendAligned(pos, ctx.now()));
          (void)n;
        }
      }
      if (!bal_sel.empty()) {
        ASSIGN_OR_RETURN(size_t n, bal->AppendAligned(all.Take(bal_sel), ctx.now()));
        (void)n;
      }
      if (!exp_sel.empty()) {
        ASSIGN_OR_RETURN(size_t n, exp->AppendAligned(all.Take(exp_sel), ctx.now()));
        (void)n;
      }
      return Status::OK();
    };
    auto f = std::make_shared<core::Factory>("lr_q4_filter_by_type", body);
    f->AddInput(net->input_);
    for (const core::BasketPtr& b :
         {net->pos_q1_, net->pos_q2_, net->pos_q7_, net->bal_req_,
          net->exp_req_}) {
      f->AddOutput(b);
    }
    net->collections_[3] = f;
  }

  // --- Q1: stopped cars + accident creation/clearing (3 queries) ------------
  {
    core::BasketPtr in = net->pos_q1_;
    auto body = [in, st](core::FactoryContext&) -> Status {
      Table batch = in->TakeAll();
      const auto& time = batch.column(1).ints();
      const auto& vid = batch.column(2).ints();
      const auto& speed = batch.column(3).ints();
      const auto& xway = batch.column(4).ints();
      const auto& lane = batch.column(5).ints();
      const auto& dir = batch.column(6).ints();
      const auto& seg = batch.column(7).ints();
      const auto& pos = batch.column(8).ints();
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        StopTrack& track = st->stop_tracks[vid[i]];
        const int64_t key = PosKey(xway[i], dir[i], pos[i]);
        const bool stationary = speed[i] == 0 && lane[i] != kLaneExit &&
                                lane[i] != kLaneEntry;
        if (stationary && track.pos_key == key) {
          ++track.consecutive;
        } else {
          // The car moved (or sped up): release its stopped-car status.
          if (track.consecutive >= kStoppedReports && track.pos_key >= 0) {
            auto at = st->stopped_at.find(track.pos_key);
            if (at != st->stopped_at.end()) {
              at->second.erase(vid[i]);
              if (at->second.size() < 2) {
                // Accident (if any) at this position is cleared.
                const int64_t route_len =
                    kSegmentsPerXway * kFeetPerSegment + 1;
                const int64_t old_pos = track.pos_key % route_len;
                const int64_t route = track.pos_key / route_len;
                st->accidents.erase(route * kSegmentsPerXway +
                                    old_pos / kFeetPerSegment);
              }
              if (at->second.empty()) st->stopped_at.erase(at);
            }
          }
          track.pos_key = stationary ? key : -1;
          track.consecutive = stationary ? 1 : 0;
        }
        if (track.consecutive == kStoppedReports) {
          auto& set = st->stopped_at[key];
          set.insert(vid[i]);
          if (set.size() >= 2) {
            const int64_t skey = SegKey(xway[i], dir[i], seg[i]);
            if (st->accidents.count(skey) == 0) {
              st->accidents[skey] = Accident{seg[i], time[i]};
            }
          }
        }
        if (lane[i] == kLaneExit) st->stop_tracks.erase(vid[i]);
      }
      return Status::OK();
    };
    auto f = std::make_shared<core::Factory>("lr_q1_accidents", body);
    f->AddInput(net->pos_q1_);
    net->collections_[0] = f;
  }

  // --- Q2: per-minute segment statistics (5 queries) ------------------------
  {
    core::BasketPtr in = net->pos_q2_;
    core::BasketPtr out = net->stats_;
    auto body = [in, out, st](core::FactoryContext& ctx) -> Status {
      Table batch = in->TakeAll();
      const auto& time = batch.column(1).ints();
      const auto& vid = batch.column(2).ints();
      const auto& speed = batch.column(3).ints();
      const auto& xway = batch.column(4).ints();
      const auto& lane = batch.column(5).ints();
      const auto& dir = batch.column(6).ints();
      const auto& seg = batch.column(7).ints();
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        const int64_t minute = time[i] / 60;
        if (minute != st->current_minute) {
          // Minute rollover: publish the finished minute's statistics.
          Table rows(StatsSchema());
          for (const auto& [skey, ms] : st->minute_stats) {
            const int64_t route = skey / kSegmentsPerXway;
            rows.column(0).AppendInt(st->current_minute);
            rows.column(1).AppendInt(route / 2);
            rows.column(2).AppendInt(route % 2);
            rows.column(3).AppendInt(skey % kSegmentsPerXway);
            rows.column(4).AppendDouble(
                ms.reports > 0 ? ms.speed_sum / static_cast<double>(ms.reports)
                               : 0.0);
            rows.column(5).AppendInt(static_cast<int64_t>(ms.cars.size()));
            rows.column(6).AppendInt(ms.reports);
          }
          st->minute_stats.clear();
          st->current_minute = minute;
          if (rows.num_rows() > 0) {
            ASSIGN_OR_RETURN(size_t n, out->AppendAligned(rows, ctx.now()));
            (void)n;
          }
        }
        if (lane[i] == kLaneExit) continue;  // exit-ramp cars do not count
        MinuteStat& ms = st->minute_stats[SegKey(xway[i], dir[i], seg[i])];
        ms.speed_sum += static_cast<double>(speed[i]);
        ms.reports += 1;
        ms.cars.insert(vid[i]);
      }
      return Status::OK();
    };
    auto f = std::make_shared<core::Factory>("lr_q2_statistics", body);
    f->AddInput(net->pos_q2_);
    f->AddOutput(net->stats_);
    net->collections_[1] = f;
  }

  // --- Q3: LAV + toll per segment (5 queries) --------------------------------
  {
    core::BasketPtr in = net->stats_;
    auto body = [in, st](core::FactoryContext&) -> Status {
      Table batch = in->TakeAll();
      const auto& minute = batch.column(0).ints();
      const auto& xway = batch.column(1).ints();
      const auto& dir = batch.column(2).ints();
      const auto& seg = batch.column(3).ints();
      const auto& avg_speed = batch.column(4).doubles();
      const auto& cars = batch.column(5).ints();
      const auto& reports = batch.column(6).ints();
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        const int64_t skey = SegKey(xway[i], dir[i], seg[i]);
        auto& window = st->stat_window[skey];
        window.push_back(FinishedMinute{minute[i],
                                        avg_speed[i] * static_cast<double>(reports[i]),
                                        reports[i], cars[i]});
        // Keep only the last kLavWindowMinutes minutes.
        const int64_t cutoff = minute[i] - kLavWindowMinutes + 1;
        window.erase(std::remove_if(window.begin(), window.end(),
                                    [cutoff](const FinishedMinute& fm) {
                                      return fm.minute < cutoff;
                                    }),
                     window.end());
        // LAV over the window; toll from the just-finished minute's count.
        double speed_sum = 0;
        int64_t report_sum = 0;
        for (const FinishedMinute& fm : window) {
          speed_sum += fm.speed_sum;
          report_sum += fm.reports;
        }
        const double lav =
            report_sum > 0 ? speed_sum / static_cast<double>(report_sum) : 0.0;
        int64_t toll = 0;
        if (lav < kTollSpeedThreshold && cars[i] > kTollCarThreshold) {
          const int64_t over = cars[i] - kTollCarThreshold;
          toll = 2 * over * over;
        }
        st->current_tolls[skey] = SegToll{lav, toll};
      }
      return Status::OK();
    };
    auto f = std::make_shared<core::Factory>("lr_q3_update_statistics", body);
    f->AddInput(net->stats_);
    net->collections_[2] = f;
  }

  // --- Q7: toll notifications + accident alerts (18 queries) ----------------
  {
    core::BasketPtr in = net->pos_q7_;
    core::BasketPtr out = net->alerts_;
    auto body = [in, out, st](core::FactoryContext& ctx) -> Status {
      Table batch = in->TakeAll();
      const auto& time = batch.column(1).ints();
      const auto& vid = batch.column(2).ints();
      const auto& xway = batch.column(4).ints();
      const auto& lane = batch.column(5).ints();
      const auto& dir = batch.column(6).ints();
      const auto& seg = batch.column(7).ints();
      Table rows(TollAlertSchema());
      const int64_t emit_time = ctx.now() / kMicrosPerSecond;
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        if (lane[i] == kLaneExit) {
          st->last_seg.erase(vid[i]);
          continue;
        }
        auto it = st->last_seg.find(vid[i]);
        const bool crossed = it == st->last_seg.end() || it->second != seg[i];
        st->last_seg[vid[i]] = seg[i];
        if (!crossed) continue;

        // Accident in the next kAccidentUpstreamSegs segments downstream?
        int64_t accident_seg = -1;
        for (int k = 0; k <= kAccidentUpstreamSegs && accident_seg < 0; ++k) {
          const int64_t s = dir[i] == 0 ? seg[i] + k : seg[i] - k;
          if (s < 0 || s >= kSegmentsPerXway) break;
          if (st->accidents.count(SegKey(xway[i], dir[i], s)) > 0) {
            accident_seg = s;
          }
        }
        if (accident_seg >= 0) {
          rows.column(0).AppendInt(1);  // accident alert
          rows.column(1).AppendInt(vid[i]);
          rows.column(2).AppendInt(time[i]);
          rows.column(3).AppendInt(emit_time);
          rows.column(4).AppendInt(xway[i]);
          rows.column(5).AppendInt(accident_seg);
          rows.column(6).AppendInt(0);
          rows.column(7).AppendInt(0);  // no toll in an accident zone
          continue;
        }
        const auto toll_it = st->current_tolls.find(SegKey(xway[i], dir[i], seg[i]));
        const int64_t toll = toll_it == st->current_tolls.end()
                                 ? 0
                                 : toll_it->second.toll;
        const int64_t lav = toll_it == st->current_tolls.end()
                                ? 0
                                : static_cast<int64_t>(toll_it->second.lav);
        rows.column(0).AppendInt(0);  // toll notification
        rows.column(1).AppendInt(vid[i]);
        rows.column(2).AppendInt(time[i]);
        rows.column(3).AppendInt(emit_time);
        rows.column(4).AppendInt(xway[i]);
        rows.column(5).AppendInt(seg[i]);
        rows.column(6).AppendInt(lav);
        rows.column(7).AppendInt(toll);
        if (toll > 0) {
          st->accounts[vid[i]] += toll;
          ++st->tolls_assessed;
        }
      }
      if (rows.num_rows() > 0) {
        ASSIGN_OR_RETURN(size_t n, out->AppendAligned(rows, ctx.now()));
        (void)n;
      }
      return Status::OK();
    };
    auto f = std::make_shared<core::Factory>("lr_q7_toll_accident_alerts", body);
    f->AddInput(net->pos_q7_);
    f->AddOutput(net->alerts_);
    net->collections_[6] = f;
  }

  // --- Q6: account balance answers (2 queries) ------------------------------
  {
    core::BasketPtr in = net->bal_req_;
    core::BasketPtr out = net->balance_out_;
    auto body = [in, out, st](core::FactoryContext& ctx) -> Status {
      Table batch = in->TakeAll();
      const auto& time = batch.column(1).ints();
      const auto& vid = batch.column(2).ints();
      const auto& qid = batch.column(9).ints();
      Table rows(BalanceAnswerSchema());
      const int64_t emit_time = ctx.now() / kMicrosPerSecond;
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        auto it = st->accounts.find(vid[i]);
        rows.column(0).AppendInt(qid[i]);
        rows.column(1).AppendInt(time[i]);
        rows.column(2).AppendInt(emit_time);
        rows.column(3).AppendInt(vid[i]);
        rows.column(4).AppendInt(it == st->accounts.end() ? 0 : it->second);
      }
      if (rows.num_rows() > 0) {
        ASSIGN_OR_RETURN(size_t n, out->AppendAligned(rows, ctx.now()));
        (void)n;
      }
      return Status::OK();
    };
    auto f = std::make_shared<core::Factory>("lr_q6_account_balance", body);
    f->AddInput(net->bal_req_);
    f->AddOutput(net->balance_out_);
    net->collections_[5] = f;
  }

  // --- Q5: daily expenditure answers (4 queries) -----------------------------
  {
    core::BasketPtr in = net->exp_req_;
    core::BasketPtr out = net->exp_out_;
    auto body = [in, out, history](core::FactoryContext& ctx) -> Status {
      Table batch = in->TakeAll();
      const auto& time = batch.column(1).ints();
      const auto& vid = batch.column(2).ints();
      const auto& xway = batch.column(4).ints();
      const auto& qid = batch.column(9).ints();
      const auto& day = batch.column(10).ints();
      Table rows(ExpenditureAnswerSchema());
      const int64_t emit_time = ctx.now() / kMicrosPerSecond;
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        const int64_t d = std::max<int64_t>(day[i], 1);
        rows.column(0).AppendInt(qid[i]);
        rows.column(1).AppendInt(time[i]);
        rows.column(2).AppendInt(emit_time);
        rows.column(3).AppendInt(vid[i]);
        rows.column(4).AppendInt(d);
        rows.column(5).AppendInt(xway[i]);
        rows.column(6).AppendInt(history.DailyExpenditure(vid[i], d, xway[i]));
      }
      if (rows.num_rows() > 0) {
        ASSIGN_OR_RETURN(size_t n, out->AppendAligned(rows, ctx.now()));
        (void)n;
      }
      return Status::OK();
    };
    auto f = std::make_shared<core::Factory>("lr_q5_daily_expenditure", body);
    f->AddInput(net->exp_req_);
    f->AddOutput(net->exp_out_);
    net->collections_[4] = f;
  }

  // Register in pipeline order so a single scheduler round pushes a batch
  // through the whole network: router, accidents, stats, stats', alerts,
  // balances, expenditures.
  for (size_t idx : {3u, 0u, 1u, 2u, 6u, 5u, 4u}) {
    engine->scheduler().Register(net->collections_[idx]);
  }
  return net;
}

}  // namespace datacell::lroad
