#ifndef DATACELL_LROAD_GENERATOR_H_
#define DATACELL_LROAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "column/table.h"
#include "lroad/types.h"
#include "util/random.h"

namespace datacell::lroad {

/// Synthetic Linear Road input generator (substitute for the official MIT
/// data generator, which is unavailable offline — see DESIGN.md §5).
///
/// It simulates cars travelling on `num_xways` expressways of 100 one-mile
/// segments: cars enter at a ramp, report (type 0) every 30 seconds, and
/// exit after a trip of several segments. The arrival rate ramps as in the
/// paper's Figure 8 — from ~17 tuples/s to ~1700 tuples/s over three hours
/// at scale factor 1, scaling linearly with the factor. Accidents are
/// injected by stopping two cars at the same position (≥4 identical
/// consecutive reports each, the detection rule) and clearing them after
/// 10-20 minutes; traffic upstream of an active accident slows down, which
/// depresses the 5-minute average velocity and triggers tolls. A fraction
/// of position reports is accompanied by account-balance (type 2) and
/// daily-expenditure (type 3) requests.
class Generator {
 public:
  struct Options {
    double scale_factor = 1.0;
    int duration_sec = kBenchmarkDurationSec;
    int num_xways = 1;
    uint64_t seed = 7;
    /// Probability that a position report is followed by a type 2 / 3
    /// historical request.
    double balance_request_prob = 0.01;
    double expenditure_request_prob = 0.005;
    /// Expected injected accidents per simulated hour (at any scale).
    double accidents_per_hour = 12.0;
  };

  /// Ground truth about an injected accident, for validation.
  struct InjectedAccident {
    int64_t xway = 0;
    int64_t dir = 0;
    int64_t seg = 0;
    int64_t pos = 0;
    int64_t start_time = 0;  // second the cars stopped
    int64_t clear_time = 0;  // second they resume
    int64_t vid1 = 0;
    int64_t vid2 = 0;
  };

  explicit Generator(Options options);

  bool Done() const { return now_ >= options_.duration_sec; }
  int64_t now() const { return now_; }

  /// The designed arrival-rate curve (position reports per second) — the
  /// quantity plotted in Figure 8.
  double TargetRate(int64_t t) const;

  /// Generates the batch for the current simulation second and advances
  /// the clock by one second.
  Table NextSecond();

  uint64_t tuples_generated() const { return tuples_generated_; }
  int64_t active_cars() const;
  int64_t max_vid() const { return next_vid_; }
  const std::vector<InjectedAccident>& injected_accidents() const {
    return injected_;
  }

 private:
  struct Car {
    int64_t vid = 0;
    int32_t xway = 0;
    int8_t dir = 0;
    int8_t lane = kLaneEntry;
    /// Report phase (spawn second % 30); detects stale bucket entries when
    /// a freed car slot is reused by a later spawn in another bucket.
    int8_t phase = 0;
    bool alive = false;
    bool stopped = false;
    double pos_ft = 0;
    double speed_mph = 0;
    /// Speed actually travelled since the last report (reduced in
    /// congestion) — the value the position report carries.
    double effective_mph = 0;
    int32_t exit_seg = 0;
    int64_t resume_time = 0;
    int64_t last_report = 0;
  };

  void SpawnCars(int64_t t, Table* out);
  void MaybeInjectAccident(int64_t t);
  void ReportCar(size_t car_index, int64_t t, Table* out);
  void EmitRequests(const Car& car, int64_t t, Table* out);
  // Active-accident slowdown factor for this car's stretch of road.
  bool InAccidentZone(const Car& car) const;
  int32_t SegOf(double pos_ft) const {
    int32_t s = static_cast<int32_t>(pos_ft) / kFeetPerSegment;
    if (s < 0) s = 0;
    if (s >= kSegmentsPerXway) s = kSegmentsPerXway - 1;
    return s;
  }

  Options options_;
  Random rng_;
  int64_t now_ = 0;
  int64_t next_vid_ = 0;
  int64_t next_qid_ = 0;
  uint64_t tuples_generated_ = 0;

  std::vector<Car> cars_;
  std::vector<uint32_t> free_slots_;
  /// Car indices bucketed by report phase (next report second % 30).
  std::vector<std::vector<uint32_t>> report_buckets_;

  std::vector<InjectedAccident> injected_;
  /// Indices into injected_ of accidents not yet cleared.
  std::vector<size_t> active_accidents_;
};

}  // namespace datacell::lroad

#endif  // DATACELL_LROAD_GENERATOR_H_
