#ifndef DATACELL_LROAD_HISTORY_H_
#define DATACELL_LROAD_HISTORY_H_

#include <cstdint>

#include "column/table.h"
#include "lroad/types.h"

namespace datacell::lroad {

/// Ten weeks of historical toll data, queried by the type-3 (daily
/// expenditure) requests.
///
/// The official benchmark ships a pre-generated history file; offline we
/// substitute a deterministic pseudo-random function of (vid, day, xway)
/// — every consumer (the Q5 answer factory, the validator, tests) computes
/// the same value, which preserves the experiment's behaviour: a historical
/// lookup per request, validatable answers. Materialize() additionally
/// renders a prefix of the history as a relational table so the SQL layer
/// can join against it like the paper's DBMS-resident history.
class TollHistory {
 public:
  explicit TollHistory(uint64_t seed = 1234) : seed_(seed) {}

  /// Total tolls (cents) vehicle `vid` paid on `day` (1..kHistoryDays) on
  /// expressway `xway`. Deterministic in (seed, vid, day, xway).
  int64_t DailyExpenditure(int64_t vid, int64_t day, int64_t xway) const;

  /// Renders rows (vid, day, xway, toll) for vid in [0, num_vids) and all
  /// days on expressway 0..num_xways-1.
  Table Materialize(int64_t num_vids, int64_t num_xways = 1) const;

 private:
  uint64_t seed_;
};

}  // namespace datacell::lroad

#endif  // DATACELL_LROAD_HISTORY_H_
