#ifndef DATACELL_LROAD_TYPES_H_
#define DATACELL_LROAD_TYPES_H_

#include <cstdint>
#include <string>

#include "column/table.h"
#include "util/status.h"

namespace datacell::lroad {

/// Linear Road constants (Arasu et al., VLDB'04), as used by §6.2.
inline constexpr int kSegmentsPerXway = 100;
inline constexpr int kFeetPerSegment = 5280;  // 1-mile segments
inline constexpr int kReportIntervalSec = 30;
inline constexpr int kBenchmarkDurationSec = 3 * 3600;  // 3 hours
inline constexpr int kHistoryDays = 69;                 // 10 weeks minus 1
inline constexpr int kLaneEntry = 0;
inline constexpr int kLaneTravelFirst = 1;
inline constexpr int kLaneTravelLast = 3;
inline constexpr int kLaneExit = 4;
/// Accident detection: same position for 4 consecutive reports.
inline constexpr int kStoppedReports = 4;
/// An accident in segment s affects cars in [s-4, s] (direction 0).
inline constexpr int kAccidentUpstreamSegs = 4;
/// Toll rule thresholds.
inline constexpr double kTollSpeedThreshold = 40.0;  // LAV < 40 mph
inline constexpr int kTollCarThreshold = 50;         // > 50 cars/minute
/// LAV window: average speed over the last 5 minutes.
inline constexpr int kLavWindowMinutes = 5;
/// Response deadlines (seconds) per the benchmark.
inline constexpr int kDeadlineTollSec = 5;
inline constexpr int kDeadlineBalanceSec = 5;
inline constexpr int kDeadlineExpenditureSec = 10;

/// Input tuple types.
enum class InputType : int64_t {
  kPositionReport = 0,
  kAccountBalance = 2,
  kDailyExpenditure = 3,
};

/// One input tuple. The full benchmark schema has 15 attributes; we carry
/// the 11 that the seven query collections consume (S_init/S_end/DOW/TOD
/// belong to the rarely-implemented type-4 travel-time query, which we do
/// not generate — see DESIGN.md).
struct InputTuple {
  int64_t type = 0;  // InputType
  int64_t time = 0;  // simulation seconds, 0..10799
  int64_t vid = 0;
  int64_t speed = 0;  // mph, 0..100
  int64_t xway = 0;
  int64_t lane = 0;  // 0..4
  int64_t dir = 0;   // 0 = increasing segment order, 1 = decreasing
  int64_t seg = 0;   // 0..99
  int64_t pos = 0;   // feet from expressway start
  int64_t qid = -1;  // query id for type 2/3
  int64_t day = 0;   // historical day for type 3 (1..69)
};

/// Column schema of the input stream basket.
Schema InputSchema();

/// Appends one tuple to a table with InputSchema() layout (typed appends,
/// no Value boxing — the generator emits millions of these).
void AppendInput(const InputTuple& t, Table* table);

/// Reads row `i` of an InputSchema() table back into a struct.
InputTuple ReadInput(const Table& table, size_t i);

/// Output schemas.
/// Toll notification / accident alert: type 0 = toll, 1 = accident alert.
Schema TollAlertSchema();
/// Account balance answer: (qid, time, result_time, vid, balance).
Schema BalanceAnswerSchema();
/// Daily expenditure answer:
/// (qid, time, result_time, vid, day, xway, expenditure).
Schema ExpenditureAnswerSchema();

}  // namespace datacell::lroad

#endif  // DATACELL_LROAD_TYPES_H_
