#include "lroad/types.h"

#include "util/logging.h"

namespace datacell::lroad {

Schema InputSchema() {
  return Schema({{"type", DataType::kInt64},
                 {"time", DataType::kInt64},
                 {"vid", DataType::kInt64},
                 {"speed", DataType::kInt64},
                 {"xway", DataType::kInt64},
                 {"lane", DataType::kInt64},
                 {"dir", DataType::kInt64},
                 {"seg", DataType::kInt64},
                 {"pos", DataType::kInt64},
                 {"qid", DataType::kInt64},
                 {"day", DataType::kInt64}});
}

void AppendInput(const InputTuple& t, Table* table) {
  DC_DCHECK(table->num_columns() == 11);
  table->column(0).AppendInt(t.type);
  table->column(1).AppendInt(t.time);
  table->column(2).AppendInt(t.vid);
  table->column(3).AppendInt(t.speed);
  table->column(4).AppendInt(t.xway);
  table->column(5).AppendInt(t.lane);
  table->column(6).AppendInt(t.dir);
  table->column(7).AppendInt(t.seg);
  table->column(8).AppendInt(t.pos);
  table->column(9).AppendInt(t.qid);
  table->column(10).AppendInt(t.day);
}

InputTuple ReadInput(const Table& table, size_t i) {
  InputTuple t;
  t.type = table.column(0).ints()[i];
  t.time = table.column(1).ints()[i];
  t.vid = table.column(2).ints()[i];
  t.speed = table.column(3).ints()[i];
  t.xway = table.column(4).ints()[i];
  t.lane = table.column(5).ints()[i];
  t.dir = table.column(6).ints()[i];
  t.seg = table.column(7).ints()[i];
  t.pos = table.column(8).ints()[i];
  t.qid = table.column(9).ints()[i];
  t.day = table.column(10).ints()[i];
  return t;
}

Schema TollAlertSchema() {
  return Schema({{"alert_type", DataType::kInt64},  // 0 = toll, 1 = accident
                 {"vid", DataType::kInt64},
                 {"time", DataType::kInt64},         // request time (sim s)
                 {"emit_time", DataType::kInt64},    // answer time (sim s)
                 {"xway", DataType::kInt64},
                 {"seg", DataType::kInt64},          // alert: accident segment
                 {"lav", DataType::kInt64},          // rounded mph
                 {"toll", DataType::kInt64}});
}

Schema BalanceAnswerSchema() {
  return Schema({{"qid", DataType::kInt64},
                 {"time", DataType::kInt64},
                 {"result_time", DataType::kInt64},
                 {"vid", DataType::kInt64},
                 {"balance", DataType::kInt64}});
}

Schema ExpenditureAnswerSchema() {
  return Schema({{"qid", DataType::kInt64},
                 {"time", DataType::kInt64},
                 {"result_time", DataType::kInt64},
                 {"vid", DataType::kInt64},
                 {"day", DataType::kInt64},
                 {"xway", DataType::kInt64},
                 {"expenditure", DataType::kInt64}});
}

}  // namespace datacell::lroad
