#ifndef DATACELL_LROAD_DRIVER_H_
#define DATACELL_LROAD_DRIVER_H_

#include <array>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "lroad/generator.h"
#include "lroad/queries.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace datacell::lroad {

/// Drives a full Linear Road run: generates the input second by second on
/// a simulated clock, pushes each batch through the DataCell network, and
/// collects the series the paper plots in Figures 7, 8 and 9 plus the
/// answer logs the validator checks.
class Driver {
 public:
  struct Options {
    Generator::Options generator;
    Network::Options network;
    /// Sampling period for the time series (sim seconds).
    int sample_every_sec = 60;
    /// Fig 9 averaging window: Q7 response averaged per this many tuples
    /// entering the collection (the paper uses 1e6 at SF 1).
    uint64_t q7_window_tuples = 100'000;
  };

  /// One point of a per-collection load series (Fig 7 b-h).
  struct LoadSample {
    int64_t sim_sec = 0;
    double max_ms = 0;  // max per-activation time in the sample window
    double avg_ms = 0;
    uint64_t firings = 0;
  };

  /// Compact answer records kept for validation.
  struct AlertRecord {
    int64_t alert_type, vid, time, xway, seg, toll;
  };
  struct BalanceRecord {
    int64_t qid, vid, time, balance;
  };
  struct ExpenditureRecord {
    int64_t qid, vid, day, xway, expenditure;
  };

  struct Report {
    // Fig 8: arrival rate (tuples/sec) per sample point.
    std::vector<std::pair<int64_t, double>> arrival_rate;
    // Fig 7(a): cumulative tuples entered.
    std::vector<std::pair<int64_t, uint64_t>> cumulative_tuples;
    // Fig 7(b-h): per-collection load, Q1..Q7.
    std::array<std::vector<LoadSample>, 7> collection_load;
    // Fig 9: (tuples seen by Q7, average response ms in window).
    std::vector<std::pair<uint64_t, double>> q7_response;

    uint64_t total_tuples = 0;
    uint64_t toll_notifications = 0;
    uint64_t accident_alerts = 0;
    uint64_t balance_answers = 0;
    uint64_t expenditure_answers = 0;
    uint64_t tolls_nonzero = 0;
    /// Wall-clock health: the benchmark's 5 s deadline applies to every
    /// output collection; with per-second batches the bound holds iff no
    /// batch takes longer than 5 s of wall time end to end.
    double max_batch_wall_ms = 0;
    uint64_t deadline_violations = 0;
    /// Full distribution of per-batch wall time (DeliverInput through
    /// quiescence, microseconds). Each batch is one simulated second of
    /// input, and every tuple's end-to-end response time is bounded by its
    /// batch's value, so the histogram's p50/p95/p99 are the reportable
    /// end-to-end tuple-latency percentiles.
    obs::HistogramSnapshot batch_latency;

    // Validation inputs.
    std::vector<Generator::InjectedAccident> injected_accidents;
    std::vector<AlertRecord> accident_alert_log;
    std::unordered_map<int64_t, int64_t> tolls_charged_per_vid;
    /// Distinct non-zero toll values and their frequency (validated against
    /// the toll formula).
    std::unordered_map<int64_t, uint64_t> toll_value_counts;
    std::vector<BalanceRecord> balance_log;
    std::vector<ExpenditureRecord> expenditure_log;
    /// Final per-vid balances from the network, for cross-checking.
    std::unordered_map<int64_t, int64_t> final_balances;
    uint64_t history_seed = 0;
  };

  /// Runs the whole benchmark; when `progress` is non-null, a one-line
  /// status is printed every 10 simulated minutes.
  static Result<Report> Run(const Options& options, std::ostream* progress);
};

}  // namespace datacell::lroad

#endif  // DATACELL_LROAD_DRIVER_H_
