#ifndef DATACELL_LROAD_QUERIES_SQL_H_
#define DATACELL_LROAD_QUERIES_SQL_H_

#include <string>
#include <vector>

namespace datacell::lroad {

/// The Linear Road workload as DataCell SQL (§6.2: "we implemented the
/// benchmark in a generic way using purely the DataCell model and SQL ...
/// in particular there are 38 queries, logically distinguished in 7
/// different collections").
///
/// The executable network in queries.cc runs the same logic as compiled
/// factory bodies for speed; this file records the declarative
/// formulation, one statement per logical query, in the dialect this
/// repository parses (see sql/parser.h). Tests assert that every
/// statement parses and carries the intended continuous/one-time nature,
/// so the SQL layer demonstrably expresses the whole benchmark.
struct LogicalQuery {
  const char* collection;  // "Q1".."Q7"
  const char* name;
  const char* sql;
  bool continuous;  // contains a basket expression
};

/// Schema DDL the queries run against (baskets for the stream stages,
/// tables for persistent state).
std::vector<std::string> LinearRoadSchemaSql();

/// All 38 logical queries.
const std::vector<LogicalQuery>& LinearRoadQueriesSql();

}  // namespace datacell::lroad

#endif  // DATACELL_LROAD_QUERIES_SQL_H_
