#ifndef DATACELL_LROAD_QUERIES_H_
#define DATACELL_LROAD_QUERIES_H_

#include <array>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/engine.h"
#include "core/factory.h"
#include "lroad/history.h"
#include "lroad/types.h"

namespace datacell::lroad {

/// The Linear Road continuous-query network of Figure 6: seven collections
/// of queries (38 logical queries in the paper's SQL formulation) connected
/// by baskets, each collection realized as one factory — exactly the
/// paper's §6.2 implementation choice ("as a first step each collection of
/// queries becomes a single factory. It takes its input from another query
/// collection and gives its output to the next collection").
///
/// Collection map (logical queries per collection in parentheses):
///   Q1 (3)  stopped-car detection, accident creation, accident clearing
///   Q2 (5)  per-minute per-segment speed and car-count statistics
///   Q3 (5)  statistics': 5-minute LAV, toll computation per segment
///   Q4 (2)  filter by type: route type 2/3 requests, replicate reports
///   Q5 (4)  daily expenditure answers over the 10-week toll history
///   Q6 (2)  account balance answers over the running accounts
///   Q7 (18) toll notifications and accident alerts per segment crossing,
///           account charging — the heavyweight output collection
class Network {
 public:
  struct Options {
    uint64_t history_seed = 1234;
  };

  /// Builds the baskets, state and factories, and registers every factory
  /// with the engine's scheduler (in collection order Q4, Q1, Q2, Q3, Q7,
  /// Q6, Q5 so one scheduler round drains a batch through the pipeline).
  static Result<std::unique_ptr<Network>> Create(core::Engine* engine,
                                                 Options options);

  /// Pushes one generated input batch into the input basket.
  Status DeliverInput(const Table& batch);

  /// Output baskets (the benchmark's answer streams).
  const core::BasketPtr& alerts() const { return alerts_; }
  const core::BasketPtr& balance_answers() const { return balance_out_; }
  const core::BasketPtr& expenditure_answers() const { return exp_out_; }

  /// The seven collection factories, Q1..Q7 at indices 0..6.
  const std::array<core::FactoryPtr, 7>& collections() const {
    return collections_;
  }

  const TollHistory& history() const { return history_; }

  /// Introspection for tests and the validator.
  size_t num_active_accidents() const { return state_->accidents.size(); }
  int64_t account_balance(int64_t vid) const;
  const std::unordered_map<int64_t, int64_t>& accounts() const {
    return state_->accounts;
  }
  uint64_t tolls_assessed() const { return state_->tolls_assessed; }

 private:
  // Keys: (xway, dir) route id packed with a segment or position.
  static int64_t RouteKey(int64_t xway, int64_t dir) {
    return xway * 2 + dir;
  }
  static int64_t SegKey(int64_t xway, int64_t dir, int64_t seg) {
    return RouteKey(xway, dir) * kSegmentsPerXway + seg;
  }
  static int64_t PosKey(int64_t xway, int64_t dir, int64_t pos) {
    return RouteKey(xway, dir) * (kSegmentsPerXway * kFeetPerSegment + 1) +
           pos;
  }

  struct StopTrack {
    int64_t pos_key = -1;
    int consecutive = 0;
  };
  struct MinuteStat {
    double speed_sum = 0;
    int64_t reports = 0;
    std::unordered_set<int64_t> cars;
  };
  /// A finished minute's aggregate for one segment (Q2 output row).
  struct FinishedMinute {
    int64_t minute = 0;
    double speed_sum = 0;
    int64_t reports = 0;
    int64_t cars = 0;
  };
  struct SegToll {
    double lav = 0;
    int64_t toll = 0;  // cents
  };
  struct Accident {
    int64_t seg = 0;
    int64_t detected_at = 0;  // sim seconds
  };

  struct State {
    // Q1.
    std::unordered_map<int64_t, StopTrack> stop_tracks;          // vid ->
    std::unordered_map<int64_t, std::unordered_set<int64_t>> stopped_at;
    std::unordered_map<int64_t, Accident> accidents;             // SegKey ->
    // Q2: stats of the minute being accumulated, per SegKey.
    int64_t current_minute = 0;
    std::unordered_map<int64_t, MinuteStat> minute_stats;
    // Q3: the last kLavWindowMinutes finished minutes, per SegKey.
    std::unordered_map<int64_t, std::vector<FinishedMinute>> stat_window;
    std::unordered_map<int64_t, SegToll> current_tolls;  // SegKey ->
    // Q7.
    std::unordered_map<int64_t, int64_t> last_seg;   // vid ->
    std::unordered_map<int64_t, int64_t> accounts;   // vid -> cents
    uint64_t tolls_assessed = 0;
  };

  Network() = default;

  core::Engine* engine_ = nullptr;
  TollHistory history_;
  std::shared_ptr<State> state_;

  core::BasketPtr input_;
  core::BasketPtr pos_q1_, pos_q2_, pos_q7_;
  core::BasketPtr bal_req_, exp_req_;
  core::BasketPtr stats_;
  core::BasketPtr alerts_, balance_out_, exp_out_;
  std::array<core::FactoryPtr, 7> collections_{};
};

}  // namespace datacell::lroad

#endif  // DATACELL_LROAD_QUERIES_H_
