#include "lroad/generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace datacell::lroad {

namespace {

constexpr double kFeetPerSecPerMph = 5280.0 / 3600.0;
// Speed reduction upstream of an active accident (congestion), which pulls
// the 5-minute LAV under the toll threshold.
constexpr double kAccidentSlowdown = 0.30;
// Congestion backs up further than the kAccidentUpstreamSegs alert zone:
// segments in the congested-but-unalerted stretch are where tolls are
// charged (LAV < 40 with no accident alert suppressing the toll).
constexpr int kCongestionUpstreamSegs = 12;

}  // namespace

Generator::Generator(Options options)
    : options_(options), rng_(options.seed), report_buckets_(kReportIntervalSec) {
  DC_CHECK(options_.num_xways >= 1);
  DC_CHECK(options_.scale_factor > 0);
}

double Generator::TargetRate(int64_t t) const {
  // Ramp from ~17 to ~1700 reports/s (SF 1) over the run: rate ~ t^0.6,
  // which integrates to the right order of total volume (see Fig 8).
  const double frac =
      static_cast<double>(t) / static_cast<double>(options_.duration_sec);
  const double ramp = 1700.0 * std::pow(std::max(frac, 0.0), 0.6);
  return options_.scale_factor * std::max(17.0, ramp);
}

int64_t Generator::active_cars() const {
  return static_cast<int64_t>(cars_.size() - free_slots_.size());
}

void Generator::SpawnCars(int64_t t, Table* out) {
  // Each car reports every 30 s, so the concurrent fleet that sustains
  // rate(t) reports/second is 30 * rate(t).
  const int64_t target =
      static_cast<int64_t>(TargetRate(t) * kReportIntervalSec);
  int64_t to_spawn = target - active_cars();
  while (to_spawn-- > 0) {
    Car car;
    car.vid = next_vid_++;
    car.xway = static_cast<int32_t>(
        rng_.Uniform(static_cast<uint64_t>(options_.num_xways)));
    car.dir = static_cast<int8_t>(rng_.Uniform(2));
    car.alive = true;
    car.lane = kLaneEntry;
    const int32_t entry_seg =
        static_cast<int32_t>(rng_.Uniform(kSegmentsPerXway - 35));
    const int32_t trip = static_cast<int32_t>(5 + rng_.Uniform(26));
    // Direction 1 travels toward decreasing positions; mirror the segment.
    if (car.dir == 0) {
      car.pos_ft = entry_seg * kFeetPerSegment + rng_.Uniform(kFeetPerSegment);
      car.exit_seg = entry_seg + trip;
    } else {
      const int32_t entry_mirror = kSegmentsPerXway - 1 - entry_seg;
      car.pos_ft =
          entry_mirror * kFeetPerSegment + rng_.Uniform(kFeetPerSegment);
      car.exit_seg = entry_mirror - trip;
    }
    car.speed_mph = 50.0 + static_cast<double>(rng_.Uniform(51));
    car.effective_mph = car.speed_mph;
    car.last_report = t;
    car.phase = static_cast<int8_t>(t % kReportIntervalSec);

    size_t index;
    if (!free_slots_.empty()) {
      index = free_slots_.back();
      free_slots_.pop_back();
      cars_[index] = car;
    } else {
      index = cars_.size();
      cars_.push_back(car);
    }
    // First report right away, then every 30 s in this phase bucket.
    ReportCar(index, t, out);
    report_buckets_[static_cast<size_t>(t % kReportIntervalSec)].push_back(
        static_cast<uint32_t>(index));
  }
}

void Generator::MaybeInjectAccident(int64_t t) {
  const double p = options_.accidents_per_hour / 3600.0;
  if (!rng_.Bernoulli(p)) return;
  // Pick two distinct moving cars on the same expressway and direction.
  // Try a few random probes; give up quietly on sparse traffic.
  for (int attempt = 0; attempt < 32; ++attempt) {
    if (cars_.empty()) return;
    const size_t i = rng_.Uniform(cars_.size());
    Car& a = cars_[i];
    if (!a.alive || a.stopped || a.lane == kLaneExit) continue;
    // Probe for a partner on the same road.
    for (int attempt2 = 0; attempt2 < 64; ++attempt2) {
      const size_t j = rng_.Uniform(cars_.size());
      if (j == i) continue;
      Car& b = cars_[j];
      if (!b.alive || b.stopped || b.lane == kLaneExit) continue;
      if (b.xway != a.xway || b.dir != a.dir) continue;
      // Collide: the partner ends up at the same position.
      b.pos_ft = a.pos_ft;
      a.stopped = true;
      b.stopped = true;
      const int64_t clear = t + 600 + static_cast<int64_t>(rng_.Uniform(600));
      a.resume_time = clear;
      b.resume_time = clear;
      InjectedAccident acc;
      acc.xway = a.xway;
      acc.dir = a.dir;
      acc.seg = SegOf(a.pos_ft);
      acc.pos = static_cast<int64_t>(a.pos_ft);
      acc.start_time = t;
      acc.clear_time = clear;
      acc.vid1 = a.vid;
      acc.vid2 = b.vid;
      active_accidents_.push_back(injected_.size());
      injected_.push_back(acc);
      return;
    }
    return;
  }
}

bool Generator::InAccidentZone(const Car& car) const {
  const int32_t seg = SegOf(car.pos_ft);
  for (size_t idx : active_accidents_) {
    const InjectedAccident& acc = injected_[idx];
    if (acc.xway != car.xway || acc.dir != car.dir) continue;
    if (car.dir == 0) {
      if (seg >= acc.seg - kCongestionUpstreamSegs && seg <= acc.seg) {
        return true;
      }
    } else {
      if (seg <= acc.seg + kCongestionUpstreamSegs && seg >= acc.seg) {
        return true;
      }
    }
  }
  return false;
}

void Generator::EmitRequests(const Car& car, int64_t t, Table* out) {
  if (rng_.Bernoulli(options_.balance_request_prob)) {
    InputTuple q;
    q.type = static_cast<int64_t>(InputType::kAccountBalance);
    q.time = t;
    q.vid = car.vid;
    q.xway = car.xway;
    q.qid = next_qid_++;
    AppendInput(q, out);
    ++tuples_generated_;
  }
  if (rng_.Bernoulli(options_.expenditure_request_prob)) {
    InputTuple q;
    q.type = static_cast<int64_t>(InputType::kDailyExpenditure);
    q.time = t;
    q.vid = car.vid;
    q.xway = car.xway;
    q.qid = next_qid_++;
    q.day = 1 + static_cast<int64_t>(rng_.Uniform(kHistoryDays));
    AppendInput(q, out);
    ++tuples_generated_;
  }
}

void Generator::ReportCar(size_t car_index, int64_t t, Table* out) {
  Car& car = cars_[car_index];
  InputTuple r;
  r.type = static_cast<int64_t>(InputType::kPositionReport);
  r.time = t;
  r.vid = car.vid;
  r.speed = car.stopped ? 0 : static_cast<int64_t>(car.effective_mph);
  r.xway = car.xway;
  r.lane = car.lane;
  r.dir = car.dir;
  r.seg = SegOf(car.pos_ft);
  r.pos = static_cast<int64_t>(car.pos_ft);
  AppendInput(r, out);
  ++tuples_generated_;
  EmitRequests(car, t, out);
  car.last_report = t;
  if (car.lane == kLaneEntry) {
    car.lane = static_cast<int8_t>(kLaneTravelFirst + rng_.Uniform(3));
  }
}

Table Generator::NextSecond() {
  Table out(InputSchema());
  const int64_t t = now_;

  MaybeInjectAccident(t);
  // Clear accidents whose time has come.
  for (size_t k = 0; k < active_accidents_.size();) {
    if (injected_[active_accidents_[k]].clear_time <= t) {
      active_accidents_[k] = active_accidents_.back();
      active_accidents_.pop_back();
    } else {
      ++k;
    }
  }

  SpawnCars(t, &out);

  // Cars whose 30-second report is due this second.
  std::vector<uint32_t>& bucket =
      report_buckets_[static_cast<size_t>(t % kReportIntervalSec)];
  for (size_t k = 0; k < bucket.size();) {
    const uint32_t index = bucket[k];
    Car& car = cars_[index];
    // Remove dead slots and entries whose slot was reused by a spawn in a
    // different phase bucket.
    if (!car.alive ||
        car.phase != static_cast<int8_t>(t % kReportIntervalSec)) {
      bucket[k] = bucket.back();
      bucket.pop_back();
      continue;
    }
    if (car.last_report == t) {
      // Just spawned this second; already reported.
      ++k;
      continue;
    }

    // Advance the car by the 30 s since its last report.
    if (car.stopped && t >= car.resume_time) car.stopped = false;
    if (!car.stopped) {
      double speed = car.speed_mph;
      if (InAccidentZone(car)) speed *= kAccidentSlowdown;
      car.effective_mph = speed;
      const double dist = speed * kFeetPerSecPerMph * kReportIntervalSec;
      car.pos_ft += (car.dir == 0) ? dist : -dist;
      car.pos_ft = std::clamp(car.pos_ft, 0.0,
                              static_cast<double>(kSegmentsPerXway) *
                                      kFeetPerSegment -
                                  1.0);
      // Mild speed drift.
      car.speed_mph =
          std::clamp(car.speed_mph + static_cast<double>(rng_.UniformRange(-5, 5)),
                     30.0, 100.0);
      const int32_t seg = SegOf(car.pos_ft);
      const bool exiting =
          (car.dir == 0) ? seg >= car.exit_seg : seg <= car.exit_seg;
      const bool at_edge = car.pos_ft <= 0.0 ||
                           car.pos_ft >=
                               kSegmentsPerXway * kFeetPerSegment - 2.0;
      if (exiting || at_edge) car.lane = kLaneExit;
    }

    ReportCar(index, t, &out);

    if (car.lane == kLaneExit) {
      car.alive = false;
      free_slots_.push_back(index);
      bucket[k] = bucket.back();
      bucket.pop_back();
      continue;
    }
    ++k;
  }

  ++now_;
  return out;
}

}  // namespace datacell::lroad
