// Network monitoring — a classic stream-engine scenario (the paper's §1
// motivation list) expressed with the DataCell's §5 building blocks:
//
//  * a split (WITH ... BEGIN ... END) routing packets by port,
//  * a predicate window flagging large transfers,
//  * running aggregates (DECLARE/SET with scalar subqueries) over batches,
//  * a metronome injecting epoch markers so silence is observable.
//
//   build/examples/network_monitor

#include <cstdio>

#include "core/engine.h"
#include "core/metronome.h"
#include "sql/session.h"
#include "util/clock.h"
#include "util/random.h"

using datacell::kMicrosPerSecond;
using datacell::Random;
using datacell::SimulatedClock;

int main() {
  SimulatedClock clock(0);
  datacell::core::Engine engine(&clock);
  datacell::sql::Session session(&engine);

  auto must = [](auto&& result, const char* what) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
      std::exit(1);
    }
  };

  must(session.Execute(
           "create basket packets (ts timestamp, src int, port int, bytes int);"
           "create table web_traffic (ts timestamp, src int, bytes int);"
           "create table dns_traffic (ts timestamp, src int, bytes int);"
           "create table large_transfers (src int, bytes int);"
           "declare total_bytes int; set total_bytes = 0;"
           "declare packet_count int; set packet_count = 0;"),
       "setup");

  // Split: route packets by destination port into per-protocol tables,
  // and keep an eye on very large transfers. One basket expression feeds
  // all three inserts (§5 stream split).
  must(session.RegisterContinuousQuery(
           "splitter",
           "with p as [select * from packets] begin "
           "  insert into web_traffic select p.ts, p.src, p.bytes from p "
           "    where p.port = 443; "
           "  insert into dns_traffic select p.ts, p.src, p.bytes from p "
           "    where p.port = 53; "
           "  insert into large_transfers select p.src, p.bytes from p "
           "    where p.bytes > 100000; "
           "  set total_bytes = total_bytes + (select sum(bytes) from p); "
           "  set packet_count = packet_count + (select count(*) from p); "
           "end"),
       "register splitter");

  // A heartbeat basket: the metronome injects one marker per second so
  // downstream logic can distinguish "no traffic" from "no processing".
  must(session.Execute("create basket heartbeat (epoch timestamp)"),
       "heartbeat basket");
  {
    auto hb = engine.GetBasket("heartbeat");
    must(hb, "get heartbeat");
    engine.Register(datacell::core::MakeHeartbeat(
        "hb", *hb, "epoch", /*start=*/kMicrosPerSecond,
        /*interval=*/kMicrosPerSecond));
  }

  // Simulate ten seconds of traffic.
  Random rng(2026);
  for (int second = 1; second <= 10; ++second) {
    clock.SetTime(second * kMicrosPerSecond);
    std::string insert = "insert into packets values ";
    const int packets = 20 + static_cast<int>(rng.Uniform(30));
    for (int p = 0; p < packets; ++p) {
      if (p > 0) insert += ", ";
      const int64_t port = rng.Bernoulli(0.6) ? 443 : (rng.Bernoulli(0.5) ? 53 : 8080);
      const int64_t bytes = rng.Bernoulli(0.05)
                                ? 100001 + static_cast<int64_t>(rng.Uniform(900000))
                                : static_cast<int64_t>(rng.Uniform(1500));
      insert += "(" + std::to_string(clock.Now()) + ", " +
                std::to_string(rng.Uniform(100)) + ", " + std::to_string(port) +
                ", " + std::to_string(bytes) + ")";
    }
    must(session.Execute(insert), "insert packets");
    must(engine.scheduler().RunUntilQuiescent(), "schedule");
  }

  auto print = [&](const char* label, const char* query) {
    auto r = session.Execute(query);
    must(r, label);
    std::printf("%s\n%s\n", label, r->ToString(8).c_str());
  };
  print("-- web traffic volume --",
        "select count(*) packets, sum(bytes) bytes from web_traffic");
  print("-- dns traffic volume --",
        "select count(*) packets, sum(bytes) bytes from dns_traffic");
  print("-- large transfers --",
        "select src, bytes from large_transfers order by bytes desc limit 5");
  print("-- heartbeat epochs seen --",
        "select count(*) beats from heartbeat");

  auto total = engine.GetVariable("total_bytes");
  auto count = engine.GetVariable("packet_count");
  if (total.ok() && count.ok()) {
    std::printf("running aggregates: packets=%s total_bytes=%s\n",
                count->ToString().c_str(), total->ToString().c_str());
  }
  return 0;
}
