// Quickstart: the DataCell in ~60 lines.
//
// 1. Create an engine (clock + catalog + baskets + scheduler).
// 2. Create a stream basket and register a continuous query over it using
//    a basket expression (`[...]` = the consuming predicate window).
// 3. Push tuples, drive the Petri-net scheduler, read the results.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "sql/session.h"
#include "util/clock.h"

using datacell::SimulatedClock;
using datacell::Status;
using datacell::Table;

int main() {
  SimulatedClock clock(0);
  datacell::core::Engine engine(&clock);
  datacell::sql::Session session(&engine);

  // A sensor stream and a destination basket for the filtered readings.
  auto st = session.Execute(
      "create basket readings (sensor int, temp double);"
      "create basket hot (sensor int, temp double);");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
    return 1;
  }

  // A continuous query: the basket expression [select * from readings]
  // consumes its input; the WHERE keeps only hot readings. Registering it
  // creates a factory wired into the engine's scheduler.
  auto factory = session.RegisterContinuousQuery(
      "hot_readings",
      "insert into hot "
      "select * from [select * from readings] as r where r.temp > 30.0");
  if (!factory.ok()) {
    std::fprintf(stderr, "%s\n", factory.status().ToString().c_str());
    return 1;
  }

  // Stream a few batches through.
  for (int batch = 0; batch < 3; ++batch) {
    clock.Advance(1'000'000);  // one second per batch
    st = session.Execute(
        "insert into readings values "
        "(1, 21.5), (2, 35.0), (3, 19.0), (4, 31.5)");
    if (!st.ok()) break;
    auto rounds = engine.scheduler().RunUntilQuiescent();
    if (!rounds.ok()) break;
  }

  // Read the continuous query's output (a basket read outside brackets
  // peeks without consuming).
  auto result = session.Execute("select sensor, temp from hot");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("hot readings (%zu rows):\n%s", result->num_rows(),
              result->ToString().c_str());

  // The input basket was fully consumed by the continuous query.
  auto leftovers = session.Execute("select count(*) n from readings");
  std::printf("tuples left in 'readings': %s",
              leftovers->ToString().c_str());
  return 0;
}
