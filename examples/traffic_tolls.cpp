// Traffic tolling — a condensed Linear Road session using the lroad
// library directly: simulate half an hour of variable tolling on one
// expressway, then inspect accidents, tolls and account balances.
//
//   build/examples/traffic_tolls

#include <cstdio>

#include "lroad/driver.h"
#include "lroad/validator.h"

int main() {
  using datacell::lroad::Driver;
  using datacell::lroad::ValidationReport;

  Driver::Options options;
  options.generator.scale_factor = 0.4;
  options.generator.duration_sec = 1800;  // half a simulated hour
  options.generator.seed = 17;
  options.generator.accidents_per_hour = 24;
  options.sample_every_sec = 300;
  options.q7_window_tuples = 20'000;

  std::printf("running Linear Road: SF %.2f, %d simulated seconds...\n",
              options.generator.scale_factor, options.generator.duration_sec);
  auto report = Driver::Run(options, nullptr);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\ninput:   %llu tuples (%zu accidents injected)\n",
              static_cast<unsigned long long>(report->total_tuples),
              report->injected_accidents.size());
  std::printf("outputs: %llu toll notifications (%llu charged), %llu accident "
              "alerts,\n         %llu balance answers, %llu expenditure "
              "answers\n",
              static_cast<unsigned long long>(report->toll_notifications),
              static_cast<unsigned long long>(report->tolls_nonzero),
              static_cast<unsigned long long>(report->accident_alerts),
              static_cast<unsigned long long>(report->balance_answers),
              static_cast<unsigned long long>(report->expenditure_answers));

  // The five highest-paying accounts.
  std::printf("\ntop accounts (cents):\n");
  std::vector<std::pair<int64_t, int64_t>> accounts(
      report->final_balances.begin(), report->final_balances.end());
  std::sort(accounts.begin(), accounts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (size_t i = 0; i < accounts.size() && i < 5; ++i) {
    std::printf("  vid %-8lld balance %lld\n",
                static_cast<long long>(accounts[i].first),
                static_cast<long long>(accounts[i].second));
  }

  std::printf("\nper-collection processing (avg ms per activation, whole "
              "run):\n");
  static const char* kNames[7] = {"Q1 accidents",      "Q2 statistics",
                                  "Q3 stats-update",   "Q4 filter",
                                  "Q5 expenditures",   "Q6 balances",
                                  "Q7 toll/alerts"};
  for (size_t c = 0; c < 7; ++c) {
    double total = 0;
    uint64_t firings = 0;
    for (const auto& s : report->collection_load[c]) {
      total += s.avg_ms * static_cast<double>(s.firings);
      firings += s.firings;
    }
    std::printf("  %-16s %8.3f ms (%llu activations)\n", kNames[c],
                firings == 0 ? 0.0 : total / static_cast<double>(firings),
                static_cast<unsigned long long>(firings));
  }

  ValidationReport v = datacell::lroad::Validate(*report);
  std::printf("\nvalidation: %s (accidents detected %zu/%zu)\n",
              v.ok() ? "PASS" : "FAIL", v.detected_accidents,
              v.detectable_accidents);
  if (!v.ok()) {
    for (const std::string& e : v.errors) std::printf("  %s\n", e.c_str());
    return 1;
  }
  return 0;
}
