// An interactive DataCell SQL shell.
//
//   build/examples/datacell_shell [data_dir]
//
// Reads ';'-terminated statements from stdin and executes them against an
// in-process engine (works both interactively and piped). Statements
// containing basket expressions can be registered as continuous queries
// with `\register <name> <stmt>;`. With a data_dir argument, catalog
// tables are loaded on startup and saved on exit.
//
// Meta commands:
//   \baskets            list baskets (with sizes)
//   \tables             list catalog tables
//   \run                drive the scheduler until quiescent
//   \register NAME STMT register STMT as continuous query NAME
//   \save / \q          persist (if data_dir given) / quit

#include <cstdio>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "sql/session.h"
#include "storage/persist.h"
#include "util/clock.h"
#include "util/strings.h"

namespace {

using datacell::Status;
using datacell::Table;

void PrintStatus(const Status& st) {
  if (!st.ok()) std::printf("error: %s\n", st.ToString().c_str());
}

// Reads one ';'-terminated chunk (or EOF); returns false at EOF with no
// content. Respects quotes so string literals may contain ';'. Meta
// commands (first non-blank char '\') are line-terminated instead.
bool ReadStatement(std::istream& in, std::string* out) {
  out->clear();
  bool in_string = false;
  bool saw_content = false;
  bool is_meta = false;
  char c;
  while (in.get(c)) {
    if (!saw_content && !std::isspace(static_cast<unsigned char>(c))) {
      saw_content = true;
      is_meta = (c == '\\');
    }
    if (is_meta) {
      if (c == '\n') return true;
      out->push_back(c);
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) return true;
    out->push_back(c);
  }
  return !datacell::TrimWhitespace(*out).empty();
}

}  // namespace

int main(int argc, char** argv) {
  datacell::SystemClock* clock = datacell::SystemClock::Get();
  datacell::core::Engine engine(clock);
  datacell::sql::Session session(&engine);
  const std::string data_dir = argc > 1 ? argv[1] : "";

  if (!data_dir.empty()) {
    Status st = datacell::storage::LoadCatalog(&engine.catalog(), data_dir);
    if (st.ok()) {
      std::printf("loaded %zu table(s) from %s\n",
                  engine.catalog().ListTables().size(), data_dir.c_str());
    } else if (st.code() != datacell::StatusCode::kNotFound) {
      PrintStatus(st);
    }
  }
  const bool tty = isatty(fileno(stdin));
  if (tty) {
    std::printf("DataCell shell — statements end with ';', \\q quits.\n");
  }

  std::string stmt;
  while (true) {
    if (tty) {
      std::printf("datacell> ");
      std::fflush(stdout);
    }
    if (!ReadStatement(std::cin, &stmt)) break;
    std::string text(datacell::TrimWhitespace(stmt));
    if (text.empty()) continue;

    if (text[0] == '\\') {
      if (text == "\\q" || text == "\\quit") break;
      if (text == "\\baskets") {
        for (const std::string& name : engine.ListBaskets()) {
          auto b = engine.GetBasket(name);
          std::printf("  %-24s %zu tuple(s)\n", name.c_str(),
                      b.ok() ? (*b)->size() : 0);
        }
        continue;
      }
      if (text == "\\tables") {
        for (const std::string& name : engine.catalog().ListTables()) {
          auto t = engine.catalog().GetTable(name);
          std::printf("  %-24s %zu row(s)\n", name.c_str(),
                      t.ok() ? (*t)->num_rows() : 0);
        }
        continue;
      }
      if (text == "\\run") {
        auto rounds = engine.scheduler().RunUntilQuiescent();
        if (rounds.ok()) {
          std::printf("scheduler: %zu productive round(s)\n", *rounds);
        } else {
          PrintStatus(rounds.status());
        }
        continue;
      }
      if (text.rfind("\\register ", 0) == 0) {
        const std::string rest(
            datacell::TrimWhitespace(text.substr(sizeof("\\register ") - 1)));
        const size_t space = rest.find(' ');
        if (space == std::string::npos) {
          std::printf("usage: \\register NAME STATEMENT;\n");
          continue;
        }
        auto f = session.RegisterContinuousQuery(rest.substr(0, space),
                                                 rest.substr(space + 1));
        if (f.ok()) {
          std::printf("registered continuous query '%s'\n",
                      (*f)->name().c_str());
        } else {
          PrintStatus(f.status());
        }
        continue;
      }
      if (text == "\\save") {
        if (data_dir.empty()) {
          std::printf("no data_dir given on the command line\n");
        } else {
          PrintStatus(datacell::storage::SaveCatalog(engine.catalog(), data_dir));
        }
        continue;
      }
      std::printf("unknown command: %s\n", text.c_str());
      continue;
    }

    auto result = session.Execute(text);
    if (!result.ok()) {
      PrintStatus(result.status());
      continue;
    }
    if (result->num_columns() > 0) {
      std::printf("%s", result->ToString(40).c_str());
    } else {
      std::printf("ok\n");
    }
    // Statements may have fed continuous queries: let them fire.
    auto rounds = engine.scheduler().RunUntilQuiescent();
    if (!rounds.ok()) PrintStatus(rounds.status());
  }

  if (!data_dir.empty()) {
    PrintStatus(datacell::storage::SaveCatalog(engine.catalog(), data_dir));
  }
  return 0;
}
