// Tour of the §5 stream-language features: predicate windows, top-n
// windows, two-basket merge with delete-on-match, and time-based garbage
// collection — each as a DataCell SQL statement.
//
//   build/examples/stream_sql

#include <cstdio>

#include "core/engine.h"
#include "sql/session.h"
#include "util/clock.h"

using datacell::kMicrosPerSecond;
using datacell::SimulatedClock;

namespace {

datacell::sql::Session* g_session = nullptr;

void Run(const char* label, const std::string& sql) {
  std::printf("\n-- %s\n   %s\n", label, sql.c_str());
  auto r = g_session->Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "   error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  if (r->num_columns() > 0) std::printf("%s", r->ToString(10).c_str());
}

}  // namespace

int main() {
  SimulatedClock clock(0);
  datacell::core::Engine engine(&clock);
  datacell::sql::Session session(&engine);
  g_session = &session;

  // --- Predicate window (the paper's q2) ----------------------------------
  Run("setup", "create basket r (a int, b int)");
  Run("fill the stream",
      "insert into r values (1,1), (5,1), (9,99), (7,2), (2,50)");
  Run("predicate window: only b<10 tuples are referenced (and consumed)",
      "select * from [select * from r where r.b < 10] as s where s.a > 4");
  Run("the b=99 and b=50 tuples are still waiting", "select * from r");

  // --- Fixed-size window: top n + order by --------------------------------
  Run("outlier stream", "create basket x (tag int, payload int)");
  Run("fill 6 events",
      "insert into x values (6,10), (5,200), (4,30), (3,400), (2,50), (1,600)");
  Run("top-3-by-tag window, outliers only",
      "select b.tag, b.payload from [select top 3 from x order by tag] as b "
      "where b.payload > 100");
  Run("three tuples remain for the next window", "select count(*) n from x");

  // --- Merge (gather) over two streams -------------------------------------
  Run("two tagged streams",
      "create basket left_events (id int, v int);"
      "create basket right_events (id int, w int);"
      "insert into left_events values (1, 10), (2, 20), (3, 30);"
      "insert into right_events values (2, 222), (9, 999)");
  Run("merge on id: matched pairs are consumed from both baskets",
      "select * from [select * from left_events, right_events "
      "where left_events.id = right_events.id] as m");
  Run("unmatched residue waits for delayed arrivals",
      "select count(*) n from left_events");
  Run("a late arrival completes another pair",
      "insert into right_events values (3, 333);"
      "select * from [select * from left_events, right_events "
      "where left_events.id = right_events.id] as m");

  // --- Garbage collection with a time-out predicate ------------------------
  clock.SetTime(7200 * kMicrosPerSecond);  // t = 2 h
  Run("timestamped stream with one stale tuple",
      "create basket y (tag timestamp, payload int);"
      "create table trash (tag timestamp, payload int);"
      "insert into y values (0, 1), (7100000000, 2)");
  Run("expire everything older than one hour",
      "insert into trash [select all from y where y.tag < now() - "
      "interval 1 hour]");
  Run("trash holds the stale tuple", "select count(*) n from trash");
  Run("the fresh tuple survived", "select payload from y");

  std::printf("\ndone.\n");
  return 0;
}
