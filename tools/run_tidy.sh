#!/usr/bin/env bash
# clang-tidy gate over the library and tool sources.
#
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Uses the compile_commands.json that every CMake configure now exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is on by default in the top-level
# CMakeLists). Checks and per-check rationale live in .clang-tidy at the
# repo root; WarningsAsErrors is '*' there, so any finding fails this
# script — fix the code, don't NOLINT, unless the finding is a true
# false positive (and then justify the NOLINT inline).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

# --- datacell-* gate --------------------------------------------------------
# The project-specific checks (tools/datacell_tidy/) cover tests/ and bench/
# too — concurrency discipline and Status handling matter as much in test
# code. The Python fallback needs no clang toolchain, so this gate runs
# everywhere; the clang-tidy plugin below is the canonical implementation
# when its build prerequisites exist.
echo "datacell-tidy gate over src/ tools/ tests/ bench/"
python3 "$repo_root/tools/datacell_tidy/datacell_tidy.py" \
  --repo-root "$repo_root"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" > /dev/null; then
  echo "error: $TIDY not on PATH (set CLANG_TIDY to override)." >&2
  exit 2
fi

# With the plugin built (requires clang-tidy dev headers at configure
# time), run the same datacell-* checks natively over every directory the
# Python gate covers — the AST implementation sees through macros and
# templates that regexes cannot.
plugin="$build_dir/tools/datacell_tidy/libdatacell_tidy.so"
if [ -f "$plugin" ]; then
  mapfile -t gate_sources < <(find "$repo_root/src" "$repo_root/tools" \
    "$repo_root/tests" "$repo_root/bench" -name '*.cc' | sort)
  echo "datacell-tidy plugin over ${#gate_sources[@]} files"
  fail=0
  for f in "${gate_sources[@]}"; do
    "$TIDY" -load "$plugin" -checks='-*,datacell-*' \
      -warnings-as-errors='datacell-*' -p "$build_dir" -quiet "$f" || fail=1
  done
  [ "$fail" -eq 0 ]
else
  echo "datacell-tidy plugin not built ($plugin missing); python gate only"
fi

# Library and tool translation units only; tests are exempt (see
# .clang-tidy header comment).
mapfile -t sources < <(find "$repo_root/src" "$repo_root/tools" \
  -name '*.cc' | sort)

echo "clang-tidy over ${#sources[@]} files ($($TIDY --version | head -1))"

# run-clang-tidy parallelises when available; fall back to a loop.
if command -v run-clang-tidy > /dev/null; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$build_dir" -quiet "$@" \
    "${sources[@]/#/^}" > /tmp/tidy.log 2>&1 || {
    grep -E "warning:|error:" /tmp/tidy.log >&2
    exit 1
  }
  grep -E "warning:|error:" /tmp/tidy.log >&2 || true
else
  fail=0
  for f in "${sources[@]}"; do
    "$TIDY" -p "$build_dir" -quiet "$@" "$f" || fail=1
  done
  [ "$fail" -eq 0 ]
fi
echo "clang-tidy: clean"
