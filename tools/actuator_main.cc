// Standalone actuator tool (§6.1): listens for one producer (the DataCell
// emitter or a sensor), receives tuples until EOF and reports latency
// statistics.
//
//   actuator [port]

#include <cstdio>
#include <cstdlib>

#include "net/actuator.h"
#include "util/clock.h"

int main(int argc, char** argv) {
  datacell::net::Actuator actuator(datacell::SystemClock::Get());
  const uint16_t port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;
  datacell::Status st = actuator.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "actuator failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("actuator: listening on port %u\n", actuator.port());
  std::fflush(stdout);
  actuator.WaitFinished();
  const datacell::net::Actuator::Stats stats = actuator.stats();
  std::printf(
      "actuator: %llu tuples, mean latency %.3f ms, max %.3f ms, elapsed "
      "%.3f s, throughput %.0f tuples/s\n",
      static_cast<unsigned long long>(stats.tuples),
      stats.MeanLatency() / 1000.0,
      static_cast<double>(stats.latency_max) / 1000.0,
      static_cast<double>(stats.Elapsed()) / datacell::kMicrosPerSecond,
      stats.Elapsed() > 0
          ? static_cast<double>(stats.tuples) /
                (static_cast<double>(stats.Elapsed()) /
                 datacell::kMicrosPerSecond)
          : 0.0);
  return 0;
}
