#include "DataCellTidyChecks.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::datacell {

namespace {

bool IsGuardType(QualType QT) {
  const CXXRecordDecl* RD = QT.getCanonicalType()->getAsCXXRecordDecl();
  if (RD == nullptr) return false;
  const std::string Name = RD->getQualifiedNameAsString();
  return Name == "datacell::MutexLock" ||
         Name == "datacell::RecursiveMutexLock";
}

// Resolves the LockRank of the mutex a guard names, by chasing the guard's
// constructor argument (&member_ / &var) back to the declaration and
// reading the `Mutex mu_{LockRank::kX}` initializer. Returns -1 when the
// rank is not statically visible (mutex passed by pointer parameter,
// picked from a container, ...): those acquisitions are the runtime
// checker's job, and guessing here would produce false positives.
int ResolveRank(const Expr* MutexArg) {
  const Expr* E = MutexArg->IgnoreParenImpCasts();
  if (const auto* UO = dyn_cast<UnaryOperator>(E);
      UO != nullptr && UO->getOpcode() == UO_AddrOf) {
    E = UO->getSubExpr()->IgnoreParenImpCasts();
  }
  const ValueDecl* VD = nullptr;
  if (const auto* ME = dyn_cast<MemberExpr>(E)) {
    VD = ME->getMemberDecl();
  } else if (const auto* DRE = dyn_cast<DeclRefExpr>(E)) {
    VD = DRE->getDecl();
  }
  if (VD == nullptr) return -1;
  const Expr* Init = nullptr;
  if (const auto* FD = dyn_cast<FieldDecl>(VD)) {
    Init = FD->getInClassInitializer();
  } else if (const auto* Var = dyn_cast<VarDecl>(VD)) {
    Init = Var->getInit();
  }
  if (Init == nullptr) return -1;
  // The initializer is Mutex{LockRank::kX} / Mutex(LockRank::kX); the rank
  // is the first constructor argument's enum value.
  const auto* Ctor = dyn_cast<CXXConstructExpr>(Init->IgnoreParenImpCasts());
  if (Ctor == nullptr || Ctor->getNumArgs() < 1) return -1;
  Expr::EvalResult Eval;
  if (!Ctor->getArg(0)->EvaluateAsInt(Eval, VD->getASTContext())) return -1;
  return static_cast<int>(Eval.Val.getInt().getExtValue());
}

// Walks one function body tracking the stack of lexically live guards.
class GuardNestingVisitor : public RecursiveASTVisitor<GuardNestingVisitor> {
 public:
  GuardNestingVisitor(ClangTidyCheck* Check) : Check_(Check) {}

  bool TraverseCompoundStmt(CompoundStmt* CS) {
    const size_t Depth = Held_.size();
    const bool Ok =
        RecursiveASTVisitor<GuardNestingVisitor>::TraverseCompoundStmt(CS);
    Held_.resize(Depth);  // guards die at the closing brace
    return Ok;
  }

  bool VisitVarDecl(VarDecl* VD) {
    if (!IsGuardType(VD->getType())) return true;
    const auto* Ctor =
        dyn_cast_or_null<CXXConstructExpr>(VD->getInit());
    if (Ctor == nullptr || Ctor->getNumArgs() < 1) return true;
    const int Rank = ResolveRank(Ctor->getArg(0));
    for (const auto& [HeldRank, HeldLoc] : Held_) {
      // The hierarchy runs outermost-first: each nested acquisition must
      // have *lower* rank than everything already held. Equal rank is the
      // basket-pair special case, which Factory::Fire orders by address
      // and DC_NO_THREAD_SAFETY_ANALYSIS already exempts.
      if (Rank >= 0 && HeldRank >= 0 && Rank > HeldRank) {
        Check_->diag(VD->getLocation(),
                     "lock acquired here has rank %0, but a rank-%1 lock "
                     "is already held in this scope; acquisitions must "
                     "descend the LockRank hierarchy (util/lock_rank.h)")
            << Rank << HeldRank;
      }
    }
    if (Rank >= 0) Held_.emplace_back(Rank, VD->getLocation());
    return true;
  }

 private:
  ClangTidyCheck* Check_;
  std::vector<std::pair<int, SourceLocation>> Held_;
};

}  // namespace

void LockRankOrderCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      functionDecl(isDefinition(), hasBody(compoundStmt()),
                   unless(isExpansionInSystemHeader()))
          .bind("func"),
      this);
}

void LockRankOrderCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Func = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (Func == nullptr || !Func->hasBody()) return;
  GuardNestingVisitor Visitor(this);
  Visitor.TraverseStmt(Func->getBody());
}

}  // namespace clang::tidy::datacell
