#include "DataCellTidyChecks.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::datacell {

namespace {

bool IsMutexType(QualType QT) {
  const CXXRecordDecl* RD = QT.getCanonicalType()->getAsCXXRecordDecl();
  if (RD == nullptr) return false;
  const std::string Name = RD->getQualifiedNameAsString();
  return Name == "datacell::Mutex" || Name == "datacell::RecursiveMutex";
}

bool HasGuardedByAttr(const FieldDecl* FD) {
  return FD->hasAttr<GuardedByAttr>() || FD->hasAttr<PtGuardedByAttr>();
}

bool HasUnguardedAnnotation(const FieldDecl* FD) {
  for (const auto* A : FD->specific_attrs<AnnotateAttr>()) {
    if (A->getAnnotation() == "datacell_unguarded") return true;
  }
  return false;
}

// Fields that are immutable after construction need no guard: const
// members, and reference members (rebinding is impossible).
bool IsImmutable(const FieldDecl* FD) {
  QualType QT = FD->getType();
  return QT.isConstQualified() || QT->isReferenceType();
}

// std::atomic<T> members synchronize themselves; requiring a mutex guard
// on them would push people toward double-locking.
bool IsAtomic(const FieldDecl* FD) {
  return FD->getType().getCanonicalType()->isAtomicType() ||
         FD->getType().getAsString().find("std::atomic") != std::string::npos;
}

}  // namespace

void GuardedByCoverageCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      cxxRecordDecl(isDefinition(),
                    unless(isExpansionInSystemHeader()),
                    has(fieldDecl().bind("anyField")))
          .bind("record"),
      this);
}

void GuardedByCoverageCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Record = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
  if (Record == nullptr) return;

  // Only classes that own a mutex are in scope; everything else is
  // synchronized externally or not at all, which this check cannot judge.
  const FieldDecl* MutexField = nullptr;
  for (const FieldDecl* FD : Record->fields()) {
    if (IsMutexType(FD->getType())) {
      MutexField = FD;
      break;
    }
  }
  if (MutexField == nullptr) return;

  for (const FieldDecl* FD : Record->fields()) {
    if (FD == MutexField || IsMutexType(FD->getType())) continue;
    if (IsImmutable(FD) || IsAtomic(FD)) continue;
    if (HasGuardedByAttr(FD) || HasUnguardedAnnotation(FD)) continue;
    diag(FD->getLocation(),
         "mutable field %0 of mutex-owning class %1 is neither "
         "DC_GUARDED_BY a mutex nor marked DC_UNGUARDED")
        << FD << Record;
  }
}

}  // namespace clang::tidy::datacell
