#!/usr/bin/env python3
"""Toolchain-free implementation of the datacell-* tidy checks.

The canonical implementation of these checks is the clang-tidy plugin next
to this file (DataCellTidyModule.cc), which works on the real AST. This
script re-implements the same four checks over the raw source text so the
gate runs in environments without clang — same check names, same
clang-tidy-style diagnostics, same exit discipline (any finding is a
failure). run_tidy.sh runs whichever is available; CI runs both.

Checks:
  datacell-guarded-by-coverage  mutable fields of Mutex-owning classes must
                                carry DC_GUARDED_BY(...) or DC_UNGUARDED
  datacell-status-checked       `(void)` / static_cast<void> of a call that
                                returns Status/Result is an error (plain
                                discards are caught by [[nodiscard]] +
                                -Werror; Status::IgnoreError() is the one
                                sanctioned explicit drop)
  datacell-no-raw-sync          std::mutex & friends / pthread_* sync
                                primitives are banned outside src/util/
  datacell-lock-rank-order      lexically nested MutexLock acquisitions
                                must descend the LockRank hierarchy

Suppression: a `// NOLINT(datacell-...)` or `// NOLINT` comment on the
flagged line, or NOLINTNEXTLINE on the line before — same grammar
clang-tidy uses, so suppressions carry over between implementations.

Usage:
  datacell_tidy.py [--repo-root DIR] [--checks name,name] [paths...]

With no paths, scans src/, tools/, tests/ and bench/ under the repo root.
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import os
import re
import sys

CHECK_NAMES = (
    "datacell-guarded-by-coverage",
    "datacell-status-checked",
    "datacell-no-raw-sync",
    "datacell-lock-rank-order",
)

# ---------------------------------------------------------------------------
# Source model


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets.

    Every replaced character becomes a space (newlines survive), so line
    and column numbers computed on the result match the original file.
    NOLINT comments are honoured separately (see nolint_lines), before
    this pass erases them.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or
                                     text[i - 1] == "_"):
            # Digit separator (30'000) or literal prefix (L'a'), not a
            # char-literal open quote.
            i += 1
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path, repo_root):
        self.path = path
        self.rel = os.path.relpath(path, repo_root)
        with open(path, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.clean = strip_comments_and_strings(self.text)
        self.lines = self.text.split("\n")
        self._nolint = self._collect_nolint()

    def _collect_nolint(self):
        """line number -> set of suppressed check names ('*' = all)."""
        suppressed = {}
        pat = re.compile(r"//\s*NOLINT(NEXTLINE)?(?:\(([^)]*)\))?")
        for lineno, line in enumerate(self.lines, start=1):
            m = pat.search(line)
            if not m:
                continue
            target = lineno + 1 if m.group(1) else lineno
            names = {"*"}
            if m.group(2):
                names = {s.strip() for s in m.group(2).split(",")}
            suppressed.setdefault(target, set()).update(names)
        return suppressed

    def suppressed(self, lineno, check):
        names = self._nolint.get(lineno, ())
        return "*" in names or check in names

    def lineno(self, offset):
        return self.text.count("\n", 0, offset) + 1

    def col(self, offset):
        return offset - self.text.rfind("\n", 0, offset)


class Diagnostics:
    def __init__(self):
        self.items = []

    def report(self, src, offset, check, message):
        lineno = src.lineno(offset)
        if src.suppressed(lineno, check):
            return
        self.items.append(
            (src.path, lineno, src.col(offset), message, check))

    def dump(self, out):
        for path, line, col, message, check in sorted(self.items):
            out.write(f"{path}:{line}:{col}: warning: {message} [{check}]\n")


# ---------------------------------------------------------------------------
# datacell-guarded-by-coverage

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:DC_\w+(?:\([^)]*\))?\s+)*(\w+)"
    r"(?:\s+final)?\s*(?::[^{;]*)?\{")

FIELD_EXEMPT_TYPES = re.compile(
    r"std::atomic\b|\batomic<|&\s*$|\bMutex\b|\bRecursiveMutex\b|\bCondVar\b")


def find_class_bodies(clean):
    """Yields (name, body_start, body_end) for every class/struct body."""
    for m in CLASS_RE.finditer(clean):
        depth = 0
        i = m.end() - 1
        n = len(clean)
        while i < n:
            if clean[i] == "{":
                depth += 1
            elif clean[i] == "}":
                depth -= 1
                if depth == 0:
                    yield m.group(1), m.end(), i
                    break
            i += 1


def split_member_decls(body):
    """Splits a class body into top-level ';'-terminated declarations.

    Returns (offset, decl_text) pairs. Function bodies, nested classes and
    brace initializers are kept inside their declaration text because the
    split only happens at depth 0.
    """
    decls = []
    depth = 0
    start = 0
    for i, c in enumerate(body):
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
        elif c == ";" and depth == 0:
            decls.append((start, body[start:i]))
            start = i + 1
    return decls


ANNOT_RE = re.compile(r"\bDC_(?:PT_)?GUARDED_BY\s*\([^)]*\)|\bDC_UNGUARDED\b")
FIELD_RE = re.compile(
    r"^(?P<quals>(?:mutable\s+|const\s+|volatile\s+)*)"
    r"(?P<type>[\w:]+(?:\s*<[^;()]*>)?(?:\s*::\s*\w+)?[\s*&]+)"
    r"(?P<name>\w+)"
    r"(?P<init>\s*(?:\{[^;]*\}|=[^;]*)?)\s*$")
NON_FIELD_KEYWORDS = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|static\b|enum\b|class\b|struct\b|"
    r"template\b|public:|private:|protected:|explicit\b|virtual\b|"
    r"operator\b|~)")


def parse_field(decl):
    """Returns (name, type, quals, annotated, exempt) or None."""
    stripped = decl
    # Trailing access-specifier labels glue onto the next declaration after
    # the depth-0 split ("private:\n  int x_"); peel them off.
    stripped = re.sub(r"^\s*(?:public|private|protected)\s*:", " ", stripped)
    if NON_FIELD_KEYWORDS.search(stripped):
        return None
    annotated = bool(ANNOT_RE.search(stripped))
    stripped = ANNOT_RE.sub(" ", stripped)
    # [[attr]] spellings on the field (e.g. [[maybe_unused]]).
    stripped = re.sub(r"\[\[[^\]]*\]\]", " ", stripped)
    flat = " ".join(stripped.split())
    if not flat or "(" in flat or ")" in flat:
        return None  # member function, function pointer, std::function, ...
    m = FIELD_RE.match(flat)
    if not m:
        return None
    quals = m.group("quals")
    typ = m.group("type").strip()
    exempt = ("const" in quals.split() or
              bool(FIELD_EXEMPT_TYPES.search(typ)) or typ.endswith("&"))
    return m.group("name"), typ, quals, annotated, exempt


MUTEX_FIELD_RE = re.compile(r"\b(?:Mutex|RecursiveMutex)\s+\w+\s*[{;=]")


def check_guarded_by(src, diags):
    for _cls, start, end in find_class_bodies(src.clean):
        body = src.clean[start:end]
        if not MUTEX_FIELD_RE.search(body):
            continue
        for off, decl in split_member_decls(body):
            parsed = parse_field(decl)
            if parsed is None:
                continue
            name, typ, _quals, annotated, exempt = parsed
            if annotated or exempt:
                continue
            name_off = start + off + decl.rfind(name)
            diags.report(
                src, name_off, "datacell-guarded-by-coverage",
                f"mutable field '{name}' of mutex-owning class is neither "
                "DC_GUARDED_BY a mutex nor marked DC_UNGUARDED")


# ---------------------------------------------------------------------------
# datacell-status-checked

STATUS_FN_DECL_RE = re.compile(
    r"\b(?:Status|Result<[^;{}=]{0,80}?>)\s+(?:[\w]+::)*(\w+)\s*\(")
VOID_CAST_RE = re.compile(
    r"(?:\(\s*void\s*\)|static_cast<\s*void\s*>\s*\()\s*"
    r"(?:\w+(?:::\w+)*(?:\s*(?:\.|->)\s*\w+)*)\s*\(")
CALLEE_RE = re.compile(r"(\w+)\s*\($")


def collect_fallible_names(sources):
    """Names of functions declared to return Status or Result<...>."""
    names = set()
    for src in sources:
        for m in STATUS_FN_DECL_RE.finditer(src.clean):
            names.add(m.group(1))
    return names


def check_status_checked(src, diags, fallible):
    for m in VOID_CAST_RE.finditer(src.clean):
        callee = CALLEE_RE.search(m.group(0).rstrip())
        if callee is None or callee.group(1) not in fallible:
            continue
        diags.report(
            src, m.start(), "datacell-status-checked",
            f"void-cast discards the Status/Result of '{callee.group(1)}'; "
            "handle it or use Status::IgnoreError() with a comment")


# ---------------------------------------------------------------------------
# datacell-no-raw-sync

RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_)?(?:timed_)?mutex\b|"
    r"\bstd\s*::\s*shared_(?:timed_)?mutex\b|"
    r"\bstd\s*::\s*condition_variable(?:_any)?\b|"
    r"\bstd\s*::\s*(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b|"
    r"\bpthread_(?:mutex|cond|rwlock|spin)_\w+")


def check_no_raw_sync(src, diags):
    if f"{os.sep}src{os.sep}util{os.sep}" in src.path:
        return  # util/mutex.h wraps the primitives; it may name them
    for m in RAW_SYNC_RE.finditer(src.clean):
        diags.report(
            src, m.start(), "datacell-no-raw-sync",
            f"raw synchronization primitive '{m.group(0).strip()}'; use "
            "datacell::Mutex / MutexLock (util/mutex.h) so the LockRank "
            "checker and DC_* annotations see the acquisition")


# ---------------------------------------------------------------------------
# datacell-lock-rank-order

RANK_ENUM_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)")
MUTEX_DECL_RE = re.compile(
    r"\b(?:Mutex|RecursiveMutex)\s+(\w+)\s*\{\s*LockRank::k(\w+)\s*\}")
GUARD_RE = re.compile(
    r"\b(?:Recursive)?MutexLock\s+\w+\s*\(\s*&\s*"
    r"(?:[\w]+(?:\.|->))*(\w+)\s*\)")


def load_rank_values(repo_root):
    path = os.path.join(repo_root, "src", "util", "lock_rank.h")
    try:
        with open(path, encoding="utf-8") as f:
            text = strip_comments_and_strings(f.read())
    except OSError:
        return {}
    return {m.group(1): int(m.group(2))
            for m in RANK_ENUM_RE.finditer(text)}


def mutex_ranks_for(src, sources_by_path, ranks):
    """name -> rank for mutexes visible to this translation unit.

    Statically resolvable means: declared with an inline
    `{LockRank::kX}` initializer in this file or in the same-stem header
    (foo.cc -> foo.h), the only places the codebase declares mutexes. A
    name declared twice with different ranks is dropped as ambiguous.
    """
    candidates = [src]
    stem, ext = os.path.splitext(src.path)
    if ext == ".cc":
        header = sources_by_path.get(stem + ".h")
        if header is not None:
            candidates.append(header)
    table = {}
    for cand in candidates:
        for m in MUTEX_DECL_RE.finditer(cand.clean):
            name, rank_name = m.group(1), m.group(2)
            rank = ranks.get(rank_name)
            if rank is None:
                continue
            if name in table and table[name] != rank:
                table[name] = None  # ambiguous: never guess
            else:
                table.setdefault(name, rank)
    return {k: v for k, v in table.items() if v is not None}


def check_lock_rank_order(src, diags, sources_by_path, ranks):
    table = mutex_ranks_for(src, sources_by_path, ranks)
    if not table:
        return
    clean = src.clean
    guards = sorted(
        (m.start(), m.group(1)) for m in GUARD_RE.finditer(clean))
    if not guards:
        return
    held = []  # (depth_at_acquisition, rank, name)
    gi = 0
    depth = 0
    for i, c in enumerate(clean):
        while gi < len(guards) and guards[gi][0] == i:
            name = guards[gi][1]
            rank = table.get(name)
            if rank is not None:
                for _d, held_rank, held_name in held:
                    # Equal rank is the basket-pair special case (ordered
                    # by address at runtime); only ascents are static
                    # violations.
                    if rank > held_rank:
                        diags.report(
                            src, i, "datacell-lock-rank-order",
                            f"'{name}' (rank {rank}) acquired while "
                            f"'{held_name}' (rank {held_rank}) is held; "
                            "acquisitions must descend the LockRank "
                            "hierarchy (util/lock_rank.h)")
                held.append((depth, rank, name))
            gi += 1
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            while held and held[-1][0] >= depth:
                held.pop()
    return


# ---------------------------------------------------------------------------
# Driver

DEFAULT_DIRS = ("src", "tools", "tests", "bench")
SOURCE_EXTS = (".cc", ".h")


def collect_sources(repo_root, paths):
    files = []
    if not paths:
        paths = [os.path.join(repo_root, d) for d in DEFAULT_DIRS]
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for f in filenames:
                if f.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, f))
    return sorted(set(files))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--repo-root",
                    default=os.path.dirname(
                        os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__)))))
    ap.add_argument("--checks", default=",".join(CHECK_NAMES),
                    help="comma-separated subset of checks to run")
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args(argv)

    enabled = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = enabled - set(CHECK_NAMES)
    if unknown:
        print(f"error: unknown checks: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    files = collect_sources(args.repo_root, args.paths)
    if not files:
        print("error: no source files found", file=sys.stderr)
        return 2
    sources = [SourceFile(f, args.repo_root) for f in files]
    sources_by_path = {s.path: s for s in sources}

    diags = Diagnostics()
    # Fallible names come from the whole tree even when only a subset of
    # paths is scanned, so partial runs do not weaken the status check.
    all_sources = sources
    if args.paths:
        all_files = collect_sources(args.repo_root, [])
        all_sources = [sources_by_path.get(f) or SourceFile(f, args.repo_root)
                       for f in all_files]
    # Union with the explicitly-passed sources: a file outside the default
    # tree (e.g. a golden-diagnostics input) may declare its own fallible
    # functions.
    fallible = collect_fallible_names(list(all_sources) + sources)
    ranks = load_rank_values(args.repo_root)

    for src in sources:
        if "datacell-guarded-by-coverage" in enabled:
            check_guarded_by(src, diags)
        if "datacell-status-checked" in enabled:
            check_status_checked(src, diags, fallible)
        if "datacell-no-raw-sync" in enabled:
            check_no_raw_sync(src, diags)
        if "datacell-lock-rank-order" in enabled:
            check_lock_rank_order(src, diags, sources_by_path, ranks)

    diags.dump(sys.stdout)
    if diags.items:
        print(f"datacell-tidy: {len(diags.items)} finding(s) over "
              f"{len(sources)} files", file=sys.stderr)
        return 1
    print(f"datacell-tidy: clean over {len(sources)} files", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
