#include "DataCellTidyChecks.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::datacell {

namespace {

// util/mutex.h is the one sanctioned wrapper around the raw primitives;
// everything under src/util may reach them.
bool InUtilDir(StringRef File) { return File.contains("/src/util/"); }

}  // namespace

void NoRawSyncCheck::registerMatchers(MatchFinder* Finder) {
  const auto RawSyncType = hasDeclaration(namedDecl(hasAnyName(
      "::std::mutex", "::std::recursive_mutex", "::std::shared_mutex",
      "::std::timed_mutex", "::std::recursive_timed_mutex",
      "::std::condition_variable", "::std::condition_variable_any",
      "::std::lock_guard", "::std::unique_lock", "::std::shared_lock",
      "::std::scoped_lock")));
  Finder->addMatcher(
      typeLoc(loc(qualType(RawSyncType)),
              unless(isExpansionInSystemHeader()))
          .bind("rawType"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   matchesName("^::pthread_(mutex|cond|rwlock|spin)_"))),
               unless(isExpansionInSystemHeader()))
          .bind("pthreadCall"),
      this);
}

void NoRawSyncCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& SM = *Result.SourceManager;
  if (const auto* TL = Result.Nodes.getNodeAs<TypeLoc>("rawType")) {
    const StringRef File = SM.getFilename(TL->getBeginLoc());
    if (InUtilDir(File)) return;
    diag(TL->getBeginLoc(),
         "raw standard-library synchronization primitive; use "
         "datacell::Mutex / MutexLock (util/mutex.h) so the LockRank "
         "checker and thread-safety annotations see the acquisition");
    return;
  }
  if (const auto* Call = Result.Nodes.getNodeAs<CallExpr>("pthreadCall")) {
    const StringRef File = SM.getFilename(Call->getBeginLoc());
    if (InUtilDir(File)) return;
    diag(Call->getBeginLoc(),
         "direct pthread synchronization call; use datacell::Mutex / "
         "CondVar (util/mutex.h) instead");
  }
}

}  // namespace clang::tidy::datacell
