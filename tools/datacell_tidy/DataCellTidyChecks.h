#ifndef DATACELL_TOOLS_DATACELL_TIDY_CHECKS_H_
#define DATACELL_TOOLS_DATACELL_TIDY_CHECKS_H_

/// The four DataCell project checks, registered by DataCellTidyModule.cc
/// under the "datacell-" prefix:
///
///   datacell-guarded-by-coverage  mutable fields of Mutex-owning classes
///                                 must carry DC_GUARDED_BY or DC_UNGUARDED
///   datacell-status-checked       a discarded Status/Result is an error
///   datacell-no-raw-sync          std::mutex & friends and pthread_*
///                                 primitives are banned outside src/util/
///   datacell-lock-rank-order      lexically nested MutexLock acquisitions
///                                 must descend the LockRank hierarchy
///
/// Build: this is an out-of-tree clang-tidy module, loaded at run time via
/// `clang-tidy -load libdatacell_tidy.so`. It needs the clang-tidy
/// development headers, which ship with LLVM distributions but not with
/// every container image, so tools/datacell_tidy/CMakeLists.txt only adds
/// the target when find_package(Clang) succeeds. Everywhere else
/// datacell_tidy.py implements the same four checks (same check names,
/// same diagnostics) over the raw source, so the gate runs with zero
/// toolchain requirements; run_tidy.sh picks whichever is available.

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::datacell {

/// datacell-guarded-by-coverage.
///
/// For every class that owns a datacell::Mutex or RecursiveMutex field,
/// every other mutable field must either name its mutex with DC_GUARDED_BY
/// (the guarded_by attribute) or carry the DC_UNGUARDED annotation that
/// marks an explicitly reviewed exemption. Unannotated fields are how
/// guarded-state drift starts: the thread-safety analysis can only verify
/// what is annotated, so a missing annotation silently removes a field
/// from the proof.
class GuardedByCoverageCheck : public ClangTidyCheck {
 public:
  GuardedByCoverageCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

/// datacell-status-checked.
///
/// Flags full-expression statements whose value is a datacell::Status or
/// datacell::Result<T>, including explicit (void) casts — the codebase is
/// exception-free, so a dropped Status is a swallowed error. Belt to the
/// [[nodiscard]] braces: [[nodiscard]] is a compiler warning the build can
/// demote, and (void) defeats it silently; this check is part of the tidy
/// gate, which treats every finding as an error.
class StatusCheckedCheck : public ClangTidyCheck {
 public:
  StatusCheckedCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

/// datacell-no-raw-sync.
///
/// Bans std::mutex, std::recursive_mutex, std::shared_mutex,
/// std::condition_variable, their lock RAII types, and direct pthread
/// mutex/cond/rwlock calls everywhere except src/util/ (where
/// util/mutex.h wraps them). Raw primitives bypass both the LockRank
/// runtime checker and the DC_* thread-safety annotations, so a deadlock
/// through one is invisible to every tool this repo has.
class NoRawSyncCheck : public ClangTidyCheck {
 public:
  NoRawSyncCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

/// datacell-lock-rank-order.
///
/// The runtime lock-rank checker (util/lock_rank.h) only sees executed
/// paths; this check flags the static pattern: a MutexLock /
/// RecursiveMutexLock constructed in a scope lexically nested inside
/// another guard whose mutex has a *lower* declared rank. Ranks are read
/// from the member initializer (`Mutex mu_{LockRank::kStorage};`) of the
/// mutex the guard names; guards over mutexes whose rank the check cannot
/// resolve statically are skipped, not guessed.
class LockRankOrderCheck : public ClangTidyCheck {
 public:
  LockRankOrderCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}
  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

}  // namespace clang::tidy::datacell

#endif  // DATACELL_TOOLS_DATACELL_TIDY_CHECKS_H_
