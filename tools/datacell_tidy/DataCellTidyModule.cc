/// Registers the DataCell checks as an out-of-tree clang-tidy module.
///
///   clang-tidy -load $BUILD/tools/datacell_tidy/libdatacell_tidy.so \
///              -checks='datacell-*' ...
///
/// run_tidy.sh passes -load automatically when the plugin was built.

#include "DataCellTidyChecks.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace datacell {

class DataCellTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& Factories) override {
    Factories.registerCheck<GuardedByCoverageCheck>(
        "datacell-guarded-by-coverage");
    Factories.registerCheck<StatusCheckedCheck>("datacell-status-checked");
    Factories.registerCheck<NoRawSyncCheck>("datacell-no-raw-sync");
    Factories.registerCheck<LockRankOrderCheck>("datacell-lock-rank-order");
  }
};

}  // namespace datacell

static ClangTidyModuleRegistry::Add<datacell::DataCellTidyModule>
    X("datacell-module", "DataCell project-specific checks.");

// Pulled in by the -load mechanism; keeps the module object file live.
volatile int DataCellTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
