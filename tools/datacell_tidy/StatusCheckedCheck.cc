#include "DataCellTidyChecks.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::datacell {

namespace {

bool IsStatusLike(QualType QT) {
  const CXXRecordDecl* RD = QT.getCanonicalType()->getAsCXXRecordDecl();
  if (RD == nullptr) return false;
  const std::string Name = RD->getQualifiedNameAsString();
  return Name == "datacell::Status" || Name == "datacell::Result";
}

}  // namespace

void StatusCheckedCheck::registerMatchers(MatchFinder* Finder) {
  // A call whose full expression is itself a statement: the value had
  // nowhere to go. exprWithCleanups wraps calls returning non-trivial
  // types, so match through it.
  auto DiscardedCall =
      expr(anyOf(callExpr().bind("call"),
                 exprWithCleanups(has(callExpr().bind("call")))));
  Finder->addMatcher(
      compoundStmt(forEach(stmt(DiscardedCall))), this);
  // An explicit (void) cast of a Status/Result defeats [[nodiscard]]
  // silently; in this codebase it is the same bug with extra steps.
  Finder->addMatcher(
      cStyleCastExpr(hasDestinationType(voidType()),
                     hasSourceExpression(callExpr().bind("voidedCall"))),
      this);
  Finder->addMatcher(
      cxxStaticCastExpr(hasDestinationType(voidType()),
                        hasSourceExpression(callExpr().bind("voidedCall"))),
      this);
}

void StatusCheckedCheck::check(const MatchFinder::MatchResult& Result) {
  if (const auto* Call = Result.Nodes.getNodeAs<CallExpr>("call")) {
    if (IsStatusLike(Call->getType())) {
      diag(Call->getBeginLoc(),
           "Status/Result returned here is discarded; check it, "
           "RETURN_NOT_OK it, or log why it cannot fail");
    }
    return;
  }
  if (const auto* Call = Result.Nodes.getNodeAs<CallExpr>("voidedCall")) {
    if (IsStatusLike(Call->getType())) {
      diag(Call->getBeginLoc(),
           "casting a Status/Result to void swallows the error; handle it "
           "or route it through a logging helper");
    }
  }
}

}  // namespace clang::tidy::datacell
