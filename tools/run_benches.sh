#!/usr/bin/env sh
# Runs every bench binary from the build tree and collects the BENCH_*.json
# reports next to this repo's root. Usage:
#   tools/run_benches.sh [build-dir]     # default build dir: ./build
# Set DATACELL_QUICK=1 for the fast (CI-sized) parameterizations.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -d "$build_dir/bench" ]; then
  echo "no bench binaries in $build_dir — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

cd "$build_dir"
for b in bench/bench_*; do
  [ -x "$b" ] || continue
  echo "== $b =="
  "./$b"
  echo
done

found=0
for j in BENCH_*.json; do
  [ -e "$j" ] || continue
  cp -f "$j" "$repo_root/$j"
  echo "collected $j -> $repo_root/$j"
  found=1
done
[ "$found" = 1 ] || echo "note: no BENCH_*.json emitted" >&2

# The latency-reporting benches must carry percentile fields (DESIGN.md §10).
for j in BENCH_lroad.json BENCH_gateway_fanin.json; do
  [ -e "$j" ] || continue
  if ! grep -q '"latency_p99_us"' "$j"; then
    echo "ERROR: $j is missing latency_p99_us" >&2
    exit 1
  fi
done

# The sharing ablation must report both arms plus the acceptance summary
# fields (DESIGN.md §11).
if [ -e BENCH_ablation_sharing.json ]; then
  for field in '"sharing_tps"' '"nosharing_tps"' '"speedup_at_max_queries"' \
               '"sharing_at_least_2x"' '"peak_rows_no_higher"'; do
    if ! grep -q "$field" BENCH_ablation_sharing.json; then
      echo "ERROR: BENCH_ablation_sharing.json is missing $field" >&2
      exit 1
    fi
  done
fi

# The spill-backpressure report must carry all three arms and pass its
# acceptance bar: spilling sustains at least half the in-memory ingest
# rate (DESIGN.md §13).
if [ -e BENCH_spill_backpressure.json ]; then
  for field in '"inmemory_tps"' '"stall_tps"' '"spill_tps"' \
               '"spill_ratio"' '"spill_ge_half"'; do
    if ! grep -q "$field" BENCH_spill_backpressure.json; then
      echo "ERROR: BENCH_spill_backpressure.json is missing $field" >&2
      exit 1
    fi
  done
  if ! grep -q '"spill_ge_half": true' BENCH_spill_backpressure.json; then
    echo "ERROR: spill throughput fell below half of in-memory" >&2
    exit 1
  fi
fi

# The sharded-gateway report must carry both reactor arms and the
# backpressure-at-scale acceptance fields (DESIGN.md §15).
if [ -e BENCH_gateway_sharded.json ]; then
  for field in '"shards"' '"sensors"' '"tps_per_shard"' '"scaling_ratio"' \
               '"poll_tuples_per_cpu_s"' '"sharded_tuples_per_cpu_s"' \
               '"scaling_lossless"' '"bp_lossless"' \
               '"bp_backpressure_engagements"'; do
    if ! grep -q "$field" BENCH_gateway_sharded.json; then
      echo "ERROR: BENCH_gateway_sharded.json is missing $field" >&2
      exit 1
    fi
  done
  for field in '"scaling_lossless": true' '"bp_lossless": true'; do
    if ! grep -q "$field" BENCH_gateway_sharded.json; then
      echo "ERROR: BENCH_gateway_sharded.json failed: $field" >&2
      exit 1
    fi
  done
fi

# The vectorized-kernel report must carry all three arms plus the morsel
# latency percentiles and acceptance summary (DESIGN.md §12).
if [ -e BENCH_kernel_throughput.json ]; then
  for field in '"scalar_rows_per_s"' '"simd_rows_per_s"' \
               '"simd_morsel_rows_per_s"' '"simd_level"' \
               '"morsel_p50_us"' '"morsel_p95_us"' '"morsel_p99_us"' \
               '"best_simd_morsel_speedup"' '"simd_morsel_ge_4x"'; do
    if ! grep -q "$field" BENCH_kernel_throughput.json; then
      echo "ERROR: BENCH_kernel_throughput.json is missing $field" >&2
      exit 1
    fi
  done
fi
