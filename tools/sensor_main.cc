// Standalone sensor tool (§6.1): streams random two-column tuples to a
// DataCell server (or directly to an actuator) over TCP.
//
//   sensor <host> <port> [num_tuples] [tuples_per_write] [pace_us]

#include <cstdio>
#include <cstdlib>

#include "net/sensor.h"
#include "util/clock.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <host> <port> [num_tuples] [tuples_per_write] "
                 "[pace_us]\n",
                 argv[0]);
    return 2;
  }
  datacell::net::Sensor::Options options;
  if (argc > 3) options.num_tuples = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) options.tuples_per_write = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) options.write_interval = std::strtoll(argv[5], nullptr, 10);

  datacell::SystemClock* clock = datacell::SystemClock::Get();
  const datacell::Micros t0 = clock->Now();
  datacell::Status st = datacell::net::Sensor::Run(
      argv[1], static_cast<uint16_t>(std::atoi(argv[2])), options, clock);
  if (!st.ok()) {
    std::fprintf(stderr, "sensor failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double secs =
      static_cast<double>(clock->Now() - t0) / datacell::kMicrosPerSecond;
  std::printf("sensor: sent %llu tuples in %.3f s (%.0f tuples/s)\n",
              static_cast<unsigned long long>(options.num_tuples), secs,
              static_cast<double>(options.num_tuples) / secs);
  return 0;
}
