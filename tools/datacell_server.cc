// Standalone DataCell kernel (§6.1 topology): accepts sensor streams on
// one TCP port, runs a chain of continuous `select *` queries through the
// Petri-net scheduler, and forwards results to an actuator — the paper's
// three-process experiment, runnable for real. The gateway multiplexes
// any number of concurrent sensors on the listen port; start several
// `sensor` processes in parallel to fan in:
//
//   terminal 1: actuator 9001
//   terminal 2: datacell_server 9000 127.0.0.1 9001 16
//   terminal 3+: sensor 127.0.0.1 9000 100000   (as many as you like)
//
//   datacell_server <listen_port> <actuator_host> <actuator_port>
//       [queries] [workers] [capacity]
//
// `workers` sizes the scheduler's worker pool (default: the hardware
// concurrency); independent query-chain segments fire in parallel.
// `capacity` (rows, default 0 = unbounded) bounds the ingress basket(s):
// when resident rows reach it the gateway stops reading the sensor
// sockets (TCP push-back, no drops) and resumes once the query chain
// drains the basket below the low watermark (capacity/2).
//
// While the server runs, the listen port doubles as a stats endpoint:
// a connection whose first line is `STATS` (instead of a schema header)
// gets back one `key=value ...` line — ingress/drop/backpressure counters
// plus per-basket occupancy — and is closed. Scrape it with
// `echo STATS | nc 127.0.0.1 <listen_port>`. At shutdown the server
// prints per-transition firing counts and latency percentiles from the
// observability registry (docs/SQL.md describes the same data exposed
// through SQL as dc_* virtual tables).
//
// Sharding (DESIGN.md §15, opt-in via environment):
//   DATACELL_SHARDS=<n>        n >= 2 replaces the single poll(2) reactor
//                              with n epoll reactor shards behind one
//                              acceptor: connections are fd-hashed onto
//                              shards, each shard delivers into its own
//                              bounded basket b0.s<k> (capacity split n
//                              ways), the query chain is cloned per shard,
//                              and a fixed-shard-order merge transition
//                              re-joins the partitions before the emitter.
//                              Unset or 1 = exactly the old single-reactor
//                              server.
//
// Durability (all opt-in via environment, unset = exactly the old server):
//   DATACELL_LOG=<path>        append every ingested batch to a replayable
//                              ingest log; on startup, tuples past the last
//                              ack are replayed into the ingress basket(s),
//                              so a crash-restart cycle loses nothing the
//                              log had accepted. `SEQ` on the listen port
//                              tells a reconnecting sensor where to resume
//                              (sharded: the across-shard stream total).
//   DATACELL_FSYNC=none|batch|always   log fsync policy (default batch).
//   DATACELL_SPILL_PAGES=<n>   attach an <n>-frame (64 KiB each) spill
//                              buffer pool to the bounded ingress
//                              basket(s): overflow past `capacity` evicts
//                              cold tuples to disk instead of closing the
//                              TCP valve.
//   DATACELL_SPILL_FILE=<path> spill file location (default
//                              "datacell.spill", removed on exit).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "core/engine.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "net/gateway.h"
#include "net/sensor.h"
#include "net/shard.h"
#include "sql/plan/partition.h"
#include "storage/ingest_log.h"
#include "storage/pager.h"
#include "util/clock.h"

int main(int argc, char** argv) {
  using datacell::Status;
  using datacell::Table;
  using datacell::Value;
  namespace core = datacell::core;
  namespace net = datacell::net;
  namespace plan = datacell::sql::plan;
  namespace storage = datacell::storage;

  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <listen_port> <actuator_host> <actuator_port> "
                 "[queries] [workers] [capacity]\n",
                 argv[0]);
    return 2;
  }
  const uint16_t listen_port = static_cast<uint16_t>(std::atoi(argv[1]));
  const char* actuator_host = argv[2];
  const uint16_t actuator_port = static_cast<uint16_t>(std::atoi(argv[3]));
  const int queries = argc > 4 ? std::atoi(argv[4]) : 8;
  const int workers_arg = argc > 5 ? std::atoi(argv[5]) : 0;
  const size_t workers =
      workers_arg > 0 ? static_cast<size_t>(workers_arg)
                      : std::max(1u, std::thread::hardware_concurrency());
  const long capacity_arg = argc > 6 ? std::atol(argv[6]) : 0;
  const size_t capacity =
      capacity_arg > 0 ? static_cast<size_t>(capacity_arg) : 0;
  size_t shards = 1;
  if (const char* shards_env = std::getenv("DATACELL_SHARDS")) {
    const long n = std::atol(shards_env);
    if (n > 1) shards = static_cast<size_t>(n);
  }

  datacell::SystemClock* clock = datacell::SystemClock::Get();
  const datacell::Schema stream = net::Sensor::StreamSchema();

  core::Engine engine(clock, workers);
  engine.SetVariable("dc_shards", Value(static_cast<int64_t>(shards)));

  // Per-shard query chain: b0.s<k> -> q1.s<k> -> ... -> qN.s<k>'s output.
  // The unsharded server is the shards == 1 instance of the same topology
  // minus the ".s0"/".merged" suffixes kept for name compatibility; both
  // run the same cloned-stage builder.
  const auto make_chain = [&](const std::string& suffix,
                              const core::BasketPtr& in)
      -> datacell::Result<core::BasketPtr> {
    core::BasketPtr prev = in;
    for (int i = 1; i <= queries; ++i) {
      ASSIGN_OR_RETURN(
          core::BasketPtr next,
          engine.CreateBasket("b" + std::to_string(i) + suffix,
                              prev->schema(), /*add_arrival_ts=*/false));
      core::BasketPtr from = prev;
      auto f = std::make_shared<core::Factory>(
          "q" + std::to_string(i) + suffix,
          [from, next](core::FactoryContext& ctx) -> Status {
            Table batch = from->TakeAll();
            if (batch.num_rows() == 0) return Status::OK();
            auto n = next->AppendAligned(batch, ctx.now());
            return n.status();
          });
      f->AddInput(from);
      f->AddOutput(next);
      engine.Register(f);
      prev = next;
    }
    return prev;
  };

  // Ingress baskets + (sharded) merge topology.
  std::vector<core::BasketPtr> ingress_baskets;
  core::BasketPtr emit_basket;  // the basket the emitter reads
  if (shards == 1) {
    auto b0 = capacity > 0 ? engine.CreateBoundedBasket("b0", stream, capacity)
                           : engine.CreateBasket("b0", stream);
    if (!b0.ok()) {
      std::fprintf(stderr, "cannot create ingress basket: %s\n",
                   b0.status().ToString().c_str());
      return 1;
    }
    ingress_baskets.push_back(*b0);
    auto tail = make_chain("", *b0);
    if (!tail.ok()) {
      std::fprintf(stderr, "cannot build query chain: %s\n",
                   tail.status().ToString().c_str());
      return 1;
    }
    emit_basket = *tail;
  } else {
    plan::PartitionSpec spec;
    spec.base = "b0";
    spec.partitions = shards;
    spec.capacity = capacity;
    auto chain = plan::BuildPartitionedChain(
        &engine, spec, stream,
        [&](size_t k, const core::BasketPtr& in) {
          return make_chain(".s" + std::to_string(k), in);
        });
    if (!chain.ok()) {
      std::fprintf(stderr, "cannot build sharded topology: %s\n",
                   chain.status().ToString().c_str());
      return 1;
    }
    ingress_baskets = chain->inputs;
    emit_basket = chain->merged;
  }

  // Optional spill tier on the bounded ingress basket(s), sharing one pool.
  std::unique_ptr<storage::BufferPool> spill_pool;
  const char* spill_pages_env = std::getenv("DATACELL_SPILL_PAGES");
  if (spill_pages_env != nullptr && std::atol(spill_pages_env) > 0) {
    const char* spill_file = std::getenv("DATACELL_SPILL_FILE");
    auto pager = storage::Pager::Open(
        spill_file != nullptr ? spill_file : "datacell.spill");
    if (!pager.ok()) {
      std::fprintf(stderr, "cannot open spill file: %s\n",
                   pager.status().ToString().c_str());
      return 1;
    }
    spill_pool = std::make_unique<storage::BufferPool>(
        std::move(*pager), static_cast<size_t>(std::atol(spill_pages_env)));
    for (const core::BasketPtr& b : ingress_baskets) {
      b->AttachSpill(spill_pool.get());
    }
  }

  // Optional replayable ingest log.
  std::unique_ptr<storage::IngestLog> ingest_log;
  const char* log_path = std::getenv("DATACELL_LOG");
  if (log_path != nullptr && *log_path != '\0') {
    storage::FsyncPolicy policy = storage::FsyncPolicy::kBatch;
    if (const char* fsync_env = std::getenv("DATACELL_FSYNC")) {
      if (std::strcmp(fsync_env, "none") == 0) {
        policy = storage::FsyncPolicy::kNone;
      } else if (std::strcmp(fsync_env, "always") == 0) {
        policy = storage::FsyncPolicy::kAlways;
      }
    }
    auto log = storage::IngestLog::Open(log_path, policy);
    if (!log.ok()) {
      std::fprintf(stderr, "cannot open ingest log: %s\n",
                   log.status().ToString().c_str());
      return 1;
    }
    ingest_log = std::move(*log);
    // Replay before the gateway starts: every tuple past the last ack goes
    // back into the basket named by its stream (b0 unsharded, b0.s<k> per
    // shard — the engine resolves either) so the query chain re-processes
    // what the crash interrupted. Direct appends: the replay path must not
    // re-append to the log.
    auto replayed = engine.ReplayIngest(log_path);
    if (!replayed.ok()) {
      std::fprintf(stderr, "ingest log replay failed: %s\n",
                   replayed.status().ToString().c_str());
      return 1;
    }
    if (replayed->replayed > 0 || replayed->torn_tail) {
      std::printf("datacell: replayed %llu logged tuples%s\n",
                  static_cast<unsigned long long>(replayed->replayed),
                  replayed->torn_tail ? " (torn tail truncated)" : "");
    }
  }

  auto egress = net::TcpEgress::Connect(actuator_host, actuator_port);
  if (!egress.ok()) {
    std::fprintf(stderr, "cannot reach actuator: %s\n",
                 egress.status().ToString().c_str());
    return 1;
  }
  auto emitter = std::make_shared<core::Emitter>("e", (*egress)->MakeSink());
  emitter->AddInput(emit_basket);
  engine.Register(emitter);

  // One receptor per ingress basket: the single-reactor gateway takes the
  // lone receptor, the sharded gateway one per shard.
  std::vector<core::ReceptorPtr> receptors;
  for (size_t k = 0; k < ingress_baskets.size(); ++k) {
    auto receptor = std::make_shared<core::Receptor>(
        shards == 1 ? "r" : "r.s" + std::to_string(k));
    receptor->AddOutput(ingress_baskets[k]);
    receptors.push_back(std::move(receptor));
  }

  std::unique_ptr<net::TcpIngress> ingress;
  std::unique_ptr<net::ShardedIngress> sharded;
  uint16_t bound_port = 0;
  if (shards == 1) {
    ingress = std::make_unique<net::TcpIngress>(receptors[0],
                                                net::Codec(stream), clock);
    if (ingest_log != nullptr) ingress->EnableIngestLog(ingest_log.get());
    if (Status st = ingress->Start(listen_port); !st.ok()) {
      std::fprintf(stderr, "cannot listen: %s\n", st.ToString().c_str());
      return 1;
    }
    bound_port = ingress->port();
  } else {
    sharded = std::make_unique<net::ShardedIngress>(
        receptors, net::Codec(stream), clock);
    if (ingest_log != nullptr) sharded->EnableIngestLog(ingest_log.get());
    if (Status st = sharded->Start(listen_port); !st.ok()) {
      std::fprintf(stderr, "cannot listen: %s\n", st.ToString().c_str());
      return 1;
    }
    bound_port = sharded->port();
  }
  if (Status st = engine.scheduler().Start(); !st.ok()) {
    std::fprintf(stderr, "scheduler failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("datacell: listening on %u, %d-query chain, %zu workers, "
              "%zu shard(s)%s%s, forwarding to %s:%u\n",
              bound_port, queries, workers, shards,
              capacity > 0 ? ", bounded ingress" : "",
              ingest_log != nullptr ? ", logged" : "", actuator_host,
              actuator_port);
  std::fflush(stdout);

  const auto finished = [&] {
    return shards == 1 ? ingress->finished() : sharded->finished();
  };
  // Serve until every connected sensor has disconnected, drain, and exit.
  while (!finished()) clock->SleepFor(10'000);
  while (true) {
    bool empty = true;
    for (const std::string& name : engine.ListBaskets()) {
      auto b = engine.GetBasket(name);
      if (b.ok() && !(*b)->empty()) empty = false;
    }
    if (empty) break;
    clock->SleepFor(10'000);
  }
  clock->SleepFor(50'000);  // let the emitter flush
  engine.scheduler().Stop();
  if (Status st = (*egress)->Finish(); !st.ok()) {
    std::fprintf(stderr, "egress finish: %s\n", st.ToString().c_str());
  }
  if (ingest_log != nullptr) {
    // Clean shutdown: everything logged was drained through the chain and
    // flushed to the actuator, so acknowledge it all — the next start
    // replays nothing.
    for (const storage::IngestLog::StreamInfo& si : ingest_log->Streams()) {
      if (si.last_seq > si.acked) {
        if (Status st = ingest_log->Ack(si.name, si.last_seq); !st.ok()) {
          std::fprintf(stderr, "log ack: %s\n", st.ToString().c_str());
        }
      }
    }
    if (Status st = ingest_log->Sync(); !st.ok()) {
      std::fprintf(stderr, "log sync: %s\n", st.ToString().c_str());
    }
  }
  const uint64_t total_tuples =
      shards == 1 ? ingress->tuples_received() : sharded->tuples_received();
  const uint64_t total_dropped =
      shards == 1 ? ingress->tuples_dropped() : sharded->tuples_dropped();
  const uint64_t total_bp = shards == 1
                                ? ingress->backpressure_engagements()
                                : sharded->backpressure_engagements();
  std::printf("datacell: done (%llu tuples ingested, %llu malformed dropped, "
              "%llu backpressure engagements)\n",
              static_cast<unsigned long long>(total_tuples),
              static_cast<unsigned long long>(total_dropped),
              static_cast<unsigned long long>(total_bp));
  std::printf("transition      firings      p50us      p95us      p99us"
              "      maxus\n");
  for (const core::Scheduler::TransitionStats& t :
       engine.scheduler().TransitionStatsSnapshot()) {
    std::printf("%-12s %10llu %10.0f %10.0f %10.0f %10lld\n",
                t.name.c_str(), static_cast<unsigned long long>(t.firings),
                t.latency.p50(), t.latency.p95(), t.latency.p99(),
                static_cast<long long>(t.latency.max));
  }
  // Stop the gateway before the engine (and its baskets) go away.
  if (ingress != nullptr) ingress->Stop();
  if (sharded != nullptr) sharded->Stop();
  return 0;
}
