// Standalone DataCell kernel (§6.1 topology): accepts sensor streams on
// one TCP port, runs a chain of continuous `select *` queries through the
// Petri-net scheduler, and forwards results to an actuator — the paper's
// three-process experiment, runnable for real. The gateway multiplexes
// any number of concurrent sensors on the listen port; start several
// `sensor` processes in parallel to fan in:
//
//   terminal 1: actuator 9001
//   terminal 2: datacell_server 9000 127.0.0.1 9001 16
//   terminal 3+: sensor 127.0.0.1 9000 100000   (as many as you like)
//
//   datacell_server <listen_port> <actuator_host> <actuator_port>
//       [queries] [workers] [capacity]
//
// `workers` sizes the scheduler's worker pool (default: the hardware
// concurrency); independent query-chain segments fire in parallel.
// `capacity` (rows, default 0 = unbounded) bounds the ingress basket:
// when resident rows reach it the gateway stops reading the sensor
// sockets (TCP push-back, no drops) and resumes once the query chain
// drains the basket below the low watermark (capacity/2).
//
// While the server runs, the listen port doubles as a stats endpoint:
// a connection whose first line is `STATS` (instead of a schema header)
// gets back one `key=value ...` line — ingress/drop/backpressure counters
// plus per-basket occupancy — and is closed. Scrape it with
// `echo STATS | nc 127.0.0.1 <listen_port>`. At shutdown the server
// prints per-transition firing counts and latency percentiles from the
// observability registry (docs/SQL.md describes the same data exposed
// through SQL as dc_* virtual tables).
//
// Durability (all opt-in via environment, unset = exactly the old server):
//   DATACELL_LOG=<path>        append every ingested batch to a replayable
//                              ingest log; on startup, tuples past the last
//                              ack are replayed into the ingress basket, so
//                              a crash-restart cycle loses nothing the log
//                              had accepted. `SEQ` on the listen port tells
//                              a reconnecting sensor where to resume.
//   DATACELL_FSYNC=none|batch|always   log fsync policy (default batch).
//   DATACELL_SPILL_PAGES=<n>   attach an <n>-frame (64 KiB each) spill
//                              buffer pool to the bounded ingress basket:
//                              overflow past `capacity` evicts cold tuples
//                              to disk instead of closing the TCP valve.
//   DATACELL_SPILL_FILE=<path> spill file location (default
//                              "datacell.spill", removed on exit).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/basket.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "net/gateway.h"
#include "net/sensor.h"
#include "storage/ingest_log.h"
#include "storage/pager.h"
#include "util/clock.h"

int main(int argc, char** argv) {
  using datacell::Status;
  using datacell::Table;
  namespace core = datacell::core;
  namespace net = datacell::net;
  namespace storage = datacell::storage;

  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <listen_port> <actuator_host> <actuator_port> "
                 "[queries] [workers] [capacity]\n",
                 argv[0]);
    return 2;
  }
  const uint16_t listen_port = static_cast<uint16_t>(std::atoi(argv[1]));
  const char* actuator_host = argv[2];
  const uint16_t actuator_port = static_cast<uint16_t>(std::atoi(argv[3]));
  const int queries = argc > 4 ? std::atoi(argv[4]) : 8;
  const int workers_arg = argc > 5 ? std::atoi(argv[5]) : 0;
  const size_t workers =
      workers_arg > 0 ? static_cast<size_t>(workers_arg)
                      : std::max(1u, std::thread::hardware_concurrency());
  const long capacity_arg = argc > 6 ? std::atol(argv[6]) : 0;
  const size_t capacity =
      capacity_arg > 0 ? static_cast<size_t>(capacity_arg) : 0;

  datacell::SystemClock* clock = datacell::SystemClock::Get();
  const datacell::Schema stream = net::Sensor::StreamSchema();

  // Query chain b0 -> q1 -> b1 -> ... -> bk -> emitter.
  std::vector<core::BasketPtr> baskets;
  baskets.push_back(std::make_shared<core::Basket>("b0", stream));
  if (capacity > 0) baskets[0]->SetCapacity(capacity);

  // Optional spill tier on the bounded ingress basket.
  std::unique_ptr<storage::BufferPool> spill_pool;
  const char* spill_pages_env = std::getenv("DATACELL_SPILL_PAGES");
  if (spill_pages_env != nullptr && std::atol(spill_pages_env) > 0) {
    const char* spill_file = std::getenv("DATACELL_SPILL_FILE");
    auto pager = storage::Pager::Open(
        spill_file != nullptr ? spill_file : "datacell.spill");
    if (!pager.ok()) {
      std::fprintf(stderr, "cannot open spill file: %s\n",
                   pager.status().ToString().c_str());
      return 1;
    }
    spill_pool = std::make_unique<storage::BufferPool>(
        std::move(*pager), static_cast<size_t>(std::atol(spill_pages_env)));
    baskets[0]->AttachSpill(spill_pool.get());
  }

  // Optional replayable ingest log.
  std::unique_ptr<storage::IngestLog> ingest_log;
  const char* log_path = std::getenv("DATACELL_LOG");
  if (log_path != nullptr && *log_path != '\0') {
    storage::FsyncPolicy policy = storage::FsyncPolicy::kBatch;
    if (const char* fsync_env = std::getenv("DATACELL_FSYNC")) {
      if (std::strcmp(fsync_env, "none") == 0) {
        policy = storage::FsyncPolicy::kNone;
      } else if (std::strcmp(fsync_env, "always") == 0) {
        policy = storage::FsyncPolicy::kAlways;
      }
    }
    auto log = storage::IngestLog::Open(log_path, policy);
    if (!log.ok()) {
      std::fprintf(stderr, "cannot open ingest log: %s\n",
                   log.status().ToString().c_str());
      return 1;
    }
    ingest_log = std::move(*log);
    // Replay before the gateway starts: every tuple past the last ack goes
    // back into b0 (directly — the replay path must not re-append to the
    // log) so the query chain re-processes what the crash interrupted.
    core::BasketPtr b0 = baskets[0];
    auto replayed = storage::ReplayIngestLog(
        log_path,
        [&b0, clock](const std::string& stream_name, const datacell::Schema&,
                     uint64_t, const datacell::Row& row) -> Status {
          if (stream_name != b0->name()) return Status::OK();
          return b0->AppendRow(row, clock->Now());
        });
    if (!replayed.ok()) {
      std::fprintf(stderr, "ingest log replay failed: %s\n",
                   replayed.status().ToString().c_str());
      return 1;
    }
    if (replayed->replayed > 0 || replayed->torn_tail) {
      std::printf("datacell: replayed %llu logged tuples%s\n",
                  static_cast<unsigned long long>(replayed->replayed),
                  replayed->torn_tail ? " (torn tail truncated)" : "");
    }
  }
  core::Scheduler scheduler(clock, workers);
  for (int i = 1; i <= queries; ++i) {
    baskets.push_back(std::make_shared<core::Basket>(
        "b" + std::to_string(i), baskets[0]->schema(), false));
    core::BasketPtr in = baskets[static_cast<size_t>(i - 1)];
    core::BasketPtr out = baskets[static_cast<size_t>(i)];
    auto f = std::make_shared<core::Factory>(
        "q" + std::to_string(i),
        [in, out](core::FactoryContext& ctx) -> Status {
          Table batch = in->TakeAll();
          if (batch.num_rows() == 0) return Status::OK();
          auto n = out->AppendAligned(batch, ctx.now());
          return n.status();
        });
    f->AddInput(in);
    f->AddOutput(out);
    scheduler.Register(f);
  }

  auto egress = net::TcpEgress::Connect(actuator_host, actuator_port);
  if (!egress.ok()) {
    std::fprintf(stderr, "cannot reach actuator: %s\n",
                 egress.status().ToString().c_str());
    return 1;
  }
  auto emitter = std::make_shared<core::Emitter>("e", (*egress)->MakeSink());
  emitter->AddInput(baskets.back());
  scheduler.Register(emitter);

  auto receptor = std::make_shared<core::Receptor>("r");
  receptor->AddOutput(baskets.front());
  net::TcpIngress ingress(receptor, net::Codec(stream), clock);
  if (ingest_log != nullptr) ingress.EnableIngestLog(ingest_log.get());
  if (Status st = ingress.Start(listen_port); !st.ok()) {
    std::fprintf(stderr, "cannot listen: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = scheduler.Start(); !st.ok()) {
    std::fprintf(stderr, "scheduler failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (capacity > 0) {
    std::printf("datacell: listening on %u, %d-query chain, %zu workers, "
                "basket bound %zu rows, forwarding to %s:%u\n",
                ingress.port(), queries, workers, capacity, actuator_host,
                actuator_port);
  } else {
    std::printf("datacell: listening on %u, %d-query chain, %zu workers, "
                "forwarding to %s:%u\n",
                ingress.port(), queries, workers, actuator_host,
                actuator_port);
  }
  std::fflush(stdout);

  // Serve until every connected sensor has disconnected, drain, and exit.
  while (!ingress.finished()) clock->SleepFor(10'000);
  while (true) {
    bool empty = true;
    for (const core::BasketPtr& b : baskets) {
      if (!b->empty()) empty = false;
    }
    if (empty) break;
    clock->SleepFor(10'000);
  }
  clock->SleepFor(50'000);  // let the emitter flush
  scheduler.Stop();
  if (Status st = (*egress)->Finish(); !st.ok()) {
    std::fprintf(stderr, "egress finish: %s\n", st.ToString().c_str());
  }
  if (ingest_log != nullptr) {
    // Clean shutdown: everything logged was drained through the chain and
    // flushed to the actuator, so acknowledge it all — the next start
    // replays nothing.
    for (const storage::IngestLog::StreamInfo& si : ingest_log->Streams()) {
      if (si.last_seq > si.acked) {
        if (Status st = ingest_log->Ack(si.name, si.last_seq); !st.ok()) {
          std::fprintf(stderr, "log ack: %s\n", st.ToString().c_str());
        }
      }
    }
    if (Status st = ingest_log->Sync(); !st.ok()) {
      std::fprintf(stderr, "log sync: %s\n", st.ToString().c_str());
    }
  }
  std::printf("datacell: done (%llu tuples ingested, %llu malformed dropped, "
              "%llu backpressure engagements)\n",
              static_cast<unsigned long long>(ingress.tuples_received()),
              static_cast<unsigned long long>(ingress.tuples_dropped()),
              static_cast<unsigned long long>(
                  ingress.backpressure_engagements()));
  std::printf("transition      firings      p50us      p95us      p99us"
              "      maxus\n");
  for (const core::Scheduler::TransitionStats& t :
       scheduler.TransitionStatsSnapshot()) {
    std::printf("%-12s %10llu %10.0f %10.0f %10.0f %10lld\n",
                t.name.c_str(), static_cast<unsigned long long>(t.firings),
                t.latency.p50(), t.latency.p95(), t.latency.p99(),
                static_cast<long long>(t.latency.max));
  }
  return 0;
}
