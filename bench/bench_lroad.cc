// Linear Road (§6.2): Figures 7, 8 and 9.
//
//  Fig 7: cumulative input volume and per-collection processing load over
//         the 3-hour run.
//  Fig 8: input arrival rate over time for two scale factors.
//  Fig 9: Q7 (toll/accident alerts, the heavyweight output collection)
//         average response time per window of input tuples, two SFs.
//
// The official generator scales SF 1 to ~1.2e7 tuples with an arrival ramp
// ending around 1700 tuples/s; our synthetic generator reproduces the ramp
// shape and scale-factor proportionality. The full-network runs default to
// a reduced scale factor so the harness finishes on a laptop-class, single
// core machine (override with DATACELL_LROAD_SF / DATACELL_LROAD_SF2);
// shapes — load growth over time, Q7 dominating, deadlines met — are
// preserved. See EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "lroad/driver.h"
#include "lroad/generator.h"
#include "lroad/validator.h"

namespace datacell::lroad {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

void PrintFig8(double sf) {
  Generator::Options o;
  o.scale_factor = sf;
  Generator g(o);
  std::printf("\n--- Figure 8: arrival rate, scale factor %.2f ---\n", sf);
  std::printf("%12s %16s %16s\n", "minute", "tuples/sec", "cumulative");
  uint64_t last_total = 0;
  while (!g.Done()) {
    Table batch = g.NextSecond();
    (void)batch;
    if (g.now() % 600 == 0) {
      const uint64_t total = g.tuples_generated();
      std::printf("%12lld %16.1f %16llu\n",
                  static_cast<long long>(g.now() / 60),
                  static_cast<double>(total - last_total) / 600.0,
                  static_cast<unsigned long long>(total));
      last_total = total;
    }
  }
  std::printf("total tuples at SF %.2f: %llu\n", sf,
              static_cast<unsigned long long>(g.tuples_generated()));
}

// Per-batch wall-time distribution from the run: every tuple's end-to-end
// response time L(t) = D(t) - C(t) is bounded by its batch's value, so the
// percentiles here are the reportable end-to-end tuple latencies.
void WriteJson(double sf, const Driver::Report& report, bool valid) {
  FILE* out = std::fopen("BENCH_lroad.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_lroad.json\n");
    return;
  }
  const obs::HistogramSnapshot& h = report.batch_latency;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"lroad\",\n"
               "  \"scale_factor\": %.3f,\n"
               "  \"total_tuples\": %llu,\n"
               "  \"toll_notifications\": %llu,\n"
               "  \"accident_alerts\": %llu,\n"
               "  \"batches\": %llu,\n"
               "  \"latency_p50_us\": %.1f,\n"
               "  \"latency_p95_us\": %.1f,\n"
               "  \"latency_p99_us\": %.1f,\n"
               "  \"latency_max_us\": %lld,\n"
               "  \"latency_mean_us\": %.1f,\n"
               "  \"max_batch_wall_ms\": %.3f,\n"
               "  \"deadline_violations\": %llu,\n"
               "  \"validation_pass\": %s\n"
               "}\n",
               sf, static_cast<unsigned long long>(report.total_tuples),
               static_cast<unsigned long long>(report.toll_notifications),
               static_cast<unsigned long long>(report.accident_alerts),
               static_cast<unsigned long long>(h.count), h.p50(), h.p95(),
               h.p99(), static_cast<long long>(h.max), h.Mean(),
               report.max_batch_wall_ms,
               static_cast<unsigned long long>(report.deadline_violations),
               valid ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_lroad.json\n");
}

int RunFull(double sf, bool print_fig7) {
  Driver::Options opts;
  opts.generator.scale_factor = sf;
  opts.generator.seed = 5;
  opts.sample_every_sec = 600;  // 10-minute windows for the printed series
  opts.q7_window_tuples = static_cast<uint64_t>(100'000 * sf);
  if (opts.q7_window_tuples < 5'000) opts.q7_window_tuples = 5'000;

  std::printf("\n--- full run, scale factor %.2f (3 simulated hours) ---\n",
              sf);
  auto report = Driver::Run(opts, nullptr);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  if (print_fig7) {
    std::printf("\n--- Figure 7(a): tuples entered ---\n");
    std::printf("%10s %16s\n", "minute", "cumulative");
    for (const auto& [sec, total] : report->cumulative_tuples) {
      std::printf("%10lld %16llu\n", static_cast<long long>(sec / 60),
                  static_cast<unsigned long long>(total));
    }
    static const char* kNames[7] = {
        "Q1 accidents",         "Q2 statistics",    "Q3 update-statistics",
        "Q4 filter-by-type",    "Q5 daily-expend.", "Q6 account-balance",
        "Q7 toll/acc alerts"};
    for (size_t c : {3, 0, 1, 2, 6, 5, 4}) {
      std::printf("\n--- Figure 7: %s load (per 10-min window) ---\n",
                  kNames[c]);
      std::printf("%10s %12s %12s %12s\n", "minute", "avg(ms)", "max(ms)",
                  "firings");
      for (const Driver::LoadSample& s : report->collection_load[c]) {
        std::printf("%10lld %12.3f %12.3f %12llu\n",
                    static_cast<long long>(s.sim_sec / 60), s.avg_ms, s.max_ms,
                    static_cast<unsigned long long>(s.firings));
      }
    }
  }

  std::printf("\n--- Figure 9: Q7 average response time, SF %.2f ---\n", sf);
  std::printf("%16s %16s\n", "tuples seen", "avg resp (ms)");
  for (const auto& [tuples, ms] : report->q7_response) {
    std::printf("%16llu %16.3f\n", static_cast<unsigned long long>(tuples), ms);
  }

  std::printf("\nsummary SF %.2f: tuples=%llu tolls=%llu (nonzero %llu) "
              "acc_alerts=%llu balances=%llu expenditures=%llu\n",
              sf, static_cast<unsigned long long>(report->total_tuples),
              static_cast<unsigned long long>(report->toll_notifications),
              static_cast<unsigned long long>(report->tolls_nonzero),
              static_cast<unsigned long long>(report->accident_alerts),
              static_cast<unsigned long long>(report->balance_answers),
              static_cast<unsigned long long>(report->expenditure_answers));
  std::printf("deadline check: max batch wall %.1f ms (limit 5000 ms), "
              "violations=%llu\n",
              report->max_batch_wall_ms,
              static_cast<unsigned long long>(report->deadline_violations));
  const obs::HistogramSnapshot& lat = report->batch_latency;
  std::printf("end-to-end latency (per-batch wall): p50=%.1f us p95=%.1f us "
              "p99=%.1f us max=%lld us over %llu batches\n",
              lat.p50(), lat.p95(), lat.p99(),
              static_cast<long long>(lat.max),
              static_cast<unsigned long long>(lat.count));

  ValidationReport v = Validate(*report);
  std::printf("validation: %s — accidents %zu/%zu detected, tolls=%zu "
              "balances=%zu expenditures=%zu checks\n",
              v.ok() ? "PASS" : "FAIL", v.detected_accidents,
              v.detectable_accidents, v.tolls_checked, v.balances_checked,
              v.expenditures_checked);
  // The print_fig7 run is the primary (full-SF) one; only it writes the
  // JSON so the half-SF warmup run does not clobber the numbers.
  if (print_fig7) WriteJson(sf, *report, v.ok());
  if (!v.ok()) {
    for (size_t i = 0; i < std::min<size_t>(v.errors.size(), 5); ++i) {
      std::printf("  error: %s\n", v.errors[i].c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace datacell::lroad

int main(int argc, char** argv) {
  using datacell::lroad::EnvDouble;
  const bool arrival_only =
      argc > 1 && std::string(argv[1]) == "--arrival-only";

  std::printf("=== Linear Road benchmark (§6.2) ===\n");

  // Figure 8 — generator-only, full paper scale factors.
  datacell::lroad::PrintFig8(0.5);
  datacell::lroad::PrintFig8(1.0);
  if (arrival_only) return 0;

  // Figures 7 and 9 — full network runs at two scale factors.
  const double sf = EnvDouble("DATACELL_LROAD_SF", 0.25);
  const double sf2 = EnvDouble("DATACELL_LROAD_SF2", sf / 2);
  int rc = datacell::lroad::RunFull(sf2, /*print_fig7=*/false);
  if (rc != 0) return rc;
  return datacell::lroad::RunFull(sf, /*print_fig7=*/true);
}
