// Gateway fan-in: N concurrent sensor connections multiplexed by one
// poll-based ingress into a capacity-bounded basket.
//
// The consumer drains the basket at a bounded rate, so the sensors
// collectively outpace it and the credit valve must engage: the gateway
// stops reading the sockets (TCP push-back to the sensors) instead of
// dropping, and the basket's resident rows never exceed the configured
// bound. Acceptance: >= 32 concurrent sensors, peak resident rows <=
// capacity, zero tuples dropped end to end.
//
// Emits BENCH_gateway_fanin.json.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "core/receptor.h"
#include "net/gateway.h"
#include "net/sensor.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace datacell {
namespace {

bool Quick() { return std::getenv("DATACELL_QUICK") != nullptr; }

struct Config {
  size_t sensors = 32;
  uint64_t tuples_per_sensor = 20'000;
  size_t capacity = 8'192;
  size_t low_watermark = 4'096;
  size_t max_batch_rows = 512;
  // Consumer drain rate cap: one chunk per tick keeps the consumer slower
  // than the fan-in so the valve has to do real work.
  size_t drain_chunk = 1'024;
  Micros drain_tick = 1'000;  // 1 ms
};

struct RunResult {
  double elapsed_s = 0;
  uint64_t consumed = 0;
  uint64_t peak_resident = 0;
  uint64_t received = 0;
  uint64_t malformed_dropped = 0;
  uint64_t basket_dropped = 0;
  uint64_t engagements = 0;
  uint64_t connections = 0;
  /// End-to-end tuple latency: sensor stamps the `tag` column at send time;
  /// the consumer records now - tag when it takes the tuple out.
  obs::HistogramSnapshot latency;
};

RunResult Run(const Config& cfg) {
  SystemClock* clock = SystemClock::Get();
  const Schema stream = net::Sensor::StreamSchema();

  auto basket = std::make_shared<core::Basket>("in", stream);
  basket->SetCapacity(cfg.capacity, cfg.low_watermark);
  auto receptor = std::make_shared<core::Receptor>("r");
  receptor->AddOutput(basket);

  net::TcpIngress ingress(receptor, net::Codec(stream), clock,
                          cfg.max_batch_rows, /*max_connections=*/256);
  if (!ingress.Start().ok()) {
    std::fprintf(stderr, "ingress start failed\n");
    std::exit(1);
  }

  std::atomic<bool> stop_consumer{false};
  std::atomic<uint64_t> consumed{0};
  obs::Histogram latency;
  std::thread consumer([&] {
    SelVector sel;
    while (true) {
      const size_t n = std::min(basket->size(), cfg.drain_chunk);
      if (n > 0) {
        sel.resize(n);
        for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
        Result<Table> chunk = basket->TakeRows(sel);
        if (!chunk.ok()) break;
        const Micros now = clock->Now();
        const auto& tags = chunk->column(0).ints();
        for (int64_t tag : tags) latency.Record(now - tag);
        consumed.fetch_add(chunk->num_rows());
      } else if (stop_consumer.load()) {
        break;
      }
      clock->SleepFor(cfg.drain_tick);
    }
  });

  const Micros t0 = clock->Now();
  std::vector<std::thread> sensors;
  sensors.reserve(cfg.sensors);
  for (size_t s = 0; s < cfg.sensors; ++s) {
    sensors.emplace_back([&, s] {
      net::Sensor::Options opts;
      opts.num_tuples = cfg.tuples_per_sensor;
      opts.tuples_per_write = 64;
      opts.seed = s + 1;
      Status st = net::Sensor::Run("127.0.0.1", ingress.port(), opts, clock);
      if (!st.ok()) {
        std::fprintf(stderr, "sensor %zu: %s\n", s, st.ToString().c_str());
        std::exit(1);
      }
    });
  }
  for (auto& t : sensors) t.join();
  for (int i = 0; i < 60'000 && !ingress.finished(); ++i) clock->SleepFor(1000);
  stop_consumer.store(true);
  consumer.join();
  const Micros t1 = clock->Now();
  ingress.Stop();

  RunResult r;
  r.elapsed_s = static_cast<double>(t1 - t0) / 1e6;
  r.consumed = consumed.load();
  r.peak_resident = basket->stats().peak_rows;
  r.received = ingress.tuples_received();
  r.malformed_dropped = ingress.tuples_dropped();
  r.basket_dropped = basket->stats().dropped;
  r.engagements = ingress.backpressure_engagements();
  r.connections = ingress.connections_accepted();
  r.latency = latency.Snapshot();
  return r;
}

}  // namespace
}  // namespace datacell

int main() {
  datacell::Config cfg;
  if (datacell::Quick()) cfg.tuples_per_sensor = 2'000;
  const uint64_t total = cfg.sensors * cfg.tuples_per_sensor;

  std::printf("=== Gateway fan-in: %zu concurrent sensors -> one ingress -> "
              "bounded basket ===\n",
              cfg.sensors);
  std::printf("capacity %zu rows (low watermark %zu), %llu tuples total\n\n",
              cfg.capacity, cfg.low_watermark,
              static_cast<unsigned long long>(total));

  datacell::RunResult r = datacell::Run(cfg);

  const double tps = r.elapsed_s > 0
                         ? static_cast<double>(r.received) / r.elapsed_s
                         : 0;
  const bool bound_ok = r.peak_resident <= cfg.capacity;
  const bool lossless = r.received == total && r.consumed == total &&
                        r.malformed_dropped == 0 && r.basket_dropped == 0;
  std::printf("connections          %llu\n",
              static_cast<unsigned long long>(r.connections));
  std::printf("tuples received      %llu\n",
              static_cast<unsigned long long>(r.received));
  std::printf("tuples consumed      %llu\n",
              static_cast<unsigned long long>(r.consumed));
  std::printf("elapsed              %.3f s\n", r.elapsed_s);
  std::printf("throughput           %.0f tuples/s\n", tps);
  std::printf("peak resident rows   %llu (bound %zu) %s\n",
              static_cast<unsigned long long>(r.peak_resident), cfg.capacity,
              bound_ok ? "OK" : "VIOLATED");
  std::printf("backpressure engaged %llu times\n",
              static_cast<unsigned long long>(r.engagements));
  std::printf("dropped              %llu malformed, %llu basket -> %s\n",
              static_cast<unsigned long long>(r.malformed_dropped),
              static_cast<unsigned long long>(r.basket_dropped),
              lossless ? "lossless" : "LOSS");
  std::printf("e2e tuple latency    p50=%.0f us p95=%.0f us p99=%.0f us "
              "max=%lld us\n",
              r.latency.p50(), r.latency.p95(), r.latency.p99(),
              static_cast<long long>(r.latency.max));

  FILE* out = std::fopen("BENCH_gateway_fanin.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_gateway_fanin.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"gateway_fanin\",\n"
               "  \"sensors\": %zu,\n"
               "  \"tuples_per_sensor\": %llu,\n"
               "  \"total_tuples\": %llu,\n"
               "  \"capacity\": %zu,\n"
               "  \"low_watermark\": %zu,\n"
               "  \"max_batch_rows\": %zu,\n"
               "  \"connections\": %llu,\n"
               "  \"elapsed_s\": %.3f,\n"
               "  \"throughput_tps\": %.0f,\n"
               "  \"peak_resident_rows\": %llu,\n"
               "  \"capacity_bound_respected\": %s,\n"
               "  \"backpressure_engagements\": %llu,\n"
               "  \"tuples_received\": %llu,\n"
               "  \"tuples_consumed\": %llu,\n"
               "  \"tuples_dropped_malformed\": %llu,\n"
               "  \"tuples_dropped_basket\": %llu,\n"
               "  \"latency_p50_us\": %.1f,\n"
               "  \"latency_p95_us\": %.1f,\n"
               "  \"latency_p99_us\": %.1f,\n"
               "  \"latency_max_us\": %lld,\n"
               "  \"latency_mean_us\": %.1f,\n"
               "  \"lossless\": %s\n"
               "}\n",
               cfg.sensors,
               static_cast<unsigned long long>(cfg.tuples_per_sensor),
               static_cast<unsigned long long>(total), cfg.capacity,
               cfg.low_watermark, cfg.max_batch_rows,
               static_cast<unsigned long long>(r.connections), r.elapsed_s,
               tps, static_cast<unsigned long long>(r.peak_resident),
               bound_ok ? "true" : "false",
               static_cast<unsigned long long>(r.engagements),
               static_cast<unsigned long long>(r.received),
               static_cast<unsigned long long>(r.consumed),
               static_cast<unsigned long long>(r.malformed_dropped),
               static_cast<unsigned long long>(r.basket_dropped),
               r.latency.p50(), r.latency.p95(), r.latency.p99(),
               static_cast<long long>(r.latency.max), r.latency.Mean(),
               lossless ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_gateway_fanin.json\n");
  return (bound_ok && lossless) ? 0 : 1;
}
