// Figure 5(a): effect of batch processing (§6.1).
//
// 10^5-tuple stream of uniform integers in [0, 10^4); every continuous
// query selects a random range of 0.1% selectivity; separate-baskets
// strategy. We sweep the batch size T (the factories' firing threshold)
// and measure average latency per tuple = time waiting for the batch to
// fill (at the sensor's arrival rate) + time for the batch to pass through
// all queries.
//
// Expected shape (paper): latency falls by ~3 orders of magnitude from
// T = 1 to the sweet spot, flattens, then degrades for very large T where
// the accumulation delay dominates — worst for the most queries.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/scheduler.h"
#include "core/strategy.h"
#include "util/clock.h"
#include "util/random.h"

namespace datacell {
namespace {

using core::BuildSeparateBaskets;
using core::ContinuousQuery;
using core::QueryNetwork;
using core::Scheduler;

// Sensor arrival model: one tuple per microsecond.
constexpr double kInterarrivalUs = 1.0;

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

std::vector<ContinuousQuery> MakeQueries(int count, Random* rng) {
  std::vector<ContinuousQuery> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int64_t lo = static_cast<int64_t>(rng->Uniform(10'000 - 10));
    ExprPtr pred = Expr::Bin(
        BinaryOp::kAnd,
        Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(lo)),
        Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(lo + 10)));
    queries.push_back({"q" + std::to_string(i), pred});
  }
  return queries;
}

Table MakeTuples(size_t n, Random* rng) {
  Table t(StreamSchema());
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(static_cast<int64_t>(rng->Uniform(10'000)));
  }
  return t;
}

// Returns average latency per tuple in microseconds.
//
// Latency model (the paper's L(t) = D(t) - C(t)): tuple i is created at
// C_i = i * interarrival. A batch becomes eligible when its last tuple has
// arrived; the engine processes batches serially, so batch processing
// starts at max(arrival of last tuple, engine free time) and takes the
// measured wall time P. Every tuple of the batch is delivered at start+P.
// With T = 1 the per-call overhead exceeds the interarrival time and the
// backlog (queueing delay) dominates — exactly why the paper's
// tuple-at-a-time latency is orders of magnitude worse than batched.
Result<double> RunOne(int num_queries, size_t batch_size, size_t total_tuples) {
  SimulatedClock clock(0);
  Random rng(4242 + static_cast<uint64_t>(num_queries));
  ASSIGN_OR_RETURN(QueryNetwork net,
                   BuildSeparateBaskets(StreamSchema(),
                                        MakeQueries(num_queries, &rng),
                                        batch_size));
  Scheduler sched(&clock);
  net.RegisterAll(&sched);
  SystemClock* wall = SystemClock::Get();

  double latency_sum_us = 0;
  double engine_free_us = 0;
  size_t delivered = 0;
  Random data_rng(7);
  while (delivered < total_tuples) {
    const size_t n = std::min(batch_size, total_tuples - delivered);
    Table batch = MakeTuples(n, &data_rng);
    const double first_arrival = kInterarrivalUs * static_cast<double>(delivered);
    const double last_arrival =
        kInterarrivalUs * static_cast<double>(delivered + n - 1);
    const Micros t0 = wall->Now();
    ASSIGN_OR_RETURN(size_t acc, net.receptor->Deliver(batch, clock.Now()));
    (void)acc;
    ASSIGN_OR_RETURN(size_t rounds, sched.RunUntilQuiescent());
    (void)rounds;
    const double proc_us = static_cast<double>(wall->Now() - t0);
    const double start = std::max(last_arrival, engine_free_us);
    const double done = start + proc_us;
    engine_free_us = done;
    // sum over tuples j of (done - C_j).
    latency_sum_us += static_cast<double>(n) * done -
                      (first_arrival + last_arrival) * static_cast<double>(n) / 2.0;
    delivered += n;
    // Keep the output baskets from growing across iterations.
    for (const core::BasketPtr& out : net.outputs) out->Clear();
  }
  return latency_sum_us / static_cast<double>(total_tuples);
}

}  // namespace
}  // namespace datacell

int main() {
  const bool quick = std::getenv("DATACELL_QUICK") != nullptr;
  std::printf("=== Figure 5(a): effect of batch processing ===\n");
  std::printf("separate baskets; 0.1%% selectivity range queries; arrival "
              "rate 1 tuple/us\n\n");
  std::printf("%10s %10s %14s %20s\n", "batch T", "queries", "tuples",
              "latency/tuple(us)");
  const std::vector<size_t> batches = {1, 10, 100, 1'000, 10'000, 100'000};
  const std::vector<int> query_counts = quick ? std::vector<int>{10, 100}
                                              : std::vector<int>{10, 100, 1000};
  for (int q : query_counts) {
    for (size_t t : batches) {
      // Few tuples suffice for small batches (latency is per tuple; in the
      // unstable T=1 regime the backlog already explodes within a few
      // thousand tuples); large batches need several full windows.
      size_t total = std::max<size_t>(t * 10, 5000);
      total = std::min<size_t>(total, 100'000);
      if (quick) total = std::min<size_t>(total, 20'000);
      if (t == 1 && q >= 1000) total = 3000;  // keep T=1,q=1000 tractable
      auto latency = datacell::RunOne(q, t, total);
      if (!latency.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     latency.status().ToString().c_str());
        return 1;
      }
      std::printf("%10zu %10d %14zu %20.1f\n", t, q, total, *latency);
    }
    std::printf("\n");
  }
  std::printf("shape check (paper): latency drops ~3 orders of magnitude "
              "from T=1 to the sweet spot, then stops improving or degrades "
              "as the batch-fill delay dominates.\n");
  return 0;
}
