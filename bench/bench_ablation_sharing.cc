// Ablations for the §4.3 research directions DESIGN.md calls out:
//
//  A. Shared execution prefixes — queries with a common selective
//     predicate evaluated once by an auxiliary factory vs. independently
//     by every query (separate baskets). Sharing should win and the gap
//     should widen with the query count.
//
//  B. Query-plan splitting — a slow query sharing a basket with a fast
//     one blocks the stream until it finishes; splitting its plan into a
//     cheap loader + background worker releases the shared basket
//     immediately ("eliminating the need for a fast query to wait for a
//     slow one").

#include <cstdio>
#include <vector>

#include "core/basket_expression.h"
#include "core/scheduler.h"
#include "core/strategy.h"
#include "ops/sort.h"
#include "util/clock.h"
#include "util/random.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table MakeTuples(size_t n) {
  Random rng(7);
  Table t(StreamSchema());
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(static_cast<int64_t>(rng.Uniform(10'000)));
  }
  return t;
}

// Queries: shared prefix payload < 1000 (10% selectivity), residual
// one-permille ranges inside it.
ExprPtr SharedPredicate() {
  return Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(1000));
}

std::vector<core::ContinuousQuery> ResidualQueries(int count) {
  Random rng(13);
  std::vector<core::ContinuousQuery> out;
  for (int i = 0; i < count; ++i) {
    const int64_t lo = static_cast<int64_t>(rng.Uniform(990));
    out.push_back({"q" + std::to_string(i),
                   Expr::Bin(BinaryOp::kAnd,
                             Expr::Bin(BinaryOp::kGe, Expr::Col("payload"),
                                       Expr::Lit(lo)),
                             Expr::Bin(BinaryOp::kLt, Expr::Col("payload"),
                                       Expr::Lit(lo + 10)))});
  }
  return out;
}

Result<double> RunNetwork(core::QueryNetwork net, size_t batch) {
  SimulatedClock clock(0);
  core::Scheduler sched(&clock);
  net.RegisterAll(&sched);
  Table tuples = MakeTuples(batch);
  SystemClock* wall = SystemClock::Get();
  const Micros t0 = wall->Now();
  ASSIGN_OR_RETURN(size_t n, net.receptor->Deliver(tuples, clock.Now()));
  (void)n;
  ASSIGN_OR_RETURN(size_t rounds, sched.RunUntilQuiescent());
  (void)rounds;
  return static_cast<double>(wall->Now() - t0) / kMicrosPerSecond;
}

Status PartA() {
  const size_t batch = 100'000;
  std::printf("--- A: shared selection prefix vs separate evaluation ---\n");
  std::printf("%10s %18s %18s %10s\n", "queries", "separate(s)", "shared(s)",
              "speedup");
  for (int q : {4, 16, 64, 256}) {
    // Separate: every query evaluates prefix AND residual on its own copy.
    std::vector<core::ContinuousQuery> full = ResidualQueries(q);
    for (core::ContinuousQuery& query : full) {
      query.predicate = Expr::Bin(BinaryOp::kAnd, SharedPredicate(),
                                  query.predicate);
    }
    ASSIGN_OR_RETURN(core::QueryNetwork separate,
                     core::BuildSeparateBaskets(StreamSchema(), full, batch));
    ASSIGN_OR_RETURN(double sep_s, RunNetwork(std::move(separate), batch));

    core::SharedPrefixGroup group{"g", SharedPredicate(), ResidualQueries(q)};
    ASSIGN_OR_RETURN(core::QueryNetwork shared,
                     core::BuildSharedPrefix(StreamSchema(), {group}, batch));
    ASSIGN_OR_RETURN(double sh_s, RunNetwork(std::move(shared), batch));
    std::printf("%10d %18.4f %18.4f %9.1fx\n", q, sep_s, sh_s,
                sh_s > 0 ? sep_s / sh_s : 0.0);
  }
  return Status::OK();
}

// Heavy work: repeatedly sort the staged batch.
Status HeavyWork(const Table& batch) {
  EvalContext ctx;
  for (int i = 0; i < 40; ++i) {
    auto sorted = ops::SortIndices(
        batch, {{Expr::Col("payload"), (i % 2) == 0}}, ctx);
    RETURN_NOT_OK(sorted.status());
  }
  return Status::OK();
}

// Returns wall seconds until the shared input basket is released (empty).
Result<double> RunSplitCase(bool split, size_t batch) {
  SimulatedClock clock(0);
  auto input = std::make_shared<core::Basket>("in", StreamSchema());
  auto fast_out = std::make_shared<core::Basket>("fast_out", input->schema(),
                                                 false);
  auto token = std::make_shared<core::Basket>(
      "tok", Schema({{"flag", DataType::kBool}}), false);

  // Fast query: peeks, raises the token that lets the heavy side consume.
  auto fast = std::make_shared<core::Factory>(
      "fast", [input, fast_out, token](core::FactoryContext& ctx) -> Status {
        core::BasketExpression be(input);
        be.Where(Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(10)));
        be.Consume(core::ConsumePolicy::kNone);
        ASSIGN_OR_RETURN(Table r, be.Evaluate(ctx.eval()));
        if (r.num_rows() > 0) {
          ASSIGN_OR_RETURN(size_t n, fast_out->AppendAligned(r, ctx.now()));
          (void)n;
        }
        Table t(token->schema());
        RETURN_NOT_OK(t.AppendRow({Value(true)}));
        ASSIGN_OR_RETURN(size_t n, token->AppendAligned(t, ctx.now()));
        (void)n;
        return Status::OK();
      });
  fast->AddInput(input, batch);
  fast->AddOutput(fast_out);
  fast->AddOutput(token);

  core::Scheduler sched(&clock);
  sched.Register(fast);

  SystemClock* wall = SystemClock::Get();
  Micros released_at = -1;
  Micros t0 = 0;
  auto watch_release = [&]() {
    if (released_at < 0 && input->empty()) released_at = wall->Now();
  };

  if (!split) {
    // Heavy query reads the shared basket in place (shared-basket
    // semantics) and releases it only once its whole plan has finished —
    // the situation §4.3 motivates splitting for.
    auto heavy = std::make_shared<core::Factory>(
        "heavy", [input, token, &watch_release](core::FactoryContext&) -> Status {
          token->Clear();
          Table batch_data = input->Peek();
          RETURN_NOT_OK(HeavyWork(batch_data));
          input->Clear();
          watch_release();
          return Status::OK();
        });
    heavy->AddInput(token, 1);
    heavy->AddInput(input, 1);
    sched.Register(heavy);
  } else {
    // Split plan: loader releases the basket at once; the worker grinds on
    // the staged copy afterwards.
    ASSIGN_OR_RETURN(
        core::SplitPlan plan,
        core::SplitQueryPlan("heavy", input, 1,
                             [](core::FactoryContext& ctx) -> Status {
                               Table staged = ctx.input(0).TakeAll();
                               return HeavyWork(staged);
                             }));
    // Gate the loader on the fast query's token too.
    auto loader = std::make_shared<core::Factory>(
        "gate_load",
        [input, token, staging = plan.staging,
         &watch_release](core::FactoryContext& ctx) -> Status {
          token->Clear();
          Table b = input->TakeAll();
          watch_release();
          if (b.num_rows() == 0) return Status::OK();
          ASSIGN_OR_RETURN(size_t n, staging->AppendAligned(b, ctx.now()));
          (void)n;
          return Status::OK();
        });
    loader->AddInput(token, 1);
    loader->AddInput(input, 1);
    loader->AddOutput(plan.staging);
    sched.Register(loader);
    sched.Register(plan.worker);
  }

  Table tuples = MakeTuples(batch);
  t0 = wall->Now();
  ASSIGN_OR_RETURN(size_t n, input->Append(tuples, clock.Now()));
  (void)n;
  ASSIGN_OR_RETURN(size_t rounds, sched.RunUntilQuiescent());
  (void)rounds;
  watch_release();
  return static_cast<double>(released_at - t0) / kMicrosPerSecond;
}

Status PartB() {
  std::printf("\n--- B: plan splitting releases the shared basket early ---\n");
  std::printf("%12s %26s\n", "mode", "stream release time (s)");
  const size_t batch = 100'000;
  ASSIGN_OR_RETURN(double monolithic, RunSplitCase(false, batch));
  std::printf("%12s %26.4f\n", "monolithic", monolithic);
  ASSIGN_OR_RETURN(double split, RunSplitCase(true, batch));
  std::printf("%12s %26.4f\n", "split plan", split);
  std::printf("(the heavy query's total work is identical in both modes; "
              "only when the stream is released differs)\n");
  return Status::OK();
}

}  // namespace
}  // namespace datacell

int main() {
  std::printf("=== §4.3 ablations: sharing execution cost & plan splitting "
              "===\n\n");
  datacell::Status st = datacell::PartA();
  if (st.ok()) st = datacell::PartB();
  if (!st.ok()) {
    std::fprintf(stderr, "ablation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
