// Multi-query sharing ablation (DESIGN.md §11): the same standing SQL
// query set is registered through the Session twice — once with the
// optimizer's common-prefix factoring ON (trie of conjunct fingerprints,
// one shared stage chain per common prefix) and once with factoring OFF
// (the shared net still replicates the stream to every per-query leaf but
// evaluates nothing upstream: every query re-runs its whole predicate).
//
// Queries share a selective prefix (payload < 1000, ~10%) plus a private
// one-percent residual range, so factoring should win and the gap should
// widen with the query count. Reported per count: aggregate throughput
// (input tuples x standing queries / wall seconds) and the peak resident
// rows across the optimizer's stage + leaf baskets and the source basket.
//
// Emits BENCH_ablation_sharing.json. DATACELL_QUICK=1 shrinks the run.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sql/session.h"
#include "util/clock.h"
#include "util/random.h"

namespace datacell {
namespace {

struct CaseResult {
  double elapsed_s = 0;
  double aggregate_tps = 0;
  uint64_t peak_rows = 0;
  size_t rows_emitted = 0;
};

Table MakeTuples(size_t n) {
  Random rng(7);
  Table t(Schema({{"tag", DataType::kInt64}, {"payload", DataType::kInt64}}));
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(static_cast<int64_t>(rng.Uniform(10'000)));
  }
  return t;
}

// Shared prefix payload < 1000 plus a private one-percent residual range.
std::string QuerySql(int i) {
  Random rng(13 + i);
  const int64_t lo = static_cast<int64_t>(rng.Uniform(990));
  return "select * from [select * from s where payload < 1000 and payload >= " +
         std::to_string(lo) + " and payload < " + std::to_string(lo + 10) +
         "]";
}

Result<CaseResult> RunCase(bool factoring, int queries, size_t tuples,
                           size_t chunk) {
  SimulatedClock clock(0);
  core::Engine engine(&clock);
  sql::Session session(&engine);
  session.set_sharing_enabled(true);
  session.optimizer().set_factoring_enabled(factoring);
  ASSIGN_OR_RETURN(Table created,
                   session.Execute("create basket s (tag int, payload int)"));
  (void)created;

  size_t emitted = 0;
  for (int i = 0; i < queries; ++i) {
    auto f = session.RegisterContinuousSelect(
        "q" + std::to_string(i), QuerySql(i),
        [&emitted](const Table& t) -> Status {
          emitted += t.num_rows();
          return Status::OK();
        });
    RETURN_NOT_OK(f.status());
  }

  ASSIGN_OR_RETURN(core::BasketPtr source, engine.GetBasket("s"));
  const Table feed = MakeTuples(tuples);

  SystemClock* wall = SystemClock::Get();
  const Micros t0 = wall->Now();
  for (size_t off = 0; off < tuples; off += chunk) {
    const size_t n = std::min(chunk, tuples - off);
    SelVector sel(n);
    for (size_t i = 0; i < n; ++i) sel[i] = off + i;
    Table batch = feed.Take(sel);
    ASSIGN_OR_RETURN(size_t appended, source->Append(batch, clock.Now()));
    (void)appended;
    ASSIGN_OR_RETURN(size_t rounds, engine.scheduler().RunUntilQuiescent());
    (void)rounds;
    clock.Advance(1000);
  }
  const Micros t1 = wall->Now();

  CaseResult r;
  r.elapsed_s = static_cast<double>(t1 - t0) / kMicrosPerSecond;
  r.aggregate_tps =
      r.elapsed_s > 0
          ? static_cast<double>(tuples) * queries / r.elapsed_s
          : 0;
  r.peak_rows = std::max(session.optimizer().PeakResidentRows(),
                         source->stats().peak_rows);
  r.rows_emitted = emitted;
  return r;
}

Status Run() {
  const bool quick = std::getenv("DATACELL_QUICK") != nullptr;
  const size_t tuples = quick ? 10'000 : 50'000;
  const size_t chunk = 4'096;
  const std::vector<int> counts =
      quick ? std::vector<int>{4, 16} : std::vector<int>{16, 64, 128};

  std::printf("--- multi-query sharing ablation (%zu tuples/case) ---\n",
              tuples);
  std::printf("%8s %16s %16s %8s %14s %14s\n", "queries", "factored(tps)",
              "unfactored(tps)", "speedup", "peak(fact)", "peak(unfact)");

  struct RowOut {
    int queries;
    CaseResult on, off;
  };
  std::vector<RowOut> rows;
  for (int q : counts) {
    ASSIGN_OR_RETURN(CaseResult on, RunCase(true, q, tuples, chunk));
    ASSIGN_OR_RETURN(CaseResult off, RunCase(false, q, tuples, chunk));
    if (on.rows_emitted != off.rows_emitted) {
      return Status::Internal(
          "ablation divergence at " + std::to_string(q) + " queries: " +
          std::to_string(on.rows_emitted) + " vs " +
          std::to_string(off.rows_emitted) + " rows emitted");
    }
    std::printf("%8d %16.0f %16.0f %7.1fx %14llu %14llu\n", q,
                on.aggregate_tps, off.aggregate_tps,
                off.aggregate_tps > 0 ? on.aggregate_tps / off.aggregate_tps
                                      : 0.0,
                static_cast<unsigned long long>(on.peak_rows),
                static_cast<unsigned long long>(off.peak_rows));
    rows.push_back({q, on, off});
  }

  const RowOut& last = rows.back();
  const double speedup_at_max =
      last.off.aggregate_tps > 0
          ? last.on.aggregate_tps / last.off.aggregate_tps
          : 0.0;
  const bool peak_ok = last.on.peak_rows <= last.off.peak_rows;

  FILE* out = std::fopen("BENCH_ablation_sharing.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ablation_sharing.json\n");
    return Status::Internal("fopen failed");
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"ablation_sharing\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"tuples_per_case\": %zu,\n", tuples);
  std::fprintf(out, "  \"chunk_rows\": %zu,\n", chunk);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowOut& r = rows[i];
    std::fprintf(
        out,
        "    {\"queries\": %d, \"sharing_tps\": %.0f, "
        "\"nosharing_tps\": %.0f, \"speedup\": %.2f, "
        "\"sharing_peak_rows\": %llu, \"nosharing_peak_rows\": %llu, "
        "\"rows_emitted\": %zu}%s\n",
        r.queries, r.on.aggregate_tps, r.off.aggregate_tps,
        r.off.aggregate_tps > 0 ? r.on.aggregate_tps / r.off.aggregate_tps
                                : 0.0,
        static_cast<unsigned long long>(r.on.peak_rows),
        static_cast<unsigned long long>(r.off.peak_rows), r.on.rows_emitted,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"max_queries\": %d,\n", last.queries);
  std::fprintf(out, "  \"speedup_at_max_queries\": %.2f,\n", speedup_at_max);
  std::fprintf(out, "  \"sharing_at_least_2x\": %s,\n",
               speedup_at_max >= 2.0 ? "true" : "false");
  std::fprintf(out, "  \"peak_rows_no_higher\": %s\n",
               peak_ok ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf(
      "wrote BENCH_ablation_sharing.json (speedup at %d queries: %.2fx, "
      "peak ok: %s)\n",
      last.queries, speedup_at_max, peak_ok ? "yes" : "no");
  return Status::OK();
}

}  // namespace
}  // namespace datacell

int main() {
  datacell::Status s = datacell::Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
