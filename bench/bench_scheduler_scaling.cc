// Scheduler scaling: aggregate throughput of K independent query chains
// (receptor basket -> factory -> emitter) as the worker count sweeps
// 1/2/4/8.
//
// Each factory firing performs a fixed chunk of basket work plus a short
// simulated downstream-I/O wait (the blocking call a real chain would make
// to storage or the network). The chains are fully independent, so their
// place sets are disjoint and the scheduler may fire them in parallel:
// with W workers the I/O waits overlap and aggregate throughput should
// scale until W reaches the chain count — even on a single-core host,
// since the workers spend most of their time blocked, not computing.
//
// Emits BENCH_scheduler_scaling.json with per-worker-count throughput and
// the 4-vs-1 speedup.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/basket.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "util/clock.h"

namespace datacell {
namespace {

constexpr int kChains = 8;
constexpr Micros kIoMicros = 400;  // simulated downstream call per firing

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table MakeTuples(size_t n) {
  Table t(StreamSchema());
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(static_cast<int64_t>(i % 9973));
  }
  return t;
}

struct RunResult {
  double seconds = 0;
  double tuples_per_sec = 0;
};

// Builds K chains, pre-fills every chain input with `rows_per_chain`
// tuples, then starts the scheduler with `workers` threads and measures
// wall time until every emitter has seen its chain's full row count.
Result<RunResult> RunOne(size_t workers, size_t rows_per_chain,
                         size_t rows_per_firing) {
  SystemClock* clock = SystemClock::Get();
  core::Scheduler sched(clock, workers);

  std::vector<core::BasketPtr> inputs;
  auto received = std::make_shared<std::atomic<int64_t>>(0);
  const int64_t expected =
      static_cast<int64_t>(rows_per_chain) * static_cast<int64_t>(kChains);

  for (int c = 0; c < kChains; ++c) {
    auto in = std::make_shared<core::Basket>("in" + std::to_string(c),
                                             StreamSchema());
    auto out = std::make_shared<core::Basket>("out" + std::to_string(c),
                                              in->schema(), false);
    inputs.push_back(in);
    auto f = std::make_shared<core::Factory>(
        "chain" + std::to_string(c),
        [rows_per_firing](core::FactoryContext& ctx) -> Status {
          core::Basket& in = ctx.input(0);
          const size_t take = std::min(rows_per_firing, in.size());
          if (take == 0) return Status::OK();
          SelVector sel(take);
          std::iota(sel.begin(), sel.end(), 0u);
          ASSIGN_OR_RETURN(Table batch, in.TakeRows(sel));
          // Simulated blocking downstream call (storage / network round
          // trip). This is the latency the workers overlap.
          SystemClock::Get()->SleepFor(kIoMicros);
          return ctx.output(0).AppendAligned(batch, ctx.now()).status();
        });
    f->AddInput(in);
    f->AddOutput(out);
    sched.Register(f);
    auto e = std::make_shared<core::Emitter>(
        "emit" + std::to_string(c), [received](const Table& batch) -> Status {
          received->fetch_add(static_cast<int64_t>(batch.num_rows()));
          return Status::OK();
        });
    e->AddInput(out);
    sched.Register(e);
  }

  Table fill = MakeTuples(rows_per_chain);
  for (const core::BasketPtr& in : inputs) {
    RETURN_NOT_OK(in->Append(fill, clock->Now()).status());
  }

  const Micros t0 = clock->Now();
  RETURN_NOT_OK(sched.Start());
  while (received->load() < expected) {
    RETURN_NOT_OK(sched.last_error());
    clock->SleepFor(200);
  }
  const Micros t1 = clock->Now();
  sched.Stop();
  RETURN_NOT_OK(sched.last_error());

  RunResult r;
  r.seconds = static_cast<double>(t1 - t0) / kMicrosPerSecond;
  r.tuples_per_sec = static_cast<double>(expected) / r.seconds;
  return r;
}

}  // namespace
}  // namespace datacell

int main() {
  const bool quick = std::getenv("DATACELL_QUICK") != nullptr;
  const size_t rows_per_firing = 1'000;
  const size_t firings_per_chain = quick ? 25 : 100;
  const size_t rows_per_chain = rows_per_firing * firings_per_chain;

  std::printf("=== Scheduler scaling: %d independent chains, %zu tuples each, "
              "%lld us simulated I/O per firing ===\n\n",
              datacell::kChains, rows_per_chain,
              static_cast<long long>(datacell::kIoMicros));
  std::printf("%10s %14s %18s %10s\n", "workers", "seconds", "tuples/sec",
              "speedup");

  const std::vector<size_t> worker_counts = {1, 2, 4, 8};
  std::vector<datacell::RunResult> results;
  for (size_t w : worker_counts) {
    auto r = datacell::RunOne(w, rows_per_chain, rows_per_firing);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed (workers=%zu): %s\n", w,
                   r.status().ToString().c_str());
      return 1;
    }
    results.push_back(*r);
    std::printf("%10zu %14.3f %18.0f %9.2fx\n", w, r->seconds,
                r->tuples_per_sec,
                r->tuples_per_sec / results[0].tuples_per_sec);
  }

  const double speedup_4v1 =
      results[2].tuples_per_sec / results[0].tuples_per_sec;
  std::printf("\n4-worker speedup over 1 worker: %.2fx (chains are "
              "independent; workers overlap the simulated I/O waits)\n",
              speedup_4v1);

  FILE* out = std::fopen("BENCH_scheduler_scaling.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scheduler_scaling.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"scheduler_scaling\",\n"
               "  \"chains\": %d,\n"
               "  \"rows_per_chain\": %zu,\n"
               "  \"rows_per_firing\": %zu,\n"
               "  \"io_micros_per_firing\": %lld,\n"
               "  \"results\": [\n",
               datacell::kChains, rows_per_chain, rows_per_firing,
               static_cast<long long>(datacell::kIoMicros));
  for (size_t i = 0; i < worker_counts.size(); ++i) {
    std::fprintf(out,
                 "    {\"workers\": %zu, \"seconds\": %.6f, "
                 "\"tuples_per_sec\": %.1f}%s\n",
                 worker_counts[i], results[i].seconds,
                 results[i].tuples_per_sec,
                 i + 1 < worker_counts.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"speedup_4_workers_vs_1\": %.3f\n"
               "}\n",
               speedup_4v1);
  std::fclose(out);
  std::printf("wrote BENCH_scheduler_scaling.json\n");
  return 0;
}
