// Basket hot path: cost of snapshot reads and FIFO window slides.
//
// Experiment 1 — snapshot-read path. `Basket::Peek()` is a COW snapshot
// (O(#columns) refcount bumps); the baseline is what the pre-COW code had
// to do: materialize a deep copy of the contents under the basket lock.
// The per-peek cost of the snapshot must be flat in the tuple count, and
// the speedup over the deep copy must grow with it (>= 5x well before the
// basket holds a realistic stream window).
//
// Experiment 2 — prefix window slides. A FIFO slide is append(slide rows)
// + ErasePrefix(slide rows). The new path advances a head offset in O(1)
// with amortized compaction, so per-slide cost is flat in the resident
// window size; the baseline shifts the survivors down on every slide
// (KeepRows), which is linear in it.
//
// Experiment 3 — metrics mirror overhead. The append/consume counters
// mirror into the global MetricsRegistry when observability is enabled;
// the contract (DESIGN.md §10) is < 5% added cost on the append path.
// Measured by timing the same append+slide loop with the registry enabled
// and disabled, alternating rounds and taking the best of each to shed
// scheduler noise.
//
// Emits BENCH_basket_hotpath.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/basket.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"seq", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"tag", DataType::kInt64}});
}

Table MakeTuples(size_t n) {
  Table t(StreamSchema());
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendDouble(static_cast<double>(i) * 0.25);
    t.column(2).AppendInt(static_cast<int64_t>(i % 9973));
  }
  return t;
}

core::BasketPtr MakeFilledBasket(size_t rows) {
  auto b = std::make_shared<core::Basket>("bench", StreamSchema());
  auto r = b->Append(MakeTuples(rows), 0);
  if (!r.ok() || *r != rows) {
    std::fprintf(stderr, "basket fill failed\n");
    std::exit(1);
  }
  return b;
}

// The pre-COW Peek: copy every value out under the lock.
Table DeepCopy(const core::Basket& b) {
  core::BasketLock lock(&b);
  Table out(b.contents().schema());
  Status st = out.AppendTable(b.contents());
  if (!st.ok()) std::exit(1);
  return out;
}

// Keep the measured loops honest.
volatile size_t g_sink = 0;

struct SnapshotPoint {
  size_t rows;
  double cow_ns_per_peek;
  double deep_ns_per_peek;
  double speedup;
};

SnapshotPoint RunSnapshot(size_t rows, bool quick) {
  SystemClock* clock = SystemClock::Get();
  auto b = MakeFilledBasket(rows);

  const size_t cow_iters = quick ? 50'000 : 400'000;
  const Micros c0 = clock->Now();
  for (size_t i = 0; i < cow_iters; ++i) {
    Table snap = b->Peek();
    g_sink = g_sink + snap.num_rows();
  }
  const Micros c1 = clock->Now();

  // Scale deep-copy iterations down with the row count so every point
  // stays in the tens of milliseconds.
  const size_t deep_iters =
      std::max<size_t>(30, (quick ? 400'000 : 4'000'000) / (rows + 1));
  const Micros d0 = clock->Now();
  for (size_t i = 0; i < deep_iters; ++i) {
    Table copy = DeepCopy(*b);
    g_sink = g_sink + copy.num_rows();
  }
  const Micros d1 = clock->Now();

  SnapshotPoint p;
  p.rows = rows;
  p.cow_ns_per_peek =
      static_cast<double>(c1 - c0) * 1000.0 / static_cast<double>(cow_iters);
  p.deep_ns_per_peek =
      static_cast<double>(d1 - d0) * 1000.0 / static_cast<double>(deep_iters);
  p.speedup = p.deep_ns_per_peek / p.cow_ns_per_peek;
  return p;
}

struct SlidePoint {
  size_t resident_rows;
  size_t slide_rows;
  double o1_ns_per_slide;
  double shift_ns_per_slide;
  double speedup;
};

SlidePoint RunSlide(size_t resident, size_t slide, bool quick) {
  SystemClock* clock = SystemClock::Get();
  const Table batch = MakeTuples(slide);

  // New path: O(1) head advance with amortized compaction.
  auto b = MakeFilledBasket(resident);
  const size_t o1_iters =
      std::max<size_t>(200, (quick ? 2'000'000 : 20'000'000) / resident);
  const Micros a0 = clock->Now();
  for (size_t i = 0; i < o1_iters; ++i) {
    if (!b->Append(batch, 0).ok()) std::exit(1);
    if (!b->ErasePrefix(slide).ok()) std::exit(1);
  }
  const Micros a1 = clock->Now();

  // Baseline: shift the surviving rows down on every slide (what the
  // SelVector-based prefix erase used to do). Basket::EraseRows routes an
  // exact prefix selection to the O(1) head advance, so erase rows
  // [1, slide] instead of [0, slide): same erase count, same survivor
  // shift, but through the general (linear) path — the cost the old code
  // paid on every slide.
  auto s = MakeFilledBasket(resident);
  SelVector shift_sel(slide);
  std::iota(shift_sel.begin(), shift_sel.end(), 1u);
  const size_t shift_iters =
      std::max<size_t>(30, (quick ? 2'000'000 : 20'000'000) / resident / 8);
  const Micros s0 = clock->Now();
  for (size_t i = 0; i < shift_iters; ++i) {
    if (!s->Append(batch, 0).ok()) std::exit(1);
    if (!s->EraseRows(shift_sel).ok()) std::exit(1);
  }
  const Micros s1 = clock->Now();

  SlidePoint p;
  p.resident_rows = resident;
  p.slide_rows = slide;
  p.o1_ns_per_slide =
      static_cast<double>(a1 - a0) * 1000.0 / static_cast<double>(o1_iters);
  p.shift_ns_per_slide =
      static_cast<double>(s1 - s0) * 1000.0 / static_cast<double>(shift_iters);
  p.speedup = p.shift_ns_per_slide / p.o1_ns_per_slide;
  return p;
}

struct OverheadPoint {
  double enabled_ns_per_slide = 0;
  double disabled_ns_per_slide = 0;
  double overhead_pct = 0;
};

// One timed round of the append+slide loop; registry state is whatever the
// caller set it to.
double TimeSlideLoop(core::Basket* b, const Table& batch, size_t slide,
                     size_t iters) {
  SystemClock* clock = SystemClock::Get();
  const Micros t0 = clock->Now();
  for (size_t i = 0; i < iters; ++i) {
    if (!b->Append(batch, 0).ok()) std::exit(1);
    if (!b->ErasePrefix(slide).ok()) std::exit(1);
  }
  const Micros t1 = clock->Now();
  return static_cast<double>(t1 - t0) * 1000.0 / static_cast<double>(iters);
}

OverheadPoint RunMetricsOverhead(size_t resident, size_t slide, bool quick) {
  const Table batch = MakeTuples(slide);
  auto b = MakeFilledBasket(resident);
  const size_t iters = quick ? 20'000 : 100'000;
  constexpr int kRounds = 5;

  double best_on = 0, best_off = 0;
  // Warmup round, then alternate and keep the best of each mode.
  obs::MetricsRegistry::set_enabled(true);
  (void)TimeSlideLoop(b.get(), batch, slide, iters / 4 + 1);
  for (int round = 0; round < kRounds; ++round) {
    obs::MetricsRegistry::set_enabled(true);
    const double on = TimeSlideLoop(b.get(), batch, slide, iters);
    obs::MetricsRegistry::set_enabled(false);
    const double off = TimeSlideLoop(b.get(), batch, slide, iters);
    if (round == 0 || on < best_on) best_on = on;
    if (round == 0 || off < best_off) best_off = off;
  }
  obs::MetricsRegistry::set_enabled(true);

  OverheadPoint p;
  p.enabled_ns_per_slide = best_on;
  p.disabled_ns_per_slide = best_off;
  p.overhead_pct = best_off > 0 ? (best_on - best_off) / best_off * 100.0 : 0;
  return p;
}

}  // namespace
}  // namespace datacell

int main() {
  const bool quick = std::getenv("DATACELL_QUICK") != nullptr;
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{1'000, 10'000}
            : std::vector<size_t>{1'000, 10'000, 100'000};
  constexpr size_t kSlide = 256;

  std::printf("=== Basket hot path: COW snapshots + O(1) prefix slides ===\n");

  std::printf("\n-- snapshot read: Peek() vs deep copy --\n");
  std::printf("%10s %16s %16s %10s\n", "rows", "cow ns/peek", "deep ns/peek",
              "speedup");
  std::vector<datacell::SnapshotPoint> snaps;
  for (size_t n : sizes) {
    snaps.push_back(datacell::RunSnapshot(n, quick));
    const auto& p = snaps.back();
    std::printf("%10zu %16.1f %16.1f %9.1fx\n", p.rows, p.cow_ns_per_peek,
                p.deep_ns_per_peek, p.speedup);
  }

  std::printf("\n-- FIFO window slide (%zu rows/slide): head advance vs "
              "shift --\n",
              kSlide);
  std::printf("%10s %16s %16s %10s\n", "resident", "o1 ns/slide",
              "shift ns/slide", "speedup");
  std::vector<datacell::SlidePoint> slides;
  for (size_t n : sizes) {
    slides.push_back(datacell::RunSlide(n, kSlide, quick));
    const auto& p = slides.back();
    std::printf("%10zu %16.1f %16.1f %9.1fx\n", p.resident_rows,
                p.o1_ns_per_slide, p.shift_ns_per_slide, p.speedup);
  }

  const double flatness = slides.back().o1_ns_per_slide /
                          slides.front().o1_ns_per_slide;
  std::printf("\nO(1) slide cost ratio (largest/smallest basket): %.2f "
              "(flat ~ amortized O(1)); snapshot speedup at %zu rows: "
              "%.0fx\n",
              flatness, snaps.back().rows, snaps.back().speedup);

  std::printf("\n-- metrics mirror overhead on the append path --\n");
  const datacell::OverheadPoint oh =
      datacell::RunMetricsOverhead(10'000, kSlide, quick);
  std::printf("enabled %.1f ns/slide, disabled %.1f ns/slide, overhead "
              "%.2f%% (contract < 5%%)\n",
              oh.enabled_ns_per_slide, oh.disabled_ns_per_slide,
              oh.overhead_pct);

  FILE* out = std::fopen("BENCH_basket_hotpath.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_basket_hotpath.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"basket_hotpath\",\n"
               "  \"slide_rows\": %zu,\n"
               "  \"snapshot\": [\n",
               kSlide);
  for (size_t i = 0; i < snaps.size(); ++i) {
    std::fprintf(out,
                 "    {\"rows\": %zu, \"cow_ns_per_peek\": %.1f, "
                 "\"deepcopy_ns_per_peek\": %.1f, \"speedup\": %.2f}%s\n",
                 snaps[i].rows, snaps[i].cow_ns_per_peek,
                 snaps[i].deep_ns_per_peek, snaps[i].speedup,
                 i + 1 < snaps.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"window_slide\": [\n");
  for (size_t i = 0; i < slides.size(); ++i) {
    std::fprintf(out,
                 "    {\"resident_rows\": %zu, \"o1_ns_per_slide\": %.1f, "
                 "\"shift_ns_per_slide\": %.1f, \"speedup\": %.2f}%s\n",
                 slides[i].resident_rows, slides[i].o1_ns_per_slide,
                 slides[i].shift_ns_per_slide, slides[i].speedup,
                 i + 1 < slides.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"slide_cost_ratio_largest_vs_smallest\": %.3f,\n"
               "  \"snapshot_speedup_at_largest\": %.2f,\n"
               "  \"metrics_enabled_ns_per_slide\": %.1f,\n"
               "  \"metrics_disabled_ns_per_slide\": %.1f,\n"
               "  \"metrics_overhead_pct\": %.2f\n"
               "}\n",
               flatness, snaps.back().speedup, oh.enabled_ns_per_slide,
               oh.disabled_ns_per_slide, oh.overhead_pct);
  std::fclose(out);
  std::printf("wrote BENCH_basket_hotpath.json\n");
  return 0;
}
