// Figure 5(b): alternative processing strategies (§4.2/§6.1).
//
// Same workload as Figure 5(a) with a constant batch size T = 10^5; the
// number of installed queries sweeps 2..1024 and the three strategies are
// compared: separate baskets (input replicated per query), shared baskets
// (locker/unlocker around one shared input), partial deletes (query chain
// deleting matched tuples in place).
//
// Expected shape (paper): both alternatives beat separate baskets (no
// replication), the gap grows with the query count, and shared baskets
// beat partial deletes (no in-place basket reorganization per query).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/scheduler.h"
#include "core/strategy.h"
#include "util/clock.h"
#include "util/random.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

std::vector<core::ContinuousQuery> MakeQueries(int count, Random* rng) {
  std::vector<core::ContinuousQuery> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int64_t lo = static_cast<int64_t>(rng->Uniform(10'000 - 10));
    ExprPtr pred = Expr::Bin(
        BinaryOp::kAnd,
        Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(lo)),
        Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(lo + 10)));
    queries.push_back({"q" + std::to_string(i), pred});
  }
  return queries;
}

Table MakeTuples(size_t n) {
  Random rng(7);
  Table t(StreamSchema());
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(static_cast<int64_t>(rng.Uniform(10'000)));
  }
  return t;
}

// Returns wall seconds to push one T-tuple batch through all queries.
Result<double> RunOne(int strategy, int num_queries, size_t batch_size) {
  SimulatedClock clock(0);
  Random rng(4242);
  std::vector<core::ContinuousQuery> queries = MakeQueries(num_queries, &rng);
  Result<core::QueryNetwork> net = Status::OK();
  switch (strategy) {
    case 0:
      net = core::BuildSeparateBaskets(StreamSchema(), queries, batch_size);
      break;
    case 1:
      net = core::BuildSharedBaskets(StreamSchema(), queries, batch_size);
      break;
    default:
      net = core::BuildPartialDeleteChain(StreamSchema(), queries, batch_size);
      break;
  }
  RETURN_NOT_OK(net.status());
  core::Scheduler sched(&clock);
  net->RegisterAll(&sched);

  Table batch = MakeTuples(batch_size);
  SystemClock* wall = SystemClock::Get();
  const Micros t0 = wall->Now();
  ASSIGN_OR_RETURN(size_t acc, net->receptor->Deliver(batch, clock.Now()));
  (void)acc;
  ASSIGN_OR_RETURN(size_t rounds, sched.RunUntilQuiescent());
  (void)rounds;
  return static_cast<double>(wall->Now() - t0) / kMicrosPerSecond;
}

}  // namespace
}  // namespace datacell

int main() {
  const bool quick = std::getenv("DATACELL_QUICK") != nullptr;
  const size_t batch = quick ? 20'000 : 100'000;
  std::printf("=== Figure 5(b): alternative processing strategies ===\n");
  std::printf("batch T = %zu tuples; 0.1%%-selectivity range queries\n\n",
              batch);
  std::printf("%10s %20s %20s %20s\n", "queries", "separate(s)", "shared(s)",
              "partial-deletes(s)");
  const std::vector<int> counts =
      quick ? std::vector<int>{2, 8, 32} : std::vector<int>{2, 8, 32, 256, 1024};
  for (int q : counts) {
    double secs[3] = {0, 0, 0};
    for (int s = 0; s < 3; ++s) {
      auto r = datacell::RunOne(s, q, batch);
      if (!r.ok()) {
        std::fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      secs[s] = *r;
    }
    std::printf("%10d %20.3f %20.3f %20.3f\n", q, secs[0], secs[1], secs[2]);
  }
  std::printf("\nshape check (paper): shared < partial-deletes < separate; "
              "the gap widens with the number of queries.\n");
  return 0;
}
