// Spill-to-disk backpressure: what does the durability tier's overflow
// path cost, and what does it buy?
//
// Three arms, same producer loop (credit-respecting, like the gateway):
//
//   in-memory — unbounded basket, eager consumer: the raw append-path
//               ceiling nothing throttles.
//   stall     — capacity-bounded basket, deliberately slow consumer, no
//               spill pool: producer credit closes at the high watermark
//               and ingest degenerates to the consumer's drain rate (the
//               old behavior: TCP push-back all the way to the sensors).
//   spill     — same bound and the same slow consumer, with a BufferPool
//               attached: overflow past the watermark streams to disk
//               pages, credit stays open, and the producer keeps running
//               at disk-serialization speed instead of consumer speed.
//
// Acceptance (ROADMAP durability item): spilling must sustain at least
// half the in-memory ingest rate — the overflow path is a usable valve,
// not a cliff. Emits BENCH_spill_backpressure.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "core/basket.h"
#include "storage/pager.h"
#include "util/clock.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"seq", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"tag", DataType::kInt64}});
}

Table MakeTuples(size_t n) {
  Table t(StreamSchema());
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendDouble(static_cast<double>(i) * 0.25);
    t.column(2).AppendInt(static_cast<int64_t>(i % 9973));
  }
  return t;
}

constexpr size_t kBatchRows = 1024;
constexpr size_t kCapacity = 16 * 1024;  // high watermark (resident rows)

struct ArmResult {
  double tps = 0;           // producer-side tuples/s
  uint64_t appended = 0;
  uint64_t spilled = 0;     // rows that went through the disk path
  uint64_t credit_waits = 0;
};

// Producer appends `target` rows (or until `deadline_us` elapses),
// respecting the basket's resident-row credit exactly like the gateway
// valve does. The consumer drains `drain_rows` every `drain_interval_us`
// (0 = as fast as it can).
ArmResult RunArm(core::Basket* b, uint64_t target, Micros deadline_us,
                 size_t drain_rows, Micros drain_interval_us) {
  SystemClock* clock = SystemClock::Get();
  const Table batch = MakeTuples(kBatchRows);

  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const size_t n = std::min(drain_rows, b->size());
      if (n > 0) {
        if (!b->ErasePrefix(n).ok()) std::exit(1);
      }
      if (drain_interval_us > 0) clock->SleepFor(drain_interval_us);
    }
  });

  ArmResult r;
  const Micros t0 = clock->Now();
  while (r.appended < target && clock->Now() - t0 < deadline_us) {
    if (b->CreditRemaining() == 0) {
      ++r.credit_waits;
      clock->SleepFor(100);
      continue;
    }
    auto n = b->AppendAligned(batch, clock->Now());
    if (!n.ok()) std::exit(1);
    r.appended += *n;
  }
  const Micros t1 = clock->Now();
  stop.store(true, std::memory_order_release);
  consumer.join();

  r.tps = static_cast<double>(r.appended) /
          (static_cast<double>(t1 - t0) / 1e6);
  r.spilled = b->stats().spilled;
  return r;
}

}  // namespace
}  // namespace datacell

int main() {
  using datacell::core::Basket;
  namespace storage = datacell::storage;

  const bool quick = std::getenv("DATACELL_QUICK") != nullptr;
  const uint64_t target = quick ? 2'000'000 : 16'000'000;
  const datacell::Micros deadline = quick ? 2'000'000 : 8'000'000;
  // The slow consumer: ~512k rows/s, far below the append-path ceiling.
  const size_t drain_rows = 1024;
  const datacell::Micros drain_interval = 2'000;

  std::printf("=== Spill backpressure: bounded ingest with a disk valve "
              "===\n\n");

  // Arm 1: unbounded basket, eager consumer — the in-memory ceiling.
  datacell::ArmResult inmemory;
  {
    Basket b("bench", datacell::StreamSchema(), /*add_arrival_ts=*/false);
    inmemory = datacell::RunArm(&b, target, deadline, /*drain_rows=*/1 << 20,
                                /*drain_interval_us=*/0);
  }
  std::printf("in-memory : %12.0f tuples/s  (%llu rows)\n", inmemory.tps,
              static_cast<unsigned long long>(inmemory.appended));

  // Arm 2: bounded, slow consumer, no spill — credit stalls dominate.
  datacell::ArmResult stall;
  {
    Basket b("bench", datacell::StreamSchema(), /*add_arrival_ts=*/false);
    b.SetCapacity(datacell::kCapacity);
    stall = datacell::RunArm(&b, target, deadline, drain_rows, drain_interval);
  }
  std::printf("stall     : %12.0f tuples/s  (%llu rows, %llu credit "
              "waits)\n",
              stall.tps, static_cast<unsigned long long>(stall.appended),
              static_cast<unsigned long long>(stall.credit_waits));

  // Arm 3: same bound, same slow consumer, spill pool attached.
  datacell::ArmResult spill;
  {
    auto pager = storage::Pager::Open("bench_spill.pages");
    if (!pager.ok()) {
      std::fprintf(stderr, "cannot open spill file: %s\n",
                   pager.status().ToString().c_str());
      return 1;
    }
    storage::BufferPool pool(std::move(*pager), 64);
    Basket b("bench", datacell::StreamSchema(), /*add_arrival_ts=*/false);
    b.SetCapacity(datacell::kCapacity);
    b.AttachSpill(&pool);
    spill = datacell::RunArm(&b, target, deadline, drain_rows, drain_interval);
  }
  std::printf("spill     : %12.0f tuples/s  (%llu rows, %llu spilled to "
              "disk)\n",
              spill.tps, static_cast<unsigned long long>(spill.appended),
              static_cast<unsigned long long>(spill.spilled));

  const double ratio = inmemory.tps > 0 ? spill.tps / inmemory.tps : 0;
  const bool ge_half = ratio >= 0.5;
  const double vs_stall = stall.tps > 0 ? spill.tps / stall.tps : 0;
  std::printf("\nspill/in-memory ratio: %.2f (acceptance >= 0.50: %s); "
              "spill vs stall: %.1fx\n",
              ratio, ge_half ? "yes" : "NO", vs_stall);
  if (spill.spilled == 0) {
    std::fprintf(stderr, "ERROR: spill arm never spilled — bench is not "
                 "exercising the disk path\n");
    return 1;
  }

  FILE* out = std::fopen("BENCH_spill_backpressure.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_spill_backpressure.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"spill_backpressure\",\n"
               "  \"batch_rows\": %zu,\n"
               "  \"capacity_rows\": %zu,\n"
               "  \"inmemory_tps\": %.0f,\n"
               "  \"stall_tps\": %.0f,\n"
               "  \"spill_tps\": %.0f,\n"
               "  \"spilled_rows\": %llu,\n"
               "  \"stall_credit_waits\": %llu,\n"
               "  \"spill_vs_stall_speedup\": %.2f,\n"
               "  \"spill_ratio\": %.3f,\n"
               "  \"spill_ge_half\": %s\n"
               "}\n",
               datacell::kBatchRows, datacell::kCapacity, inmemory.tps,
               stall.tps, spill.tps,
               static_cast<unsigned long long>(spill.spilled),
               static_cast<unsigned long long>(stall.credit_waits), vs_stall,
               ratio, ge_half ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_spill_backpressure.json\n");
  return ge_half ? 0 : 1;
}
