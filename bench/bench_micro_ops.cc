// Micro-benchmarks of the kernel primitives the DataCell is built from:
// selection, the delete-with-shift operator (§6.2's custom operator), hash
// join, aggregation, basket append/consume, basket-expression evaluation
// and the network codec. google-benchmark harness.

#include <benchmark/benchmark.h>

#include "core/basket.h"
#include "core/basket_expression.h"
#include "expr/eval.h"
#include "net/codec.h"
#include "ops/aggregate.h"
#include "ops/join.h"
#include "ops/select.h"
#include "ops/sort.h"
#include "util/random.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table MakeTuples(size_t n, uint64_t seed = 7) {
  Random rng(seed);
  Table t(StreamSchema());
  t.column(0).ints().reserve(n);
  t.column(1).ints().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(static_cast<int64_t>(rng.Uniform(10'000)));
  }
  return t;
}

void BM_SelectRange(benchmark::State& state) {
  Table t = MakeTuples(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto sel = ops::SelectRange(t, "payload", Value(100), true, Value(110),
                                false);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectRange)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_PredicateFastPath(benchmark::State& state) {
  Table t = MakeTuples(static_cast<size_t>(state.range(0)));
  ExprPtr pred = Expr::Bin(
      BinaryOp::kAnd,
      Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(100)),
      Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(110)));
  EvalContext ctx;
  for (auto _ : state) {
    auto sel = EvalPredicate(t, *pred, ctx);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PredicateFastPath)->Arg(100'000)->Arg(1'000'000);

// Ablation: the same predicate forced through the generic boolean-column
// evaluator (a double NOT defeats the column-vs-constant fast path), to
// quantify the candidate-list select pattern.
void BM_PredicateGenericPath(benchmark::State& state) {
  Table t = MakeTuples(static_cast<size_t>(state.range(0)));
  ExprPtr cmp = Expr::Bin(
      BinaryOp::kAnd,
      Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(100)),
      Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(110)));
  ExprPtr pred = Expr::Un(UnaryOp::kNot, Expr::Un(UnaryOp::kNot, cmp));
  EvalContext ctx;
  for (auto _ : state) {
    auto sel = EvalPredicate(t, *pred, ctx);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PredicateGenericPath)->Arg(100'000)->Arg(1'000'000);

// The paper's custom operator: remove a tuple set and shift survivors in
// one pass (vs. re-materializing the survivors with Take).
void BM_DeleteWithShift(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Table base = MakeTuples(n);
  SelVector every10;
  for (uint32_t i = 0; i < n; i += 10) every10.push_back(i);
  for (auto _ : state) {
    state.PauseTiming();
    Table t = base;
    state.ResumeTiming();
    benchmark::DoNotOptimize(t.EraseRows(every10));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeleteWithShift)->Arg(100'000)->Arg(1'000'000);

void BM_DeleteByRematerialize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Table base = MakeTuples(n);
  SelVector keep;
  for (uint32_t i = 0; i < n; ++i) {
    if (i % 10 != 0) keep.push_back(i);
  }
  for (auto _ : state) {
    Table survivors = base.Take(keep);
    benchmark::DoNotOptimize(survivors);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeleteByRematerialize)->Arg(100'000)->Arg(1'000'000);

void BM_HashJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Table left = MakeTuples(n, 1);
  Table right = MakeTuples(n / 4, 2);
  for (auto _ : state) {
    auto m = ops::HashJoinIndices(left, right, {{"payload", "payload"}});
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(10'000)->Arg(100'000);

void BM_GroupByAggregate(benchmark::State& state) {
  Table t = MakeTuples(static_cast<size_t>(state.range(0)));
  EvalContext ctx;
  std::vector<ops::GroupItem> groups = {
      {Expr::Bin(BinaryOp::kMod, Expr::Col("payload"), Expr::Lit(100)), "g"}};
  std::vector<ops::AggItem> aggs = {
      {ops::AggFunc::kCountStar, nullptr, "n"},
      {ops::AggFunc::kAvg, Expr::Col("payload"), "avg"}};
  for (auto _ : state) {
    auto out = ops::Aggregate(t, groups, aggs, ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByAggregate)->Arg(100'000);

void BM_BasketAppendTake(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Table batch = MakeTuples(n);
  core::Basket basket("b", StreamSchema());
  for (auto _ : state) {
    auto acc = basket.Append(batch, 0);
    benchmark::DoNotOptimize(acc);
    Table out = basket.TakeAll();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BasketAppendTake)->Arg(10'000)->Arg(100'000);

void BM_BasketExpressionWindow(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Table batch = MakeTuples(n);
  auto basket = std::make_shared<core::Basket>("b", StreamSchema());
  core::BasketExpression be(basket);
  be.Where(Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(10)));
  be.Consume(core::ConsumePolicy::kBatch);
  EvalContext ctx;
  for (auto _ : state) {
    auto acc = basket->Append(batch, 0);
    benchmark::DoNotOptimize(acc);
    auto out = be.Evaluate(ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BasketExpressionWindow)->Arg(10'000)->Arg(100'000);

void BM_CodecEncodeDecode(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Table batch = MakeTuples(n);
  net::Codec codec(StreamSchema());
  for (auto _ : state) {
    auto text = codec.EncodeTable(batch);
    benchmark::DoNotOptimize(text);
    Table decoded(StreamSchema());
    size_t start = 0;
    const std::string& payload = *text;
    while (start < payload.size()) {
      size_t end = payload.find('\n', start);
      if (end == std::string::npos) break;
      auto st = codec.DecodeInto(payload.substr(start, end - start), &decoded);
      benchmark::DoNotOptimize(st);
      start = end + 1;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CodecEncodeDecode)->Arg(1'000)->Arg(10'000);

}  // namespace
}  // namespace datacell

BENCHMARK_MAIN();
