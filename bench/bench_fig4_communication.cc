// Figure 4: effect of inter-process communication (§6.1).
//
// A sensor streams 10^5 two-column tuples over TCP; a chain of `select *`
// continuous queries runs inside the DataCell; an actuator receives the
// results. We measure (a) elapsed time and (b) throughput, with the kernel
// in the loop (8..64 queries) and without it (sensor -> actuator directly).
//
// Expected shape (paper): elapsed time grows with the number of queries;
// the kernel-less line is flat and is a large share of the total (the
// communication overhead dominates); throughput without the kernel exceeds
// every with-kernel configuration and decreases as queries are added.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "core/factory.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "net/actuator.h"
#include "net/gateway.h"
#include "net/sensor.h"
#include "util/clock.h"
#include "util/logging.h"

namespace datacell {
namespace {

struct RunResult {
  double elapsed_ms_per_1k = 0;  // E(b) normalized to 1000-tuple batches
  double mean_latency_ms = 0;
  double throughput_tps = 0;
  uint64_t tuples = 0;
};

uint64_t NumTuples() {
  const char* env = std::getenv("DATACELL_FIG4_TUPLES");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 30000ULL;
}

// Sensor -> actuator, no kernel.
Result<RunResult> RunWithoutKernel(uint64_t num_tuples) {
  SystemClock* clock = SystemClock::Get();
  net::Actuator actuator(clock);
  RETURN_NOT_OK(actuator.Start());
  net::Sensor::Options opts;
  opts.num_tuples = num_tuples;
  opts.tuples_per_write = 1;  // a write per event: the worst-case protocol
  RETURN_NOT_OK(net::Sensor::Run("127.0.0.1", actuator.port(), opts, clock));
  actuator.WaitFinished();
  const net::Actuator::Stats stats = actuator.stats();
  RunResult out;
  out.tuples = stats.tuples;
  out.mean_latency_ms = stats.MeanLatency() / 1000.0;
  const double elapsed_s =
      static_cast<double>(stats.Elapsed()) / kMicrosPerSecond;
  out.throughput_tps = elapsed_s > 0 ? static_cast<double>(stats.tuples) / elapsed_s
                                     : 0;
  out.elapsed_ms_per_1k =
      stats.tuples == 0
          ? 0
          : static_cast<double>(stats.Elapsed()) / kMicrosPerMilli /
                (static_cast<double>(stats.tuples) / 1000.0);
  return out;
}

// Sensor -> DataCell (query chain of `num_queries` select * factories) ->
// actuator.
Result<RunResult> RunWithKernel(uint64_t num_tuples, int num_queries) {
  SystemClock* clock = SystemClock::Get();

  // Baskets b0 .. bk; factory i moves everything from b_{i-1} to b_i.
  const Schema stream = net::Sensor::StreamSchema();
  std::vector<core::BasketPtr> baskets;
  auto b0 = std::make_shared<core::Basket>("b0", stream);
  baskets.push_back(b0);
  for (int i = 1; i <= num_queries; ++i) {
    baskets.push_back(std::make_shared<core::Basket>(
        "b" + std::to_string(i), b0->schema(), /*add_arrival_ts=*/false));
  }

  core::Scheduler scheduler(clock);
  for (int i = 1; i <= num_queries; ++i) {
    core::BasketPtr in = baskets[static_cast<size_t>(i - 1)];
    core::BasketPtr out = baskets[static_cast<size_t>(i)];
    // One tuple per firing: this experiment characterizes the *basic*
    // tuple-at-a-time processing model (batch processing is evaluated
    // separately in Figure 5(a)), which is what makes the per-query kernel
    // cost visible against the communication overhead.
    auto f = std::make_shared<core::Factory>(
        "q" + std::to_string(i), [in, out](core::FactoryContext& ctx) -> Status {
          if (in->empty()) return Status::OK();
          ASSIGN_OR_RETURN(Table one, in->TakeRows({0}));
          ASSIGN_OR_RETURN(size_t n, out->AppendAligned(one, ctx.now()));
          (void)n;
          return Status::OK();
        });
    f->AddInput(in);
    f->AddOutput(out);
    scheduler.Register(f);
  }

  net::Actuator actuator(clock);
  RETURN_NOT_OK(actuator.Start());
  ASSIGN_OR_RETURN(auto egress, net::TcpEgress::Connect("127.0.0.1",
                                                        actuator.port()));
  auto emitter = std::make_shared<core::Emitter>("e", egress->MakeSink());
  emitter->AddInput(baskets.back());
  scheduler.Register(emitter);

  auto receptor = std::make_shared<core::Receptor>("r");
  receptor->AddOutput(b0);
  // Tuple-at-a-time ingress (max batch 1): the paper's processing model in
  // this experiment, which is what makes the per-query kernel cost visible
  // next to the communication overhead.
  net::TcpIngress ingress(receptor, net::Codec(stream), clock,
                          /*max_batch_rows=*/1);
  RETURN_NOT_OK(ingress.Start());
  RETURN_NOT_OK(scheduler.Start());

  net::Sensor::Options opts;
  opts.num_tuples = num_tuples;
  opts.tuples_per_write = 1;
  RETURN_NOT_OK(net::Sensor::Run("127.0.0.1", ingress.port(), opts, clock));

  // Wait for the pipeline to drain.
  for (int i = 0; i < 60000 && actuator.stats().tuples < num_tuples; ++i) {
    clock->SleepFor(1000);
  }
  scheduler.Stop();
  RETURN_NOT_OK(egress->Finish());
  actuator.WaitFinished();
  ingress.Stop();

  const net::Actuator::Stats stats = actuator.stats();
  RunResult out;
  out.tuples = stats.tuples;
  out.mean_latency_ms = stats.MeanLatency() / 1000.0;
  const double elapsed_s =
      static_cast<double>(stats.Elapsed()) / kMicrosPerSecond;
  out.throughput_tps = elapsed_s > 0 ? static_cast<double>(stats.tuples) / elapsed_s
                                     : 0;
  out.elapsed_ms_per_1k =
      stats.tuples == 0
          ? 0
          : static_cast<double>(stats.Elapsed()) / kMicrosPerMilli /
                (static_cast<double>(stats.tuples) / 1000.0);
  return out;
}

}  // namespace
}  // namespace datacell

int main() {
  using datacell::RunResult;
  const uint64_t n = datacell::NumTuples();
  std::printf("=== Figure 4: effect of inter-process communication ===\n");
  std::printf("sensor -> [DataCell query chain] -> actuator over TCP loopback, "
              "%llu tuples\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%-24s %10s %16s %16s %14s\n", "configuration", "queries",
              "elapsed(ms/1k)", "mean_lat(ms)", "tput(tup/s)");

  auto base = datacell::RunWithoutKernel(n);
  if (!base.ok()) {
    std::fprintf(stderr, "without-kernel run failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  std::printf("%-24s %10s %16.2f %16.2f %14.0f\n", "without kernel", "-",
              base->elapsed_ms_per_1k, base->mean_latency_ms,
              base->throughput_tps);

  for (int queries : {8, 16, 32, 64}) {
    auto r = datacell::RunWithKernel(n, queries);
    if (!r.ok()) {
      std::fprintf(stderr, "with-kernel run (%d queries) failed: %s\n",
                   queries, r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-24s %10d %16.2f %16.2f %14.0f\n", "with kernel", queries,
                r->elapsed_ms_per_1k, r->mean_latency_ms, r->throughput_tps);
  }
  std::printf(
      "\nshape check (paper): without-kernel throughput highest & elapsed "
      "flat;\nwith-kernel elapsed grows and throughput falls as queries are "
      "added.\n");
  return 0;
}
